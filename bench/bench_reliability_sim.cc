// Monte-Carlo cross-validation of the reliability equations (4)-(6) on a
// scaled-down farm (real parameters would need centuries of simulated
// time per trial; the formulas are scale-free in the MTTF/MTTR ratio).

#include <cstdio>
#include <cstdlib>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "model/reliability_model.h"
#include "reliability/markov_sim.h"
#include "util/thread_pool.h"

namespace ftms {
namespace {

// Trials per table row; FTMS_BENCH_TRIALS scales the workload up for
// perf measurements without touching the reported tables' shape.
int TrialsPerRow() {
  if (const char* env = std::getenv("FTMS_BENCH_TRIALS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 300;
}

int64_t total_trials = 0;

void CatastropheRows() {
  bench::Section(
      "Catastrophic failure: simulation vs equations (4)/(5) "
      "(D=60, MTTF=2000h, MTTR=5h, 300 trials)");
  std::printf("%-22s %4s %14s %14s %10s %12s\n", "Scheme", "C",
              "sim (hours)", "model (hours)", "dev", "95% CI");
  for (int c : {3, 5}) {
    for (Scheme scheme :
         {Scheme::kStreamingRaid, Scheme::kImprovedBandwidth}) {
      ReliabilitySimConfig config;
      config.num_disks = 60;
      config.parity_group_size = c;
      config.scheme = scheme;
      config.mttf_hours = 2000.0;
      config.mttr_hours = 5.0;
      config.trials = TrialsPerRow();
      total_trials += config.trials;
      const ReliabilityEstimate est =
          EstimateMttfCatastrophic(config).value();
      SystemParameters p;
      p.num_disks = config.num_disks;
      p.disk.mttf_hours = config.mttf_hours;
      p.disk.mttr_hours = config.mttr_hours;
      // Equation (5) charges IB an exposure of (2C-1) fellow disks per
      // failure. With rotating parity placement (every disk of cluster
      // i+1 eventually holds parity for cluster i), the layout-exact
      // exposure is (C-2) own-cluster + 2(C-1) neighbor disks = 3C-4;
      // the simulation tracks the layout.
      const double model = MttfCatastrophicHours(p, scheme, c).value();
      const double exact =
          scheme == Scheme::kImprovedBandwidth
              ? config.mttf_hours * config.mttf_hours /
                    (60.0 * (3.0 * c - 4.0) * config.mttr_hours)
              : model;
      std::printf("%-22s %4d %14.0f %14.0f %10s %12.0f\n",
                  std::string(SchemeName(scheme)).c_str(), c,
                  est.mean_hours, exact,
                  bench::Deviation(est.mean_hours, exact).c_str(),
                  est.ci95_hours);
    }
  }
  std::printf(
      "(IB rows compare against the layout-exact exposure 3C-4; the\n"
      " paper's (2C-1) undercounts the rotating-parity adjacency by\n"
      " ~20%%, a second-order effect on the scheme ranking.)\n");
}

void DegradationRows() {
  bench::Section(
      "K concurrent failures: simulation vs equation (6) "
      "(D=20, MTTF=1000h, MTTR=2h, 300 trials)");
  std::printf("%4s %14s %14s %18s %10s\n", "K", "sim (hours)",
              "eq.(6) hours", "(K-1)! x eq.(6)", "dev(exact)");
  for (int k : {1, 2, 3}) {
    ReliabilitySimConfig config;
    config.num_disks = 20;
    config.mttf_hours = 1000.0;
    config.mttr_hours = 2.0;
    config.trials = TrialsPerRow();
    total_trials += config.trials;
    const ReliabilityEstimate est =
        EstimateKConcurrent(config, k).value();
    const double eq6 =
        KConcurrentFailuresMeanHours(1000.0, 2.0, 20, k);
    double factorial = 1;
    for (int i = 2; i < k; ++i) factorial *= i;
    const double exact = factorial * eq6;
    std::printf("%4d %14.0f %14.0f %18.0f %10s\n", k, est.mean_hours, eq6,
                exact, bench::Deviation(est.mean_hours, exact).c_str());
  }
  std::printf(
      "\nFinding: the simulation matches the exact birth-death hitting\n"
      "time (K-1)! * MTTF^K / (D...(D-K+1) MTTR^(K-1)); the paper's\n"
      "equation (6) drops the factorial, a conservative 2x underestimate\n"
      "at K = 3 (and 24x at the text's K = 5) — the qualitative story\n"
      "(degradation is astronomically rarer than catastrophe) is\n"
      "unchanged.\n");
}

}  // namespace
}  // namespace ftms

int main() {
  ftms::bench::Banner(
      "Reliability Monte-Carlo vs closed forms (equations (4)-(6))");
  const int threads = ftms::ThreadPool::DefaultThreadCount();
  ftms::bench::WallTimer timer;
  ftms::CatastropheRows();
  ftms::DegradationRows();
  const double wall_s = timer.Seconds();

  std::printf("\n%lld trials in %.3f s (%.0f trials/s, %d threads)\n",
              static_cast<long long>(ftms::total_trials), wall_s,
              static_cast<double>(ftms::total_trials) / wall_s, threads);
  ftms::bench::Reporter report("reliability_sim");
  report.Set("threads", threads);
  report.Set("trials", static_cast<double>(ftms::total_trials));
  report.Set("wall_s", wall_s);
  report.Set("trials_per_sec",
             static_cast<double>(ftms::total_trials) / wall_s);
  report.WriteJson();
  return 0;
}
