// Degraded-datapath throughput: the byte-level read/reconstruct pipeline
// (synthesis, parity XOR folding, single-failure rebuilds) at realistic
// track sizes. Reconstruction speed bounds how fast a real server could
// serve a degraded cluster or scrub/rebuild a replacement disk, so this
// path must move at memory-bandwidth-class rates, not allocator rates.

#include <cstdio>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "parity/xor_kernels.h"
#include "verify/datapath.h"

namespace ftms {
namespace {

// One track approximately the paper's Table 1 granularity (~50 KB).
constexpr size_t kBlockBytes = 50 * 1024;

double MegabytesPerSecond(int64_t tracks, double seconds) {
  return static_cast<double>(tracks) *
         (static_cast<double>(kBlockBytes) / (1024.0 * 1024.0)) / seconds;
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Degraded datapath: synthesis / healthy readback / reconstruction "
      "throughput (50 KB tracks)");

  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  const int64_t tracks = 6000;  // 1500 groups of 4 data tracks
  bench::Reporter report("degraded_read");
  std::printf("xor kernel: %s (pin with FTMS_XOR_KERNEL=<name>)\n",
              ActiveXorKernelName());

  // Raw synthesis: the lower bound every readback path pays.
  {
    Block block;
    bench::WallTimer timer;
    for (int64_t t = 0; t < tracks; ++t) {
      SynthesizeDataBlockInto(1, t, kBlockBytes, &block);
    }
    const double s = timer.Seconds();
    std::printf("%-28s %8lld tracks  %8.3f s  %9.1f MB/s\n", "synthesize",
                static_cast<long long>(tracks), s,
                MegabytesPerSecond(tracks, s));
    report.Set("synthesize_mb_per_s", MegabytesPerSecond(tracks, s));
  }

  // Healthy readback: every track read directly and verified.
  {
    bench::WallTimer timer;
    const int64_t reconstructed =
        VerifyObjectReadback(*layout, 1, tracks, {}, kBlockBytes).value();
    const double s = timer.Seconds();
    std::printf("%-28s %8lld tracks  %8.3f s  %9.1f MB/s\n",
                "healthy readback", static_cast<long long>(tracks), s,
                MegabytesPerSecond(tracks, s));
    if (reconstructed != 0) {
      std::printf("ERROR: healthy run reconstructed %lld tracks\n",
                  static_cast<long long>(reconstructed));
      return 1;
    }
    report.Set("healthy_mb_per_s", MegabytesPerSecond(tracks, s));
  }

  // Degraded readback: disk 0 down, so one track per group on its home
  // cluster's groups reconstructs via the parity fold.
  {
    bench::WallTimer timer;
    const int64_t reconstructed =
        VerifyObjectReadback(*layout, 1, tracks, {0}, kBlockBytes).value();
    const double s = timer.Seconds();
    std::printf("%-28s %8lld tracks  %8.3f s  %9.1f MB/s  (%lld rebuilt)\n",
                "degraded readback", static_cast<long long>(tracks), s,
                MegabytesPerSecond(tracks, s),
                static_cast<long long>(reconstructed));
    if (reconstructed == 0) {
      std::printf("ERROR: degraded run reconstructed nothing\n");
      return 1;
    }
    report.Set("degraded_mb_per_s", MegabytesPerSecond(tracks, s));
    report.Set("reconstructed_tracks", static_cast<double>(reconstructed));
  }

  // Batched reconstruction: every track of the failed disk regenerated
  // through ReconstructTracksInto (the RebuildManager's byte path) —
  // consecutive same-group tracks share one group synthesis.
  {
    DiskSet failed;
    failed.Add(0);
    std::vector<int64_t> rebuild_tracks;
    for (int64_t t = 0; t < tracks; ++t) {
      if (layout->DataLocation(1, t).disk == 0) rebuild_tracks.push_back(t);
    }
    DegradedReadScratch scratch;
    std::vector<TrackRead> reads;
    bench::WallTimer timer;
    const Status status =
        ReconstructTracksInto(*layout, 1, rebuild_tracks, tracks, failed,
                              kBlockBytes, &scratch, &reads);
    const double s = timer.Seconds();
    if (!status.ok()) {
      std::printf("ERROR: batched reconstruction failed: %s\n",
                  status.message().c_str());
      return 1;
    }
    const int64_t n = static_cast<int64_t>(rebuild_tracks.size());
    std::printf("%-28s %8lld tracks  %8.3f s  %9.1f MB/s\n",
                "batched reconstruction", static_cast<long long>(n), s,
                MegabytesPerSecond(n, s));
    report.Set("batched_reconstruct_mb_per_s", MegabytesPerSecond(n, s));
    report.Set("batched_reconstruct_tracks", static_cast<double>(n));
  }

  report.WriteJson();
  std::printf(
      "\nReading: healthy readback pays synthesis twice (read + ground\n"
      "truth); degraded readback additionally folds the C-1 surviving\n"
      "group members through the XOR accumulator for the failed disk's\n"
      "tracks. All three paths reuse caller-owned blocks — zero\n"
      "steady-state allocations.\n");
  return 0;
}
