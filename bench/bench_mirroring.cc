// Footnote 11 / reference [5]: parity groups of 2 under the
// Improved-bandwidth layout ARE mirroring (chained declustering). With
// replica read-balancing the two copies split a hot title's load across
// adjacent disks — "one could use the two copies to get even more stream
// capacity" — but a failure removes the second copy and over-committed
// viewers drop: "this can however lead to trouble when there is a
// failure".

#include <cstdio>

#include "bench/bench_util.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

constexpr int kDisks = 8;

void HotTitleRow(int viewers, bool balanced) {
  RigOptions options;
  options.ib_mirror_read_balance = balanced;
  options.slots_per_disk = 1;  // every viewer beyond 1 needs the copy
  SchedRig rig =
      MakeRig(Scheme::kImprovedBandwidth, 2, kDisks, options);
  for (int i = 0; i < viewers; ++i) {
    rig.sched->AddStream(TestObject(0, 200)).value();
  }
  rig.sched->RunCycles(100);
  const SchedulerMetrics& m = rig.sched->metrics();
  std::printf("%10d %10s %12lld %12lld %14lld\n", viewers,
              balanced ? "yes" : "no",
              static_cast<long long>(m.hiccups),
              static_cast<long long>(m.dropped_reads),
              static_cast<long long>(m.parity_reads));
}

void FailureRow(bool balanced) {
  RigOptions options;
  options.ib_mirror_read_balance = balanced;
  options.slots_per_disk = 1;
  SchedRig rig =
      MakeRig(Scheme::kImprovedBandwidth, 2, kDisks, options);
  rig.sched->AddStream(TestObject(0, 200)).value();
  if (balanced) rig.sched->AddStream(TestObject(0, 200)).value();
  rig.sched->RunCycles(5);
  rig.sched->OnDiskFailed(0, false);
  rig.sched->RunCycles(100);
  const SchedulerMetrics& m = rig.sched->metrics();
  std::printf("%-44s %12lld %12lld\n",
              balanced ? "2 viewers sharing both copies (balanced)"
                       : "1 viewer, copy covers the failure",
              static_cast<long long>(m.hiccups),
              static_cast<long long>(m.degradation_events));
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Mirroring (C = 2 chained declustering, footnote 11) — hot-title "
      "load balancing");

  bench::Section("Viewers of ONE title, 8 mirrored disks, 1 slot/disk");
  std::printf("%10s %10s %12s %12s %14s\n", "viewers", "balanced",
              "hiccups", "drops", "copy reads");
  for (int viewers : {1, 2}) {
    HotTitleRow(viewers, false);
    HotTitleRow(viewers, true);
  }
  std::printf(
      "(Balancing doubles the single-title audience: the second viewer\n"
      " is served from the copy on the neighbor disk.)\n");

  bench::Section("The footnote's caveat: a failure removes one copy");
  std::printf("%-44s %12s %12s\n", "Scenario", "hiccups", "degradation");
  FailureRow(false);
  FailureRow(true);
  std::printf(
      "(A lone viewer rides out the failure on the surviving copy; the\n"
      " balanced pair exceeds the surviving bandwidth and loses tracks —\n"
      " \"some streams would have to be dropped\".)\n");
  return 0;
}
