// Regenerates the two inline tables of Section 2: streams per disk
// (N/D') as a function of k (tracks read per read cycle, k = k') for the
// example disk with T_seek = 30 ms, T_trk = 10 ms, B = 100 KB, at object
// rates 1.5 Mb/s (variation ~5%) and 4.5 Mb/s (variation ~15%, the
// motivation for larger k and thus for the memory-conscious schemes).

#include <cstdio>

#include "bench/bench_util.h"
#include "model/capacity.h"
#include "util/units.h"

namespace {

ftms::SystemParameters Section2Disk(double rate_mb_s) {
  ftms::SystemParameters p;
  p.disk.seek_time_s = 0.030;
  p.disk.track_time_s = 0.010;
  p.disk.track_mb = 0.100;
  p.object_rate_mb_s = rate_mb_s;
  return p;
}

void Sweep(double rate_mb_s, const char* label, const double* paper,
           const int* paper_k, int paper_n) {
  ftms::bench::Section(label);
  std::printf("%6s %12s %12s %8s\n", "k", "N/D' (ours)", "N/D' (paper)",
              "dev");
  const ftms::SystemParameters p = Section2Disk(rate_mb_s);
  for (int k : {1, 2, 3, 4, 5, 10}) {
    const double ours = ftms::StreamsPerDataDisk(p, k);
    double ref = -1;
    for (int i = 0; i < paper_n; ++i) {
      if (paper_k[i] == k) ref = paper[i];
    }
    if (ref >= 0) {
      std::printf("%6d %12.2f %12.1f %8s\n", k, ours, ref,
                  ftms::bench::Deviation(ours, ref).c_str());
    } else {
      std::printf("%6d %12.2f %12s\n", k, ours, "-");
    }
  }
  const double spread = (ftms::StreamsPerDataDisk(p, 10) -
                         ftms::StreamsPerDataDisk(p, 1)) /
                        ftms::StreamsPerDataDisk(p, 10);
  std::printf("k=1 -> k=10 variation: %.1f%%\n", spread * 100.0);
}

}  // namespace

int main() {
  ftms::bench::Banner(
      "Section 2 inline tables — streams/disk vs k "
      "(T_seek=30ms, T_trk=10ms, B=100KB)");
  // The OCR of the 1.5 Mb/s table is garbled in our source; the paper
  // states only the ~5% variation, which we verify.
  Sweep(ftms::kMpeg1RateMbS, "b_o = 1.5 Mb/s (MPEG-1): paper reports ~5%",
        nullptr, nullptr, 0);
  const int paper_k[] = {1, 2, 10};
  const double paper_n[] = {14.7, 16.2, 17.4};
  Sweep(ftms::kMpeg2RateMbS, "b_o = 4.5 Mb/s (MPEG-2)", paper_n, paper_k,
        3);
  std::printf(
      "\nConclusion (paper): for MPEG-2 the ~15%% spread justifies larger\n"
      "k at the price of buffer memory — the tradeoff this paper studies\n"
      "jointly with fault tolerance.\n");
  return 0;
}
