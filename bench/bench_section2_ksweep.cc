// Regenerates the two inline tables of Section 2: streams per disk
// (N/D') as a function of k (tracks read per read cycle, k = k') for the
// example disk with T_seek = 30 ms, T_trk = 10 ms, B = 100 KB, at object
// rates 1.5 Mb/s (variation ~5%) and 4.5 Mb/s (variation ~15%, the
// motivation for larger k and thus for the memory-conscious schemes).

#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "model/capacity.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace {

constexpr int kSweepK[] = {1, 2, 3, 4, 5, 10};
constexpr int kSweepN = static_cast<int>(std::size(kSweepK));

ftms::SystemParameters Section2Disk(double rate_mb_s) {
  ftms::SystemParameters p;
  p.disk.seek_time_s = 0.030;
  p.disk.track_time_s = 0.010;
  p.disk.track_mb = 0.100;
  p.object_rate_mb_s = rate_mb_s;
  return p;
}

void Sweep(double rate_mb_s, const char* label, const double* paper,
           const int* paper_k, int paper_n) {
  ftms::bench::Section(label);
  std::printf("%6s %12s %12s %8s\n", "k", "N/D' (ours)", "N/D' (paper)",
              "dev");
  const ftms::SystemParameters p = Section2Disk(rate_mb_s);
  // Each k's capacity derivation is independent: fan the sweep out over
  // the shared pool and print the gathered column in k order.
  std::vector<double> ours(kSweepN, 0.0);
  ftms::ParallelFor(&ftms::ThreadPool::Shared(), 0, kSweepN,
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        ours[static_cast<size_t>(i)] =
                            ftms::StreamsPerDataDisk(p, kSweepK[i]);
                      }
                    });
  for (int i = 0; i < kSweepN; ++i) {
    const int k = kSweepK[i];
    double ref = -1;
    for (int j = 0; j < paper_n; ++j) {
      if (paper_k[j] == k) ref = paper[j];
    }
    if (ref >= 0) {
      std::printf("%6d %12.2f %12.1f %8s\n", k, ours[static_cast<size_t>(i)],
                  ref,
                  ftms::bench::Deviation(ours[static_cast<size_t>(i)], ref)
                      .c_str());
    } else {
      std::printf("%6d %12.2f %12s\n", k, ours[static_cast<size_t>(i)], "-");
    }
  }
  const double spread =
      (ours[kSweepN - 1] - ours[0]) / ours[kSweepN - 1];
  std::printf("k=1 -> k=10 variation: %.1f%%\n", spread * 100.0);
}

}  // namespace

int main() {
  ftms::bench::Banner(
      "Section 2 inline tables — streams/disk vs k "
      "(T_seek=30ms, T_trk=10ms, B=100KB)");
  ftms::bench::WallTimer timer;
  // The OCR of the 1.5 Mb/s table is garbled in our source; the paper
  // states only the ~5% variation, which we verify.
  Sweep(ftms::kMpeg1RateMbS, "b_o = 1.5 Mb/s (MPEG-1): paper reports ~5%",
        nullptr, nullptr, 0);
  const int paper_k[] = {1, 2, 10};
  const double paper_n[] = {14.7, 16.2, 17.4};
  Sweep(ftms::kMpeg2RateMbS, "b_o = 4.5 Mb/s (MPEG-2)", paper_n, paper_k,
        3);
  const double wall_s = timer.Seconds();
  ftms::bench::Reporter report("section2_ksweep");
  report.Set("sweep_points", 2.0 * kSweepN);
  report.Set("wall_s", wall_s);
  report.WriteJson();
  std::printf(
      "\nConclusion (paper): for MPEG-2 the ~15%% spread justifies larger\n"
      "k at the price of buffer memory — the tradeoff this paper studies\n"
      "jointly with fault tolerance.\n");
  return 0;
}
