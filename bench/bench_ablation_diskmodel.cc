// Ablation: the paper's linear disk model vs a Ruemmler-Wilkes seek
// curve (the paper's reference [9]). The paper charges one full-stroke
// seek per cycle; under the concave curve a SCAN sweep over r requests
// pays r short seeks whose total grows with r, so the paper's per-cycle
// track budget is an optimistic upper bound. This bench quantifies the
// gap across the schemes' cycle lengths.

#include <cstdio>

#include "bench/bench_util.h"
#include "disk/disk_model.h"
#include "disk/seek_curve.h"
#include "model/capacity.h"

int main() {
  using namespace ftms;
  bench::Banner(
      "Ablation — paper's linear disk model vs Ruemmler-Wilkes seek "
      "curve");
  SeekCurve curve;  // HP-97560-like, full stroke ~= Table 1's 25 ms
  DiskParameters paper;
  paper.seek_time_s = curve.FullStrokeS();
  std::printf(
      "Curve: %.1f ms full stroke, %.1f ms average random seek,\n"
      "       %.2f ms settle + sqrt regime below %d cylinders.\n\n",
      curve.FullStrokeS() * 1000, curve.AverageRandomSeekS() * 1000,
      curve.short_a_s * 1000, curve.threshold_cyl);

  SystemParameters p;
  std::printf("%-26s %10s %12s %12s %12s\n", "Cycle (scheme)", "T_cyc",
              "paper", "RW sweep", "RW FIFO");
  struct Row {
    const char* label;
    int k_prime;
  };
  for (const Row row : {Row{"k'=1 (SG/NC)", 1}, Row{"k'=4 (SR/IB, C=5)", 4},
                        Row{"k'=6 (SR/IB, C=7)", 6},
                        Row{"k'=9 (SR/IB, C=10)", 9}}) {
    const double cycle_s = CycleSeconds(p, row.k_prime);
    const int budget_paper = paper.TracksPerCycle(cycle_s);
    const int budget_sweep =
        TracksPerCycleUnderCurve(curve, p.track_time_s(), cycle_s);
    const int budget_fifo =
        TracksPerCycleFifo(curve, p.track_time_s(), cycle_s);
    std::printf("%-26s %8.2fs %12d %12d %12d\n", row.label, cycle_s,
                budget_paper, budget_sweep, budget_fifo);
  }
  std::printf(
      "\nReading: the paper's single full-stroke charge overstates the\n"
      "track budget by ~20%% once a cycle carries many requests (each\n"
      "short hop pays the settle time), while FIFO service would forfeit\n"
      "a further ~25%% — the quantified version of Section 2's \"seek\n"
      "optimization is very important\". The paper's cross-scheme\n"
      "comparisons are unaffected: the same budget model is applied to\n"
      "all four schemes.\n");
  return 0;
}
