// Sensitivity analysis (extension): do the paper's Table 2 conclusions —
// the scheme ORDERINGS on streams, buffers and reliability — survive
// perturbations of the hardware parameters? Each row perturbs one
// parameter of Table 1 and re-derives the orderings.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "model/tables.h"
#include "util/thread_pool.h"

namespace ftms {
namespace {

struct Orderings {
  bool ib_most_streams = false;       // IB > SR > SG = NC
  bool nc_least_buffers = false;      // NC < SG < IB < SR
  bool ib_least_reliable = false;     // IB MTTF < clustered MTTF
  bool nc_ib_degrade_later = false;   // MTTDS(NC/IB) > MTTF
};

Orderings Derive(const SystemParameters& p, int c) {
  Orderings o;
  auto rows_or = ComputeComparisonTable(p, c);
  if (!rows_or.ok()) return o;
  const auto& r = *rows_or;  // SR, SG, NC, IB
  o.ib_most_streams = r[3].streams >= r[0].streams &&
                      r[0].streams >= r[1].streams &&
                      r[1].streams == r[2].streams;
  o.nc_least_buffers = r[2].buffer_tracks < r[1].buffer_tracks &&
                       r[1].buffer_tracks < r[3].buffer_tracks &&
                       r[3].buffer_tracks < r[0].buffer_tracks;
  o.ib_least_reliable = r[3].mttf_years < r[0].mttf_years;
  o.nc_ib_degrade_later = r[2].mttds_years > r[2].mttf_years &&
                          r[3].mttds_years > r[3].mttf_years;
  return o;
}

std::string FormatRow(const std::string& label, const SystemParameters& p) {
  bool all[4] = {true, true, true, true};
  for (int c : {4, 5, 7, 10}) {
    const Orderings o = Derive(p, c);
    all[0] &= o.ib_most_streams;
    all[1] &= o.nc_least_buffers;
    all[2] &= o.ib_least_reliable;
    all[3] &= o.nc_ib_degrade_later;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-34s %10s %12s %12s %14s\n",
                label.c_str(), all[0] ? "holds" : "BREAKS",
                all[1] ? "holds" : "BREAKS", all[2] ? "holds" : "BREAKS",
                all[3] ? "holds" : "BREAKS");
  return buf;
}

struct Perturbation {
  std::string label;
  SystemParameters params;
};

// Every perturbation derives its orderings independently, so the sweep
// fans out over the shared pool; rows are printed in declaration order
// regardless of which thread computed them.
void RunRows(const std::vector<Perturbation>& rows) {
  std::vector<std::string> out(rows.size());
  ParallelFor(&ThreadPool::Shared(), 0,
              static_cast<int64_t>(rows.size()), [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  out[static_cast<size_t>(i)] = FormatRow(
                      rows[static_cast<size_t>(i)].label,
                      rows[static_cast<size_t>(i)].params);
                }
              });
  for (const std::string& row : out) std::fputs(row.c_str(), stdout);
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Sensitivity — Table 2's scheme orderings under parameter "
      "perturbation (C in {4,5,7,10})");
  std::printf("%-34s %10s %12s %12s %14s\n", "Perturbation",
              "IB streams", "NC buffers", "IB reliab.", "NC/IB MTTDS");

  SystemParameters base;
  std::vector<Perturbation> rows;
  rows.push_back({"Table 1 baseline", base});

  SystemParameters p = base;
  p.disk.seek_time_s *= 2;
  rows.push_back({"2x seek time (50 ms)", p});
  p = base;
  p.disk.seek_time_s *= 0.5;
  rows.push_back({"0.5x seek time (12.5 ms)", p});
  p = base;
  p.disk.track_mb *= 2;
  rows.push_back({"2x track size (100 KB)", p});
  p = base;
  p.object_rate_mb_s = 0.5625;
  rows.push_back({"MPEG-2 objects (4.5 Mb/s)", p});
  p = base;
  p.disk.mttr_hours = 24;
  rows.push_back({"24 h repair time", p});
  p = base;
  p.num_disks = 1000;
  rows.push_back({"1000-disk farm, K = 3", p});
  p.k_reserve = 5;
  rows.push_back({"1000-disk farm, K = 5", p});
  p = base;
  p.k_reserve = 5;
  rows.push_back({"K = 5 reserve", p});

  bench::WallTimer timer;
  RunRows(rows);
  const double wall_s = timer.Seconds();
  bench::Reporter report("sensitivity");
  report.Set("rows", static_cast<double>(rows.size()));
  report.Set("wall_s", wall_s);
  report.Set("rows_per_sec", static_cast<double>(rows.size()) / wall_s);
  report.WriteJson();

  std::printf(
      "\nEvery ordering is robust except one instructive case: at 1000\n"
      "disks with only K = 3 buffer servers, three concurrent failures\n"
      "ANYWHERE arrive sooner than two in one small cluster, so the\n"
      "NC/IB degradation advantage inverts at small C. The reserve must\n"
      "scale with the farm — exactly why the paper sizes K = 5 for its\n"
      "1000-disk examples (restoring the ordering, next row).\n");
  return 0;
}
