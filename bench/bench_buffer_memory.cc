// Regenerates Figure 4: the staggered-group scheme's memory usage over
// cycles — per-group sawtooth profiles that are out of phase across
// streams, so the aggregate stays near C(C+1)/2 per C-1 streams instead
// of Streaming RAID's 2C per stream.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/buffers.h"
#include "sched/staggered_group_scheduler.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

constexpr int kC = 5;

void ProfileStaggered() {
  bench::Section("(b) one group (A&B analogue): per-stream sawtooth");
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, 10);
  auto* sg = static_cast<StaggeredGroupScheduler*>(rig.sched.get());
  std::vector<StreamId> ids;
  for (int i = 0; i < kC - 1; ++i) {
    ids.push_back(rig.sched->AddStream(TestObject(2 * i, 400)).value());
  }
  rig.sched->RunCycles(8);  // reach steady state
  std::printf("%6s", "cycle");
  for (size_t i = 0; i < ids.size(); ++i) {
    std::printf("  stream%zu", i);
  }
  std::printf("  total\n");
  for (int t = 0; t < 2 * (kC - 1); ++t) {
    rig.sched->RunCycle();
    std::printf("%6lld", static_cast<long long>(rig.sched->cycle()));
    int64_t total = 0;
    for (StreamId id : ids) {
      const int64_t held = sg->BufferedTracksOf(id);
      total += held;
      std::printf("  %7lld", static_cast<long long>(held));
    }
    std::printf("  %5lld\n", static_cast<long long>(total));
  }
  std::printf(
      "\nEach stream's profile falls %d -> 2 then refills (the Figure 4\n"
      "sawtooth); phases are offset so the total stays flat.\n",
      kC);
}

void CompareAggregates() {
  bench::Section("(a) all groups: aggregate memory, SG vs SR");
  constexpr int kStreams = kC - 1;
  int64_t peaks[2];
  int scheme_idx = 0;
  for (Scheme scheme :
       {Scheme::kStaggeredGroup, Scheme::kStreamingRaid}) {
    SchedRig rig = MakeRig(scheme, kC, 10);
    for (int i = 0; i < kStreams; ++i) {
      rig.sched->AddStream(TestObject(2 * i, 400)).value();
    }
    rig.sched->RunCycles(40);
    peaks[scheme_idx++] = rig.sched->buffer_pool().peak_in_use();
  }
  const double eq13 =
      BuffersPerStreamNormal(Scheme::kStaggeredGroup, kC) * kStreams;
  const double eq12 =
      BuffersPerStreamNormal(Scheme::kStreamingRaid, kC) * kStreams;
  std::printf("%-28s %14s %14s\n", "", "measured", "equations");
  std::printf("%-28s %14lld %14.0f\n", "Staggered-group (4 streams)",
              static_cast<long long>(peaks[0]), eq13);
  std::printf("%-28s %14lld %14.0f\n", "Streaming RAID (4 streams)",
              static_cast<long long>(peaks[1]), eq12);
  std::printf(
      "SG/SR memory ratio: measured %.2f, equations %.2f (paper:\n"
      "\"approximately 1/2 the memory\"; our cycle-end accounting adds\n"
      "C-1 overlap tracks to equation (13)'s count).\n",
      static_cast<double>(peaks[0]) / static_cast<double>(peaks[1]),
      eq13 / eq12);
}

}  // namespace
}  // namespace ftms

int main() {
  ftms::bench::Banner(
      "Figure 4 — Staggered-group memory requirements over cycles");
  ftms::ProfileStaggered();
  ftms::CompareAggregates();
  return 0;
}
