#ifndef FTMS_BENCH_BENCH_REPORT_H_
#define FTMS_BENCH_BENCH_REPORT_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace ftms::bench {

// Wall-clock stopwatch for the perf-trajectory reports.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Machine-readable perf snapshot: each bench collects a flat set of
// scalar metrics (wall time, trials/sec, cycles/sec, ...) and writes
// BENCH_<name>.json so successive PRs can be compared with
// tools/bench_diff.py.
//
// Schema version 2 added an "env" stamp (worker threads, whether the
// metrics registry / tracer were enabled — both skew timings) and, when
// the global registry is live, a full "registry" block of its metrics so
// the perf numbers and the observability counters land in one artifact.
// Schema version 3 adds "qos_enabled" to the env stamp and, when the QoS
// journal is live (FTMS_QOS=1), a "qos" block of per-kind journal event
// counts. bench_diff.py refuses to compare across schema versions.
// Still within v3 (additive key, old readers unaffected), the env stamp
// also carries "xor_kernel" — the dispatched multi-source XOR kernel
// (parity/xor_kernels.h), which materially changes every parity-heavy
// timing and so must travel with the numbers — and "event_queue", the
// FTMS_EVENT_QUEUE selection (heap | calendar) driving the discrete-event
// engine, which changes what simulator-bound timings mean.
// Schema version 4 adds "prof_enabled" / "timeseries_enabled" to the env
// stamp (both skew timings when on) and two optional blocks: "profile"
// (the hierarchical wall-clock scope tree, when FTMS_PROF=1) and
// "timeseries" (the recorder's per-series summary, when
// FTMS_TIMESERIES=1). bench_diff.py diffs the profile tree node-by-node
// and uses it to attribute guarded-metric regressions to subsystems.
//
// Environment knobs:
//   FTMS_BENCH_JSON=0        disable writing entirely
//   FTMS_BENCH_JSON_DIR=dir  target directory (default: current dir)
//   FTMS_METRICS_OUT=path    also export the global registry as
//                            Prometheus text to `path`
//   FTMS_TRACE_OUT=path      also export the global tracer as Chrome
//                            trace JSON to `path`
//   FTMS_QOS_OUT=path        also export the global QoS journal as
//                            JSONL to `path`
//   FTMS_PROF_OUT=path       also export the profiler tree as JSON to
//                            `path`
//   FTMS_TIMESERIES_OUT=path also export the time-series recorder as
//                            JSON to `path` (FTMS_TIMESERIES_CSV=path
//                            for the CSV flattening)
class Reporter {
 public:
  explicit Reporter(std::string name) : name_(std::move(name)) {}

  // Records (or overwrites) one scalar metric. Insertion order is kept in
  // the JSON output so the files diff cleanly run-to-run.
  void Set(const std::string& key, double value);

  // Writes BENCH_<name>.json and returns its path; returns "" when
  // disabled via FTMS_BENCH_JSON=0 or when the file cannot be written.
  // Also prints a one-line "wrote ..." notice on success, and honors the
  // FTMS_METRICS_OUT / FTMS_TRACE_OUT exports when those sinks are live.
  std::string WriteJson() const;

  const std::string& name() const { return name_; }

  // The bench report schema emitted by WriteJson().
  static constexpr int kSchemaVersion = 4;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace ftms::bench

#endif  // FTMS_BENCH_BENCH_REPORT_H_
