// Rebuild mode (extension; the paper's third operating mode): how long a
// hot-spare rebuild takes as a function of foreground load, and the
// parity-rebuild vs tertiary-reload gap that motivates avoiding
// catastrophic failures in the first place (Section 1).

#include <cstdio>

#include "bench/bench_util.h"
#include "server/rebuild.h"
#include "server/server.h"
#include "server/tertiary.h"

namespace ftms {
namespace {

void OnlineRebuildRows() {
  bench::Section(
      "Online rebuild from parity: duration vs foreground load "
      "(C = 5, 10 disks, slots = 9/cycle, disk = 200 tracks)");
  std::printf("%12s %14s %16s %14s %10s\n", "streams", "cycles",
              "progress/cycle", "hiccups", "");
  for (int streams : {0, 2, 4, 8}) {
    ServerConfig config;
    config.scheme = Scheme::kStreamingRaid;
    config.parity_group_size = 5;
    config.params.num_disks = 10;
    config.params.k_reserve = 2;
    config.params.disk.capacity_mb = 10.0;  // 200 tracks
    config.slots_per_disk = 9;              // a tight slot budget
    auto server = std::move(MultimediaServer::Create(config).value());
    MediaObject obj;
    obj.id = 0;
    obj.rate_mb_s = config.params.object_rate_mb_s;
    obj.num_tracks = 1200;  // fills most of the tiny working set
    if (!server->AddObject(obj).ok()) {
      std::printf("object staging failed\n");
      return;
    }
    // Staggered starts spread the streams over both clusters, so the
    // rebuilding cluster carries about half of them every cycle.
    for (int i = 0; i < streams; ++i) {
      server->StartStream(0).value();
      server->RunCycles(1);
    }
    server->RunCycles(3);
    server->FailDisk(1).ok();
    server->StartRebuild(1).ok();
    int cycles = 0;
    while (server->rebuild().Active() && cycles < 100000) {
      server->RunCycles(1);
      ++cycles;
    }
    std::printf("%12d %14d %16.1f %14lld %10s\n", streams, cycles,
                cycles > 0 ? 200.0 / cycles : 0.0,
                static_cast<long long>(server->scheduler().metrics().hiccups),
                streams == 0 ? "(idle)" : "");
  }
  std::printf(
      "(Rebuild steals only idle slots; foreground streams keep strict\n"
      " priority and suffer zero hiccups throughout.)\n");
}

void OfflineEstimates() {
  bench::Section(
      "Closed-form rebuild estimates: parity path vs tertiary reload "
      "(1 GB disk)");
  DiskParameters disk;
  TertiaryStore tertiary{TertiaryParameters{}};
  std::printf("%-52s %12s\n", "Path", "hours");
  for (double fraction : {1.0, 0.25, 0.1}) {
    const RebuildEstimate est =
        RebuildFromParity(disk, 5, fraction).value();
    std::printf("parity rebuild at %3.0f%% of survivor bandwidth %17.2f\n",
                fraction * 100, est.hours);
  }
  for (int64_t extents : {1, 100, 300}) {
    const RebuildEstimate est =
        RebuildFromTertiary(tertiary, 1000.0, extents).value();
    std::printf("tertiary reload, %3lld tape extents %25.2f\n",
                static_cast<long long>(extents), est.hours);
  }
  std::printf(
      "(A failed disk holds fragments of many objects -> many tape\n"
      " switches: the tertiary path is 1-2 orders of magnitude slower,\n"
      " the paper's core argument for parity protection.)\n");
}

}  // namespace
}  // namespace ftms

int main() {
  ftms::bench::Banner("Rebuild mode (extension, Section 1's third mode)");
  ftms::OnlineRebuildRows();
  ftms::OfflineEstimates();
  return 0;
}
