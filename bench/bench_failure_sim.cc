// Failure-drill simulation for every scheme (Figures 3 and 5-7):
//
//  * SR / SG: a single disk failure — even mid-cycle — is fully masked.
//  * NC: the canonical transition scenario of Figures 6/7, swept over the
//    failed disk's position k, for both transition strategies; losses are
//    compared with the paper's switchover formula.
//  * IB: boundary vs mid-cycle failures (isolated hiccup claim).

#include <cstdio>

#include "bench/bench_util.h"
#include "sched/non_clustered_scheduler.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

constexpr int kC = 5;

// The canonical NC drill: streams staggered at positions 0..C-2 of their
// current group on cluster 0, one read slot per disk, disk `failed_index`
// fails, fresh streams keep entering the cluster. Returns total lost
// tracks.
int64_t NcDrill(NcTransition transition, int failed_index) {
  RigOptions options;
  options.nc_transition = transition;
  options.slots_per_disk = 1;
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, 10, options);
  int next_object = 0;
  auto add = [&] {
    rig.sched->AddStream(TestObject(2 * next_object++, 8)).value();
  };
  // Stagger C-2 streams to positions C-2 .. 1.
  for (int i = 0; i < kC - 2; ++i) {
    add();
    rig.sched->RunCycle();
  }
  rig.sched->OnDiskFailed(failed_index, /*mid_cycle=*/false);
  // One stream enters at the failure cycle and each cycle after.
  for (int i = 0; i < 4; ++i) {
    add();
    rig.sched->RunCycle();
  }
  rig.sched->RunCycles(24);
  return rig.sched->metrics().hiccups;
}

void SrSgDrill() {
  bench::Section("SR / SG: single failure masked (zero hiccups expected)");
  std::printf("%-22s %12s %12s %14s\n", "Scheme", "boundary", "mid-cycle",
              "reconstructed");
  for (Scheme scheme :
       {Scheme::kStreamingRaid, Scheme::kStaggeredGroup}) {
    int64_t hiccups[2];
    int64_t reconstructed = 0;
    for (int mid = 0; mid <= 1; ++mid) {
      SchedRig rig = MakeRig(scheme, kC, 10);
      rig.sched->AddStream(TestObject(0, 64)).value();
      rig.sched->AddStream(TestObject(2, 64)).value();
      rig.sched->RunCycles(3);
      rig.sched->OnDiskFailed(1, /*mid_cycle=*/mid == 1);
      rig.sched->RunCycles(300);
      hiccups[mid] = rig.sched->metrics().hiccups;
      reconstructed += rig.sched->metrics().reconstructed;
    }
    std::printf("%-22s %12lld %12lld %14lld\n",
                std::string(SchemeName(scheme)).c_str(),
                static_cast<long long>(hiccups[0]),
                static_cast<long long>(hiccups[1]),
                static_cast<long long>(reconstructed));
  }
}

void NcSweep() {
  bench::Section(
      "NC transition losses vs failed disk position (Figures 6/7)");
  std::printf(
      "Scenario: C=5, 1 slot/disk/cycle, streams at positions 0..3,\n"
      "fresh stream entering each cycle. Paper (Figure 6 narrative, disk\n"
      "k=2): immediate shift loses 6 tracks; deferred (Figure 7) loses\n"
      "Y2+Y3 plus the unreconstructable W2 = 3.\n\n");
  std::printf("%10s %18s %18s %22s\n", "failed k", "immediate (ours)",
              "deferred (ours)", "paper switchover sum");
  for (int k = 0; k < kC - 1; ++k) {
    const int64_t immediate = NcDrill(NcTransition::kImmediateShift, k);
    const int64_t deferred = NcDrill(NcTransition::kDeferredRead, k);
    // The paper's "blocks lost due to switchover" count for failure of
    // disk k (1-indexed in the paper): 1 + 2 + ... + (C - k).
    const int paper_k = k + 1;
    const int switchover = (kC - paper_k) * (kC - paper_k + 1) / 2;
    std::printf("%10d %18lld %18lld %22d\n", k,
                static_cast<long long>(immediate),
                static_cast<long long>(deferred), switchover);
  }
  std::printf(
      "\nInvariants: deferred <= immediate everywhere; the k=2 row\n"
      "reproduces the paper's example exactly (6 vs 3).\n");
}

void IbDrill() {
  bench::Section("IB: boundary vs mid-cycle failure (Section 4)");
  std::printf("%-34s %10s %14s\n", "Case", "hiccups", "parity reads");
  struct Case {
    const char* name;
    bool mid_cycle;
    bool prefetch;
  };
  for (const Case c : {Case{"boundary failure", false, false},
                       Case{"mid-cycle failure", true, false},
                       Case{"mid-cycle + parity prefetch", true, true}}) {
    RigOptions options;
    options.ib_prefetch_parity = c.prefetch;
    SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, 8, options);
    rig.sched->AddStream(TestObject(0, 64)).value();
    // After 2 cycles the stream's next read is on cluster 0 (disk 0):
    // the failure strikes a disk with reads in flight.
    rig.sched->RunCycles(2);
    rig.sched->OnDiskFailed(0, c.mid_cycle);
    rig.sched->RunCycles(40);
    std::printf("%-34s %10lld %14lld\n", c.name,
                static_cast<long long>(rig.sched->metrics().hiccups),
                static_cast<long long>(rig.sched->metrics().parity_reads));
  }
  std::printf(
      "(Paper: one isolated hiccup per affected stream for a mid-cycle\n"
      " failure; none at a boundary; the \"sophisticated scheduler\"\n"
      " prefetching parity masks even mid-cycle failures.)\n");
}

}  // namespace
}  // namespace ftms

int main() {
  ftms::bench::Banner(
      "Failure drills — degraded-mode behavior of all four schemes");
  ftms::SrSgDrill();
  ftms::NcSweep();
  ftms::IbDrill();
  return 0;
}
