#include "bench/bench_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "parity/pq_kernels.h"
#include "parity/xor_kernels.h"
#include "qos/event_journal.h"
#include "sim/event_queue.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/thread_pool.h"
#include "util/timeseries.h"
#include "util/trace_event.h"

namespace ftms::bench {
namespace {

// Formats a double compactly without losing round-trip precision for the
// magnitudes benches produce (counts, seconds, rates).
void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

}  // namespace

void Reporter::Set(const std::string& key, double value) {
  for (auto& [k, v] : metrics_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(key, value);
}

std::string Reporter::WriteJson() const {
  if (const char* enabled = std::getenv("FTMS_BENCH_JSON")) {
    if (std::strcmp(enabled, "0") == 0) return "";
  }
  std::string dir = ".";
  if (const char* env_dir = std::getenv("FTMS_BENCH_JSON_DIR")) {
    if (env_dir[0] != '\0') dir = env_dir;
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";

  MetricsRegistry* registry = MetricsRegistry::GlobalIfEnabled();
  Tracer* tracer = Tracer::GlobalIfEnabled();
  EventJournal* journal = EventJournal::GlobalIfEnabled();
  TimeSeriesRecorder* timeseries = TimeSeriesRecorder::GlobalIfEnabled();
  const bool prof = Profiler::GlobalEnabled();
  // Writing a report is a serial point: fold worker scope trees first so
  // the embedded profile sees everything.
  if (prof) Profiler::FoldAtSyncPoint();

  std::string json = "{\n  \"bench\": \"" + name_ + "\",\n";
  json += "  \"schema_version\": " + std::to_string(kSchemaVersion) + ",\n";
  // Environment stamp: anything that changes what the timings mean.
  json += "  \"env\": {\n";
  json += "    \"threads\": " +
          std::to_string(ThreadPool::DefaultThreadCount()) + ",\n";
  json += std::string("    \"metrics_enabled\": ") +
          (registry != nullptr ? "true" : "false") + ",\n";
  json += std::string("    \"trace_enabled\": ") +
          (tracer != nullptr ? "true" : "false") + ",\n";
  json += std::string("    \"qos_enabled\": ") +
          (journal != nullptr ? "true" : "false") + ",\n";
  json += std::string("    \"prof_enabled\": ") + (prof ? "true" : "false") +
          ",\n";
  json += std::string("    \"timeseries_enabled\": ") +
          (timeseries != nullptr ? "true" : "false") + ",\n";
  json += std::string("    \"xor_kernel\": \"") + ActiveXorKernelName() +
          "\",\n";
  json += std::string("    \"pq_kernel\": \"") + ActivePqKernelName() +
          "\",\n";
  json += std::string("    \"event_queue\": \"") +
          (EventQueueKindFromEnv() == EventQueueKind::kHeap ? "heap"
                                                            : "calendar") +
          "\"\n";
  json += "  },\n";
  json += "  \"metrics\": {\n";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    json += "    \"" + metrics_[i].first + "\": ";
    AppendNumber(&json, metrics_[i].second);
    json += i + 1 < metrics_.size() ? ",\n" : "\n";
  }
  json += "  }";
  if (registry != nullptr) {
    json += ",\n  \"registry\": ";
    json += registry->JsonObject("    ", "  ");
  }
  if (journal != nullptr) {
    json += ",\n  \"qos\": ";
    json += journal->StatsJson("    ", "  ");
  }
  if (prof) {
    json += ",\n  \"profile\": ";
    json += Profiler::SnapshotJson();
  }
  if (timeseries != nullptr) {
    json += ",\n  \"timeseries\": ";
    json += timeseries->SummaryJson("    ", "  ");
  }
  json += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return "";
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  if (registry != nullptr) {
    if (const char* out = std::getenv("FTMS_METRICS_OUT")) {
      if (out[0] != '\0' && registry->WritePrometheusFile(out).ok()) {
        std::printf("wrote %s\n", out);
      }
    }
  }
  if (tracer != nullptr) {
    if (const char* out = std::getenv("FTMS_TRACE_OUT")) {
      if (out[0] != '\0' && tracer->WriteChromeJson(out).ok()) {
        std::printf("wrote %s\n", out);
      }
    }
  }
  if (journal != nullptr) {
    if (const char* out = std::getenv("FTMS_QOS_OUT")) {
      if (out[0] != '\0' && journal->WriteJsonl(out).ok()) {
        std::printf("wrote %s\n", out);
      }
    }
  }
  if (prof) {
    if (const char* out = std::getenv("FTMS_PROF_OUT")) {
      if (out[0] != '\0' && Profiler::WriteJson(out).ok()) {
        std::printf("wrote %s\n", out);
      }
    }
  }
  if (timeseries != nullptr) {
    if (const char* out = std::getenv("FTMS_TIMESERIES_OUT")) {
      if (out[0] != '\0' && timeseries->WriteJson(out).ok()) {
        std::printf("wrote %s\n", out);
      }
    }
    if (const char* out = std::getenv("FTMS_TIMESERIES_CSV")) {
      if (out[0] != '\0' && timeseries->WriteCsv(out).ok()) {
        std::printf("wrote %s\n", out);
      }
    }
  }
  return path;
}

}  // namespace ftms::bench
