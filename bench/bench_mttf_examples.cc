// Regenerates every in-text reliability number of the paper (Sections 1,
// 2, 3 and 4) from equations (4)-(6).

#include <cstdio>

#include "bench/bench_util.h"
#include "model/reliability_model.h"
#include "util/units.h"

namespace {

void Row(const char* what, double ours, double paper, const char* unit) {
  std::printf("%-58s %12.1f %12.1f %8s %s\n", what, ours, paper,
              ftms::bench::Deviation(ours, paper).c_str(), unit);
}

}  // namespace

int main() {
  using namespace ftms;
  bench::Banner("In-text reliability examples (equations (4)-(6))");
  std::printf("%-58s %12s %12s %8s\n", "Quantity", "ours", "paper", "dev");

  // Section 1: 1000 disks -> some disk fails every ~12 days.
  Row("Mean time to first failure, 1000 disks (days)",
      MeanTimeToFirstFailureHours(300000, 1000) / 24.0, 12.0, "days");

  // Section 2: SR, 1000 disks, C = 10 -> ~1100 years.
  SystemParameters big;
  big.num_disks = 1000;
  Row("SR catastrophe, D=1000, C=10 (years)",
      HoursToYears(
          MttfCatastrophicHours(big, Scheme::kStreamingRaid, 10).value()),
      1100.0, "years");

  // Section 5 quotes 1141 years for the same system.
  Row("  (same, against Section 5's 1141)",
      HoursToYears(
          MttfCatastrophicHours(big, Scheme::kStreamingRaid, 10).value()),
      1141.0, "years");

  // Section 4: IB exposure (2C-1) -> ~540 years.
  Row("IB catastrophe, D=1000, C=10 (years)",
      HoursToYears(
          MttfCatastrophicHours(big, Scheme::kImprovedBandwidth, 10)
              .value()),
      540.0, "years");

  // Section 3: 5 simultaneous failures among 1000 disks -> >250M years.
  Row("Degradation (K=5 concurrent), D=1000 (millions of years)",
      HoursToYears(KConcurrentFailuresMeanHours(300000, 1, 1000, 5)) / 1e6,
      250.0, "My");

  // Tables 2/3 reliability columns.
  SystemParameters table;
  bench::Section("Tables 2/3 reliability columns (D = 100, K = 3)");
  std::printf("%-58s %12s %12s %8s\n", "Quantity", "ours", "paper", "dev");
  Row("SR/SG/NC MTTF at C=5 (years)",
      HoursToYears(
          MttfCatastrophicHours(table, Scheme::kStreamingRaid, 5).value()),
      25684.9, "years");
  Row("IB MTTF at C=5 (years)",
      HoursToYears(
          MttfCatastrophicHours(table, Scheme::kImprovedBandwidth, 5)
              .value()),
      11415.0, "years");
  Row("SR/SG/NC MTTF at C=7 (years)",
      HoursToYears(
          MttfCatastrophicHours(table, Scheme::kStreamingRaid, 7).value()),
      17123.3, "years");
  Row("IB MTTF at C=7 (years)",
      HoursToYears(
          MttfCatastrophicHours(table, Scheme::kImprovedBandwidth, 7)
              .value()),
      7903.1, "years");
  Row("NC/IB MTTDS (years, K=3)",
      HoursToYears(MttdsHours(table, Scheme::kNonClustered, 5).value()),
      3176862.3, "years");
  std::printf(
      "\nNote: equation (6) drops a (K-1)! factor relative to the exact\n"
      "birth-death hitting time (validated by bench_reliability_sim);\n"
      "we report the paper's form here for comparability.\n");
  return 0;
}
