// Section 4's failure-pattern claim: "a Streaming RAID or disk-at-a-time
// system with K clusters can withstand up to K failures, as long as
// there is no more than one failure per cluster ... an improved
// bandwidth system with K clusters can possibly withstand up to K/2
// failures". This bench enumerates failure patterns exhaustively:
//  * all PAIRS of failed disks -> fraction that is catastrophic;
//  * the maximum set of simultaneous failures each scheme survives.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "layout/schemes.h"

namespace ftms {
namespace {

// Catastrophe predicates mirrored from the schedulers/reliability model.
bool ClusteredCatastrophic(int a, int b, int c) {
  return a / c == b / c;  // same C-disk cluster
}

bool IbCatastrophic(int a, int b, int c, int num_clusters) {
  const int per = c - 1;
  const int ca = a / per;
  const int cb = b / per;
  if (ca == cb) return true;
  const int diff = (ca - cb + num_clusters) % num_clusters;
  return diff == 1 || diff == num_clusters - 1;  // adjacent
}

void PairEnumeration(int c, int clusters) {
  const int d_clustered = c * clusters;
  const int d_ib = (c - 1) * clusters;
  int64_t fatal_sr = 0;
  int64_t total_sr = 0;
  for (int a = 0; a < d_clustered; ++a) {
    for (int b = a + 1; b < d_clustered; ++b) {
      ++total_sr;
      if (ClusteredCatastrophic(a, b, c)) ++fatal_sr;
    }
  }
  int64_t fatal_ib = 0;
  int64_t total_ib = 0;
  for (int a = 0; a < d_ib; ++a) {
    for (int b = a + 1; b < d_ib; ++b) {
      ++total_ib;
      if (IbCatastrophic(a, b, c, clusters)) ++fatal_ib;
    }
  }
  std::printf("%4d %8d %14.1f%% %14.1f%% %10.1fx\n", c, clusters,
              100.0 * static_cast<double>(fatal_sr) /
                  static_cast<double>(total_sr),
              100.0 * static_cast<double>(fatal_ib) /
                  static_cast<double>(total_ib),
              (static_cast<double>(fatal_ib) /
               static_cast<double>(total_ib)) /
                  (static_cast<double>(fatal_sr) /
                   static_cast<double>(total_sr)));
}

void MaxSurvivableSets(int c, int clusters) {
  // Clustered: one failure per cluster -> K survivable failures.
  const int sr_max = clusters;
  // IB: failed clusters must be pairwise non-adjacent on the ring ->
  // floor(K/2) clusters, one failure each.
  const int ib_max = clusters / 2;
  std::printf("%4d %8d %14d %14d   (paper: K vs K/2)\n", c, clusters,
              sr_max, ib_max);
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Section 4 — failure-pattern tolerance: clustered vs "
      "Improved-bandwidth");

  bench::Section("Catastrophic fraction over all failed-disk PAIRS");
  std::printf("%4s %8s %15s %15s %11s\n", "C", "clusters",
              "clustered fatal", "IB fatal", "IB/clust");
  for (int c : {5, 7, 10}) {
    for (int clusters : {10, 20}) {
      PairEnumeration(c, clusters);
    }
  }
  std::printf(
      "(The IB exposure ratio tracks the reliability equations: "
      "(3C-4)/(C-1)\n layout-exact, vs the paper's (2C-1)/(C-1).)\n");

  bench::Section(
      "Maximum simultaneous failures survivable (best-case placement)");
  std::printf("%4s %8s %14s %14s\n", "C", "clusters", "clustered", "IB");
  for (int c : {5, 10}) {
    for (int clusters : {10, 20}) {
      MaxSurvivableSets(c, clusters);
    }
  }
  std::printf(
      "\nMatches the paper: a clustered system with K clusters tolerates\n"
      "up to K spread-out failures; Improved-bandwidth only K/2 (failed\n"
      "clusters must not be ring-adjacent).\n");
  return 0;
}
