#ifndef FTMS_BENCH_BENCH_UTIL_H_
#define FTMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace ftms::bench {

// Shared formatting for the paper-reproduction harnesses: every bench
// prints a header naming the table/figure it regenerates, then rows of
// "paper vs measured" values.

inline void Banner(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Relative deviation as a percentage string, "n/a" when reference is 0.
inline std::string Deviation(double ours, double paper) {
  if (paper == 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                (ours - paper) / paper * 100.0);
  return buf;
}

}  // namespace ftms::bench

#endif  // FTMS_BENCH_BENCH_UTIL_H_
