// Event-engine microbenchmark: queue implementation x event mix.
//
// Sweeps both EventQueue implementations (binary heap oracle, calendar
// queue) across the three event mixes the simulations actually produce:
//
//   periodic     hundreds of periodic processes sharing a few distinct
//                periods — the cycle-driven server simulations, where
//                whole batches of events share one timestamp;
//   exponential  self-rescheduling chains with exponentially distributed
//                delays — the reliability/failure simulations;
//   mixed        both at once — failure injection riding on a cycle-driven
//                run (integration-style).
//
// Each cell reports events per wall-clock second. The bench doubles as a
// cross-implementation equivalence smoke: before timing, a seeded mixed
// workload is replayed on both queues and the pop order byte-compared —
// any divergence exits nonzero (so the perf_smoke CI label catches engine
// bugs, not just regressions).
//
// Writes BENCH_event_engine.json (schema v3; env.event_queue stamps the
// engine default under FTMS_EVENT_QUEUE).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace ftms {
namespace {

constexpr int64_t kEventsPerCell = 400000;

// Self-rescheduling exponential chain; the event capture is one pointer,
// so every hop stays inline (no allocation).
struct ExpChain {
  Simulator* sim;
  Rng rng;
  int64_t* budget;

  void Hop() {
    if (--*budget <= 0) return;
    sim->Schedule(rng.ExponentialMean(1.0), [this] { Hop(); });
  }
};

double RunPeriodic(EventQueueKind kind, int64_t events) {
  Simulator sim(kind);
  int64_t budget = events;
  for (int i = 0; i < 512; ++i) {
    const double period = 1.0 + 0.25 * static_cast<double>(i % 8);
    SchedulePeriodic(sim, 0.0, period, [&budget] { return --budget > 0; });
  }
  bench::WallTimer timer;
  sim.Run();
  return static_cast<double>(sim.events_processed()) / timer.Seconds();
}

double RunExponential(EventQueueKind kind, int64_t events) {
  Simulator sim(kind);
  int64_t budget = events;
  std::vector<ExpChain> chains;
  chains.reserve(256);
  for (uint64_t i = 0; i < 256; ++i) {
    chains.push_back(ExpChain{&sim, Rng(1000 + i), &budget});
  }
  for (ExpChain& chain : chains) {
    ExpChain* c = &chain;
    sim.Schedule(c->rng.ExponentialMean(1.0), [c] { c->Hop(); });
  }
  bench::WallTimer timer;
  sim.Run();
  return static_cast<double>(sim.events_processed()) / timer.Seconds();
}

double RunMixed(EventQueueKind kind, int64_t events) {
  Simulator sim(kind);
  int64_t periodic_budget = events / 2;
  int64_t exp_budget = events - periodic_budget;
  for (int i = 0; i < 256; ++i) {
    const double period = 1.0 + 0.25 * static_cast<double>(i % 8);
    SchedulePeriodic(sim, 0.0, period,
                     [&periodic_budget] { return --periodic_budget > 0; });
  }
  std::vector<ExpChain> chains;
  chains.reserve(64);
  for (uint64_t i = 0; i < 64; ++i) {
    chains.push_back(ExpChain{&sim, Rng(2000 + i), &exp_budget});
  }
  for (ExpChain& chain : chains) {
    ExpChain* c = &chain;
    sim.Schedule(c->rng.ExponentialMean(1.0), [c] { c->Hop(); });
  }
  bench::WallTimer timer;
  sim.Run();
  return static_cast<double>(sim.events_processed()) / timer.Seconds();
}

// Replays one seeded interleaved push/pop workload on both queues and
// compares the pop order exactly. Returns false on any divergence.
bool QueuesAgree() {
  Rng rng(8881);
  HeapEventQueue heap;
  CalendarEventQueue cal;
  uint64_t seq = 0;
  double clock = 0;
  for (int round = 0; round < 50000; ++round) {
    if (rng.NextDouble() < 0.55 || heap.empty()) {
      double t = clock;
      const double mix = rng.NextDouble();
      if (mix < 0.5) {
        t += static_cast<double>(rng.UniformInt(4));
      } else if (mix < 0.9) {
        t += rng.ExponentialMean(1.0);
      } else {
        t += 1e9 * rng.NextDouble();
      }
      heap.Push(EventRec{t, seq, [] {}});
      cal.Push(EventRec{t, seq, [] {}});
      ++seq;
    } else {
      EventRec a, b;
      heap.PopMin(&a);
      cal.PopMin(&b);
      if (a.time != b.time || a.seq != b.seq) return false;
      clock = a.time;
    }
  }
  while (!heap.empty()) {
    EventRec a, b;
    heap.PopMin(&a);
    if (!cal.PopMin(&b)) return false;
    if (a.time != b.time || a.seq != b.seq) return false;
  }
  return cal.empty();
}

int Main() {
  if (!QueuesAgree()) {
    std::fprintf(stderr,
                 "FAIL: calendar queue diverged from heap oracle\n");
    return 1;
  }
  std::printf("queue equivalence: heap == calendar on seeded mixed "
              "workload\n\n");

  struct Mix {
    const char* name;
    double (*run)(EventQueueKind, int64_t);
  };
  const Mix mixes[] = {
      {"periodic", RunPeriodic},
      {"exponential", RunExponential},
      {"mixed", RunMixed},
  };

  bench::Reporter reporter("event_engine");
  reporter.Set("events_per_cell", static_cast<double>(kEventsPerCell));
  std::printf("%-14s %16s %16s %8s\n", "mix", "heap ev/s", "calendar ev/s",
              "ratio");
  for (const Mix& mix : mixes) {
    // Warm each cell once (allocator + branch predictors), then measure.
    mix.run(EventQueueKind::kHeap, kEventsPerCell / 8);
    const double heap_rate = mix.run(EventQueueKind::kHeap, kEventsPerCell);
    mix.run(EventQueueKind::kCalendar, kEventsPerCell / 8);
    const double cal_rate =
        mix.run(EventQueueKind::kCalendar, kEventsPerCell);
    const double ratio = cal_rate / heap_rate;
    std::printf("%-14s %16.3e %16.3e %7.2fx\n", mix.name, heap_rate,
                cal_rate, ratio);
    reporter.Set(std::string("heap_") + mix.name + "_events_per_sec",
                 heap_rate);
    reporter.Set(std::string("calendar_") + mix.name + "_events_per_sec",
                 cal_rate);
    reporter.Set(std::string("calendar_vs_heap_") + mix.name, ratio);
  }
  reporter.WriteJson();
  return 0;
}

}  // namespace
}  // namespace ftms

int main() { return ftms::Main(); }
