// Parity kernel microbenchmark: per-kernel, per-group-size throughput of
// the multi-source XOR kernels (parity/xor_kernels.h) on reconstruct-
// shaped workloads — one ~50 KB destination block folded with C-1
// surviving sources, exactly what a degraded read or rebuild pass does.
// The pairwise-scalar rows are the pre-dispatch baseline (C-1 separate
// dst passes); the multi-source rows make ONE pass over dst. Also
// cross-checks every runnable kernel against scalar byte for byte (any
// divergence is a hard failure: XOR is exact, kernels may differ only
// in speed).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "parity/gf256.h"
#include "parity/pq_kernels.h"
#include "parity/xor_kernels.h"

namespace ftms {
namespace {

// One track approximately the paper's Table 1 granularity (~50 KB).
// Deliberately not a multiple of the widest vector width so every kernel
// exercises its tail path.
constexpr size_t kBlockBytes = 50 * 1024 + 40;
constexpr int kReps = 400;

// Group sizes to sweep: nsrc = C-1 surviving sources for cluster sizes
// C in {3, 5, 8} plus the paper's default C=5 midpoint.
constexpr int kSourceCounts[] = {2, 4, 7};

// Deterministic pseudo-random fill (same seeds every run, so the
// cross-kernel check is reproducible).
void FillBlock(std::vector<uint8_t>* block, uint64_t seed) {
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (uint8_t& b : *block) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<uint8_t>(x);
  }
}

// Memory traffic of one fused fold: nsrc source reads + dst read + dst
// write. The pairwise baseline touches dst 2*nsrc times instead of 2.
double GigabytesPerSecond(double bytes_moved, double seconds) {
  return bytes_moved / seconds / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Parity kernels: multi-source XOR throughput by kernel and group "
      "size (50 KB blocks)");

  std::printf("dispatched kernel: %s\n", ActiveXorKernelName());
  for (const XorKernelMeasurement& m : XorKernelSelectionReport()) {
    std::printf("  %-8s %-11s %8.1f GB/s%s\n", m.name,
                m.supported ? "runnable" : "unsupported", m.gb_per_s,
                m.selected ? "  <- selected" : "");
  }

  bench::Reporter report("parity_kernels");

  std::vector<std::vector<uint8_t>> sources(kMaxXorSources);
  for (int i = 0; i < kMaxXorSources; ++i) {
    sources[static_cast<size_t>(i)].resize(kBlockBytes);
    FillBlock(&sources[static_cast<size_t>(i)],
              static_cast<uint64_t>(i) + 1);
  }
  std::vector<uint8_t> dst(kBlockBytes);
  std::vector<uint8_t> reference(kBlockBytes);
  std::vector<const uint8_t*> srcs;

  const XorKernel* scalar = FindXorKernel("scalar").value();

  for (int nsrc : kSourceCounts) {
    bench::Section("group fold, nsrc = " + std::to_string(nsrc) +
                   " sources");
    srcs.clear();
    for (int i = 0; i < nsrc; ++i) {
      srcs.push_back(sources[static_cast<size_t>(i)].data());
    }

    // Baseline: what the datapath did before multi-source kernels — a
    // separate pairwise scalar pass per source, re-reading and
    // re-writing dst each time.
    {
      FillBlock(&dst, 99);
      bench::WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        for (int i = 0; i < nsrc; ++i) {
          scalar->xor_n(dst.data(), &srcs[static_cast<size_t>(i)], 1,
                        kBlockBytes);
        }
      }
      const double s = timer.Seconds();
      // Pairwise traffic: per source, read src + read dst + write dst.
      const double bytes = static_cast<double>(kReps) * 3.0 * nsrc *
                           static_cast<double>(kBlockBytes);
      const double gbps = GigabytesPerSecond(bytes, s);
      std::printf("  %-18s %8.2f GB/s  (%d dst passes)\n",
                  "pairwise_scalar", gbps, nsrc);
      report.Set("pairwise_scalar_n" + std::to_string(nsrc) + "_gbps",
                 gbps);
    }

    // Ground truth for the cross-kernel check, from the scalar kernel.
    FillBlock(&reference, 99);
    scalar->xor_n(reference.data(), srcs.data(), nsrc, kBlockBytes);

    for (const XorKernel& kernel : CompiledXorKernels()) {
      if (!kernel.supported()) continue;
      FillBlock(&dst, 99);
      kernel.xor_n(dst.data(), srcs.data(), nsrc, kBlockBytes);
      if (std::memcmp(dst.data(), reference.data(), kBlockBytes) != 0) {
        std::printf("ERROR: kernel %s diverges from scalar at nsrc=%d\n",
                    kernel.name, nsrc);
        return 1;
      }
      bench::WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        kernel.xor_n(dst.data(), srcs.data(), nsrc, kBlockBytes);
      }
      const double s = timer.Seconds();
      // Fused traffic: nsrc source reads + one dst read + one dst write.
      const double bytes = static_cast<double>(kReps) *
                           static_cast<double>(nsrc + 2) *
                           static_cast<double>(kBlockBytes);
      const double gbps = GigabytesPerSecond(bytes, s);
      std::printf("  %-18s %8.2f GB/s  (1 dst pass)%s\n", kernel.name,
                  gbps,
                  &kernel == &ActiveXorKernel() ? "  <- dispatched" : "");
      report.Set(std::string(kernel.name) + "_n" + std::to_string(nsrc) +
                     "_gbps",
                 gbps);
    }
  }

  // ---- P+Q (RAID-6) syndrome kernels: same sweep shape, both parities
  // computed in one fused pass per kernel. The pairwise_scalar baseline
  // is the byte-at-a-time GF table path taken one source at a time — what
  // a naive RAID-6 implementation does.
  bench::Banner(
      "P+Q syndrome kernels: fused GF(2^8) throughput by kernel and "
      "group size");
  std::printf("dispatched pq kernel: %s\n", ActivePqKernelName());
  for (const PqKernelMeasurement& m : PqKernelSelectionReport()) {
    std::printf("  %-8s %-11s %8.1f GB/s%s\n", m.name,
                m.supported ? "runnable" : "unsupported", m.gb_per_s,
                m.selected ? "  <- selected" : "");
  }

  std::vector<uint8_t> p(kBlockBytes);
  std::vector<uint8_t> q(kBlockBytes);
  std::vector<uint8_t> p_ref(kBlockBytes);
  std::vector<uint8_t> q_ref(kBlockBytes);
  uint8_t coeffs[kMaxPqSources];
  for (int i = 0; i < kMaxPqSources; ++i) {
    coeffs[i] = gf256::Exp(i);
  }

  const PqKernel* pq_scalar = FindPqKernel("scalar").value();
  double scalar_gbps[kMaxPqSources + 1] = {0};

  for (int nsrc : kSourceCounts) {
    bench::Section("P+Q syndrome, k = " + std::to_string(nsrc) +
                   " data sources");
    srcs.clear();
    for (int i = 0; i < nsrc; ++i) {
      srcs.push_back(sources[static_cast<size_t>(i)].data());
    }

    // Baseline: one scalar table pass PER SOURCE (p and q re-read and
    // re-written every pass).
    {
      std::fill(p.begin(), p.end(), 0);
      std::fill(q.begin(), q.end(), 0);
      bench::WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        for (int i = 0; i < nsrc; ++i) {
          pq_scalar->pq(p.data(), q.data(),
                        &srcs[static_cast<size_t>(i)],
                        &coeffs[static_cast<size_t>(i)], 1, kBlockBytes);
        }
      }
      const double s = timer.Seconds();
      // Per source: read src + read/write p + read/write q.
      const double bytes = static_cast<double>(kReps) * 5.0 * nsrc *
                           static_cast<double>(kBlockBytes);
      const double gbps = GigabytesPerSecond(bytes, s);
      std::printf("  %-18s %8.2f GB/s  (%d p/q passes)\n",
                  "pairwise_scalar", gbps, nsrc);
      report.Set("pq_pairwise_scalar_n" + std::to_string(nsrc) + "_gbps",
                 gbps);
    }

    // Ground truth from the scalar kernel's fused pass.
    std::fill(p_ref.begin(), p_ref.end(), 0);
    std::fill(q_ref.begin(), q_ref.end(), 0);
    pq_scalar->pq(p_ref.data(), q_ref.data(), srcs.data(), coeffs, nsrc,
                  kBlockBytes);

    for (const PqKernel& kernel : CompiledPqKernels()) {
      if (!kernel.supported()) continue;
      std::fill(p.begin(), p.end(), 0);
      std::fill(q.begin(), q.end(), 0);
      kernel.pq(p.data(), q.data(), srcs.data(), coeffs, nsrc,
                kBlockBytes);
      if (std::memcmp(p.data(), p_ref.data(), kBlockBytes) != 0 ||
          std::memcmp(q.data(), q_ref.data(), kBlockBytes) != 0) {
        std::printf(
            "ERROR: pq kernel %s diverges from scalar at k=%d\n",
            kernel.name, nsrc);
        return 1;
      }
      bench::WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        kernel.pq(p.data(), q.data(), srcs.data(), coeffs, nsrc,
                  kBlockBytes);
      }
      const double s = timer.Seconds();
      // Fused traffic: nsrc source reads + read/write p + read/write q.
      const double bytes = static_cast<double>(kReps) *
                           static_cast<double>(nsrc + 4) *
                           static_cast<double>(kBlockBytes);
      const double gbps = GigabytesPerSecond(bytes, s);
      const bool is_scalar = std::strcmp(kernel.name, "scalar") == 0;
      if (is_scalar) scalar_gbps[nsrc] = gbps;
      std::string note;
      if (!is_scalar && scalar_gbps[nsrc] > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "  %.1fx scalar",
                      gbps / scalar_gbps[nsrc]);
        note = buf;
      }
      std::printf("  %-18s %8.2f GB/s  (1 fused pass)%s%s\n", kernel.name,
                  gbps, note.c_str(),
                  &kernel == &ActivePqKernel() ? "  <- dispatched" : "");
      report.Set("pq_" + std::string(kernel.name) + "_n" +
                     std::to_string(nsrc) + "_gbps",
                 gbps);
    }
  }

  // The dispatchers' own startup measurements, for the perf trajectory.
  for (const XorKernelMeasurement& m : XorKernelSelectionReport()) {
    if (!m.supported) continue;
    report.Set(std::string("dispatch_") + m.name + "_gbps", m.gb_per_s);
    if (m.selected) report.Set("dispatch_selected_gbps", m.gb_per_s);
  }
  for (const PqKernelMeasurement& m : PqKernelSelectionReport()) {
    if (!m.supported) continue;
    report.Set(std::string("pq_dispatch_") + m.name + "_gbps",
               m.gb_per_s);
    if (m.selected) report.Set("pq_dispatch_selected_gbps", m.gb_per_s);
  }

  report.WriteJson();
  std::printf(
      "\nReading: pairwise_scalar is the old datapath (one full pass over\n"
      "the destination per source); every other row folds all sources in\n"
      "one pass. GB/s counts memory traffic, so at equal wall time the\n"
      "fused rows already score ~(n+2)/3n of pairwise — any further gap\n"
      "is vectorization. All kernels are byte-identical by construction\n"
      "(checked above); FTMS_XOR_KERNEL / FTMS_PQ_KERNEL pin the\n"
      "dispatch. The P+Q rows compute BOTH RAID-6 syndromes per pass;\n"
      "the xN annotations are the vectorization speedup over the fused\n"
      "scalar GF table kernel.\n");
  return 0;
}
