// Ablation: why stripe every object over ALL clusters (Section 2's
// round-robin group allocation)? Compare the striped clustered layout
// against a non-striped ablation (each title pinned to its home cluster)
// under a Zipf-skewed audience: striping turns a hot title's load into a
// wave that visits every disk, while pinning melts one cluster.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "disk/disk_array.h"
#include "layout/layout.h"
#include "sched/cycle_scheduler.h"
#include "stream/workload.h"
#include "tests/sched_test_util.h"
#include "util/units.h"

namespace ftms {
namespace {

constexpr int kC = 5;
constexpr int kDisks = 20;
constexpr int kCycles = 200;

struct Result {
  int64_t dropped = 0;
  int64_t hiccups = 0;
  double load_ratio = 0;  // max/mean tracks read per data disk
};

Result Run(bool striped) {
  std::unique_ptr<Layout> layout;
  if (striped) {
    layout = std::move(
        CreateLayout(Scheme::kNonClustered, kDisks, kC).value());
  } else {
    layout = std::move(NonStripedLayout::Create(kDisks, kC).value());
  }
  DiskParameters disk;
  auto disks = std::make_unique<DiskArray>(std::move(
      DiskArray::Create(kDisks, layout->disks_per_cluster(), disk)
          .value()));
  SchedulerConfig config;
  config.scheme = Scheme::kNonClustered;
  config.parity_group_size = kC;
  config.disk = disk;
  auto sched =
      std::move(CreateScheduler(config, disks.get(), layout.get()).value());

  // A Zipf-skewed audience over 8 titles: most viewers watch title 0.
  WorkloadConfig wconfig;
  wconfig.zipf_theta = 1.2;
  wconfig.seed = 21;
  ZipfDistribution popularity(8, wconfig.zipf_theta);
  Rng rng(wconfig.seed);
  for (int i = 0; i < 100; ++i) {
    const int title = popularity.Sample(rng);
    sched->AddStream(TestObject(title, 4000)).value();
    if (i % 4 == 3) sched->RunCycle();  // stagger positions
  }
  sched->RunCycles(kCycles);

  Result result;
  result.dropped = sched->metrics().dropped_reads;
  result.hiccups = sched->metrics().hiccups;
  int64_t max_reads = 0;
  int64_t total = 0;
  int data_disks = 0;
  for (int d = 0; d < kDisks; ++d) {
    if (d % kC == kC - 1) continue;  // parity disks idle in normal mode
    const int64_t reads = disks->disk(d).tracks_read();
    max_reads = std::max(max_reads, reads);
    total += reads;
    ++data_disks;
  }
  result.load_ratio =
      total > 0 ? static_cast<double>(max_reads) /
                      (static_cast<double>(total) / data_disks)
                : 0;
  return result;
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Ablation — striping vs pinning objects to one cluster "
      "(Zipf-1.2 audience, 100 viewers, 8 titles, 20 disks)");
  std::printf("%-22s %10s %10s %18s\n", "Layout", "drops", "hiccups",
              "max/mean disk load");
  const Result striped = Run(true);
  const Result pinned = Run(false);
  std::printf("%-22s %10lld %10lld %18.2f\n", "striped (paper)",
              static_cast<long long>(striped.dropped),
              static_cast<long long>(striped.hiccups),
              striped.load_ratio);
  std::printf("%-22s %10lld %10lld %18.2f\n", "pinned (ablation)",
              static_cast<long long>(pinned.dropped),
              static_cast<long long>(pinned.hiccups), pinned.load_ratio);
  std::printf(
      "\nStriping keeps every data disk near the mean load even with a\n"
      "heavily skewed audience; pinning concentrates the hot title on one\n"
      "cluster, overloading its disks (deadline misses) while the rest of\n"
      "the farm idles — Section 2's rationale for striping \"over all the\n"
      "data disks\".\n");
  return 0;
}
