// The Improved-bandwidth shift-to-the-right under load (Section 4):
// sweep the per-disk idle capacity (the K_IB reservation) and measure
// whether a disk failure is masked, how far the shift cascades, and when
// degradation of service occurs.

#include <cstdio>

#include "bench/bench_util.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

constexpr int kC = 5;
constexpr int kClusters = 6;
constexpr int kDisks = (kC - 1) * kClusters;

// Runs `streams_per_cluster` streams per cluster with `slots` read slots
// per disk per cycle, fails one disk, and reports the outcome.
void RunPoint(int streams_per_cluster, int slots) {
  RigOptions options;
  options.slots_per_disk = slots;
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks, options);
  // Objects i = 0..kClusters-1 have home clusters 0..kClusters-1; giving
  // every cluster the same stream population books each disk with
  // streams_per_cluster reads per cycle.
  for (int s = 0; s < streams_per_cluster; ++s) {
    for (int cl = 0; cl < kClusters; ++cl) {
      rig.sched->AddStream(TestObject(cl, 400)).value();
    }
  }
  rig.sched->RunCycles(3);
  rig.sched->OnDiskFailed(0, /*mid_cycle=*/false);
  rig.sched->RunCycles(30);
  const SchedulerMetrics& m = rig.sched->metrics();
  const double load =
      static_cast<double>(streams_per_cluster) / slots * 100.0;
  std::printf("%10d %8d %7.0f%% %10lld %12lld %12lld %10lld\n",
              streams_per_cluster, slots, load,
              static_cast<long long>(m.shift_cascades),
              static_cast<long long>(m.max_shift_depth),
              static_cast<long long>(m.degradation_events),
              static_cast<long long>(m.hiccups));
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Improved-bandwidth shift-to-the-right vs idle capacity "
      "(Section 4)");
  std::printf(
      "6 clusters of 4 disks; each cluster serves N streams/cycle against\n"
      "S slots/disk. Idle capacity = S - N is the K_IB reservation.\n\n");
  std::printf("%10s %8s %8s %10s %12s %12s %10s\n", "streams/cl", "slots",
              "load", "cascades", "max depth", "degradation", "hiccups");
  for (int streams = 1; streams <= 4; ++streams) {
    RunPoint(streams, 4);
  }
  std::printf(
      "\nReading: at <100%% load the substituted parity reads fit into\n"
      "idle slots (no cascades, no losses). At exactly 100%% load every\n"
      "parity read displaces a local read and the shift wraps the whole\n"
      "ring without finding capacity: degradation of service, as the\n"
      "paper predicts for a system running at capacity with no idle\n"
      "slots.\n");
  return 0;
}
