// Full-scale farm simulation at the paper's Table 1 size (D = 100,
// ~1000 concurrent streams): the schedulers run the real per-cycle
// machinery at scale, a disk fails mid-run, and the run must confirm
// the analytical capacity, buffer and masking results hold at full
// population — not just on the scaled-down test rigs.

#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "model/buffers.h"
#include "model/capacity.h"
#include "tests/sched_test_util.h"
#include "util/thread_pool.h"

namespace ftms {
namespace {

// Perf-trajectory counters accumulated across the five farm runs.
// Passed through RunFarm (no file-scope state) so the suite can be run
// several times in one process — e.g. sweeping FTMS_THREADS settings —
// with independent totals.
struct FarmTotals {
  int64_t cycles = 0;
  int64_t reads = 0;
  int64_t tracks = 0;
};

void RunFarm(Scheme scheme, int c, int disks, int streams,
             int stagger_every, FarmTotals* totals) {
  SchedRig rig = MakeRig(scheme, c, disks);
  const int clusters = rig.layout->num_clusters();
  for (int i = 0; i < streams; ++i) {
    rig.sched->AddStream(TestObject(i % clusters, 100000)).value();
    // NC balances by stream POSITION, which is set by the start cycle:
    // admit in slot-sized groups, one cycle apart.
    if (stagger_every > 0 && i % stagger_every == stagger_every - 1) {
      rig.sched->RunCycle();
    }
  }
  rig.sched->RunCycles(30);
  const int64_t drops_healthy = rig.sched->metrics().dropped_reads;
  const int64_t hiccups_healthy = rig.sched->metrics().hiccups;
  rig.sched->OnDiskFailed(1, /*mid_cycle=*/false);
  rig.sched->RunCycles(30);
  rig.sched->OnDiskRepaired(1);
  rig.sched->RunCycles(10);

  const SchedulerMetrics& m = rig.sched->metrics();
  totals->cycles += m.cycles;
  totals->reads += m.data_reads + m.parity_reads + m.failed_reads;
  totals->tracks += m.tracks_delivered;
  SystemParameters p;
  p.num_disks = disks;
  const double analytic_buffer =
      TotalBufferTracks(p, scheme, c).value_or(0) *
      static_cast<double>(streams) /
      static_cast<double>(MaxStreams(p, scheme, c).value_or(1));
  std::printf(
      "%-22s %8d %8lld %10lld %12lld %12lld %14.0f %14lld\n",
      std::string(SchemeName(scheme)).c_str(), streams,
      static_cast<long long>(drops_healthy),
      static_cast<long long>(hiccups_healthy),
      static_cast<long long>(m.hiccups - hiccups_healthy),
      static_cast<long long>(m.reconstructed),
      analytic_buffer,
      static_cast<long long>(rig.sched->buffer_pool().peak_in_use()));
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Full-scale farm (Table 1: D = 100, C = 5, ~1000 streams), one "
      "disk failure mid-run");
  std::printf(
      "%-22s %8s %8s %10s %12s %12s %14s %14s\n", "Scheme", "streams",
      "drops", "hiccups0", "hiccupsF", "reconstr", "buf(analytic)",
      "buf(measured)");
  // Realizable capacities (integral slot granularity, see
  // sched_capacity_test): SR 1040 of 1041, NC 960 of 966, SG ~960,
  // IB on 96 disks.
  FarmTotals totals;
  bench::WallTimer timer;
  RunFarm(Scheme::kStreamingRaid, 5, 100, 1040, 0, &totals);
  RunFarm(Scheme::kStaggeredGroup, 5, 100, 960, 0, &totals);
  RunFarm(Scheme::kNonClustered, 5, 100, 960, 12, &totals);
  RunFarm(Scheme::kImprovedBandwidth, 5, 96, 960, 0, &totals);
  RunFarm(Scheme::kImprovedBandwidth, 5, 96, 1200, 0, &totals);
  const double wall_s = timer.Seconds();
  std::printf(
      "\n%lld scheduler cycles / %lld disk reads in %.3f s "
      "(%.0f cycles/s, %.2e reads/s) at %d worker thread(s)\n",
      static_cast<long long>(totals.cycles),
      static_cast<long long>(totals.reads), wall_s,
      static_cast<double>(totals.cycles) / wall_s,
      static_cast<double>(totals.reads) / wall_s,
      ThreadPool::DefaultThreadCount());
  bench::Reporter report("full_farm");
  report.Set("cycles", static_cast<double>(totals.cycles));
  report.Set("reads", static_cast<double>(totals.reads));
  report.Set("tracks_delivered", static_cast<double>(totals.tracks));
  report.Set("threads", static_cast<double>(ThreadPool::DefaultThreadCount()));
  report.Set("wall_s", wall_s);
  report.Set("cycles_per_sec", static_cast<double>(totals.cycles) / wall_s);
  report.Set("events_per_sec", static_cast<double>(totals.reads) / wall_s);
  report.WriteJson();
  std::printf(
      "\nReading: at admission-controlled load no reads drop and no\n"
      "stream hiccups before the failure; SR/SG mask the failure\n"
      "entirely (hiccupsF = 0), NC loses only the transition tracks of\n"
      "mid-group streams. IB masks the failure while idle slots cover\n"
      "the neighbor cluster's parity reads (960 streams = 40/cluster,\n"
      "12 idle slots/disk) but at 1200 streams (50/cluster, 2 idle) the\n"
      "shift finds too little capacity and tracks drop — Section 4's\n"
      "capacity-reservation argument, live. Measured buffer peaks track\n"
      "equations (12)-(15) scaled to the admitted population (SG sits\n"
      "above its equation by the overlap-cycle convention).\n");
  return 0;
}
