// Regenerates Table 3 of the paper (scheme comparison at parity group
// size C = 7, Table 1 parameters).

#include <cstdio>

#include "bench/bench_util.h"
#include "model/tables.h"

int main() {
  using namespace ftms;
  bench::Banner(
      "Table 3 — Results with C = 7 (D = 100, Table 1 parameters, K = 3)");
  SystemParameters params;
  const auto rows = ComputeComparisonTable(params, 7).value();
  std::printf("%s",
              FormatComparisonTableWithPaper(rows, PaperTable3()).c_str());

  bench::Section("C = 5 vs C = 7 tradeoff (Section 5)");
  const auto rows5 = ComputeComparisonTable(params, 5).value();
  std::printf(
      "Larger groups cut the storage/bandwidth overhead (20%% -> 14.3%%)\n"
      "and add streams, but cost reliability and buffers:\n");
  std::printf("%-22s %10s %10s %14s %14s\n", "Scheme", "streams C5",
              "streams C7", "buffers C5", "buffers C7");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-22s %10d %10d %14.0f %14.0f\n",
                std::string(SchemeName(rows[i].scheme)).c_str(),
                rows5[i].streams, rows[i].streams, rows5[i].buffer_tracks,
                rows[i].buffer_tracks);
  }
  return 0;
}
