// Regenerates Table 2 of the paper (scheme comparison at parity group
// size C = 5, Table 1 parameters) from the analytical model, and
// cross-checks the scheme mechanics with a scaled-down simulation:
// per-stream buffer peaks and single-failure masking behavior.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/buffers.h"
#include "model/tables.h"
#include "server/server.h"

namespace ftms {
namespace {

void SimulationCrossCheck(int c) {
  bench::Section("Simulation cross-check (scaled farm, C = " +
                 std::to_string(c) + ")");
  std::printf(
      "%-22s %16s %18s %22s\n", "Scheme", "buffers/stream",
      "analytic (norm.)", "hiccups after 1 fail");
  for (Scheme scheme : kAllSchemes) {
    ServerConfig config;
    config.scheme = scheme;
    config.parity_group_size = c;
    config.params.num_disks =
        (scheme == Scheme::kImprovedBandwidth ? (c - 1) : c) * 4;
    config.params.k_reserve = 2;
    auto server = std::move(MultimediaServer::Create(config).value());
    MediaObject obj;
    obj.id = 0;
    obj.rate_mb_s = config.params.object_rate_mb_s;
    obj.num_tracks = 40L * (c - 1);
    server->AddObject(obj).ok();
    constexpr int kStreams = 4;
    for (int i = 0; i < kStreams; ++i) server->StartStream(0).value();
    server->RunCycles(5);
    // Fail one data disk at a cycle boundary mid-run.
    server->FailDisk(0).ok();
    server->RunCycles(40L * (c - 1) * 2);
    const double per_stream =
        static_cast<double>(
            server->scheduler().buffer_pool().peak_in_use()) /
        kStreams;
    std::printf("%-22s %16.2f %18.2f %22lld\n",
                std::string(SchemeName(scheme)).c_str(), per_stream,
                BuffersPerStreamNormal(scheme, c),
                static_cast<long long>(
                    server->scheduler().metrics().hiccups));
  }
  std::printf(
      "(SR/SG mask the failure completely; NC loses only mid-group\n"
      " tracks; IB masks boundary failures — Sections 2-4.)\n");
}

}  // namespace
}  // namespace ftms

int main() {
  using namespace ftms;
  bench::Banner(
      "Table 2 — Results with C = 5 (D = 100, Table 1 parameters, K = 3)");
  SystemParameters params;
  const auto rows = ComputeComparisonTable(params, 5).value();
  std::printf("%s",
              FormatComparisonTableWithPaper(rows, PaperTable2()).c_str());
  std::printf(
      "\nNote: the paper prints 5.0%% IB bandwidth overhead (K=5) while\n"
      "every other NC/IB entry of Tables 2/3 follows K=3; we report the\n"
      "K=3-consistent value (DESIGN.md §4).\n");
  SimulationCrossCheck(5);
  return 0;
}
