// Ablation: the cycle-sweep seek optimization (Section 2's motivation
// for cycle-based scheduling). Compares the paper's swept-cycle capacity
// against a FIFO scheduler paying a per-request seek, across k' and
// object rates.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/ablation.h"
#include "model/capacity.h"
#include "util/units.h"

int main() {
  using namespace ftms;
  bench::Banner(
      "Ablation — seek-optimized cycles vs FIFO per-request seeks");
  std::printf(
      "Table 1 disk. FIFO charges an average seek (1/3 full stroke) per\n"
      "track; the sweep charges one full-stroke seek per cycle.\n\n");

  for (double rate : {kMpeg1RateMbS, kMpeg2RateMbS}) {
    SystemParameters p;
    p.object_rate_mb_s = rate;
    bench::Section(rate == kMpeg1RateMbS ? "b_o = 1.5 Mb/s (MPEG-1)"
                                         : "b_o = 4.5 Mb/s (MPEG-2)");
    std::printf("%6s %14s %14s %10s\n", "k'", "sweep N/D'", "FIFO N/D'",
                "gain");
    const double fifo = StreamsPerDataDiskFifo(p);
    for (int k_prime : {1, 2, 4, 6, 9}) {
      std::printf("%6d %14.2f %14.2f %9.2fx\n", k_prime,
                  StreamsPerDataDisk(p, k_prime), fifo,
                  SweepGainOverFifo(p, k_prime));
    }
  }

  bench::Section("Worst case: naive FIFO paying the full stroke");
  SystemParameters p;
  std::printf(
      "gain at k' = 4: %.2fx — \"otherwise a significant portion of disk\n"
      "bandwidth could be lost\" (Section 2).\n",
      SweepGainOverFifo(p, 4, /*seek_fraction=*/1.0));
  return 0;
}
