// Regenerates Figure 9(a): total storage cost (disks to hold the working
// set W + main-memory buffers at the maximum stream load) as a function
// of the parity group size, for all four schemes, plus the worked design
// examples at the end of Section 5.
//
// Prices are calibrated (c_d = 1 $/MB disk, c_b = 75 $/MB memory) so the
// paper's anchor point — "supporting ~1200 streams with Streaming RAID
// costs ~$173,400 with parity groups of size 4" — reproduces; see
// DESIGN.md §3/§4 for why the paper's own Figure 9 constants cannot be
// jointly recovered.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/cost.h"

int main() {
  using namespace ftms;
  bench::Banner(
      "Figure 9(a) — Total storage cost vs parity group size "
      "(W = 100 GB, S_d = 1 GB, K = 5)");
  DesignParameters design;
  SystemParameters params;
  params.k_reserve = 5;

  std::printf("%4s %14s %14s %14s %14s\n", "C", "StreamingRAID",
              "Staggered", "NonClustered", "ImprovedBW");
  for (int c = 2; c <= 10; ++c) {
    std::printf("%4d", c);
    for (Scheme scheme : kAllSchemes) {
      const auto point = EvaluateDesign(design, params, scheme, c);
      if (point.ok()) {
        std::printf(" %13.0f$", point->cost_dollars);
      } else {
        std::printf(" %14s", "-");
      }
    }
    std::printf("\n");
  }

  bench::Section("Worked examples (Section 5, required streams = 1200)");
  PlanRequest req;
  req.required_streams = 1200;
  struct PaperPoint {
    Scheme scheme;
    int c;
    double cost;
  };
  const PaperPoint paper[] = {
      {Scheme::kStreamingRaid, 4, 173400},
      {Scheme::kStaggeredGroup, 10, 146600},
      {Scheme::kNonClustered, 10, 128600},
  };
  std::printf("%-22s %8s %8s %12s %12s %10s\n", "Scheme", "C(ours)",
              "C(ppr)", "cost(ours)", "cost(paper)", "dev");
  for (const PaperPoint& pp : paper) {
    const auto point = PlanCheapest(design, params, pp.scheme, req);
    if (!point.ok()) continue;
    std::printf("%-22s %8d %8d %11.0f$ %11.0f$ %10s\n",
                std::string(SchemeName(pp.scheme)).c_str(),
                point->parity_group_size, pp.c, point->cost_dollars,
                pp.cost,
                bench::Deviation(point->cost_dollars, pp.cost).c_str());
  }

  bench::Section(
      "Bandwidth-scarce regime (required streams = 1500, farm sized at "
      "the minimum disks holding W — the paper's framing)");
  bool any = false;
  for (Scheme scheme : kAllSchemes) {
    for (int c = 2; c <= 10; ++c) {
      const auto point = EvaluateDesign(design, params, scheme, c);
      if (point.ok() && point->max_streams >= 1500) {
        std::printf("  %-22s C=%-2d D=%-4d streams=%-5d cost=%.0f$\n",
                    std::string(SchemeName(point->scheme)).c_str(),
                    point->parity_group_size, point->num_disks,
                    point->max_streams, point->cost_dollars);
        any = true;
      }
    }
  }
  std::printf(
      "%s\n",
      any ? "Only Improved-bandwidth reaches 1500 streams on the "
            "working-set disks\n(paper: IB \"will generally be the scheme "
            "of choice when bandwidth is\nscarce\"). The planner can also "
            "meet 1500 by buying extra disks for a\nclustered scheme — at "
            "which point Non-clustered wins again on cost."
          : "No scheme reaches 1500 streams at minimum sizing.");
  return 0;
}
