// Regenerates Figure 9(b): the number of simultaneously supported
// streams as a function of the parity group size when the farm is sized
// at the minimum number of disks holding the working set (W = 100 GB).

#include <cstdio>

#include "bench/bench_util.h"
#include "model/cost.h"

int main() {
  using namespace ftms;
  bench::Banner(
      "Figure 9(b) — Number of streams vs parity group size "
      "(minimum disks for W = 100 GB, K = 5)");
  DesignParameters design;
  SystemParameters params;
  params.k_reserve = 5;

  std::printf("%4s %6s %14s %14s %14s %14s\n", "C", "disks",
              "StreamingRAID", "Staggered", "NonClustered", "ImprovedBW");
  for (int c = 2; c <= 10; ++c) {
    std::printf("%4d %6d", c, DisksForWorkingSet(design, params, c));
    for (Scheme scheme : kAllSchemes) {
      const auto point = EvaluateDesign(design, params, scheme, c);
      if (point.ok()) {
        std::printf(" %14d", point->max_streams);
      } else {
        std::printf(" %14s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nShapes to compare with the paper's plot:\n"
      " * Improved-bandwidth supports the most streams at every C and its\n"
      "   curve DECREASES with C (fewer disks needed to hold W).\n"
      " * Streaming RAID sits above Staggered/Non-clustered (k' = C-1\n"
      "   amortizes the seek better) and all clustered curves stay within\n"
      "   a narrow band around 1.2k streams.\n");
  return 0;
}
