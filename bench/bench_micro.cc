// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: XOR parity coding, the event queue, layout mapping and a
// full scheduler cycle at scale.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "layout/layout.h"
#include "parity/parity.h"
#include "sched/cycle_scheduler.h"
#include "sim/simulator.h"
#include "tests/sched_test_util.h"
#include "util/random.h"

namespace ftms {
namespace {

void BM_XorBlock(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Block a(size);
  Block b(size);
  for (size_t i = 0; i < size; ++i) {
    a[i] = static_cast<uint8_t>(rng.NextUint64());
    b[i] = static_cast<uint8_t>(rng.NextUint64());
  }
  for (auto _ : state) {
    XorInto(a, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_XorBlock)->Arg(512)->Arg(51200)->Arg(1 << 20);

void BM_ParityGroupEncode(benchmark::State& state) {
  // One 50 KB-track parity group of C-1 data blocks.
  const int c = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<Block> data;
  for (int i = 0; i < c - 1; ++i) {
    Block b(51200);
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.NextUint64());
    data.push_back(std::move(b));
  }
  for (auto _ : state) {
    auto parity = ComputeParity(data);
    benchmark::DoNotOptimize(parity.value().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          51200 * (c - 1));
}
BENCHMARK(BM_ParityGroupEncode)->Arg(5)->Arg(7)->Arg(10);

void BM_Reconstruct(benchmark::State& state) {
  Rng rng(3);
  std::vector<Block> data;
  for (int i = 0; i < 4; ++i) {
    Block b(51200);
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.NextUint64());
    data.push_back(std::move(b));
  }
  const Block parity = ComputeParity(data).value();
  std::vector<Block> survivors(data.begin() + 1, data.end());
  for (auto _ : state) {
    auto rebuilt = ReconstructMissing(survivors, parity);
    benchmark::DoNotOptimize(rebuilt.value().data());
  }
}
BENCHMARK(BM_Reconstruct);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(rng.NextDouble(), [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_LayoutMapping(benchmark::State& state) {
  auto layout = ClusteredLayout::Create(100, 5).value();
  int64_t track = 0;
  for (auto _ : state) {
    const BlockLocation loc = layout->DataLocation(7, track++ % 100000);
    benchmark::DoNotOptimize(loc.disk);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LayoutMapping);

void BM_SchedulerCycle(benchmark::State& state) {
  // A full scheduling cycle with many active streams: the control-plane
  // cost per cycle (the paper's T_cyc is ~1 s of wall time, so anything
  // in the microseconds is negligible).
  const Scheme scheme = static_cast<Scheme>(state.range(0));
  const int c = 5;
  SchedRig rig = MakeRig(
      scheme, c, (scheme == Scheme::kImprovedBandwidth ? c - 1 : c) * 20);
  for (int i = 0; i < 200; ++i) {
    rig.sched->AddStream(TestObject(i, 1 << 28)).value();
  }
  for (auto _ : state) {
    rig.sched->RunCycle();
  }
  state.SetItemsProcessed(state.iterations() * 200);
  state.SetLabel(std::string(SchemeName(scheme)));
}
BENCHMARK(BM_SchedulerCycle)
    ->Arg(static_cast<int>(Scheme::kStreamingRaid))
    ->Arg(static_cast<int>(Scheme::kStaggeredGroup))
    ->Arg(static_cast<int>(Scheme::kNonClustered))
    ->Arg(static_cast<int>(Scheme::kImprovedBandwidth));

}  // namespace
}  // namespace ftms

BENCHMARK_MAIN();
