// Regenerates the introduction's farm-sizing arithmetic (Section 1) and
// extends it with the mixed MPEG-1/MPEG-2 population model: how capacity
// trades off as "good TV quality" titles displace "low TV quality" ones.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/capacity.h"
#include "model/sizing.h"
#include "tests/sched_test_util.h"
#include "util/units.h"

int main() {
  using namespace ftms;
  bench::Banner("Section 1 — farm sizing examples (1000 x 1 GB disks)");

  std::printf("%-52s %10s %10s\n", "Quantity", "ours", "paper");
  std::printf("%-52s %10.0f %10s\n",
              "90-min MPEG-2 movies stored (4.5 Mb/s)",
              MoviesStorable(1000, 1000, kMpeg2RateMbS, 90), "~300");
  std::printf("%-52s %10.0f %10s\n",
              "90-min MPEG-1 movies stored (1.5 Mb/s)",
              MoviesStorable(1000, 1000, kMpeg1RateMbS, 90), "~900");
  std::printf("%-52s %10.0f %10s\n",
              "concurrent MPEG-2 viewers (4 MB/s disks)",
              ViewersSupportable(1000, 4.0, kMpeg2RateMbS), "~6500");
  std::printf("%-52s %10.0f %10s\n",
              "concurrent MPEG-1 viewers (4 MB/s disks)",
              ViewersSupportable(1000, 4.0, kMpeg1RateMbS), "~20000");
  std::printf(
      "(The paper rounds the raw bandwidth quotients down for\n"
      " scheduling overheads; our capacity model makes that precise\n"
      " below.)\n");

  bench::Section(
      "Extension: mixed MPEG-1/MPEG-2 populations (Table 1 farm, "
      "cycle-based capacity, k' = 4, D' = 80)");
  SystemParameters p;
  std::printf("%14s %14s %16s %18s\n", "MPEG-2 share", "max streams",
              "MPEG-2 streams", "delivered MB/s");
  for (double f = 0.0; f <= 1.0001; f += 0.25) {
    const double n =
        MixedRateMaxStreams(p, 4, 80.0, kMpeg2RateMbS, f).value();
    const double rate =
        n * ((1 - f) * p.object_rate_mb_s + f * kMpeg2RateMbS);
    std::printf("%13.0f%% %14.0f %16.0f %18.1f\n", f * 100, n, n * f,
                rate);
  }
  std::printf(
      "\nThe constraint caps delivered bandwidth, not stream count: every\n"
      "MPEG-2 title displaces three MPEG-1 viewers (4.5/1.5), matching\n"
      "the introduction's 6500-vs-20000 ratio.\n");

  bench::Section(
      "Simulation confirmation (NC scheduler, multi-rate mode, 20 disks)");
  // 1 MPEG-2 stream (3 tracks/cycle) + 9 MPEG-1 per cluster position:
  // equivalent load 12 tracks/disk/cycle = exactly the slot budget.
  {
    SchedRig rig = MakeRig(Scheme::kNonClustered, 5, 20);
    for (int i = 0; i < 4 * 4; ++i) {
      rig.sched->AddStream(TestObject(i % 4, 240, kMpeg2RateMbS)).value();
      for (int j = 0; j < 9; ++j) {
        rig.sched->AddStream(TestObject(i % 4, 80, kMpeg1RateMbS)).value();
      }
      rig.sched->RunCycle();
    }
    rig.sched->RunCycles(100);
    std::printf(
        "16 MPEG-2 + 144 MPEG-1 streams (192 base-equivalents = the\n"
        "slot-exact capacity): dropped reads %lld, hiccups %lld.\n",
        static_cast<long long>(rig.sched->metrics().dropped_reads),
        static_cast<long long>(rig.sched->metrics().hiccups));
  }
  return 0;
}
