file(REMOVE_RECURSE
  "CMakeFiles/ftms_model.dir/ablation.cc.o"
  "CMakeFiles/ftms_model.dir/ablation.cc.o.d"
  "CMakeFiles/ftms_model.dir/buffers.cc.o"
  "CMakeFiles/ftms_model.dir/buffers.cc.o.d"
  "CMakeFiles/ftms_model.dir/capacity.cc.o"
  "CMakeFiles/ftms_model.dir/capacity.cc.o.d"
  "CMakeFiles/ftms_model.dir/cost.cc.o"
  "CMakeFiles/ftms_model.dir/cost.cc.o.d"
  "CMakeFiles/ftms_model.dir/overhead.cc.o"
  "CMakeFiles/ftms_model.dir/overhead.cc.o.d"
  "CMakeFiles/ftms_model.dir/parameters.cc.o"
  "CMakeFiles/ftms_model.dir/parameters.cc.o.d"
  "CMakeFiles/ftms_model.dir/reliability_model.cc.o"
  "CMakeFiles/ftms_model.dir/reliability_model.cc.o.d"
  "CMakeFiles/ftms_model.dir/sizing.cc.o"
  "CMakeFiles/ftms_model.dir/sizing.cc.o.d"
  "CMakeFiles/ftms_model.dir/tables.cc.o"
  "CMakeFiles/ftms_model.dir/tables.cc.o.d"
  "libftms_model.a"
  "libftms_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
