
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/ablation.cc" "src/model/CMakeFiles/ftms_model.dir/ablation.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/ablation.cc.o.d"
  "/root/repo/src/model/buffers.cc" "src/model/CMakeFiles/ftms_model.dir/buffers.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/buffers.cc.o.d"
  "/root/repo/src/model/capacity.cc" "src/model/CMakeFiles/ftms_model.dir/capacity.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/capacity.cc.o.d"
  "/root/repo/src/model/cost.cc" "src/model/CMakeFiles/ftms_model.dir/cost.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/cost.cc.o.d"
  "/root/repo/src/model/overhead.cc" "src/model/CMakeFiles/ftms_model.dir/overhead.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/overhead.cc.o.d"
  "/root/repo/src/model/parameters.cc" "src/model/CMakeFiles/ftms_model.dir/parameters.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/parameters.cc.o.d"
  "/root/repo/src/model/reliability_model.cc" "src/model/CMakeFiles/ftms_model.dir/reliability_model.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/reliability_model.cc.o.d"
  "/root/repo/src/model/sizing.cc" "src/model/CMakeFiles/ftms_model.dir/sizing.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/sizing.cc.o.d"
  "/root/repo/src/model/tables.cc" "src/model/CMakeFiles/ftms_model.dir/tables.cc.o" "gcc" "src/model/CMakeFiles/ftms_model.dir/tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ftms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/ftms_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ftms_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
