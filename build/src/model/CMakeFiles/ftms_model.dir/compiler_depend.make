# Empty compiler generated dependencies file for ftms_model.
# This may be replaced when dependencies are built.
