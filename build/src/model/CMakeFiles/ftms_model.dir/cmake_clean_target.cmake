file(REMOVE_RECURSE
  "libftms_model.a"
)
