file(REMOVE_RECURSE
  "libftms_verify.a"
)
