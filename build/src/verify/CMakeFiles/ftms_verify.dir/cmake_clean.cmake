file(REMOVE_RECURSE
  "CMakeFiles/ftms_verify.dir/datapath.cc.o"
  "CMakeFiles/ftms_verify.dir/datapath.cc.o.d"
  "CMakeFiles/ftms_verify.dir/scrub.cc.o"
  "CMakeFiles/ftms_verify.dir/scrub.cc.o.d"
  "libftms_verify.a"
  "libftms_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
