
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/datapath.cc" "src/verify/CMakeFiles/ftms_verify.dir/datapath.cc.o" "gcc" "src/verify/CMakeFiles/ftms_verify.dir/datapath.cc.o.d"
  "/root/repo/src/verify/scrub.cc" "src/verify/CMakeFiles/ftms_verify.dir/scrub.cc.o" "gcc" "src/verify/CMakeFiles/ftms_verify.dir/scrub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/ftms_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/parity/CMakeFiles/ftms_parity.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
