# Empty dependencies file for ftms_verify.
# This may be replaced when dependencies are built.
