
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/rebuild.cc" "src/server/CMakeFiles/ftms_server.dir/rebuild.cc.o" "gcc" "src/server/CMakeFiles/ftms_server.dir/rebuild.cc.o.d"
  "/root/repo/src/server/rebuild_manager.cc" "src/server/CMakeFiles/ftms_server.dir/rebuild_manager.cc.o" "gcc" "src/server/CMakeFiles/ftms_server.dir/rebuild_manager.cc.o.d"
  "/root/repo/src/server/server.cc" "src/server/CMakeFiles/ftms_server.dir/server.cc.o" "gcc" "src/server/CMakeFiles/ftms_server.dir/server.cc.o.d"
  "/root/repo/src/server/staging.cc" "src/server/CMakeFiles/ftms_server.dir/staging.cc.o" "gcc" "src/server/CMakeFiles/ftms_server.dir/staging.cc.o.d"
  "/root/repo/src/server/tertiary.cc" "src/server/CMakeFiles/ftms_server.dir/tertiary.cc.o" "gcc" "src/server/CMakeFiles/ftms_server.dir/tertiary.cc.o.d"
  "/root/repo/src/server/trace.cc" "src/server/CMakeFiles/ftms_server.dir/trace.cc.o" "gcc" "src/server/CMakeFiles/ftms_server.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/ftms_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ftms_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ftms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parity/CMakeFiles/ftms_parity.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ftms_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ftms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/ftms_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/ftms_verify.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
