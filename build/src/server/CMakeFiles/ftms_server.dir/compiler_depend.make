# Empty compiler generated dependencies file for ftms_server.
# This may be replaced when dependencies are built.
