file(REMOVE_RECURSE
  "CMakeFiles/ftms_server.dir/rebuild.cc.o"
  "CMakeFiles/ftms_server.dir/rebuild.cc.o.d"
  "CMakeFiles/ftms_server.dir/rebuild_manager.cc.o"
  "CMakeFiles/ftms_server.dir/rebuild_manager.cc.o.d"
  "CMakeFiles/ftms_server.dir/server.cc.o"
  "CMakeFiles/ftms_server.dir/server.cc.o.d"
  "CMakeFiles/ftms_server.dir/staging.cc.o"
  "CMakeFiles/ftms_server.dir/staging.cc.o.d"
  "CMakeFiles/ftms_server.dir/tertiary.cc.o"
  "CMakeFiles/ftms_server.dir/tertiary.cc.o.d"
  "CMakeFiles/ftms_server.dir/trace.cc.o"
  "CMakeFiles/ftms_server.dir/trace.cc.o.d"
  "libftms_server.a"
  "libftms_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
