file(REMOVE_RECURSE
  "libftms_server.a"
)
