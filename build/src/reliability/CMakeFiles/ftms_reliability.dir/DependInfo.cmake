
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/birth_death.cc" "src/reliability/CMakeFiles/ftms_reliability.dir/birth_death.cc.o" "gcc" "src/reliability/CMakeFiles/ftms_reliability.dir/birth_death.cc.o.d"
  "/root/repo/src/reliability/failure_process.cc" "src/reliability/CMakeFiles/ftms_reliability.dir/failure_process.cc.o" "gcc" "src/reliability/CMakeFiles/ftms_reliability.dir/failure_process.cc.o.d"
  "/root/repo/src/reliability/markov_sim.cc" "src/reliability/CMakeFiles/ftms_reliability.dir/markov_sim.cc.o" "gcc" "src/reliability/CMakeFiles/ftms_reliability.dir/markov_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/ftms_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ftms_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
