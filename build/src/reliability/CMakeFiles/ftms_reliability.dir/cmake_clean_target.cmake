file(REMOVE_RECURSE
  "libftms_reliability.a"
)
