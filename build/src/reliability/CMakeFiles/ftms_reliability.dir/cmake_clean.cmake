file(REMOVE_RECURSE
  "CMakeFiles/ftms_reliability.dir/birth_death.cc.o"
  "CMakeFiles/ftms_reliability.dir/birth_death.cc.o.d"
  "CMakeFiles/ftms_reliability.dir/failure_process.cc.o"
  "CMakeFiles/ftms_reliability.dir/failure_process.cc.o.d"
  "CMakeFiles/ftms_reliability.dir/markov_sim.cc.o"
  "CMakeFiles/ftms_reliability.dir/markov_sim.cc.o.d"
  "libftms_reliability.a"
  "libftms_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
