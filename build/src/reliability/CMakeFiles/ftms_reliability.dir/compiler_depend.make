# Empty compiler generated dependencies file for ftms_reliability.
# This may be replaced when dependencies are built.
