# Empty compiler generated dependencies file for ftms_parity.
# This may be replaced when dependencies are built.
