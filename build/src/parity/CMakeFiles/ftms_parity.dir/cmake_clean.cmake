file(REMOVE_RECURSE
  "CMakeFiles/ftms_parity.dir/parity.cc.o"
  "CMakeFiles/ftms_parity.dir/parity.cc.o.d"
  "libftms_parity.a"
  "libftms_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
