file(REMOVE_RECURSE
  "libftms_parity.a"
)
