# Empty compiler generated dependencies file for ftms_sched.
# This may be replaced when dependencies are built.
