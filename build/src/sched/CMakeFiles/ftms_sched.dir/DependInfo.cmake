
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cycle_scheduler.cc" "src/sched/CMakeFiles/ftms_sched.dir/cycle_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/ftms_sched.dir/cycle_scheduler.cc.o.d"
  "/root/repo/src/sched/improved_bandwidth_scheduler.cc" "src/sched/CMakeFiles/ftms_sched.dir/improved_bandwidth_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/ftms_sched.dir/improved_bandwidth_scheduler.cc.o.d"
  "/root/repo/src/sched/non_clustered_scheduler.cc" "src/sched/CMakeFiles/ftms_sched.dir/non_clustered_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/ftms_sched.dir/non_clustered_scheduler.cc.o.d"
  "/root/repo/src/sched/scheduler_factory.cc" "src/sched/CMakeFiles/ftms_sched.dir/scheduler_factory.cc.o" "gcc" "src/sched/CMakeFiles/ftms_sched.dir/scheduler_factory.cc.o.d"
  "/root/repo/src/sched/staggered_group_scheduler.cc" "src/sched/CMakeFiles/ftms_sched.dir/staggered_group_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/ftms_sched.dir/staggered_group_scheduler.cc.o.d"
  "/root/repo/src/sched/streaming_raid_scheduler.cc" "src/sched/CMakeFiles/ftms_sched.dir/streaming_raid_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/ftms_sched.dir/streaming_raid_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/buffer/CMakeFiles/ftms_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/ftms_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ftms_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ftms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/ftms_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ftms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parity/CMakeFiles/ftms_parity.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
