file(REMOVE_RECURSE
  "CMakeFiles/ftms_sched.dir/cycle_scheduler.cc.o"
  "CMakeFiles/ftms_sched.dir/cycle_scheduler.cc.o.d"
  "CMakeFiles/ftms_sched.dir/improved_bandwidth_scheduler.cc.o"
  "CMakeFiles/ftms_sched.dir/improved_bandwidth_scheduler.cc.o.d"
  "CMakeFiles/ftms_sched.dir/non_clustered_scheduler.cc.o"
  "CMakeFiles/ftms_sched.dir/non_clustered_scheduler.cc.o.d"
  "CMakeFiles/ftms_sched.dir/scheduler_factory.cc.o"
  "CMakeFiles/ftms_sched.dir/scheduler_factory.cc.o.d"
  "CMakeFiles/ftms_sched.dir/staggered_group_scheduler.cc.o"
  "CMakeFiles/ftms_sched.dir/staggered_group_scheduler.cc.o.d"
  "CMakeFiles/ftms_sched.dir/streaming_raid_scheduler.cc.o"
  "CMakeFiles/ftms_sched.dir/streaming_raid_scheduler.cc.o.d"
  "libftms_sched.a"
  "libftms_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
