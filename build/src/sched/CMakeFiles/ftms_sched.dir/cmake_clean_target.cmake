file(REMOVE_RECURSE
  "libftms_sched.a"
)
