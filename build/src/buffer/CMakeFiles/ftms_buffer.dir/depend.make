# Empty dependencies file for ftms_buffer.
# This may be replaced when dependencies are built.
