file(REMOVE_RECURSE
  "libftms_buffer.a"
)
