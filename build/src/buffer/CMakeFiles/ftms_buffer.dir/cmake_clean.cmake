file(REMOVE_RECURSE
  "CMakeFiles/ftms_buffer.dir/buffer_pool.cc.o"
  "CMakeFiles/ftms_buffer.dir/buffer_pool.cc.o.d"
  "libftms_buffer.a"
  "libftms_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
