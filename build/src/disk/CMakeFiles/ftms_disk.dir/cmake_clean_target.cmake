file(REMOVE_RECURSE
  "libftms_disk.a"
)
