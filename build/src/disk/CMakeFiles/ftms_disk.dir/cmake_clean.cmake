file(REMOVE_RECURSE
  "CMakeFiles/ftms_disk.dir/disk.cc.o"
  "CMakeFiles/ftms_disk.dir/disk.cc.o.d"
  "CMakeFiles/ftms_disk.dir/disk_array.cc.o"
  "CMakeFiles/ftms_disk.dir/disk_array.cc.o.d"
  "CMakeFiles/ftms_disk.dir/disk_model.cc.o"
  "CMakeFiles/ftms_disk.dir/disk_model.cc.o.d"
  "CMakeFiles/ftms_disk.dir/seek_curve.cc.o"
  "CMakeFiles/ftms_disk.dir/seek_curve.cc.o.d"
  "libftms_disk.a"
  "libftms_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
