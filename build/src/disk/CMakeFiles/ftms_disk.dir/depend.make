# Empty dependencies file for ftms_disk.
# This may be replaced when dependencies are built.
