file(REMOVE_RECURSE
  "CMakeFiles/ftms_stream.dir/admission.cc.o"
  "CMakeFiles/ftms_stream.dir/admission.cc.o.d"
  "CMakeFiles/ftms_stream.dir/batching.cc.o"
  "CMakeFiles/ftms_stream.dir/batching.cc.o.d"
  "CMakeFiles/ftms_stream.dir/request_queue.cc.o"
  "CMakeFiles/ftms_stream.dir/request_queue.cc.o.d"
  "CMakeFiles/ftms_stream.dir/stream.cc.o"
  "CMakeFiles/ftms_stream.dir/stream.cc.o.d"
  "CMakeFiles/ftms_stream.dir/workload.cc.o"
  "CMakeFiles/ftms_stream.dir/workload.cc.o.d"
  "libftms_stream.a"
  "libftms_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
