
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/admission.cc" "src/stream/CMakeFiles/ftms_stream.dir/admission.cc.o" "gcc" "src/stream/CMakeFiles/ftms_stream.dir/admission.cc.o.d"
  "/root/repo/src/stream/batching.cc" "src/stream/CMakeFiles/ftms_stream.dir/batching.cc.o" "gcc" "src/stream/CMakeFiles/ftms_stream.dir/batching.cc.o.d"
  "/root/repo/src/stream/request_queue.cc" "src/stream/CMakeFiles/ftms_stream.dir/request_queue.cc.o" "gcc" "src/stream/CMakeFiles/ftms_stream.dir/request_queue.cc.o.d"
  "/root/repo/src/stream/stream.cc" "src/stream/CMakeFiles/ftms_stream.dir/stream.cc.o" "gcc" "src/stream/CMakeFiles/ftms_stream.dir/stream.cc.o.d"
  "/root/repo/src/stream/workload.cc" "src/stream/CMakeFiles/ftms_stream.dir/workload.cc.o" "gcc" "src/stream/CMakeFiles/ftms_stream.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ftms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ftms_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ftms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/ftms_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
