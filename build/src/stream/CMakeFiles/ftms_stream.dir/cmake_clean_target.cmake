file(REMOVE_RECURSE
  "libftms_stream.a"
)
