# Empty compiler generated dependencies file for ftms_stream.
# This may be replaced when dependencies are built.
