file(REMOVE_RECURSE
  "libftms_layout.a"
)
