# Empty compiler generated dependencies file for ftms_layout.
# This may be replaced when dependencies are built.
