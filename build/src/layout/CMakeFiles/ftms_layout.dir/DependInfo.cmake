
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/catalog.cc" "src/layout/CMakeFiles/ftms_layout.dir/catalog.cc.o" "gcc" "src/layout/CMakeFiles/ftms_layout.dir/catalog.cc.o.d"
  "/root/repo/src/layout/invariants.cc" "src/layout/CMakeFiles/ftms_layout.dir/invariants.cc.o" "gcc" "src/layout/CMakeFiles/ftms_layout.dir/invariants.cc.o.d"
  "/root/repo/src/layout/layout.cc" "src/layout/CMakeFiles/ftms_layout.dir/layout.cc.o" "gcc" "src/layout/CMakeFiles/ftms_layout.dir/layout.cc.o.d"
  "/root/repo/src/layout/media_object.cc" "src/layout/CMakeFiles/ftms_layout.dir/media_object.cc.o" "gcc" "src/layout/CMakeFiles/ftms_layout.dir/media_object.cc.o.d"
  "/root/repo/src/layout/schemes.cc" "src/layout/CMakeFiles/ftms_layout.dir/schemes.cc.o" "gcc" "src/layout/CMakeFiles/ftms_layout.dir/schemes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ftms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
