file(REMOVE_RECURSE
  "CMakeFiles/ftms_layout.dir/catalog.cc.o"
  "CMakeFiles/ftms_layout.dir/catalog.cc.o.d"
  "CMakeFiles/ftms_layout.dir/invariants.cc.o"
  "CMakeFiles/ftms_layout.dir/invariants.cc.o.d"
  "CMakeFiles/ftms_layout.dir/layout.cc.o"
  "CMakeFiles/ftms_layout.dir/layout.cc.o.d"
  "CMakeFiles/ftms_layout.dir/media_object.cc.o"
  "CMakeFiles/ftms_layout.dir/media_object.cc.o.d"
  "CMakeFiles/ftms_layout.dir/schemes.cc.o"
  "CMakeFiles/ftms_layout.dir/schemes.cc.o.d"
  "libftms_layout.a"
  "libftms_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
