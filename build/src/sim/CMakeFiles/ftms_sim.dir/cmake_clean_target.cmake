file(REMOVE_RECURSE
  "libftms_sim.a"
)
