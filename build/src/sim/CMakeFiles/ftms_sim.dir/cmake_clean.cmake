file(REMOVE_RECURSE
  "CMakeFiles/ftms_sim.dir/simulator.cc.o"
  "CMakeFiles/ftms_sim.dir/simulator.cc.o.d"
  "libftms_sim.a"
  "libftms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
