# Empty compiler generated dependencies file for ftms_sim.
# This may be replaced when dependencies are built.
