file(REMOVE_RECURSE
  "libftms_util.a"
)
