file(REMOVE_RECURSE
  "CMakeFiles/ftms_util.dir/log.cc.o"
  "CMakeFiles/ftms_util.dir/log.cc.o.d"
  "CMakeFiles/ftms_util.dir/random.cc.o"
  "CMakeFiles/ftms_util.dir/random.cc.o.d"
  "CMakeFiles/ftms_util.dir/stats.cc.o"
  "CMakeFiles/ftms_util.dir/stats.cc.o.d"
  "CMakeFiles/ftms_util.dir/status.cc.o"
  "CMakeFiles/ftms_util.dir/status.cc.o.d"
  "libftms_util.a"
  "libftms_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
