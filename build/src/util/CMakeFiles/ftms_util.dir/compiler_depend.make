# Empty compiler generated dependencies file for ftms_util.
# This may be replaced when dependencies are built.
