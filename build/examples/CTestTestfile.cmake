# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_drill "/root/repo/build/examples/failure_drill" "2")
set_tests_properties(example_failure_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner" "100" "1200")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_movie_night "/root/repo/build/examples/movie_night" "sr" "0.05")
set_tests_properties(example_movie_night PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vod_operations "/root/repo/build/examples/vod_operations" "3")
set_tests_properties(example_vod_operations PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
