# Empty dependencies file for vod_operations.
# This may be replaced when dependencies are built.
