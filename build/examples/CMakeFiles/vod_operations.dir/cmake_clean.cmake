file(REMOVE_RECURSE
  "CMakeFiles/vod_operations.dir/vod_operations.cpp.o"
  "CMakeFiles/vod_operations.dir/vod_operations.cpp.o.d"
  "vod_operations"
  "vod_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
