file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seek.dir/bench_ablation_seek.cc.o"
  "CMakeFiles/bench_ablation_seek.dir/bench_ablation_seek.cc.o.d"
  "bench_ablation_seek"
  "bench_ablation_seek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
