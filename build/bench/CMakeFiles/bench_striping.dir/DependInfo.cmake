
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_striping.cc" "bench/CMakeFiles/bench_striping.dir/bench_striping.cc.o" "gcc" "bench/CMakeFiles/bench_striping.dir/bench_striping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reliability/CMakeFiles/ftms_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/ftms_server.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ftms_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/ftms_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ftms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ftms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/ftms_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/ftms_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/parity/CMakeFiles/ftms_parity.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ftms_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
