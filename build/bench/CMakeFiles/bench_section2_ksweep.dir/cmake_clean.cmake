file(REMOVE_RECURSE
  "CMakeFiles/bench_section2_ksweep.dir/bench_section2_ksweep.cc.o"
  "CMakeFiles/bench_section2_ksweep.dir/bench_section2_ksweep.cc.o.d"
  "bench_section2_ksweep"
  "bench_section2_ksweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section2_ksweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
