# Empty dependencies file for bench_section2_ksweep.
# This may be replaced when dependencies are built.
