file(REMOVE_RECURSE
  "CMakeFiles/bench_full_farm.dir/bench_full_farm.cc.o"
  "CMakeFiles/bench_full_farm.dir/bench_full_farm.cc.o.d"
  "bench_full_farm"
  "bench_full_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
