# Empty dependencies file for bench_failure_sim.
# This may be replaced when dependencies are built.
