file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_sim.dir/bench_failure_sim.cc.o"
  "CMakeFiles/bench_failure_sim.dir/bench_failure_sim.cc.o.d"
  "bench_failure_sim"
  "bench_failure_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
