# Empty dependencies file for bench_mttf_examples.
# This may be replaced when dependencies are built.
