file(REMOVE_RECURSE
  "CMakeFiles/bench_mttf_examples.dir/bench_mttf_examples.cc.o"
  "CMakeFiles/bench_mttf_examples.dir/bench_mttf_examples.cc.o.d"
  "bench_mttf_examples"
  "bench_mttf_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mttf_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
