file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_memory.dir/bench_buffer_memory.cc.o"
  "CMakeFiles/bench_buffer_memory.dir/bench_buffer_memory.cc.o.d"
  "bench_buffer_memory"
  "bench_buffer_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
