# Empty compiler generated dependencies file for bench_buffer_memory.
# This may be replaced when dependencies are built.
