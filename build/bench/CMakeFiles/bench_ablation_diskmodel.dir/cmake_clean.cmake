file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_diskmodel.dir/bench_ablation_diskmodel.cc.o"
  "CMakeFiles/bench_ablation_diskmodel.dir/bench_ablation_diskmodel.cc.o.d"
  "bench_ablation_diskmodel"
  "bench_ablation_diskmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_diskmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
