# Empty dependencies file for bench_ablation_diskmodel.
# This may be replaced when dependencies are built.
