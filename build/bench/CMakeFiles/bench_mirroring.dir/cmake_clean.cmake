file(REMOVE_RECURSE
  "CMakeFiles/bench_mirroring.dir/bench_mirroring.cc.o"
  "CMakeFiles/bench_mirroring.dir/bench_mirroring.cc.o.d"
  "bench_mirroring"
  "bench_mirroring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mirroring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
