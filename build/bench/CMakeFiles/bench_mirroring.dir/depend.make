# Empty dependencies file for bench_mirroring.
# This may be replaced when dependencies are built.
