file(REMOVE_RECURSE
  "CMakeFiles/bench_rebuild.dir/bench_rebuild.cc.o"
  "CMakeFiles/bench_rebuild.dir/bench_rebuild.cc.o.d"
  "bench_rebuild"
  "bench_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
