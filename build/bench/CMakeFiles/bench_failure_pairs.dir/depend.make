# Empty dependencies file for bench_failure_pairs.
# This may be replaced when dependencies are built.
