file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_pairs.dir/bench_failure_pairs.cc.o"
  "CMakeFiles/bench_failure_pairs.dir/bench_failure_pairs.cc.o.d"
  "bench_failure_pairs"
  "bench_failure_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
