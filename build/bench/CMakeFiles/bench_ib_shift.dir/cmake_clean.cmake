file(REMOVE_RECURSE
  "CMakeFiles/bench_ib_shift.dir/bench_ib_shift.cc.o"
  "CMakeFiles/bench_ib_shift.dir/bench_ib_shift.cc.o.d"
  "bench_ib_shift"
  "bench_ib_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ib_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
