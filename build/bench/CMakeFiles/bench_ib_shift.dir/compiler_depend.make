# Empty compiler generated dependencies file for bench_ib_shift.
# This may be replaced when dependencies are built.
