file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_sizing.dir/bench_intro_sizing.cc.o"
  "CMakeFiles/bench_intro_sizing.dir/bench_intro_sizing.cc.o.d"
  "bench_intro_sizing"
  "bench_intro_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
