# Empty dependencies file for bench_intro_sizing.
# This may be replaced when dependencies are built.
