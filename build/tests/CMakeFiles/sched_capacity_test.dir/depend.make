# Empty dependencies file for sched_capacity_test.
# This may be replaced when dependencies are built.
