file(REMOVE_RECURSE
  "CMakeFiles/sched_capacity_test.dir/sched_capacity_test.cc.o"
  "CMakeFiles/sched_capacity_test.dir/sched_capacity_test.cc.o.d"
  "sched_capacity_test"
  "sched_capacity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
