file(REMOVE_RECURSE
  "CMakeFiles/rebuild_manager_test.dir/rebuild_manager_test.cc.o"
  "CMakeFiles/rebuild_manager_test.dir/rebuild_manager_test.cc.o.d"
  "rebuild_manager_test"
  "rebuild_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebuild_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
