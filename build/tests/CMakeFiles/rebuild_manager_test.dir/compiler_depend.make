# Empty compiler generated dependencies file for rebuild_manager_test.
# This may be replaced when dependencies are built.
