file(REMOVE_RECURSE
  "CMakeFiles/sched_nc_sweep_test.dir/sched_nc_sweep_test.cc.o"
  "CMakeFiles/sched_nc_sweep_test.dir/sched_nc_sweep_test.cc.o.d"
  "sched_nc_sweep_test"
  "sched_nc_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_nc_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
