file(REMOVE_RECURSE
  "CMakeFiles/reliability_model_test.dir/reliability_model_test.cc.o"
  "CMakeFiles/reliability_model_test.dir/reliability_model_test.cc.o.d"
  "reliability_model_test"
  "reliability_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
