file(REMOVE_RECURSE
  "CMakeFiles/reliability_sim_test.dir/reliability_sim_test.cc.o"
  "CMakeFiles/reliability_sim_test.dir/reliability_sim_test.cc.o.d"
  "reliability_sim_test"
  "reliability_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
