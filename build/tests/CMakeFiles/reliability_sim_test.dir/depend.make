# Empty dependencies file for reliability_sim_test.
# This may be replaced when dependencies are built.
