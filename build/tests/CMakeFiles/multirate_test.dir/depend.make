# Empty dependencies file for multirate_test.
# This may be replaced when dependencies are built.
