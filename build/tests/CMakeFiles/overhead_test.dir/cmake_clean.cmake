file(REMOVE_RECURSE
  "CMakeFiles/overhead_test.dir/overhead_test.cc.o"
  "CMakeFiles/overhead_test.dir/overhead_test.cc.o.d"
  "overhead_test"
  "overhead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
