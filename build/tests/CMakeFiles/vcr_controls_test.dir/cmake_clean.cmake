file(REMOVE_RECURSE
  "CMakeFiles/vcr_controls_test.dir/vcr_controls_test.cc.o"
  "CMakeFiles/vcr_controls_test.dir/vcr_controls_test.cc.o.d"
  "vcr_controls_test"
  "vcr_controls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcr_controls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
