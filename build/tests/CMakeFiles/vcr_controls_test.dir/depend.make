# Empty dependencies file for vcr_controls_test.
# This may be replaced when dependencies are built.
