file(REMOVE_RECURSE
  "CMakeFiles/birth_death_test.dir/birth_death_test.cc.o"
  "CMakeFiles/birth_death_test.dir/birth_death_test.cc.o.d"
  "birth_death_test"
  "birth_death_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birth_death_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
