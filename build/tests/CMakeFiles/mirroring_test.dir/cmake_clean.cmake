file(REMOVE_RECURSE
  "CMakeFiles/mirroring_test.dir/mirroring_test.cc.o"
  "CMakeFiles/mirroring_test.dir/mirroring_test.cc.o.d"
  "mirroring_test"
  "mirroring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirroring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
