# Empty dependencies file for mirroring_test.
# This may be replaced when dependencies are built.
