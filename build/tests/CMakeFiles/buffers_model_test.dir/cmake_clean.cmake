file(REMOVE_RECURSE
  "CMakeFiles/buffers_model_test.dir/buffers_model_test.cc.o"
  "CMakeFiles/buffers_model_test.dir/buffers_model_test.cc.o.d"
  "buffers_model_test"
  "buffers_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffers_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
