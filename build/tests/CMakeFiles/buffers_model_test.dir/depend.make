# Empty dependencies file for buffers_model_test.
# This may be replaced when dependencies are built.
