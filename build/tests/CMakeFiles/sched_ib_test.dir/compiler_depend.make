# Empty compiler generated dependencies file for sched_ib_test.
# This may be replaced when dependencies are built.
