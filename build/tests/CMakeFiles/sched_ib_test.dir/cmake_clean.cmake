file(REMOVE_RECURSE
  "CMakeFiles/sched_ib_test.dir/sched_ib_test.cc.o"
  "CMakeFiles/sched_ib_test.dir/sched_ib_test.cc.o.d"
  "sched_ib_test"
  "sched_ib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_ib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
