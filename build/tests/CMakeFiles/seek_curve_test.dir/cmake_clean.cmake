file(REMOVE_RECURSE
  "CMakeFiles/seek_curve_test.dir/seek_curve_test.cc.o"
  "CMakeFiles/seek_curve_test.dir/seek_curve_test.cc.o.d"
  "seek_curve_test"
  "seek_curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seek_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
