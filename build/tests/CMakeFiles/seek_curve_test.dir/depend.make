# Empty dependencies file for seek_curve_test.
# This may be replaced when dependencies are built.
