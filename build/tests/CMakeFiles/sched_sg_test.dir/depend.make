# Empty dependencies file for sched_sg_test.
# This may be replaced when dependencies are built.
