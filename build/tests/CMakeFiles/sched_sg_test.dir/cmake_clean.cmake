file(REMOVE_RECURSE
  "CMakeFiles/sched_sg_test.dir/sched_sg_test.cc.o"
  "CMakeFiles/sched_sg_test.dir/sched_sg_test.cc.o.d"
  "sched_sg_test"
  "sched_sg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_sg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
