file(REMOVE_RECURSE
  "CMakeFiles/integrity_mode_test.dir/integrity_mode_test.cc.o"
  "CMakeFiles/integrity_mode_test.dir/integrity_mode_test.cc.o.d"
  "integrity_mode_test"
  "integrity_mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrity_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
