file(REMOVE_RECURSE
  "CMakeFiles/fuzz_failures_test.dir/fuzz_failures_test.cc.o"
  "CMakeFiles/fuzz_failures_test.dir/fuzz_failures_test.cc.o.d"
  "fuzz_failures_test"
  "fuzz_failures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_failures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
