# Empty compiler generated dependencies file for fuzz_failures_test.
# This may be replaced when dependencies are built.
