file(REMOVE_RECURSE
  "CMakeFiles/sched_sr_test.dir/sched_sr_test.cc.o"
  "CMakeFiles/sched_sr_test.dir/sched_sr_test.cc.o.d"
  "sched_sr_test"
  "sched_sr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_sr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
