# Empty dependencies file for sched_sr_test.
# This may be replaced when dependencies are built.
