# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_tables "/root/repo/build/tools/ftms" "tables" "5")
set_tests_properties(cli_tables PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/tools/ftms" "plan" "100" "1200")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/ftms" "simulate" "sr" "5" "20" "50" "40" "3")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reliability "/root/repo/build/tools/ftms" "reliability" "100" "5" "3")
set_tests_properties(cli_reliability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
