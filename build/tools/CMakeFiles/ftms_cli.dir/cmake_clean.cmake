file(REMOVE_RECURSE
  "CMakeFiles/ftms_cli.dir/ftms_cli.cc.o"
  "CMakeFiles/ftms_cli.dir/ftms_cli.cc.o.d"
  "ftms"
  "ftms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftms_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
