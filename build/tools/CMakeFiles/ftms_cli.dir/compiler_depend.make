# Empty compiler generated dependencies file for ftms_cli.
# This may be replaced when dependencies are built.
