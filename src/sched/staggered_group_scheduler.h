#ifndef FTMS_SCHED_STAGGERED_GROUP_SCHEDULER_H_
#define FTMS_SCHED_STAGGERED_GROUP_SCHEDULER_H_

#include <vector>

#include "sched/cycle_scheduler.h"

namespace ftms {

// The Staggered-group scheme of Section 2 ("memory sharing with
// subgrouping and subcycling" in [11]).
//
// Layout is identical to Streaming RAID, but the cycle is one track long
// (k' = 1): a stream reads its whole parity group (k = C-1 tracks plus
// parity) in one short cycle and delivers it over the following C-1
// cycles, one track per cycle. Streams are assigned staggered read phases
// so their memory peaks are out of phase (Figure 4), cutting the buffer
// requirement roughly in half versus Streaming RAID (equation (13))
// at a small loss in streams (fewer requests per disk per cycle to
// amortize the seek over).
class StaggeredGroupScheduler : public CycleScheduler {
 public:
  StaggeredGroupScheduler(const SchedulerConfig& config, DiskArray* disks,
                          const Layout* layout);

  // Buffer tracks currently held by stream `id` (for the Figure 4 bench).
  int64_t BufferedTracksOf(StreamId id) const;

 protected:
  void DoRunCycle() override;
  void DoAddStream(Stream* stream) override;
  void DoOnStreamStopped(Stream* stream) override;

 private:
  struct SgState {
    int phase = 0;         // read cycle when (cycle - phase) % (C-1) == 0
    bool started = false;  // first group read has happened
    // Current buffered group.
    int64_t first_track = 0;
    int tracks = 0;
    int delivered = 0;  // tracks of the group delivered so far
    int missing = 0;    // tracks of the group that failed to read
    std::vector<uint8_t> have;  // byte flags, not vector<bool>
    bool parity_ok = false;
    int64_t buffered_tracks = 0;  // pool accounting
  };

  // Whether this is one of the stream's staggered read cycles. Inline:
  // tested once per active stream per cycle. The guard on cycle() >=
  // phase keeps the modulo on non-negative values (a negative dividend in
  // (-(C-1), 0) is never congruent to 0, so the result is unchanged).
  bool IsReadCycle(const SgState& st) const {
    const int64_t since = cycle() - st.phase;
    if (since < 0) return false;
    assert(since <= INT64_C(0xffffffff));
    return geom_.per_group_div.Mod(static_cast<uint32_t>(since)) == 0;
  }
  // The cluster this stream's reads (if any) land on this cycle: the
  // group containing the position AFTER this cycle's delivery.
  int ShardCluster(const Stream& stream) const;
  void ReadGroup(ShardCtx& ctx, Stream* stream, SgState* st);
  void DeliverOne(ShardCtx& ctx, Stream* stream, SgState* st);

  std::vector<SgState> state_;
  // Phase assignment counters per home cluster: staggering must balance
  // WITHIN each cluster's stream population (a global counter aliases
  // with the cluster assignment whenever the cluster count and C-1 share
  // a factor, overloading one phase of some cluster).
  std::vector<int> next_phase_per_cluster_;
};

}  // namespace ftms

#endif  // FTMS_SCHED_STAGGERED_GROUP_SCHEDULER_H_
