#include "sched/cycle_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <string>

#include "util/profiler.h"

namespace ftms {

// Registry cells and the trace track for one scheduler instance, resolved
// once at construction so every recording site is a pointer chase plus an
// atomic add — never a name lookup. Per-cluster and per-disk counters are
// plain atomic Counters: in the cluster-parallel cycle path each cluster's
// cells are touched by exactly one worker (the shards partition clusters),
// so the cells are effectively sharded by construction, and the commutative
// adds keep every exported total bit-identical at any thread count.
struct CycleScheduler::Instruments {
  MetricsRegistry* registry = nullptr;
  Tracer* tracer = nullptr;
  int32_t tid = -1;

  // Hot-path cells (written from cluster kernels).
  std::vector<Counter*> cluster_degraded;     // reads that hit a failed disk
  std::vector<Counter*> cluster_reconstruct;  // tracks rebuilt from parity

  // Serial end-of-cycle cells.
  std::vector<Counter*> disk_busy;  // busy slots per disk, cumulative
  Counter* cycles = nullptr;
  Counter* data_reads = nullptr;
  Counter* parity_reads = nullptr;
  Counter* dropped_reads = nullptr;
  Counter* tracks_delivered = nullptr;
  Counter* hiccups = nullptr;
  Counter* admitted = nullptr;
  Counter* admit_rejected = nullptr;
  Gauge* active_streams = nullptr;
  Gauge* buffer_in_use = nullptr;
  Gauge* buffer_peak = nullptr;
  Gauge* failed_disks = nullptr;
  HistogramCell* queue_depth = nullptr;  // slots used per disk-cycle
  HistogramCell* cycle_wall_us = nullptr;
  SchedulerMetrics last;  // previous cycle's totals, for counter deltas
};

namespace {

// Below this many active streams a cycle runs inline: the pool dispatch
// (queue + wakeup + completion wait) costs more than the cycle itself.
// The guard reads only scheduler state, so the serial/parallel decision —
// and therefore the output — is identical at every thread count.
constexpr int kMinActiveStreamsForParallel = 128;

// Folds one shard's counters into the shared metrics. Every field is a
// sum except max_shift_depth (a running max); both folds are commutative
// and associative, so chunk-granularity scratch stays thread-count
// invariant.
void FoldMetrics(SchedulerMetrics& into, const SchedulerMetrics& shard) {
  into.cycles += shard.cycles;
  into.data_reads += shard.data_reads;
  into.parity_reads += shard.parity_reads;
  into.failed_reads += shard.failed_reads;
  into.dropped_reads += shard.dropped_reads;
  into.tracks_delivered += shard.tracks_delivered;
  into.hiccups += shard.hiccups;
  into.reconstructed += shard.reconstructed;
  into.terminated_streams += shard.terminated_streams;
  into.degradation_events += shard.degradation_events;
  into.shift_cascades += shard.shift_cascades;
  into.max_shift_depth =
      std::max(into.max_shift_depth, shard.max_shift_depth);
  into.verified_tracks += shard.verified_tracks;
  into.verify_failures += shard.verify_failures;
}

#ifndef NDEBUG
// Cross-checks the devirtualized geometry against the virtual layout on a
// sample of blocks/disks, so a Layout subclass whose overrides disagree
// with Geom()'s snapshot fails loudly at construction.
void ValidateGeom(const LayoutGeom& g, const Layout& layout) {
  const int num_disks = layout.num_clusters() * layout.disks_per_cluster();
  const int64_t tracks = std::max<int64_t>(
      1, static_cast<int64_t>(layout.DataBlocksPerGroup()) * 4 + 3);
  for (int obj = 0; obj < 3; ++obj) {
    for (int64_t t = 0; t < tracks; ++t) {
      const BlockLocation want = layout.DataLocation(obj, t);
      assert(g.DataDiskOf(obj, static_cast<uint32_t>(t)) == want.disk);
      const uint32_t group = g.GroupOf(static_cast<uint32_t>(t));
      const BlockLocation parity = layout.ParityLocation(obj, group);
      assert(g.ParityDisk(static_cast<uint32_t>(obj), group,
                          g.GroupCluster(static_cast<uint32_t>(obj),
                                         group)) == parity.disk);
      assert(g.GroupCluster(static_cast<uint32_t>(obj), group) ==
             layout.GroupCluster(obj, group));
    }
  }
  for (int d = 0; d < num_disks; ++d) {
    assert(static_cast<int>(g.ClusterOfDisk(static_cast<uint32_t>(d))) ==
           d / layout.disks_per_cluster());
  }
}
#endif

}  // namespace

CycleScheduler::CycleScheduler(const SchedulerConfig& config,
                               DiskArray* disks, const Layout* layout)
    : disks_(disks), layout_(layout), config_(config),
      geom_(layout != nullptr ? layout->Geom() : LayoutGeom{}), pool_(0),
      mid_cycle_failed_(disks != nullptr ? disks->num_disks() : 0) {
  assert(disks_ != nullptr);
  assert(layout_ != nullptr);
#ifndef NDEBUG
  ValidateGeom(geom_, *layout_);
#endif
  slots_per_disk_ = config_.slots_per_disk > 0
                        ? config_.slots_per_disk
                        : config_.disk.TracksPerCycle(CycleSeconds());
  slots_used_.assign(static_cast<size_t>(disks_->num_disks()), 0);
  if (config_.threads == 0) {
    exec_pool_ = &ThreadPool::Shared();
  } else if (config_.threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
    exec_pool_ = owned_pool_.get();
  }  // threads == 1 (or negative): exec_pool_ stays null, always serial
  InitInstruments();
  InitQos();
  InitTimeSeries();
}

CycleScheduler::~CycleScheduler() = default;

void CycleScheduler::InitInstruments() {
  MetricsRegistry* registry = config_.metrics != nullptr
                                  ? config_.metrics
                                  : MetricsRegistry::GlobalIfEnabled();
  Tracer* tracer =
      config_.tracer != nullptr ? config_.tracer : Tracer::GlobalIfEnabled();
  if (registry == nullptr && tracer == nullptr) return;

  instr_ = std::make_unique<Instruments>();
  instr_->registry = registry;
  instr_->tracer = tracer;

  const std::string scheme(SchemeAbbrev(config_.scheme));
  if (tracer != nullptr) {
    // One trace track per scheduler instance, so concurrent rigs in one
    // process land on separate timeline rows.
    static std::atomic<int> instance{0};
    instr_->tid = tracer->RegisterTrack(
        "sched " + scheme + " #" +
        std::to_string(instance.fetch_add(1, std::memory_order_relaxed)));
  }
  if (registry == nullptr) return;

  const auto labeled = [&](std::string_view family) {
    return LabeledName(family, {{"scheme", scheme}});
  };
  const auto indexed = [&](std::string_view family, std::string_view key,
                           int i) {
    return LabeledName(family,
                       {{"scheme", scheme}, {key, std::to_string(i)}});
  };
  for (int c = 0; c < layout_->num_clusters(); ++c) {
    instr_->cluster_degraded.push_back(registry->GetCounter(
        indexed("ftms_sched_degraded_reads_total", "cluster", c),
        "reads attempted on a failed disk, by cluster"));
    instr_->cluster_reconstruct.push_back(registry->GetCounter(
        indexed("ftms_sched_reconstructions_total", "cluster", c),
        "tracks rebuilt on-the-fly from parity, by cluster"));
  }
  // Borrowed by the inline TryRead path; set only after the vector is
  // fully built (push_back above may reallocate).
  degraded_cells_ = instr_->cluster_degraded.data();
  for (int d = 0; d < disks_->num_disks(); ++d) {
    instr_->disk_busy.push_back(registry->GetCounter(
        indexed("ftms_sched_disk_busy_slots_total", "disk", d),
        "read slots consumed per disk (utilization series)"));
  }
  instr_->cycles = registry->GetCounter(labeled("ftms_sched_cycles_total"),
                                        "scheduling cycles completed");
  instr_->data_reads = registry->GetCounter(
      labeled("ftms_sched_data_reads_total"), "successful data-track reads");
  instr_->parity_reads =
      registry->GetCounter(labeled("ftms_sched_parity_reads_total"),
                           "successful parity-track reads");
  instr_->dropped_reads =
      registry->GetCounter(labeled("ftms_sched_dropped_reads_total"),
                           "reads displaced by slot exhaustion");
  instr_->tracks_delivered =
      registry->GetCounter(labeled("ftms_sched_tracks_delivered_total"),
                           "tracks delivered on time");
  instr_->hiccups = registry->GetCounter(labeled("ftms_sched_hiccups_total"),
                                         "tracks that missed their deadline");
  instr_->admitted =
      registry->GetCounter(labeled("ftms_sched_admitted_streams_total"),
                           "streams admitted by AddStream");
  instr_->admit_rejected =
      registry->GetCounter(labeled("ftms_sched_admission_rejected_total"),
                           "AddStream requests rejected");
  instr_->active_streams = registry->GetGauge(
      labeled("ftms_sched_active_streams"), "streams in the active state");
  instr_->buffer_in_use =
      registry->GetGauge(labeled("ftms_sched_buffer_in_use_tracks"),
                         "buffer-pool occupancy in tracks");
  instr_->buffer_peak =
      registry->GetGauge(labeled("ftms_sched_buffer_peak_tracks"),
                         "buffer-pool high-water mark in tracks");
  instr_->failed_disks = registry->GetGauge(
      labeled("ftms_sched_failed_disks"), "disks currently failed");
  instr_->queue_depth = registry->GetHistogram(
      labeled("ftms_sched_disk_queue_depth"), 0,
      static_cast<double>(slots_per_disk_) + 1, slots_per_disk_ + 1,
      "read slots consumed per disk per cycle");
  instr_->cycle_wall_us = registry->GetHistogram(
      labeled("ftms_sched_cycle_wall_us"), 0, 1e5, 50,
      "wall-clock microseconds per scheduling cycle");
  pool_.BindInstruments(instr_->buffer_in_use, instr_->buffer_peak,
                        registry->GetCounter(
                            labeled("ftms_buffer_failed_acquires_total"),
                            "buffer acquires beyond a finite capacity"));
}

void CycleScheduler::InitQos() {
  journal_ = config_.journal != nullptr ? config_.journal
                                        : EventJournal::GlobalIfEnabled();
  ledger_ = config_.ledger;
  if (ledger_ == nullptr && EventJournal::GlobalEnabled()) {
    owned_ledger_ = std::make_unique<QosLedger>();
    ledger_ = owned_ledger_.get();
  }
  qos_scheme_ = SchemeAbbrev(config_.scheme);
  if (ledger_ != nullptr) {
    if (ledger_->journal() == nullptr) ledger_->set_journal(journal_);
    if (ledger_->slos().empty()) {
      ledger_->SetSlos(DefaultSlos(config_.scheme,
                                   config_.parity_group_size));
    }
    ledger_->BindMetrics(metrics_registry(), qos_scheme_);
  }
  qos_active_ = journal_ != nullptr || ledger_ != nullptr;
}

void CycleScheduler::InitTimeSeries() {
  ts_ = config_.timeseries != nullptr
            ? config_.timeseries
            : TimeSeriesRecorder::GlobalIfEnabled();
  if (ts_ == nullptr) return;
  // Instance-numbered prefix, mirroring the trace-track naming: several
  // rigs sharing one recorder keep distinct series, and the numbering is
  // process-deterministic so dumps stay byte-identical across runs and
  // thread counts.
  static std::atomic<int> instance{0};
  ts_prefix_ =
      std::string(SchemeAbbrev(config_.scheme)) + "." +
      std::to_string(instance.fetch_add(1, std::memory_order_relaxed));
  const std::string base = "sched." + ts_prefix_ + ".";
  ts_degraded_ = ts_->DefineSeries(base + "degraded_reads");
  ts_queue_depth_ = ts_->DefineSeries(base + "disk_queue_depth_mean");
  ts_streams_ = ts_->DefineSeries(base + "active_streams");
  ts_hiccups_ = ts_->DefineSeries(base + "hiccups");
  pool_.BindTimeSeries(ts_, base + "buffer_in_use");
  if (ledger_ != nullptr) {
    ledger_->BindTimeSeries(ts_, "qos." + ts_prefix_);
  }
}

double CycleScheduler::CycleSeconds() const {
  // T_cyc = k' B / b_o; k' depends on the scheme (Section 2).
  const int k_prime = (config_.scheme == Scheme::kStreamingRaid ||
                       config_.scheme == Scheme::kImprovedBandwidth)
                          ? config_.parity_group_size - 1
                          : 1;
  return static_cast<double>(k_prime) * config_.disk.track_mb /
         config_.object_rate_mb_s;
}

StatusOr<StreamId> CycleScheduler::AddStream(const MediaObject& object) {
  const bool servable = object.num_tracks > 0 &&
                        SupportsRate(object.rate_mb_s);
  if (instr_ != nullptr && instr_->registry != nullptr) {
    (servable ? instr_->admitted : instr_->admit_rejected)->Add(1);
  }
  if (!servable && journal_ != nullptr) {
    QosEvent event;
    event.kind = QosEventKind::kAdmissionRejected;
    event.scheme = qos_scheme_;
    event.sim_us = SimTimeMicros();
    event.cycle = cycle_;
    journal_->Append(event);
  }
  if (object.num_tracks <= 0) {
    return Status::InvalidArgument("object has no tracks");
  }
  if (!servable) {
    return Status::InvalidArgument(
        "object rate not servable by this scheduler's cycle structure "
        "(base rate or, where supported, an integer multiple of it)");
  }
  const StreamId id = static_cast<StreamId>(streams_.size());
  const int32_t row = table_.AddRow(object, cycle_);
  streams_.push_back(std::make_unique<Stream>(&table_, row, id));
  DoAddStream(streams_.back().get());
  return id;
}

void CycleScheduler::RunCycle() {
  FTMS_PROF_SCOPE("sched/cycle");
  if (instr_ == nullptr) {
    BeginCycle();
    DoRunCycle();
    pool_.Release(pending_release_);
    pending_release_ = 0;
    mid_cycle_failed_.Clear();
    ++cycle_;
    ++metrics_.cycles;
    if (qos_active_) EndCycleQos();
    if (ts_ != nullptr) SampleTimeSeries();
    return;
  }
  const int64_t cycle_start_us = SimTimeMicros();
  const auto wall_start = std::chrono::steady_clock::now();
  BeginCycle();
  DoRunCycle();
  pool_.Release(pending_release_);
  pending_release_ = 0;
  mid_cycle_failed_.Clear();
  ++cycle_;
  ++metrics_.cycles;
  if (qos_active_) EndCycleQos();
  if (ts_ != nullptr) SampleTimeSeries();
  const double wall_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  SampleCycleInstruments(cycle_start_us, wall_us);
}

void CycleScheduler::EndCycleQos() {
  FTMS_PROF_SCOPE("sched/qos");
  const int64_t completed = cycle_ - 1;
  const int64_t sim_us = SimTimeMicros();  // end of the completed cycle
  if (journal_ != nullptr) {
    if (metrics_.hiccups > journaled_hiccups_) {
      QosEvent event;
      event.kind = QosEventKind::kHiccups;
      event.scheme = qos_scheme_;
      event.sim_us = sim_us;
      event.cycle = completed;
      event.value = metrics_.hiccups - journaled_hiccups_;
      journal_->Append(event);
    }
    journaled_hiccups_ = metrics_.hiccups;
    for (size_t i = 0; i < open_transitions_.size();) {
      if (completed >= open_transitions_[i].second) {
        QosEvent event;
        event.kind = QosEventKind::kDegradedTransitionEnd;
        event.scheme = qos_scheme_;
        event.sim_us = sim_us;
        event.cycle = completed;
        event.cluster = open_transitions_[i].first;
        journal_->Append(event);
        open_transitions_.erase(open_transitions_.begin() +
                                static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  if (ledger_ != nullptr) {
    ledger_->OnCycleEnd(completed, disks_->NumFailed() > 0, qos_scheme_,
                        sim_us, streams_);
  }
}

void CycleScheduler::SampleCycleInstruments(int64_t cycle_start_us,
                                            double wall_us) {
  Instruments& in = *instr_;
  if (in.registry != nullptr) {
    for (size_t d = 0; d < slots_used_.size(); ++d) {
      const int used = slots_used_[d];
      if (used > 0) in.disk_busy[d]->Add(used);
      in.queue_depth->Add(static_cast<double>(used));
    }
    const SchedulerMetrics& m = metrics_;
    in.cycles->Add(m.cycles - in.last.cycles);
    in.data_reads->Add(m.data_reads - in.last.data_reads);
    in.parity_reads->Add(m.parity_reads - in.last.parity_reads);
    in.dropped_reads->Add(m.dropped_reads - in.last.dropped_reads);
    in.tracks_delivered->Add(m.tracks_delivered - in.last.tracks_delivered);
    in.hiccups->Add(m.hiccups - in.last.hiccups);
    in.last = m;
    in.active_streams->Set(static_cast<double>(ActiveStreams()));
    in.failed_disks->Set(static_cast<double>(disks_->NumFailed()));
    in.cycle_wall_us->Add(wall_us);
  }
  if (in.tracer != nullptr) {
    in.tracer->Complete(
        "cycle", "sched", in.tid, cycle_start_us,
        static_cast<int64_t>(CycleSeconds() * 1e6), "active_streams",
        static_cast<double>(ActiveStreams()), "failed_disks",
        static_cast<double>(disks_->NumFailed()));
  }
}

void CycleScheduler::SampleTimeSeries() {
  const int64_t t = SimTimeMicros();  // end of the completed cycle
  const SchedulerMetrics& m = metrics_;
  ts_->Append(ts_degraded_, t,
              static_cast<double>(m.failed_reads - ts_last_.failed_reads));
  int64_t used_total = 0;
  for (const int used : slots_used_) used_total += used;
  ts_->Append(ts_queue_depth_, t,
              slots_used_.empty()
                  ? 0.0
                  : static_cast<double>(used_total) /
                        static_cast<double>(slots_used_.size()));
  ts_->Append(ts_streams_, t, static_cast<double>(ActiveStreams()));
  ts_->Append(ts_hiccups_, t,
              static_cast<double>(m.hiccups - ts_last_.hiccups));
  ts_last_ = m;
  pool_.SampleTimeSeries(t);
  // Pull-model registry series (if any were registered on this recorder)
  // sample at the same serial point.
  ts_->Sample(t);
}

void CycleScheduler::RunCycles(int n) {
  for (int i = 0; i < n; ++i) RunCycle();
}

void CycleScheduler::BeginCycle() {
  slots_used_.assign(slots_used_.size(), 0);
}

void CycleScheduler::OnDiskFailed(int disk, bool mid_cycle) {
  disks_->FailDisk(disk).ok();
  if (mid_cycle) mid_cycle_failed_.Add(disk);
  if (instr_ != nullptr && instr_->tracer != nullptr) {
    instr_->tracer->Instant("disk_failed", "failure", instr_->tid,
                            SimTimeMicros(), "disk",
                            static_cast<double>(disk), "mid_cycle",
                            mid_cycle ? 1 : 0);
    // The scheme-specific transition plan (NC's C-cycle shift, IB's
    // right-shift) is computed inside DoOnDiskFailed; mark its onset.
    instr_->tracer->Instant("degraded_transition", "failure", instr_->tid,
                            SimTimeMicros(), "cluster",
                            static_cast<double>(disks_->ClusterOf(disk)));
  }
  if (journal_ != nullptr) {
    const int cluster = disks_->ClusterOf(disk);
    QosEvent event;
    event.scheme = qos_scheme_;
    event.sim_us = SimTimeMicros();
    event.cycle = cycle_;
    event.disk = disk;
    event.cluster = cluster;
    event.kind = QosEventKind::kDiskFailed;
    event.value = mid_cycle ? 1 : 0;
    journal_->Append(event);
    // The degraded transition is bounded by C cycles for every scheme
    // (NC's shift window, Section 3; SR/SG/IB settle within one group
    // rotation); the end event fires at that fold or on earlier repair.
    event.kind = QosEventKind::kDegradedTransitionStart;
    event.disk = -1;
    event.value = config_.parity_group_size;
    journal_->Append(event);
    open_transitions_.emplace_back(cluster,
                                   cycle_ + config_.parity_group_size);
  }
  if (ledger_ != nullptr) ledger_->OnFailure(cycle_, mid_cycle);
  DoOnDiskFailed(disk);
}

void CycleScheduler::OnDiskRepaired(int disk) {
  disks_->RepairDisk(disk).ok();
  if (instr_ != nullptr && instr_->tracer != nullptr) {
    instr_->tracer->Instant("disk_repaired", "failure", instr_->tid,
                            SimTimeMicros(), "disk",
                            static_cast<double>(disk));
  }
  if (journal_ != nullptr) {
    const int cluster = disks_->ClusterOf(disk);
    QosEvent event;
    event.scheme = qos_scheme_;
    event.sim_us = SimTimeMicros();
    event.cycle = cycle_;
    event.disk = disk;
    event.cluster = cluster;
    event.kind = QosEventKind::kDiskRepaired;
    journal_->Append(event);
    // A repair closes the cluster's transition window early.
    for (size_t i = 0; i < open_transitions_.size();) {
      if (open_transitions_[i].first == cluster) {
        event.kind = QosEventKind::kDegradedTransitionEnd;
        event.disk = -1;
        event.value = 1;  // cut short by the repair
        journal_->Append(event);
        open_transitions_.erase(open_transitions_.begin() +
                                static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  DoOnDiskRepaired(disk);
}

void CycleScheduler::CountReconstruction(int cluster, int64_t n) {
  if (instr_ != nullptr && instr_->registry != nullptr) {
    instr_->cluster_reconstruct[static_cast<size_t>(cluster)]->Add(n);
  }
}

void CycleScheduler::CountDegradedRead(int cluster, int64_t n) {
  if (instr_ != nullptr && instr_->registry != nullptr) {
    instr_->cluster_degraded[static_cast<size_t>(cluster)]->Add(n);
  }
}

MetricsRegistry* CycleScheduler::metrics_registry() const {
  return instr_ != nullptr ? instr_->registry : nullptr;
}

Tracer* CycleScheduler::tracer() const {
  return instr_ != nullptr ? instr_->tracer : nullptr;
}

int32_t CycleScheduler::trace_tid() const {
  return instr_ != nullptr ? instr_->tid : -1;
}

ThreadPool* CycleScheduler::CyclePool() const {
  if (exec_pool_ == nullptr) return nullptr;
  return ActiveStreams() >= kMinActiveStreamsForParallel ? exec_pool_
                                                         : nullptr;
}

void CycleScheduler::ResetShardCtxs(int64_t n) {
  if (static_cast<int64_t>(shard_ctx_.size()) < n) {
    shard_ctx_.resize(static_cast<size_t>(n));
  }
  for (int64_t i = 0; i < n; ++i) shard_ctx_[static_cast<size_t>(i)].Reset();
}

void CycleScheduler::FoldShardCtxs(int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    ShardCtx& ctx = shard_ctx_[static_cast<size_t>(i)];
    FoldMetrics(metrics_, ctx.metrics);
    pending_release_ += ctx.pending_release;
    const Status status = pool_.AccumulateShard(ctx.pool);
    assert(status.ok() && "sharded buffer accounting exceeded capacity");
    (void)status;
  }
}

void CycleScheduler::ParallelOverClusters(
    const std::function<void(ShardCtx&, int, int)>& kernel) {
  const int clusters = layout_->num_clusters();
  ThreadPool* pool = CyclePool();
  const int64_t chunks = ParallelChunkCount(pool, 0, clusters);
  if (chunks == 0) return;
  ResetShardCtxs(chunks);
  ParallelForChunks(pool, 0, clusters,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      kernel(shard_ctx_[static_cast<size_t>(chunk)],
                             static_cast<int>(lo), static_cast<int>(hi));
                    });
  FoldShardCtxs(chunks);
}

void CycleScheduler::RunClusterSharded(
    const std::function<int(const Stream&)>& cluster_key,
    const std::function<void(ShardCtx&, std::span<Stream* const>)>&
        kernel) {
  const int clusters = layout_->num_clusters();
  if (cluster_streams_.size() < static_cast<size_t>(clusters)) {
    cluster_streams_.resize(static_cast<size_t>(clusters));
  }
  for (auto& bucket : cluster_streams_) bucket.clear();
  active_streams_.clear();

  // A single chunk would execute every bucket on one thread anyway, so
  // skip the keying/bucketing pass entirely and take the admission-order
  // serial path below — with one worker (or a one-cluster layout) the
  // sharded cycle then costs exactly what the pre-sharding code did.
  ThreadPool* pool = CyclePool();
  if (pool != nullptr && ParallelChunkCount(pool, 0, clusters) < 2) {
    pool = nullptr;
  }
  bool cross_cluster = false;
  const StreamState* state = table_.state();
  const size_t n = streams_.size();
  for (size_t i = 0; i < n; ++i) {
    // Every kernel skips non-active streams; dropping them here keeps the
    // shards dense and is behavior-identical. The state column scan makes
    // this admission-order sweep branch on one dense byte array.
    if (state[i] != StreamState::kActive) continue;
    Stream* stream = streams_[i].get();
    active_streams_.push_back(stream);
    if (pool == nullptr || cross_cluster) continue;
    const int key = cluster_key(*stream);
    if (key < 0) {
      // This cycle some stream's reads span clusters; the exact-partition
      // invariant the parallel schedule relies on is gone, so the whole
      // cycle falls back to the serial shard below.
      cross_cluster = true;
      continue;
    }
    assert(key < clusters);
    cluster_streams_[static_cast<size_t>(key)].push_back(stream);
  }
  if (active_streams_.empty()) return;

  if (pool == nullptr || cross_cluster) {
    // One shard over all active streams in admission order: exactly the
    // pre-sharding serial execution.
    ResetShardCtxs(1);
    kernel(shard_ctx_[0], std::span<Stream* const>(active_streams_));
    FoldShardCtxs(1);
    return;
  }
  const int64_t chunks = ParallelChunkCount(pool, 0, clusters);
  ResetShardCtxs(chunks);
  ParallelForChunks(
      pool, 0, clusters, [&](int64_t chunk, int64_t lo, int64_t hi) {
        ShardCtx& ctx = shard_ctx_[static_cast<size_t>(chunk)];
        for (int64_t c = lo; c < hi; ++c) {
          const auto& bucket = cluster_streams_[static_cast<size_t>(c)];
          if (!bucket.empty()) {
            kernel(ctx, std::span<Stream* const>(bucket));
          }
        }
      });
  FoldShardCtxs(chunks);
}

Status CycleScheduler::PauseStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kActive) {
    return Status::FailedPrecondition("stream is not active");
  }
  stream->Pause();
  return Status::Ok();
}

Status CycleScheduler::ResumeStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kPaused) {
    return Status::FailedPrecondition("stream is not paused");
  }
  stream->Resume();
  return Status::Ok();
}

Status CycleScheduler::StopStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kActive &&
      stream->state() != StreamState::kPaused) {
    return Status::FailedPrecondition("stream already finished");
  }
  stream->Terminate();
  ++metrics_.terminated_streams;
  DoOnStreamStopped(stream);
  return Status::Ok();
}

Stream* CycleScheduler::FindStream(StreamId id) {
  if (id < 0 || static_cast<size_t>(id) >= streams_.size()) return nullptr;
  return streams_[static_cast<size_t>(id)].get();
}

int CycleScheduler::ActiveStreams() const {
  const StreamState* state = table_.state();
  const int32_t rows = table_.size();
  int n = 0;
  for (int32_t i = 0; i < rows; ++i) {
    if (state[i] == StreamState::kActive) ++n;
  }
  return n;
}

int CycleScheduler::LiveStreams() const {
  const StreamState* state = table_.state();
  const int32_t rows = table_.size();
  int n = 0;
  for (int32_t i = 0; i < rows; ++i) {
    if (state[i] == StreamState::kActive ||
        state[i] == StreamState::kPaused) {
      ++n;
    }
  }
  return n;
}

int64_t CycleScheduler::TotalHiccups() const {
  const int32_t rows = table_.size();
  int64_t n = 0;
  for (int32_t i = 0; i < rows; ++i) {
    n += static_cast<int64_t>(table_.hiccups(i).size());
  }
  return n;
}

}  // namespace ftms
