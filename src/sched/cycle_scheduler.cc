#include "sched/cycle_scheduler.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace ftms {

CycleScheduler::CycleScheduler(const SchedulerConfig& config,
                               DiskArray* disks, const Layout* layout)
    : disks_(disks), layout_(layout), config_(config), pool_(0) {
  assert(disks_ != nullptr);
  assert(layout_ != nullptr);
  slots_per_disk_ = config_.slots_per_disk > 0
                        ? config_.slots_per_disk
                        : config_.disk.TracksPerCycle(CycleSeconds());
  slots_used_.assign(static_cast<size_t>(disks_->num_disks()), 0);
  mid_cycle_failed_.assign(static_cast<size_t>(disks_->num_disks()), 0);
}

double CycleScheduler::CycleSeconds() const {
  // T_cyc = k' B / b_o; k' depends on the scheme (Section 2).
  const int k_prime = (config_.scheme == Scheme::kStreamingRaid ||
                       config_.scheme == Scheme::kImprovedBandwidth)
                          ? config_.parity_group_size - 1
                          : 1;
  return static_cast<double>(k_prime) * config_.disk.track_mb /
         config_.object_rate_mb_s;
}

StatusOr<StreamId> CycleScheduler::AddStream(const MediaObject& object) {
  if (object.num_tracks <= 0) {
    return Status::InvalidArgument("object has no tracks");
  }
  if (!SupportsRate(object.rate_mb_s)) {
    return Status::InvalidArgument(
        "object rate not servable by this scheduler's cycle structure "
        "(base rate or, where supported, an integer multiple of it)");
  }
  const StreamId id = static_cast<StreamId>(streams_.size());
  streams_.push_back(std::make_unique<Stream>(id, object));
  DoAddStream(streams_.back().get());
  return id;
}

void CycleScheduler::RunCycle() {
  BeginCycle();
  DoRunCycle();
  pool_.Release(pending_release_);
  pending_release_ = 0;
  if (mid_cycle_count_ > 0) {
    std::fill(mid_cycle_failed_.begin(), mid_cycle_failed_.end(), 0);
    mid_cycle_count_ = 0;
  }
  ++cycle_;
  ++metrics_.cycles;
}

void CycleScheduler::RunCycles(int n) {
  for (int i = 0; i < n; ++i) RunCycle();
}

void CycleScheduler::BeginCycle() {
  slots_used_.assign(slots_used_.size(), 0);
}

void CycleScheduler::OnDiskFailed(int disk, bool mid_cycle) {
  disks_->FailDisk(disk).ok();
  if (mid_cycle && !mid_cycle_failed_[static_cast<size_t>(disk)]) {
    mid_cycle_failed_[static_cast<size_t>(disk)] = 1;
    ++mid_cycle_count_;
  }
  DoOnDiskFailed(disk);
}

void CycleScheduler::OnDiskRepaired(int disk) {
  disks_->RepairDisk(disk).ok();
  DoOnDiskRepaired(disk);
}

bool CycleScheduler::DiskUp(int disk) const {
  return disks_->disk(disk).operational();
}

bool CycleScheduler::FailedMidCycle(int disk) const {
  return mid_cycle_failed_[static_cast<size_t>(disk)] != 0;
}

int CycleScheduler::FreeSlots(int disk) const {
  return slots_per_disk_ - slots_used_[static_cast<size_t>(disk)];
}

CycleScheduler::ReadOutcome CycleScheduler::TryRead(int disk,
                                                    bool is_parity) {
  if (FreeSlots(disk) <= 0) {
    ++metrics_.dropped_reads;
    return ReadOutcome::kNoSlot;
  }
  ++slots_used_[static_cast<size_t>(disk)];
  if (!disks_->disk(disk).Read(1)) {
    ++metrics_.failed_reads;
    return ReadOutcome::kFailedDisk;
  }
  if (is_parity) {
    ++metrics_.parity_reads;
  } else {
    ++metrics_.data_reads;
  }
  return ReadOutcome::kOk;
}

void CycleScheduler::DeliverTrack(Stream* stream, bool on_time) {
  stream->Deliver(cycle_, on_time);
  if (on_time) {
    ++metrics_.tracks_delivered;
  } else {
    ++metrics_.hiccups;
  }
}

Status CycleScheduler::PauseStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kActive) {
    return Status::FailedPrecondition("stream is not active");
  }
  stream->Pause();
  return Status::Ok();
}

Status CycleScheduler::ResumeStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kPaused) {
    return Status::FailedPrecondition("stream is not paused");
  }
  stream->Resume();
  return Status::Ok();
}

Status CycleScheduler::StopStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kActive &&
      stream->state() != StreamState::kPaused) {
    return Status::FailedPrecondition("stream already finished");
  }
  stream->Terminate();
  ++metrics_.terminated_streams;
  DoOnStreamStopped(stream);
  return Status::Ok();
}

Stream* CycleScheduler::FindStream(StreamId id) {
  if (id < 0 || static_cast<size_t>(id) >= streams_.size()) return nullptr;
  return streams_[static_cast<size_t>(id)].get();
}

int CycleScheduler::ActiveStreams() const {
  int n = 0;
  for (const auto& s : streams_) {
    if (s->state() == StreamState::kActive) ++n;
  }
  return n;
}

int CycleScheduler::LiveStreams() const {
  int n = 0;
  for (const auto& s : streams_) {
    if (s->state() == StreamState::kActive ||
        s->state() == StreamState::kPaused) {
      ++n;
    }
  }
  return n;
}

int64_t CycleScheduler::TotalHiccups() const {
  int64_t n = 0;
  for (const auto& s : streams_) n += s->hiccup_count();
  return n;
}

}  // namespace ftms
