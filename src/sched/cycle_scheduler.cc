#include "sched/cycle_scheduler.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace ftms {

namespace {

// Below this many active streams a cycle runs inline: the pool dispatch
// (queue + wakeup + completion wait) costs more than the cycle itself.
// The guard reads only scheduler state, so the serial/parallel decision —
// and therefore the output — is identical at every thread count.
constexpr int kMinActiveStreamsForParallel = 128;

// Folds one shard's counters into the shared metrics. Every field is a
// sum except max_shift_depth (a running max); both folds are commutative
// and associative, so chunk-granularity scratch stays thread-count
// invariant.
void FoldMetrics(SchedulerMetrics& into, const SchedulerMetrics& shard) {
  into.cycles += shard.cycles;
  into.data_reads += shard.data_reads;
  into.parity_reads += shard.parity_reads;
  into.failed_reads += shard.failed_reads;
  into.dropped_reads += shard.dropped_reads;
  into.tracks_delivered += shard.tracks_delivered;
  into.hiccups += shard.hiccups;
  into.reconstructed += shard.reconstructed;
  into.terminated_streams += shard.terminated_streams;
  into.degradation_events += shard.degradation_events;
  into.shift_cascades += shard.shift_cascades;
  into.max_shift_depth =
      std::max(into.max_shift_depth, shard.max_shift_depth);
  into.verified_tracks += shard.verified_tracks;
  into.verify_failures += shard.verify_failures;
}

}  // namespace

CycleScheduler::CycleScheduler(const SchedulerConfig& config,
                               DiskArray* disks, const Layout* layout)
    : disks_(disks), layout_(layout), config_(config), pool_(0),
      mid_cycle_failed_(disks != nullptr ? disks->num_disks() : 0) {
  assert(disks_ != nullptr);
  assert(layout_ != nullptr);
  slots_per_disk_ = config_.slots_per_disk > 0
                        ? config_.slots_per_disk
                        : config_.disk.TracksPerCycle(CycleSeconds());
  slots_used_.assign(static_cast<size_t>(disks_->num_disks()), 0);
  if (config_.threads == 0) {
    exec_pool_ = &ThreadPool::Shared();
  } else if (config_.threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
    exec_pool_ = owned_pool_.get();
  }  // threads == 1 (or negative): exec_pool_ stays null, always serial
}

double CycleScheduler::CycleSeconds() const {
  // T_cyc = k' B / b_o; k' depends on the scheme (Section 2).
  const int k_prime = (config_.scheme == Scheme::kStreamingRaid ||
                       config_.scheme == Scheme::kImprovedBandwidth)
                          ? config_.parity_group_size - 1
                          : 1;
  return static_cast<double>(k_prime) * config_.disk.track_mb /
         config_.object_rate_mb_s;
}

StatusOr<StreamId> CycleScheduler::AddStream(const MediaObject& object) {
  if (object.num_tracks <= 0) {
    return Status::InvalidArgument("object has no tracks");
  }
  if (!SupportsRate(object.rate_mb_s)) {
    return Status::InvalidArgument(
        "object rate not servable by this scheduler's cycle structure "
        "(base rate or, where supported, an integer multiple of it)");
  }
  const StreamId id = static_cast<StreamId>(streams_.size());
  streams_.push_back(std::make_unique<Stream>(id, object));
  DoAddStream(streams_.back().get());
  return id;
}

void CycleScheduler::RunCycle() {
  BeginCycle();
  DoRunCycle();
  pool_.Release(pending_release_);
  pending_release_ = 0;
  mid_cycle_failed_.Clear();
  ++cycle_;
  ++metrics_.cycles;
}

void CycleScheduler::RunCycles(int n) {
  for (int i = 0; i < n; ++i) RunCycle();
}

void CycleScheduler::BeginCycle() {
  slots_used_.assign(slots_used_.size(), 0);
}

void CycleScheduler::OnDiskFailed(int disk, bool mid_cycle) {
  disks_->FailDisk(disk).ok();
  if (mid_cycle) mid_cycle_failed_.Add(disk);
  DoOnDiskFailed(disk);
}

void CycleScheduler::OnDiskRepaired(int disk) {
  disks_->RepairDisk(disk).ok();
  DoOnDiskRepaired(disk);
}

bool CycleScheduler::DiskUp(int disk) const {
  return disks_->disk(disk).operational();
}

bool CycleScheduler::FailedMidCycle(int disk) const {
  return mid_cycle_failed_.Contains(disk);
}

int CycleScheduler::FreeSlots(int disk) const {
  return slots_per_disk_ - slots_used_[static_cast<size_t>(disk)];
}

CycleScheduler::ReadOutcome CycleScheduler::TryReadImpl(
    SchedulerMetrics& metrics, int disk, bool is_parity) {
  if (FreeSlots(disk) <= 0) {
    ++metrics.dropped_reads;
    return ReadOutcome::kNoSlot;
  }
  ++slots_used_[static_cast<size_t>(disk)];
  if (!disks_->disk(disk).Read(1)) {
    ++metrics.failed_reads;
    return ReadOutcome::kFailedDisk;
  }
  if (is_parity) {
    ++metrics.parity_reads;
  } else {
    ++metrics.data_reads;
  }
  return ReadOutcome::kOk;
}

void CycleScheduler::DeliverTrackImpl(SchedulerMetrics& metrics,
                                      Stream* stream, bool on_time) {
  stream->Deliver(cycle_, on_time);
  if (on_time) {
    ++metrics.tracks_delivered;
  } else {
    ++metrics.hiccups;
  }
}

ThreadPool* CycleScheduler::CyclePool() const {
  if (exec_pool_ == nullptr) return nullptr;
  return ActiveStreams() >= kMinActiveStreamsForParallel ? exec_pool_
                                                         : nullptr;
}

void CycleScheduler::ResetShardCtxs(int64_t n) {
  if (static_cast<int64_t>(shard_ctx_.size()) < n) {
    shard_ctx_.resize(static_cast<size_t>(n));
  }
  for (int64_t i = 0; i < n; ++i) shard_ctx_[static_cast<size_t>(i)].Reset();
}

void CycleScheduler::FoldShardCtxs(int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    ShardCtx& ctx = shard_ctx_[static_cast<size_t>(i)];
    FoldMetrics(metrics_, ctx.metrics);
    pending_release_ += ctx.pending_release;
    const Status status = pool_.AccumulateShard(ctx.pool);
    assert(status.ok() && "sharded buffer accounting exceeded capacity");
    (void)status;
  }
}

void CycleScheduler::ParallelOverClusters(
    const std::function<void(ShardCtx&, int, int)>& kernel) {
  const int clusters = layout_->num_clusters();
  ThreadPool* pool = CyclePool();
  const int64_t chunks = ParallelChunkCount(pool, 0, clusters);
  if (chunks == 0) return;
  ResetShardCtxs(chunks);
  ParallelForChunks(pool, 0, clusters,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      kernel(shard_ctx_[static_cast<size_t>(chunk)],
                             static_cast<int>(lo), static_cast<int>(hi));
                    });
  FoldShardCtxs(chunks);
}

void CycleScheduler::RunClusterSharded(
    const std::function<int(const Stream&)>& cluster_key,
    const std::function<void(ShardCtx&, std::span<Stream* const>)>&
        kernel) {
  const int clusters = layout_->num_clusters();
  if (cluster_streams_.size() < static_cast<size_t>(clusters)) {
    cluster_streams_.resize(static_cast<size_t>(clusters));
  }
  for (auto& bucket : cluster_streams_) bucket.clear();
  active_streams_.clear();

  // A single chunk would execute every bucket on one thread anyway, so
  // skip the keying/bucketing pass entirely and take the admission-order
  // serial path below — with one worker (or a one-cluster layout) the
  // sharded cycle then costs exactly what the pre-sharding code did.
  ThreadPool* pool = CyclePool();
  if (pool != nullptr && ParallelChunkCount(pool, 0, clusters) < 2) {
    pool = nullptr;
  }
  bool cross_cluster = false;
  for (const auto& owned : streams_) {
    Stream* stream = owned.get();
    // Every kernel skips non-active streams; dropping them here keeps the
    // shards dense and is behavior-identical.
    if (stream->state() != StreamState::kActive) continue;
    active_streams_.push_back(stream);
    if (pool == nullptr || cross_cluster) continue;
    const int key = cluster_key(*stream);
    if (key < 0) {
      // This cycle some stream's reads span clusters; the exact-partition
      // invariant the parallel schedule relies on is gone, so the whole
      // cycle falls back to the serial shard below.
      cross_cluster = true;
      continue;
    }
    assert(key < clusters);
    cluster_streams_[static_cast<size_t>(key)].push_back(stream);
  }
  if (active_streams_.empty()) return;

  if (pool == nullptr || cross_cluster) {
    // One shard over all active streams in admission order: exactly the
    // pre-sharding serial execution.
    ResetShardCtxs(1);
    kernel(shard_ctx_[0], std::span<Stream* const>(active_streams_));
    FoldShardCtxs(1);
    return;
  }
  const int64_t chunks = ParallelChunkCount(pool, 0, clusters);
  ResetShardCtxs(chunks);
  ParallelForChunks(
      pool, 0, clusters, [&](int64_t chunk, int64_t lo, int64_t hi) {
        ShardCtx& ctx = shard_ctx_[static_cast<size_t>(chunk)];
        for (int64_t c = lo; c < hi; ++c) {
          const auto& bucket = cluster_streams_[static_cast<size_t>(c)];
          if (!bucket.empty()) {
            kernel(ctx, std::span<Stream* const>(bucket));
          }
        }
      });
  FoldShardCtxs(chunks);
}

Status CycleScheduler::PauseStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kActive) {
    return Status::FailedPrecondition("stream is not active");
  }
  stream->Pause();
  return Status::Ok();
}

Status CycleScheduler::ResumeStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kPaused) {
    return Status::FailedPrecondition("stream is not paused");
  }
  stream->Resume();
  return Status::Ok();
}

Status CycleScheduler::StopStream(StreamId id) {
  Stream* stream = FindStream(id);
  if (stream == nullptr) return Status::NotFound("unknown stream");
  if (stream->state() != StreamState::kActive &&
      stream->state() != StreamState::kPaused) {
    return Status::FailedPrecondition("stream already finished");
  }
  stream->Terminate();
  ++metrics_.terminated_streams;
  DoOnStreamStopped(stream);
  return Status::Ok();
}

Stream* CycleScheduler::FindStream(StreamId id) {
  if (id < 0 || static_cast<size_t>(id) >= streams_.size()) return nullptr;
  return streams_[static_cast<size_t>(id)].get();
}

int CycleScheduler::ActiveStreams() const {
  int n = 0;
  for (const auto& s : streams_) {
    if (s->state() == StreamState::kActive) ++n;
  }
  return n;
}

int CycleScheduler::LiveStreams() const {
  int n = 0;
  for (const auto& s : streams_) {
    if (s->state() == StreamState::kActive ||
        s->state() == StreamState::kPaused) {
      ++n;
    }
  }
  return n;
}

int64_t CycleScheduler::TotalHiccups() const {
  int64_t n = 0;
  for (const auto& s : streams_) n += s->hiccup_count();
  return n;
}

}  // namespace ftms
