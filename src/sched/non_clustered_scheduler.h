#ifndef FTMS_SCHED_NON_CLUSTERED_SCHEDULER_H_
#define FTMS_SCHED_NON_CLUSTERED_SCHEDULER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "buffer/buffer_pool.h"
#include "sched/cycle_scheduler.h"

namespace ftms {

// The Non-clustered scheme of Section 3.
//
// Normal mode reads only the data needed for the next cycle (k = k' = 1,
// two buffers per stream, equation (14)): no parity is read and no group
// is held in memory, which is where the scheme's large memory saving over
// Staggered-group comes from — at the cost of a weaker failure mode.
//
// When a data disk of a cluster fails, the cluster switches to degraded
// mode: streams ENTERING a parity group on that cluster read it
// group-at-a-time (like Staggered-group) using memory borrowed from the
// shared buffer-server pool, and the block on the failed disk is
// reconstructed from parity. Streams caught MID-group by the failure lose
// tracks (their already-delivered prefix is gone, so the lost block cannot
// be rebuilt), and the transition itself displaces scheduled reads when
// disk slots fill up — the paper's (C-k)(C-k+1)/2 switchover losses.
// Two transition strategies are implemented (Figures 6 and 7):
//
//  * kImmediateShift — an entering stream reads its whole group at once;
//    the burst displaces lower-priority scheduled reads.
//  * kDeferredRead  — an entering stream keeps reading one track per cycle,
//    folds delivered tracks into a running XOR (ParityAccumulator
//    semantics), and only when the failed position comes due reads the
//    rest of the group plus parity, reconstructing just in time. Fewer
//    reads move, so fewer tracks are displaced.
class NonClusteredScheduler : public CycleScheduler {
 public:
  NonClusteredScheduler(const SchedulerConfig& config, DiskArray* disks,
                        const Layout* layout);

  const BufferServerPool& buffer_servers() const { return servers_; }
  bool ClusterDegraded(int cluster) const;

  // Multi-rate support (extension): with one-track cycles, a stream
  // whose rate is an integer multiple m of the base rate is served by
  // delivering (and fetching) m tracks per cycle — e.g. MPEG-2 = 3x
  // MPEG-1 with the default rates. Consecutive tracks land on
  // consecutive disks, so the extra load spreads.
  bool SupportsRate(double rate_mb_s) const override;

 protected:
  void DoRunCycle() override;
  void DoAddStream(Stream* stream) override;
  void DoOnDiskFailed(int disk) override;
  void DoOnDiskRepaired(int disk) override;
  void DoOnStreamStopped(Stream* stream) override;

 private:
  // Set of absolute object tracks a stream holds in memory. A stream
  // buffers at most one parity group plus a rate-multiplier's worth of
  // staged tracks (~C + 16), so an unsorted flat vector with linear scans
  // beats a node-based set and — once Reserve()d at admission — never
  // allocates on the per-cycle path.
  class SmallTrackSet {
   public:
    void Reserve(size_t n) { tracks_.reserve(n); }
    bool Contains(int64_t t) const {
      return std::find(tracks_.begin(), tracks_.end(), t) != tracks_.end();
    }
    // Returns true when `t` was newly inserted.
    bool Insert(int64_t t) {
      if (Contains(t)) return false;
      tracks_.push_back(t);
      return true;
    }
    // Returns true when `t` was present (and is now removed).
    bool Erase(int64_t t) {
      auto it = std::find(tracks_.begin(), tracks_.end(), t);
      if (it == tracks_.end()) return false;
      *it = tracks_.back();
      tracks_.pop_back();
      return true;
    }
    int64_t size() const { return static_cast<int64_t>(tracks_.size()); }
    void Clear() { tracks_.clear(); }

   private:
    std::vector<int64_t> tracks_;
  };

  struct NcState {
    bool started = false;
    // Rate multiplier of the stream, resolved once at admission (the
    // floating-point round is off the per-cycle path).
    int multiplier = 1;
    SmallTrackSet buffered;  // absolute object tracks in memory
    // Deferred-reconstruction state for the current group:
    int64_t acc_group = -1;  // group whose delivered prefix is accumulated
    int acc_prefix = 0;      // leading positions folded into the XOR
    bool acc_held = false;   // one buffer held for the running XOR
  };

  // Index of the first failed data disk in `cluster`, or -1 when no data
  // disk is down. Reconstruction requires no more failed data disks than
  // operational parity disks (one for NC, up to two for the dual-parity
  // NC-2, which repairs through the P+Q codec).
  int FailedDataIndex(int cluster) const;
  int NumFailedData(int cluster) const;
  // Operational parity disks of the cluster (0..1 for NC, 0..2 for NC-2).
  int ParityDisksUp(int cluster) const;
  bool CanReconstruct(int cluster) const;

  // The first track due for delivery next cycle (the read target of
  // normal NC operation, k = k' = 1), or -1 past end of object. Streams
  // at m-times the base rate are due m consecutive tracks.
  int64_t DueTrack(const Stream& stream, const NcState& st) const;

  // Rate multiplier of the stream (1 for base-rate streams).
  int RateMultiplier(const Stream& stream) const;

  void BufferTrack(ShardCtx& ctx, NcState* st, int64_t track);
  // The cluster all of this stream's reads land on this cycle, or -1 when
  // a multi-rate burst spans clusters (whole cycle falls back to one
  // serial shard).
  int ShardCluster(const Stream& stream) const;
  void DeliverStream(ShardCtx& ctx, Stream* stream, NcState* st);
  void DeliverOneTrack(ShardCtx& ctx, Stream* stream, NcState* st);
  // High-priority group reads (degraded-cluster entries / reconstruction
  // deadlines), then low-priority single-track reads.
  void GroupReadStream(ShardCtx& ctx, Stream* stream, NcState* st);
  void NormalReadStream(ShardCtx& ctx, Stream* stream, NcState* st);

  // Reads all unbuffered positions of the group plus parity, now; returns
  // through *st. Used by the immediate strategy at group entry and by the
  // deferred strategy at the reconstruction deadline.
  void ReadGroupNow(ShardCtx& ctx, Stream* stream, NcState* st,
                    int64_t group, bool with_server);

  std::vector<NcState> state_;
  BufferServerPool servers_;
  std::vector<bool> server_attached_;  // per cluster
};

}  // namespace ftms

#endif  // FTMS_SCHED_NON_CLUSTERED_SCHEDULER_H_
