#ifndef FTMS_SCHED_STREAMING_RAID_SCHEDULER_H_
#define FTMS_SCHED_STREAMING_RAID_SCHEDULER_H_

#include <vector>

#include "parity/parity.h"
#include "sched/cycle_scheduler.h"
#include "verify/datapath.h"

namespace ftms {

// The Streaming RAID scheme of Section 2 (after Tobagi et al. [11]).
//
// Every active stream reads one ENTIRE parity group (C-1 data tracks plus
// the parity track) per cycle and transmits it during the next cycle
// (k = k' = C-1). Because the parity block is always in memory together
// with the rest of the group, a single disk failure per cluster is masked
// with no hiccup — even one striking in the middle of a cycle — at the
// price of 2C buffer tracks per stream (equation (12)) and a 1/C
// bandwidth reservation.
//
// On a dual-parity (SR-2) layout the same scheduler reads C-2 data
// tracks plus the P and Q parity tracks per group and masks ANY two
// concurrent failures inside a cluster: the missing blocks are repaired
// through the GF(2^8) P+Q codec (parity/parity.h) instead of the plain
// XOR fold. The per-stream buffer footprint stays 2C.
class StreamingRaidScheduler : public CycleScheduler {
 public:
  StreamingRaidScheduler(const SchedulerConfig& config, DiskArray* disks,
                         const Layout* layout);

 protected:
  void DoRunCycle() override;
  void DoAddStream(Stream* stream) override;
  void DoOnStreamStopped(Stream* stream) override;

 private:
  // A parity group read in the previous cycle, now being delivered.
  struct GroupBuffer {
    bool ready = false;             // a group is buffered for delivery
    int64_t first_track = 0;        // first object track of the group
    int tracks = 0;                 // data tracks in the group (final group
                                    // of an object may be short)
    int missing = 0;                // data positions that failed to read
    std::vector<uint8_t> have;      // per position: data track read OK
                                    // (byte flags: indexed without the
                                    // vector<bool> bit-twiddling)
    bool parity_ok = false;
    bool q_ok = false;              // dual-parity layouts: Q track read OK
    int64_t buffered_tracks = 0;    // buffer-pool accounting for release
    // Integrity mode: the actual bytes carried through the pipeline.
    std::vector<Block> data;        // per position (empty when not read)
    Block parity;                   // P block
    Block qparity;                  // Q block (dual-parity layouts)
  };

  // Bytes per track in integrity mode: small, so tests stay fast while
  // still exercising real XOR reconstruction.
  static constexpr size_t kVerifyBlockBytes = 64;

  // Per-shard datapath scratch (integrity mode): synthesis targets and
  // the multi-source pointer batch reused across tracks so the verify
  // pipeline never allocates per track.
  struct VerifyScratch {
    Block block;
    DegradedReadScratch parity_scratch;
    std::vector<const uint8_t*> srcs;
    std::vector<int> missing_units;  // dual-parity codec erasure list
  };

  // Repairs the buffered group's missing bytes in place (integrity mode):
  // XOR through P for single-parity layouts, the P+Q codec for dual-
  // parity. Returns false when the repair could not run (codec error).
  bool RepairGroupBytes(GroupBuffer* buf, VerifyScratch* scratch);

  // The cluster every read of `stream` lands on this cycle: the group
  // being fetched after delivery (all C-1 data disks plus the parity disk
  // of a group share one cluster in this layout).
  int ShardCluster(const Stream& stream) const;

  void DeliverGroup(ShardCtx& ctx, Stream* stream, GroupBuffer* buf,
                    VerifyScratch* scratch);
  void ReadNextGroup(ShardCtx& ctx, Stream* stream, GroupBuffer* buf,
                     VerifyScratch* scratch);

  std::vector<GroupBuffer> state_;  // indexed by StreamId
};

}  // namespace ftms

#endif  // FTMS_SCHED_STREAMING_RAID_SCHEDULER_H_
