#include "sched/streaming_raid_scheduler.h"

#include <algorithm>
#include <cassert>

#include "verify/datapath.h"

namespace ftms {

StreamingRaidScheduler::StreamingRaidScheduler(const SchedulerConfig& config,
                                               DiskArray* disks,
                                               const Layout* layout)
    : CycleScheduler(config, disks, layout) {}

void StreamingRaidScheduler::DoAddStream(Stream* stream) {
  state_.resize(std::max(state_.size(),
                         static_cast<size_t>(stream->id()) + 1));
}

void StreamingRaidScheduler::DoOnStreamStopped(Stream* stream) {
  GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
  if (buf.ready) {
    ReleaseBuffersAtCycleEnd(buf.buffered_tracks);
    buf.buffered_tracks = 0;
    buf.ready = false;
  }
}

void StreamingRaidScheduler::DeliverGroup(Stream* stream, GroupBuffer* buf) {
  // Track i of the buffered group is on time if it was read, or if it is
  // the only missing block and the parity block plus all other data blocks
  // are present (on-the-fly reconstruction, Observation 2).
  int missing = 0;
  for (int i = 0; i < buf->tracks; ++i) {
    if (!buf->have[static_cast<size_t>(i)]) ++missing;
  }
  const bool can_reconstruct = missing == 1 && buf->parity_ok;
  for (int i = 0; i < buf->tracks; ++i) {
    bool on_time = buf->have[static_cast<size_t>(i)];
    if (!on_time && can_reconstruct) {
      on_time = true;
      ++metrics_.reconstructed;
      if (config_.verify_data) {
        // Rebuild the missing block from the bytes actually in memory:
        // XOR of the surviving data blocks and the parity block.
        Block rebuilt = buf->parity;
        for (int j = 0; j < buf->tracks; ++j) {
          if (j == i) continue;
          XorInto(rebuilt, buf->data[static_cast<size_t>(j)]);
        }
        buf->data[static_cast<size_t>(i)] = std::move(rebuilt);
      }
    }
    if (config_.verify_data && on_time) {
      ++metrics_.verified_tracks;
      const Block expected = SynthesizeDataBlock(
          stream->object().id, buf->first_track + i, kVerifyBlockBytes);
      if (buf->data[static_cast<size_t>(i)] != expected) {
        ++metrics_.verify_failures;
      }
    }
    DeliverTrack(stream, on_time);
  }
  ReleaseBuffersAtCycleEnd(buf->buffered_tracks);
  buf->ready = false;
  buf->buffered_tracks = 0;
  buf->data.clear();
  buf->parity.clear();
}

void StreamingRaidScheduler::ReadNextGroup(Stream* stream,
                                           GroupBuffer* buf) {
  const int per_group = layout_->DataBlocksPerGroup();
  const int64_t first = stream->position();
  const int64_t group = layout_->GroupOf(first);
  assert(first % per_group == 0);
  const int tracks = static_cast<int>(std::min<int64_t>(
      per_group, stream->object().num_tracks - first));

  buf->ready = true;
  buf->first_track = first;
  buf->tracks = tracks;
  buf->have.assign(static_cast<size_t>(tracks), false);
  buf->parity_ok = false;

  if (config_.verify_data) {
    buf->data.assign(static_cast<size_t>(tracks), Block());
  }
  for (int i = 0; i < tracks; ++i) {
    const BlockLocation loc =
        layout_->DataLocation(stream->object().id, first + i);
    const bool ok =
        TryRead(loc.disk, /*is_parity=*/false) == ReadOutcome::kOk;
    buf->have[static_cast<size_t>(i)] = ok;
    if (config_.verify_data && ok) {
      buf->data[static_cast<size_t>(i)] = SynthesizeDataBlock(
          stream->object().id, first + i, kVerifyBlockBytes);
    }
  }
  const BlockLocation parity =
      layout_->ParityLocation(stream->object().id, group);
  buf->parity_ok = TryRead(parity.disk, /*is_parity=*/true) ==
                   ReadOutcome::kOk;
  if (config_.verify_data && buf->parity_ok) {
    buf->parity = SynthesizeParityBlock(*layout_, stream->object().id,
                                        group, stream->object().num_tracks,
                                        kVerifyBlockBytes)
                      .value_or(Block());
  }

  // Group in memory until delivered: C-1 data + 1 parity buffers.
  buf->buffered_tracks = tracks + 1;
  AcquireBuffers(buf->buffered_tracks);
}

void StreamingRaidScheduler::DoRunCycle() {
  // Delivery phase: transmit the groups read in the previous cycle.
  for (const auto& stream : streams()) {
    if (stream->state() != StreamState::kActive) continue;
    GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
    if (buf.ready) DeliverGroup(stream.get(), &buf);
  }
  // Read phase: fetch the next group for every still-active stream.
  for (const auto& stream : streams()) {
    if (stream->state() != StreamState::kActive) continue;
    GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
    if (!buf.ready && !stream->finished()) {
      ReadNextGroup(stream.get(), &buf);
    }
  }
}

}  // namespace ftms
