#include "sched/streaming_raid_scheduler.h"

#include <algorithm>
#include <cassert>

#include "verify/datapath.h"

namespace ftms {

StreamingRaidScheduler::StreamingRaidScheduler(const SchedulerConfig& config,
                                               DiskArray* disks,
                                               const Layout* layout)
    : CycleScheduler(config, disks, layout) {}

void StreamingRaidScheduler::DoAddStream(Stream* stream) {
  state_.resize(std::max(state_.size(),
                         static_cast<size_t>(stream->id()) + 1));
}

void StreamingRaidScheduler::DoOnStreamStopped(Stream* stream) {
  GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
  if (buf.ready) {
    ReleaseBuffersAtCycleEnd(buf.buffered_tracks);
    buf.buffered_tracks = 0;
    buf.ready = false;
  }
}

void StreamingRaidScheduler::DeliverGroup(ShardCtx& ctx, Stream* stream,
                                          GroupBuffer* buf,
                                          VerifyScratch* scratch) {
  // Track i of the buffered group is on time if it was read, or if it is
  // the only missing block and the parity block plus all other data blocks
  // are present (on-the-fly reconstruction, Observation 2). `missing` was
  // counted when the group was read; `have` is immutable in between.
  const int missing = buf->missing;
  if (missing == 0 && !config_.verify_data) {
    // Healthy fast path: whole group present, one batched delivery.
    DeliverTracksOnTime(ctx, stream, buf->tracks);
    ReleaseBuffersAtCycleEnd(ctx, buf->buffered_tracks);
    buf->ready = false;
    buf->buffered_tracks = 0;
    return;
  }
  const bool can_reconstruct = missing == 1 && buf->parity_ok;
  for (int i = 0; i < buf->tracks; ++i) {
    bool on_time = buf->have[static_cast<size_t>(i)];
    if (!on_time && can_reconstruct) {
      on_time = true;
      ++ctx.metrics.reconstructed;
      CountReconstruction(geom_.GroupCluster(
          stream->object().id, geom_.GroupOf(buf->first_track)));
      if (config_.verify_data) {
        // Rebuild the missing block from the bytes actually in memory:
        // XOR of the surviving data blocks and the parity block, fused
        // into one multi-source kernel pass over the destination.
        Block rebuilt = buf->parity;
        scratch->srcs.clear();
        for (int j = 0; j < buf->tracks; ++j) {
          if (j == i) continue;
          scratch->srcs.push_back(buf->data[static_cast<size_t>(j)].data());
        }
        XorIntoN(rebuilt, scratch->srcs.data(),
                 static_cast<int>(scratch->srcs.size()));
        buf->data[static_cast<size_t>(i)] = std::move(rebuilt);
      }
    }
    if (config_.verify_data && on_time) {
      ++ctx.metrics.verified_tracks;
      SynthesizeDataBlockInto(stream->object().id, buf->first_track + i,
                              kVerifyBlockBytes, &scratch->block);
      if (buf->data[static_cast<size_t>(i)] != scratch->block) {
        ++ctx.metrics.verify_failures;
      }
    }
    DeliverTrack(ctx, stream, on_time);
  }
  ReleaseBuffersAtCycleEnd(ctx, buf->buffered_tracks);
  buf->ready = false;
  buf->buffered_tracks = 0;
  buf->data.clear();
  buf->parity.clear();
}

void StreamingRaidScheduler::ReadNextGroup(ShardCtx& ctx, Stream* stream,
                                           GroupBuffer* buf,
                                           VerifyScratch* scratch) {
  const int per_group = geom_.per_group;
  const int64_t first = stream->position();
  const int64_t group = geom_.GroupOf(first);
  assert(first % per_group == 0);
  const MediaObject& object = stream->object();
  const int tracks = static_cast<int>(
      std::min<int64_t>(per_group, object.num_tracks - first));

  buf->ready = true;
  buf->first_track = first;
  buf->tracks = tracks;
  buf->missing = 0;
  buf->have.assign(static_cast<size_t>(tracks), false);
  buf->parity_ok = false;

  if (config_.verify_data) {
    buf->data.resize(static_cast<size_t>(tracks));
    for (Block& block : buf->data) block.clear();
  }
  // The group is aligned (first % per_group == 0), so data position i of
  // the group is track first + i on disk i of the group's cluster.
  const int cluster = geom_.GroupCluster(object.id, group);
  for (int i = 0; i < tracks; ++i) {
    const bool ok = TryRead(ctx, geom_.DataDisk(cluster, i),
                            /*is_parity=*/false) == ReadOutcome::kOk;
    buf->have[static_cast<size_t>(i)] = ok;
    if (!ok) ++buf->missing;
    if (config_.verify_data && ok) {
      SynthesizeDataBlockInto(object.id, first + i, kVerifyBlockBytes,
                              &buf->data[static_cast<size_t>(i)]);
    }
  }
  buf->parity_ok =
      TryRead(ctx, geom_.ParityDisk(object.id, group, cluster),
              /*is_parity=*/true) == ReadOutcome::kOk;
  if (config_.verify_data && buf->parity_ok) {
    const Status status = SynthesizeParityBlockInto(
        *layout_, object.id, group, object.num_tracks, kVerifyBlockBytes,
        &buf->parity, &scratch->parity_scratch);
    if (!status.ok()) buf->parity.clear();
  }

  // Group in memory until delivered: C-1 data + 1 parity buffers.
  buf->buffered_tracks = tracks + 1;
  AcquireBuffers(ctx, buf->buffered_tracks);
}

int StreamingRaidScheduler::ShardCluster(const Stream& stream) const {
  const GroupBuffer& buf = state_[static_cast<size_t>(stream.id())];
  // After delivering the buffered group (if any), the stream reads the
  // group at first_track + tracks; otherwise the group at its position.
  const int64_t pos =
      buf.ready ? buf.first_track + buf.tracks : stream.position();
  return geom_.GroupCluster(stream.object().id, geom_.GroupOf(pos));
}

void StreamingRaidScheduler::DoRunCycle() {
  RunClusterSharded(
      [this](const Stream& stream) { return ShardCluster(stream); },
      [this](ShardCtx& ctx, std::span<Stream* const> shard) {
        VerifyScratch scratch;
        for (Stream* stream : shard) {
          GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
          // Delivery phase: transmit the group read in the previous
          // cycle; read phase: fetch the next group while still active.
          if (buf.ready) DeliverGroup(ctx, stream, &buf, &scratch);
          if (stream->state() == StreamState::kActive && !buf.ready &&
              !stream->finished()) {
            ReadNextGroup(ctx, stream, &buf, &scratch);
          }
        }
      });
}

}  // namespace ftms
