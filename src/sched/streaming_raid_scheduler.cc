#include "sched/streaming_raid_scheduler.h"

#include <algorithm>
#include <cassert>

#include "verify/datapath.h"

namespace ftms {

StreamingRaidScheduler::StreamingRaidScheduler(const SchedulerConfig& config,
                                               DiskArray* disks,
                                               const Layout* layout)
    : CycleScheduler(config, disks, layout) {}

void StreamingRaidScheduler::DoAddStream(Stream* stream) {
  state_.resize(std::max(state_.size(),
                         static_cast<size_t>(stream->id()) + 1));
}

void StreamingRaidScheduler::DoOnStreamStopped(Stream* stream) {
  GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
  if (buf.ready) {
    ReleaseBuffersAtCycleEnd(buf.buffered_tracks);
    buf.buffered_tracks = 0;
    buf.ready = false;
  }
}

bool StreamingRaidScheduler::RepairGroupBytes(GroupBuffer* buf,
                                              VerifyScratch* scratch) {
  if (geom_.parity_blocks == 2) {
    // Dual parity: hand every erased unit (missing data positions, P at
    // index k, Q at k+1) to the GF(2^8) codec in one call. Erased units
    // need correctly sized placeholder blocks.
    scratch->missing_units.clear();
    for (int i = 0; i < buf->tracks; ++i) {
      if (!buf->have[static_cast<size_t>(i)]) {
        buf->data[static_cast<size_t>(i)].assign(kVerifyBlockBytes, 0);
        scratch->missing_units.push_back(i);
      }
    }
    if (!buf->parity_ok) {
      buf->parity.assign(kVerifyBlockBytes, 0);
      scratch->missing_units.push_back(buf->tracks);
    }
    if (!buf->q_ok) {
      buf->qparity.assign(kVerifyBlockBytes, 0);
      scratch->missing_units.push_back(buf->tracks + 1);
    }
    if (scratch->missing_units.size() > 2) return false;
    return ReconstructPq(
               std::span<Block>(buf->data.data(),
                                static_cast<size_t>(buf->tracks)),
               &buf->parity, &buf->qparity, scratch->missing_units)
        .ok();
  }
  // Single parity: XOR of the surviving data blocks and the parity
  // block, fused into one multi-source kernel pass over the destination.
  int missing_at = -1;
  for (int i = 0; i < buf->tracks; ++i) {
    if (!buf->have[static_cast<size_t>(i)]) missing_at = i;
  }
  if (missing_at < 0) return true;
  Block rebuilt = buf->parity;
  scratch->srcs.clear();
  for (int j = 0; j < buf->tracks; ++j) {
    if (j == missing_at) continue;
    scratch->srcs.push_back(buf->data[static_cast<size_t>(j)].data());
  }
  XorIntoN(rebuilt, scratch->srcs.data(),
           static_cast<int>(scratch->srcs.size()));
  buf->data[static_cast<size_t>(missing_at)] = std::move(rebuilt);
  return true;
}

void StreamingRaidScheduler::DeliverGroup(ShardCtx& ctx, Stream* stream,
                                          GroupBuffer* buf,
                                          VerifyScratch* scratch) {
  // Track i of the buffered group is on time if it was read, or if the
  // missing blocks are recoverable from the parity blocks present in
  // memory (on-the-fly reconstruction, Observation 2): one erasure via P
  // on single-parity layouts, any two erasures via P+Q on dual-parity.
  // `missing` was counted when the group was read; `have` is immutable
  // in between.
  const int missing = buf->missing;
  if (missing == 0 && !config_.verify_data) {
    // Healthy fast path: whole group present, one batched delivery.
    DeliverTracksOnTime(ctx, stream, buf->tracks);
    ReleaseBuffersAtCycleEnd(ctx, buf->buffered_tracks);
    buf->ready = false;
    buf->buffered_tracks = 0;
    return;
  }
  const int parity_up = (buf->parity_ok ? 1 : 0) + (buf->q_ok ? 1 : 0);
  bool can_reconstruct = missing > 0 && missing <= parity_up;
  if (can_reconstruct && config_.verify_data) {
    // Repair the actual bytes before delivery; a codec failure (which
    // the accounting above says cannot happen) falls back to hiccups.
    can_reconstruct = RepairGroupBytes(buf, scratch);
  }
  for (int i = 0; i < buf->tracks; ++i) {
    bool on_time = buf->have[static_cast<size_t>(i)];
    if (!on_time && can_reconstruct) {
      on_time = true;
      ++ctx.metrics.reconstructed;
      CountReconstruction(geom_.GroupCluster(
          stream->object().id, geom_.GroupOf(buf->first_track)));
    }
    if (config_.verify_data && on_time) {
      ++ctx.metrics.verified_tracks;
      SynthesizeDataBlockInto(stream->object().id, buf->first_track + i,
                              kVerifyBlockBytes, &scratch->block);
      if (buf->data[static_cast<size_t>(i)] != scratch->block) {
        ++ctx.metrics.verify_failures;
      }
    }
    DeliverTrack(ctx, stream, on_time);
  }
  ReleaseBuffersAtCycleEnd(ctx, buf->buffered_tracks);
  buf->ready = false;
  buf->buffered_tracks = 0;
  buf->data.clear();
  buf->parity.clear();
  buf->qparity.clear();
}

void StreamingRaidScheduler::ReadNextGroup(ShardCtx& ctx, Stream* stream,
                                           GroupBuffer* buf,
                                           VerifyScratch* scratch) {
  const int per_group = geom_.per_group;
  const int64_t first = stream->position();
  const int64_t group = geom_.GroupOf(first);
  assert(first % per_group == 0);
  const MediaObject& object = stream->object();
  const int tracks = static_cast<int>(
      std::min<int64_t>(per_group, object.num_tracks - first));

  buf->ready = true;
  buf->first_track = first;
  buf->tracks = tracks;
  buf->missing = 0;
  buf->have.assign(static_cast<size_t>(tracks), false);
  buf->parity_ok = false;

  if (config_.verify_data) {
    buf->data.resize(static_cast<size_t>(tracks));
    for (Block& block : buf->data) block.clear();
  }
  // The group is aligned (first % per_group == 0), so data position i of
  // the group is track first + i on disk i of the group's cluster.
  const int cluster = geom_.GroupCluster(object.id, group);
  for (int i = 0; i < tracks; ++i) {
    const bool ok = TryRead(ctx, geom_.DataDisk(cluster, i),
                            /*is_parity=*/false) == ReadOutcome::kOk;
    buf->have[static_cast<size_t>(i)] = ok;
    if (!ok) ++buf->missing;
    if (config_.verify_data && ok) {
      SynthesizeDataBlockInto(object.id, first + i, kVerifyBlockBytes,
                              &buf->data[static_cast<size_t>(i)]);
    }
  }
  buf->parity_ok =
      TryRead(ctx, geom_.ParityDisk(object.id, group, cluster),
              /*is_parity=*/true) == ReadOutcome::kOk;
  if (config_.verify_data && buf->parity_ok) {
    const Status status = SynthesizeParityBlockInto(
        *layout_, object.id, group, object.num_tracks, kVerifyBlockBytes,
        &buf->parity, &scratch->parity_scratch);
    if (!status.ok()) buf->parity.clear();
  }
  buf->q_ok = false;
  if (geom_.parity_blocks == 2) {
    buf->q_ok = TryRead(ctx, geom_.QParityDisk(cluster),
                        /*is_parity=*/true) == ReadOutcome::kOk;
    if (config_.verify_data && buf->q_ok) {
      const Status status = SynthesizeQParityBlockInto(
          *layout_, object.id, group, object.num_tracks, kVerifyBlockBytes,
          &buf->qparity, &scratch->parity_scratch);
      if (!status.ok()) buf->qparity.clear();
    }
  }

  // Group in memory until delivered: the data tracks plus every parity
  // track (one for SR, P and Q for SR-2).
  buf->buffered_tracks = tracks + geom_.parity_blocks;
  AcquireBuffers(ctx, buf->buffered_tracks);
}

int StreamingRaidScheduler::ShardCluster(const Stream& stream) const {
  const GroupBuffer& buf = state_[static_cast<size_t>(stream.id())];
  // After delivering the buffered group (if any), the stream reads the
  // group at first_track + tracks; otherwise the group at its position.
  const int64_t pos =
      buf.ready ? buf.first_track + buf.tracks : stream.position();
  return geom_.GroupCluster(stream.object().id, geom_.GroupOf(pos));
}

void StreamingRaidScheduler::DoRunCycle() {
  RunClusterSharded(
      [this](const Stream& stream) { return ShardCluster(stream); },
      [this](ShardCtx& ctx, std::span<Stream* const> shard) {
        VerifyScratch scratch;
        for (Stream* stream : shard) {
          GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
          // Delivery phase: transmit the group read in the previous
          // cycle; read phase: fetch the next group while still active.
          if (buf.ready) DeliverGroup(ctx, stream, &buf, &scratch);
          if (stream->state() == StreamState::kActive && !buf.ready &&
              !stream->finished()) {
            ReadNextGroup(ctx, stream, &buf, &scratch);
          }
        }
      });
}

}  // namespace ftms
