#ifndef FTMS_SCHED_CYCLE_SCHEDULER_H_
#define FTMS_SCHED_CYCLE_SCHEDULER_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "buffer/buffer_pool.h"
#include "disk/disk_array.h"
#include "layout/layout.h"
#include "layout/schemes.h"
#include "qos/event_journal.h"
#include "qos/qos_ledger.h"
#include "stream/stream.h"
#include "util/disk_set.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timeseries.h"
#include "util/trace_event.h"

namespace ftms {

// How the Non-clustered scheme transitions a cluster to degraded mode
// after a disk failure (Section 3).
enum class NcTransition {
  // Shift affected streams to group-at-a-time reads immediately (Figure 6):
  // all remaining tracks of every affected group move up to the failure
  // cycle, displacing originally scheduled reads when slots run out.
  kImmediateShift,
  // Delay early reads until the cycle in which they are needed for the
  // parity computation, buffering a running XOR of already-delivered
  // tracks (Figure 7). Loses fewer tracks.
  kDeferredRead,
};

// Configuration shared by all cycle-based schedulers.
struct SchedulerConfig {
  Scheme scheme = Scheme::kStreamingRaid;
  int parity_group_size = 5;          // C
  double object_rate_mb_s = 0.1875;   // b_o (uniform across streams)
  DiskParameters disk;                // timing + track size

  // Per-disk track budget per cycle; 0 derives it from the disk model
  // (TracksPerCycle of the scheme's cycle length).
  int slots_per_disk = 0;

  // NC only: transition strategy and number of shared buffer servers K.
  NcTransition nc_transition = NcTransition::kDeferredRead;
  int buffer_servers = 3;

  // IB only: read parity proactively under light load (the "sophisticated
  // scheduler" sketched at the end of Section 4). When true and slots
  // allow, parity is fetched with the data so even mid-cycle failures are
  // masked.
  bool ib_prefetch_parity = false;

  // Integrity mode (SR scheduler): carry REAL synthesized bytes through
  // the read / reconstruct / deliver pipeline and verify every delivered
  // track against ground truth. Catches wrong-group/wrong-parity wiring
  // that accounting-level simulation cannot. Costs memory and XOR time;
  // off by default.
  bool verify_data = false;

  // IB with C = 2 only: mirroring mode (paper footnote 11 — "when the
  // cluster size is 2 we effectively have mirroring and one could use
  // the two copies to get even more stream capacity"). A data read that
  // finds its primary disk fully booked spills to the replica (the
  // "parity" block, which for C = 2 is a copy) instead of dropping.
  // The footnote's caveat applies: the spilled capacity evaporates on a
  // failure, so streams admitted beyond the single-copy capacity drop.
  bool ib_mirror_read_balance = false;

  // Worker threads for cluster-parallel cycle execution: 0 uses the
  // process-wide ThreadPool::Shared() (FTMS_THREADS / hardware
  // concurrency), 1 (or any negative value) runs every cycle serially
  // inline, N > 1 gives the scheduler a private pool of N workers.
  // Metrics, buffer peaks and all per-stream outcomes are bit-identical
  // at every setting — the knob only trades wall-clock for cores.
  int threads = 0;

  // Observability sinks. Null uses the process-wide instances, which are
  // themselves off unless FTMS_METRICS=1 / FTMS_TRACE=1 — so by default
  // every instrumentation site reduces to one untaken branch. Tests and
  // embedders pass private instances for isolation. Exported counters are
  // deterministic at any thread count (see DESIGN.md "Observability");
  // only wall-clock histograms and trace args are timing-dependent.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;

  // QoS sinks. A null journal falls back to the process-wide journal,
  // which is off unless FTMS_QOS=1 — same zero-cost-off contract as the
  // registry/tracer above. The ledger is per-scheduler state (it
  // attributes hiccups and degraded exposure to THIS scheduler's
  // streams), so with FTMS_QOS=1 and no injected ledger the scheduler
  // owns a private one, reachable via qos_ledger(). Both are fed at
  // serial points only, keeping their dumps byte-identical at any
  // thread count.
  EventJournal* journal = nullptr;
  QosLedger* ledger = nullptr;

  // Time-series sink. Null falls back to the process-wide recorder,
  // which is off unless FTMS_TIMESERIES=1 — the usual zero-cost-off
  // contract. When live, the scheduler pushes per-cycle curves (degraded
  // reads, disk queue depth, active streams, hiccups, buffer occupancy)
  // from its serial cycle-end point, and RebuildManager / QosLedger
  // attach their own series through timeseries_recorder(). All pushes
  // derive from deterministic fold state, so dumps are byte-identical at
  // any thread count.
  TimeSeriesRecorder* timeseries = nullptr;
};

// Counters accumulated over a run. A "hiccup" is one track that missed its
// delivery deadline; "reconstructed" counts tracks rebuilt from parity
// on-the-fly; "dropped_reads" are reads displaced by slot exhaustion.
struct SchedulerMetrics {
  int64_t cycles = 0;
  int64_t data_reads = 0;
  int64_t parity_reads = 0;
  int64_t failed_reads = 0;       // attempted on a failed disk
  int64_t dropped_reads = 0;      // no slot available
  int64_t tracks_delivered = 0;   // on time
  int64_t hiccups = 0;
  int64_t reconstructed = 0;
  int64_t terminated_streams = 0;  // degradation of service
  int64_t degradation_events = 0;
  // Improved-bandwidth shift statistics.
  int64_t shift_cascades = 0;   // number of parity-read displacements
  int64_t max_shift_depth = 0;  // longest right-shift chain observed
  // Integrity mode: delivered tracks whose bytes were checked, and
  // mismatches found (must stay 0).
  int64_t verified_tracks = 0;
  int64_t verify_failures = 0;

  friend bool operator==(const SchedulerMetrics&,
                         const SchedulerMetrics&) = default;
};

// Base class for the four cycle-based schedulers. Owns the streams and the
// per-cycle disk slot accounting; concrete schemes implement DoRunCycle().
//
// Time advances in fixed cycles of CycleSeconds(); disk failures injected
// via OnDiskFailed take effect for all reads from the next RunCycle on
// (mid_cycle=true additionally fails the reads already planned for the
// current cycle, modeling a failure in the middle of a sweep).
class CycleScheduler {
 public:
  CycleScheduler(const SchedulerConfig& config, DiskArray* disks,
                 const Layout* layout);
  virtual ~CycleScheduler();

  CycleScheduler(const CycleScheduler&) = delete;
  CycleScheduler& operator=(const CycleScheduler&) = delete;

  // Starts a new stream on `object`. The object's rate must equal the
  // configured uniform rate. Delivery begins after the scheme's startup
  // latency (first read cycle).
  StatusOr<StreamId> AddStream(const MediaObject& object);

  // Runs one scheduling cycle: read planning + execution, then delivery of
  // previously read tracks.
  void RunCycle();

  // Runs `n` cycles.
  void RunCycles(int n);

  // VCR controls. Pausing keeps the stream's buffers and admission slot
  // (bandwidth stays reserved, so resume is glitch-free); stopping
  // releases the stream's buffers immediately.
  Status PauseStream(StreamId id);
  Status ResumeStream(StreamId id);
  Status StopStream(StreamId id);

  // Failure injection. `mid_cycle` models a failure in the middle of the
  // upcoming cycle's sweep: reads planned on the disk in that cycle fail
  // after the point of no return (Section 4's IB discussion).
  void OnDiskFailed(int disk, bool mid_cycle);
  void OnDiskRepaired(int disk);

  int64_t cycle() const { return cycle_; }
  double CycleSeconds() const;
  // Simulated time at the START of the upcoming cycle, in microseconds
  // (the trace-event timeline clock).
  int64_t SimTimeMicros() const {
    return static_cast<int64_t>(static_cast<double>(cycle_) *
                                CycleSeconds() * 1e6);
  }
  int slots_per_disk() const { return slots_per_disk_; }
  const SchedulerMetrics& metrics() const { return metrics_; }
  const SchedulerConfig& config() const { return config_; }
  const BufferPool& buffer_pool() const { return pool_; }

  // Resolved observability sinks: config's pointer, else the globally
  // enabled instance, else null (= instrumentation off). RebuildManager
  // and TraceRecorder attach their own series through these.
  MetricsRegistry* metrics_registry() const;
  Tracer* tracer() const;
  // Tracer track this scheduler's spans render on; -1 when tracing is off.
  int32_t trace_tid() const;
  // Resolved QoS sinks; null when QoS observability is off.
  EventJournal* journal() const { return journal_; }
  QosLedger* qos_ledger() const { return ledger_; }
  // Resolved time-series recorder (config's, else the globally enabled
  // instance, else null) and the series-name prefix this scheduler's
  // curves use ("<SCHEME>.<instance>"). RebuildManager and QosLedger
  // attach their own series under the same prefix.
  TimeSeriesRecorder* timeseries_recorder() const { return ts_; }
  const std::string& timeseries_prefix() const { return ts_prefix_; }
  int num_clusters() const { return layout_->num_clusters(); }

  // All streams ever admitted (active and finished).
  const std::vector<std::unique_ptr<Stream>>& streams() const {
    return streams_;
  }
  Stream* FindStream(StreamId id);
  int ActiveStreams() const;
  // Streams still holding server resources: active + paused.
  int LiveStreams() const;

  // Total hiccups across all streams (== metrics().hiccups).
  int64_t TotalHiccups() const;

  // Whether this scheduler's cycle structure can serve streams of the
  // given rate (see SupportsRate).
  bool CanServeRate(double rate_mb_s) const {
    return SupportsRate(rate_mb_s);
  }

  // Read slots consumed on `disk` during the most recently completed
  // cycle (resets when the next cycle begins). The rebuild process uses
  // this to steal only idle bandwidth (rebuild mode, Section 1).
  int SlotsUsedLastCycle(int disk) const {
    return slots_used_[static_cast<size_t>(disk)];
  }

 protected:
  // Scheme-specific per-cycle work.
  virtual void DoRunCycle() = 0;
  // Scheme-specific stream initialization (phase assignment etc.).
  virtual void DoAddStream(Stream* stream) = 0;
  // Whether the scheduler can serve a stream of this rate. The default
  // cycle structure requires the configured uniform rate; schedulers
  // with per-track pacing may accept integer multiples (e.g. MPEG-2
  // streams at 3x the MPEG-1 base rate).
  virtual bool SupportsRate(double rate_mb_s) const {
    return rate_mb_s == config_.object_rate_mb_s;
  }
  // Scheme-specific failure reaction (transition planning).
  virtual void DoOnDiskFailed(int /*disk*/) {}
  virtual void DoOnDiskRepaired(int /*disk*/) {}
  // Scheme-specific cleanup when a stream stops: release its buffers.
  virtual void DoOnStreamStopped(Stream* /*stream*/) {}

  // --- helpers for subclasses ---

  enum class ReadOutcome { kOk, kFailedDisk, kNoSlot };

  // Per-shard scratch for cluster-parallel cycle execution. A kernel
  // running on a worker thread accumulates its metrics, buffer-pool
  // traffic and deferred releases here instead of touching the shared
  // members; the base class folds the shards back in cluster order at
  // the end of the parallel section, so every counter and the pool peak
  // come out bit-identical at any thread count. Cache-line aligned so
  // neighboring shards never false-share.
  struct alignas(64) ShardCtx {
    SchedulerMetrics metrics;
    BufferPool::ShardDelta pool;
    int64_t pending_release = 0;

    void Reset() {
      metrics = SchedulerMetrics{};
      pool.Reset();
      pending_release = 0;
    }
  };

  // Runs `kernel(ctx, first_cluster, last_cluster)` over contiguous
  // cluster ranges on the execution pool (inline when serial) and folds
  // the per-chunk scratch back in cluster order. The kernel must only
  // touch state owned by clusters in [first_cluster, last_cluster) plus
  // its ShardCtx.
  void ParallelOverClusters(
      const std::function<void(ShardCtx&, int, int)>& kernel);

  // Stream-partitioned parallel section: buckets the ACTIVE streams by
  // `cluster_key` — the cluster whose disks the stream's reads touch this
  // cycle, computed BEFORE the kernel mutates anything — then runs
  // `kernel(ctx, streams_of_one_cluster)` per cluster on the execution
  // pool, folding shard scratch in cluster order. Within a bucket streams
  // keep admission (id) order, so per-disk slot consumption matches the
  // serial schedule exactly. A key < 0 marks a stream whose reads span
  // clusters this cycle (multi-rate bursts): the whole cycle then runs as
  // ONE serial shard over all active streams in admission order — the
  // pre-sharding execution — which keeps the outcome deterministic
  // because the fallback decision depends only on scheduler state, never
  // on the thread count.
  void RunClusterSharded(
      const std::function<int(const Stream&)>& cluster_key,
      const std::function<void(ShardCtx&, std::span<Stream* const>)>&
          kernel);

  // The pool cycles should dispatch on: null when configured serial or
  // when too few streams are active for the dispatch overhead to pay off
  // (a pure function of scheduler state, so the guard cannot break
  // thread-count invariance).
  ThreadPool* CyclePool() const;

  // Attempts one track read on `disk` in the current cycle: consumes a
  // slot, then succeeds iff the disk is up (and not failing mid-cycle).
  // Updates the metrics counters. The ShardCtx overloads of the helpers
  // below are for kernels inside parallel sections; the plain overloads
  // are for serial phases and out-of-cycle paths. Inline: TryRead runs
  // once per planned read — it IS the simulation's inner loop.
  ReadOutcome TryRead(int disk, bool is_parity) {
    return TryReadImpl(metrics_, disk, is_parity);
  }
  ReadOutcome TryRead(ShardCtx& ctx, int disk, bool is_parity) {
    return TryReadImpl(ctx.metrics, disk, is_parity);
  }

  // True when reads on `disk` succeed this cycle (O(1) byte load).
  bool DiskUp(int disk) const { return disks_->DiskUp(disk); }

  // True when `disk` failed in the middle of the upcoming cycle's sweep:
  // the failure is discovered too late for this cycle's read plan to react
  // (no parity substitution until the next cycle).
  bool FailedMidCycle(int disk) const {
    return mid_cycle_failed_.Contains(disk);
  }

  // Remaining slots on `disk` this cycle.
  int FreeSlots(int disk) const {
    return slots_per_disk_ - slots_used_[static_cast<size_t>(disk)];
  }

  // Records an on-time (or missed) delivery for the stream.
  void DeliverTrack(Stream* stream, bool on_time) {
    DeliverTrackImpl(metrics_, stream, on_time);
  }
  void DeliverTrack(ShardCtx& ctx, Stream* stream, bool on_time) {
    DeliverTrackImpl(ctx.metrics, stream, on_time);
  }
  // `n` consecutive on-time deliveries in one call — the all-tracks-read
  // fast path of the group schedulers (identical to calling DeliverTrack
  // n times with on_time=true).
  void DeliverTracksOnTime(ShardCtx& ctx, Stream* stream, int n) {
    table_.DeliverRowBatchOnTime(stream->row(), cycle_, n);
    ctx.metrics.tracks_delivered += n;
  }

  // Observability: counts one on-the-fly parity reconstruction against
  // `cluster`. Safe inside cluster kernels — the cell is an atomic
  // counter, and commutative adds keep the total thread-count invariant.
  // A single untaken branch when instrumentation is off.
  void CountReconstruction(int cluster, int64_t n = 1);

  // Counts a read that targeted a known-failed disk against `cluster`.
  // TryRead records these automatically when a read attempt hits a dead
  // disk; planners that skip the attempt entirely (NC's deferred-read
  // path) must report the skipped read here so degraded service stays
  // visible per cluster regardless of strategy.
  void CountDegradedRead(int cluster, int64_t n = 1);

  // Buffer accounting (tracks). A track transmitted during cycle t is in
  // memory until t's end (transmission overlaps the next reads), so
  // delivery paths release at cycle end; the pool peak then matches the
  // paper's buffer equations (12)-(15). The pool is unlimited here, so a
  // failed acquire means the scheduler's own accounting went negative
  // somewhere — loud in debug builds rather than silently dropped.
  void AcquireBuffers(int64_t n) {
    const Status status = pool_.Acquire(n);
    assert(status.ok() && "buffer accounting exceeded pool capacity");
    (void)status;
  }
  void AcquireBuffers(ShardCtx& ctx, int64_t n) { ctx.pool.Acquire(n); }
  void ReleaseBuffersAtCycleEnd(int64_t n) { pending_release_ += n; }
  void ReleaseBuffersAtCycleEnd(ShardCtx& ctx, int64_t n) {
    ctx.pending_release += n;
  }

  // Structure-of-arrays stream store backing the Stream handles in
  // `streams_`; scheduler sweeps read its columns directly.
  StreamTable& stream_table() { return table_; }
  const StreamTable& stream_table() const { return table_; }

  DiskArray* disks_;
  const Layout* layout_;
  SchedulerConfig config_;
  // Devirtualized layout geometry (validated against `layout_` at
  // construction in debug builds): all per-read location math goes
  // through this, not the virtual interface.
  LayoutGeom geom_;
  SchedulerMetrics metrics_;

 private:
  // Per-disk / per-cluster registry cells and trace track, resolved once
  // at construction (see cycle_scheduler.cc). Null when both sinks are
  // off, which is what makes the hot-path checks single branches.
  struct Instruments;

  void BeginCycle();
  void InitInstruments();
  void InitQos();
  void InitTimeSeries();
  // Serial end-of-cycle time-series push: per-cycle degraded reads, mean
  // disk queue depth, active streams, hiccup delta and buffer occupancy,
  // all derived from fold state — never from worker-local scratch — so
  // the curves are byte-identical at any FTMS_THREADS.
  void SampleTimeSeries();
  // Serial end-of-cycle QoS fold: hiccup-delta and transition-end journal
  // events, the ledger's per-stream exposure/SLO pass.
  void EndCycleQos();
  // Serial end-of-cycle sampling: per-disk busy slots, queue-depth and
  // cycle-duration histograms, gauges, counter deltas, the cycle span.
  void SampleCycleInstruments(int64_t cycle_start_us, double wall_us);
  ReadOutcome TryReadImpl(SchedulerMetrics& metrics, int disk,
                          bool is_parity) {
    int& used = slots_used_[static_cast<size_t>(disk)];
    if (used >= slots_per_disk_) {
      ++metrics.dropped_reads;
      return ReadOutcome::kNoSlot;
    }
    ++used;
    if (!disks_->disk(disk).Read(1)) {
      ++metrics.failed_reads;
      // `degraded_cells_` is non-null only with a live registry; the
      // per-cluster cell is an atomic counter, safe from cluster kernels.
      if (degraded_cells_ != nullptr) {
        degraded_cells_[disks_->ClusterOf(disk)]->Add(1);
      }
      return ReadOutcome::kFailedDisk;
    }
    if (is_parity) {
      ++metrics.parity_reads;
    } else {
      ++metrics.data_reads;
    }
    return ReadOutcome::kOk;
  }
  void DeliverTrackImpl(SchedulerMetrics& metrics, Stream* stream,
                        bool on_time) {
    table_.DeliverRow(stream->row(), cycle_, on_time);
    if (on_time) {
      ++metrics.tracks_delivered;
    } else {
      ++metrics.hiccups;
    }
  }
  // Resets the first `n` shard contexts (growing the array as needed) /
  // folds them back into the shared state in index order.
  void ResetShardCtxs(int64_t n);
  void FoldShardCtxs(int64_t n);

  BufferPool pool_;  // unlimited; measures occupancy / peak
  int64_t pending_release_ = 0;
  // Column store first, handles after: the handles borrow table rows, so
  // declaration order keeps the table alive past every Stream destructor.
  StreamTable table_;
  std::vector<std::unique_ptr<Stream>> streams_;
  int64_t cycle_ = 0;
  int slots_per_disk_ = 0;
  // Flat per-disk slot accounting, sized once in the constructor: TryRead
  // and FreeSlots are a single array access on the hot path (no ordered
  // containers anywhere in the per-cycle machinery).
  std::vector<int> slots_used_;
  // Disks that fail mid-sweep of the next RunCycle only (DiskSet::Clear
  // is O(1) in the common failure-free cycles).
  DiskSet mid_cycle_failed_;
  // Cluster-parallel execution state. `owned_pool_` backs configs with
  // threads > 1; otherwise the shared pool (or none) is used. The scratch
  // vectors are reused across cycles so the parallel path allocates
  // nothing in steady state.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* exec_pool_ = nullptr;  // null = always serial
  std::vector<ShardCtx> shard_ctx_;
  std::vector<std::vector<Stream*>> cluster_streams_;
  std::vector<Stream*> active_streams_;  // serial-fallback ordering
  std::unique_ptr<Instruments> instr_;
  // Borrowed view of Instruments::cluster_degraded for the inline read
  // path; null when the registry is off.
  Counter* const* degraded_cells_ = nullptr;
  // QoS sinks (see SchedulerConfig::journal/ledger). `qos_active_` folds
  // both null checks into the one branch RunCycle takes when QoS is off.
  EventJournal* journal_ = nullptr;
  QosLedger* ledger_ = nullptr;
  std::unique_ptr<QosLedger> owned_ledger_;
  bool qos_active_ = false;
  std::string_view qos_scheme_ = "";
  int64_t journaled_hiccups_ = 0;
  // Time-series state (see SchedulerConfig::timeseries). `ts_` is null
  // when recording is off, folding every push site into one branch.
  TimeSeriesRecorder* ts_ = nullptr;
  std::string ts_prefix_;
  int ts_degraded_ = -1;
  int ts_queue_depth_ = -1;
  int ts_streams_ = -1;
  int ts_hiccups_ = -1;
  SchedulerMetrics ts_last_;  // previous cycle-end totals for deltas
  // Open degraded transitions: cluster and the cycle its C-cycle window
  // closes (journal kDegradedTransitionEnd is emitted at that fold).
  std::vector<std::pair<int, int64_t>> open_transitions_;
};

// Creates the scheduler matching `config.scheme`.
StatusOr<std::unique_ptr<CycleScheduler>> CreateScheduler(
    const SchedulerConfig& config, DiskArray* disks, const Layout* layout);

}  // namespace ftms

#endif  // FTMS_SCHED_CYCLE_SCHEDULER_H_
