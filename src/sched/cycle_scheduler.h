#ifndef FTMS_SCHED_CYCLE_SCHEDULER_H_
#define FTMS_SCHED_CYCLE_SCHEDULER_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "buffer/buffer_pool.h"
#include "disk/disk_array.h"
#include "layout/layout.h"
#include "layout/schemes.h"
#include "stream/stream.h"
#include "util/status.h"

namespace ftms {

// How the Non-clustered scheme transitions a cluster to degraded mode
// after a disk failure (Section 3).
enum class NcTransition {
  // Shift affected streams to group-at-a-time reads immediately (Figure 6):
  // all remaining tracks of every affected group move up to the failure
  // cycle, displacing originally scheduled reads when slots run out.
  kImmediateShift,
  // Delay early reads until the cycle in which they are needed for the
  // parity computation, buffering a running XOR of already-delivered
  // tracks (Figure 7). Loses fewer tracks.
  kDeferredRead,
};

// Configuration shared by all cycle-based schedulers.
struct SchedulerConfig {
  Scheme scheme = Scheme::kStreamingRaid;
  int parity_group_size = 5;          // C
  double object_rate_mb_s = 0.1875;   // b_o (uniform across streams)
  DiskParameters disk;                // timing + track size

  // Per-disk track budget per cycle; 0 derives it from the disk model
  // (TracksPerCycle of the scheme's cycle length).
  int slots_per_disk = 0;

  // NC only: transition strategy and number of shared buffer servers K.
  NcTransition nc_transition = NcTransition::kDeferredRead;
  int buffer_servers = 3;

  // IB only: read parity proactively under light load (the "sophisticated
  // scheduler" sketched at the end of Section 4). When true and slots
  // allow, parity is fetched with the data so even mid-cycle failures are
  // masked.
  bool ib_prefetch_parity = false;

  // Integrity mode (SR scheduler): carry REAL synthesized bytes through
  // the read / reconstruct / deliver pipeline and verify every delivered
  // track against ground truth. Catches wrong-group/wrong-parity wiring
  // that accounting-level simulation cannot. Costs memory and XOR time;
  // off by default.
  bool verify_data = false;

  // IB with C = 2 only: mirroring mode (paper footnote 11 — "when the
  // cluster size is 2 we effectively have mirroring and one could use
  // the two copies to get even more stream capacity"). A data read that
  // finds its primary disk fully booked spills to the replica (the
  // "parity" block, which for C = 2 is a copy) instead of dropping.
  // The footnote's caveat applies: the spilled capacity evaporates on a
  // failure, so streams admitted beyond the single-copy capacity drop.
  bool ib_mirror_read_balance = false;
};

// Counters accumulated over a run. A "hiccup" is one track that missed its
// delivery deadline; "reconstructed" counts tracks rebuilt from parity
// on-the-fly; "dropped_reads" are reads displaced by slot exhaustion.
struct SchedulerMetrics {
  int64_t cycles = 0;
  int64_t data_reads = 0;
  int64_t parity_reads = 0;
  int64_t failed_reads = 0;       // attempted on a failed disk
  int64_t dropped_reads = 0;      // no slot available
  int64_t tracks_delivered = 0;   // on time
  int64_t hiccups = 0;
  int64_t reconstructed = 0;
  int64_t terminated_streams = 0;  // degradation of service
  int64_t degradation_events = 0;
  // Improved-bandwidth shift statistics.
  int64_t shift_cascades = 0;   // number of parity-read displacements
  int64_t max_shift_depth = 0;  // longest right-shift chain observed
  // Integrity mode: delivered tracks whose bytes were checked, and
  // mismatches found (must stay 0).
  int64_t verified_tracks = 0;
  int64_t verify_failures = 0;
};

// Base class for the four cycle-based schedulers. Owns the streams and the
// per-cycle disk slot accounting; concrete schemes implement DoRunCycle().
//
// Time advances in fixed cycles of CycleSeconds(); disk failures injected
// via OnDiskFailed take effect for all reads from the next RunCycle on
// (mid_cycle=true additionally fails the reads already planned for the
// current cycle, modeling a failure in the middle of a sweep).
class CycleScheduler {
 public:
  CycleScheduler(const SchedulerConfig& config, DiskArray* disks,
                 const Layout* layout);
  virtual ~CycleScheduler() = default;

  CycleScheduler(const CycleScheduler&) = delete;
  CycleScheduler& operator=(const CycleScheduler&) = delete;

  // Starts a new stream on `object`. The object's rate must equal the
  // configured uniform rate. Delivery begins after the scheme's startup
  // latency (first read cycle).
  StatusOr<StreamId> AddStream(const MediaObject& object);

  // Runs one scheduling cycle: read planning + execution, then delivery of
  // previously read tracks.
  void RunCycle();

  // Runs `n` cycles.
  void RunCycles(int n);

  // VCR controls. Pausing keeps the stream's buffers and admission slot
  // (bandwidth stays reserved, so resume is glitch-free); stopping
  // releases the stream's buffers immediately.
  Status PauseStream(StreamId id);
  Status ResumeStream(StreamId id);
  Status StopStream(StreamId id);

  // Failure injection. `mid_cycle` models a failure in the middle of the
  // upcoming cycle's sweep: reads planned on the disk in that cycle fail
  // after the point of no return (Section 4's IB discussion).
  void OnDiskFailed(int disk, bool mid_cycle);
  void OnDiskRepaired(int disk);

  int64_t cycle() const { return cycle_; }
  double CycleSeconds() const;
  int slots_per_disk() const { return slots_per_disk_; }
  const SchedulerMetrics& metrics() const { return metrics_; }
  const SchedulerConfig& config() const { return config_; }
  const BufferPool& buffer_pool() const { return pool_; }

  // All streams ever admitted (active and finished).
  const std::vector<std::unique_ptr<Stream>>& streams() const {
    return streams_;
  }
  Stream* FindStream(StreamId id);
  int ActiveStreams() const;
  // Streams still holding server resources: active + paused.
  int LiveStreams() const;

  // Total hiccups across all streams (== metrics().hiccups).
  int64_t TotalHiccups() const;

  // Whether this scheduler's cycle structure can serve streams of the
  // given rate (see SupportsRate).
  bool CanServeRate(double rate_mb_s) const {
    return SupportsRate(rate_mb_s);
  }

  // Read slots consumed on `disk` during the most recently completed
  // cycle (resets when the next cycle begins). The rebuild process uses
  // this to steal only idle bandwidth (rebuild mode, Section 1).
  int SlotsUsedLastCycle(int disk) const {
    return slots_used_[static_cast<size_t>(disk)];
  }

 protected:
  // Scheme-specific per-cycle work.
  virtual void DoRunCycle() = 0;
  // Scheme-specific stream initialization (phase assignment etc.).
  virtual void DoAddStream(Stream* stream) = 0;
  // Whether the scheduler can serve a stream of this rate. The default
  // cycle structure requires the configured uniform rate; schedulers
  // with per-track pacing may accept integer multiples (e.g. MPEG-2
  // streams at 3x the MPEG-1 base rate).
  virtual bool SupportsRate(double rate_mb_s) const {
    return rate_mb_s == config_.object_rate_mb_s;
  }
  // Scheme-specific failure reaction (transition planning).
  virtual void DoOnDiskFailed(int /*disk*/) {}
  virtual void DoOnDiskRepaired(int /*disk*/) {}
  // Scheme-specific cleanup when a stream stops: release its buffers.
  virtual void DoOnStreamStopped(Stream* /*stream*/) {}

  // --- helpers for subclasses ---

  enum class ReadOutcome { kOk, kFailedDisk, kNoSlot };

  // Attempts one track read on `disk` in the current cycle: consumes a
  // slot, then succeeds iff the disk is up (and not failing mid-cycle).
  // Updates the metrics counters.
  ReadOutcome TryRead(int disk, bool is_parity);

  // True when reads on `disk` succeed this cycle.
  bool DiskUp(int disk) const;

  // True when `disk` failed in the middle of the upcoming cycle's sweep:
  // the failure is discovered too late for this cycle's read plan to react
  // (no parity substitution until the next cycle).
  bool FailedMidCycle(int disk) const;

  // Remaining slots on `disk` this cycle.
  int FreeSlots(int disk) const;

  // Records an on-time (or missed) delivery for the stream.
  void DeliverTrack(Stream* stream, bool on_time);

  // Buffer accounting (tracks). A track transmitted during cycle t is in
  // memory until t's end (transmission overlaps the next reads), so
  // delivery paths release at cycle end; the pool peak then matches the
  // paper's buffer equations (12)-(15). The pool is unlimited here, so a
  // failed acquire means the scheduler's own accounting went negative
  // somewhere — loud in debug builds rather than silently dropped.
  void AcquireBuffers(int64_t n) {
    const Status status = pool_.Acquire(n);
    assert(status.ok() && "buffer accounting exceeded pool capacity");
    (void)status;
  }
  void ReleaseBuffersAtCycleEnd(int64_t n) { pending_release_ += n; }

  DiskArray* disks_;
  const Layout* layout_;
  SchedulerConfig config_;
  SchedulerMetrics metrics_;

 private:
  void BeginCycle();

  BufferPool pool_;  // unlimited; measures occupancy / peak
  int64_t pending_release_ = 0;
  std::vector<std::unique_ptr<Stream>> streams_;
  int64_t cycle_ = 0;
  int slots_per_disk_ = 0;
  // Flat per-disk slot accounting, sized once in the constructor: TryRead
  // and FreeSlots are a single array access on the hot path (no ordered
  // containers anywhere in the per-cycle machinery).
  std::vector<int> slots_used_;
  // Per-disk flag, set for the next RunCycle only. `mid_cycle_count_`
  // lets BeginCycle skip the clear entirely in the (overwhelmingly
  // common) failure-free cycles.
  std::vector<uint8_t> mid_cycle_failed_;
  int mid_cycle_count_ = 0;
};

// Creates the scheduler matching `config.scheme`.
StatusOr<std::unique_ptr<CycleScheduler>> CreateScheduler(
    const SchedulerConfig& config, DiskArray* disks, const Layout* layout);

}  // namespace ftms

#endif  // FTMS_SCHED_CYCLE_SCHEDULER_H_
