#include "sched/improved_bandwidth_scheduler.h"

#include <algorithm>
#include <cassert>

namespace ftms {

ImprovedBandwidthScheduler::ImprovedBandwidthScheduler(
    const SchedulerConfig& config, DiskArray* disks, const Layout* layout)
    : CycleScheduler(config, disks, layout) {
  plan_.resize(static_cast<size_t>(disks->num_disks()));
}

void ImprovedBandwidthScheduler::DoAddStream(Stream* stream) {
  const size_t n = static_cast<size_t>(stream->id()) + 1;
  state_.resize(std::max(state_.size(), n));
  missing_count_.resize(std::max(missing_count_.size(), n), 0);
  parity_planned_.resize(std::max(parity_planned_.size(), n), false);
}

void ImprovedBandwidthScheduler::DoOnStreamStopped(Stream* stream) {
  GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
  if (buf.ready) {
    ReleaseBuffersAtCycleEnd(buf.buffered_tracks);
    buf.buffered_tracks = 0;
    buf.ready = false;
  }
}

void ImprovedBandwidthScheduler::DeliverGroup(ShardCtx& ctx,
                                              Stream* stream,
                                              GroupBuffer* buf) {
  // `have_count` was maintained at plan commit, so no rescan of `have`.
  const int missing = buf->tracks - buf->have_count;
  if (missing == 0) {
    // Healthy fast path: the whole group arrived; deliver it in one
    // batched column update.
    DeliverTracksOnTime(ctx, stream, buf->tracks);
    ReleaseBuffersAtCycleEnd(ctx, buf->buffered_tracks);
    buf->ready = false;
    buf->buffered_tracks = 0;
    return;
  }
  const bool can_reconstruct = missing == 1 && buf->parity_ok;
  for (int i = 0; i < buf->tracks; ++i) {
    bool on_time = buf->have[static_cast<size_t>(i)];
    if (!on_time && can_reconstruct) {
      on_time = true;
      ++ctx.metrics.reconstructed;
      CountReconstruction(geom_.GroupCluster(
          stream->object().id, geom_.GroupOf(buf->first_track)));
    }
    DeliverTrack(ctx, stream, on_time);
  }
  ReleaseBuffersAtCycleEnd(ctx, buf->buffered_tracks);
  buf->ready = false;
  buf->buffered_tracks = 0;
}

void ImprovedBandwidthScheduler::PlanStreamReads(ShardCtx& ctx,
                                                 Stream* stream,
                                                 GroupBuffer* buf) {
  if (stream->state() != StreamState::kActive || stream->finished()) {
    return;
  }
  if (buf->ready) return;  // still holding an undelivered group
  const int per_group = geom_.per_group;
  const int64_t first = stream->position();
  const MediaObject& object = stream->object();
  const int tracks = static_cast<int>(
      std::min<int64_t>(per_group, object.num_tracks - first));
  buf->ready = true;
  buf->first_track = first;
  buf->tracks = tracks;
  buf->have_count = 0;
  buf->have.assign(static_cast<size_t>(tracks), false);
  buf->parity_ok = false;
  buf->buffered_tracks = 0;

  // Delivery always consumes whole groups, so `first` is group-aligned
  // and data position i of the group is disk i of the group's cluster.
  assert(first % per_group == 0);
  const int cluster = geom_.GroupCluster(object.id, geom_.GroupOf(first));
  for (int i = 0; i < tracks; ++i) {
    const int disk = geom_.DataDisk(cluster, i);
    auto& disk_plan = plan_[static_cast<size_t>(disk)];
    if (!PlannerSeesUp(disk)) {
      // Known failure: skip the read; parity substitution follows in
      // PlanFailureParity().
      ++missing_count_[static_cast<size_t>(stream->id())];
      continue;
    }
    if (static_cast<int>(disk_plan.size()) >= slots_per_disk()) {
      if (config_.ib_mirror_read_balance &&
          config_.parity_group_size == 2) {
        // Mirroring (footnote 11): spill the read to the replica. The
        // block is "missing" from the primary; PlanFailureParity's
        // machinery places the copy read on the neighbor cluster and
        // DeliverGroup's reconstruction (XOR of a single survivor set,
        // i.e. the copy itself) serves it.
        ++missing_count_[static_cast<size_t>(stream->id())];
        continue;
      }
      // Overcommitted disk (admission violation): a plain deadline
      // miss. The parity substitution is reserved for FAILURES; it
      // must not silently absorb oversubscription (the bandwidth it
      // would use is exactly the reserve that masks real failures).
      ++ctx.metrics.dropped_reads;
      buf->have[static_cast<size_t>(i)] = false;  // lost for this cycle
      continue;
    }
    disk_plan.push_back(PlannedRead{stream->id(), i, false});
  }
}

bool ImprovedBandwidthScheduler::PlaceParityRead(StreamId stream,
                                                 int depth) {
  metrics_.max_shift_depth =
      std::max<int64_t>(metrics_.max_shift_depth, depth);
  if (depth > layout_->num_clusters()) {
    // The shift wrapped all the way around without finding idle capacity.
    return false;
  }
  Stream* s = FindStream(stream);
  const GroupBuffer& buf = state_[static_cast<size_t>(stream)];
  const int64_t group = geom_.GroupOf(buf.first_track);
  const int object_id = s->object().id;
  const int parity_disk = geom_.ParityDisk(
      object_id, group, geom_.GroupCluster(object_id, group));
  if (!PlannerSeesUp(parity_disk)) {
    // Parity disk itself is down: a second failure in an adjacent
    // cluster — catastrophic for this group (Section 4).
    return false;
  }
  auto& disk_plan = plan_[static_cast<size_t>(parity_disk)];
  if (static_cast<int>(disk_plan.size()) < slots_per_disk()) {
    disk_plan.push_back(PlannedRead{stream, 0, true});
    parity_planned_[static_cast<size_t>(stream)] = true;
    return true;
  }
  // No idle slot: drop one LOCAL data read whose group is still complete
  // (never remove a second block from any parity group), then push the
  // victim's parity requirement one cluster further right.
  for (size_t i = 0; i < disk_plan.size(); ++i) {
    const PlannedRead victim = disk_plan[i];
    if (victim.parity) continue;
    if (missing_count_[static_cast<size_t>(victim.stream)] > 0) continue;
    disk_plan.erase(disk_plan.begin() + static_cast<long>(i));
    ++missing_count_[static_cast<size_t>(victim.stream)];
    ++metrics_.shift_cascades;
    if (!PlaceParityRead(victim.stream, depth + 1)) {
      // Cascade failed downstream: the victim's track is lost this cycle.
      ++metrics_.degradation_events;
    }
    disk_plan.push_back(PlannedRead{stream, 0, true});
    parity_planned_[static_cast<size_t>(stream)] = true;
    return true;
  }
  return false;  // only parity reads here; nothing droppable
}

void ImprovedBandwidthScheduler::PlanFailureParity() {
  // Dense state-column scan; rows are admission-ordered StreamIds.
  const StreamState* state = stream_table().state();
  const int32_t rows = stream_table().size();
  for (int32_t id = 0; id < rows; ++id) {
    if (state[id] != StreamState::kActive) continue;
    if (missing_count_[static_cast<size_t>(id)] == 1 &&
        !parity_planned_[static_cast<size_t>(id)]) {
      if (!PlaceParityRead(id, 0)) {
        ++metrics_.degradation_events;
      }
    }
  }
}

void ImprovedBandwidthScheduler::PlanPrefetchParity() {
  if (!config_.ib_prefetch_parity) return;
  const StreamState* state = stream_table().state();
  const int32_t* object_id = stream_table().object_id();
  const int32_t rows = stream_table().size();
  for (int32_t id = 0; id < rows; ++id) {
    if (state[id] != StreamState::kActive) continue;
    const GroupBuffer& buf = state_[static_cast<size_t>(id)];
    if (!buf.ready || parity_planned_[static_cast<size_t>(id)]) continue;
    const int64_t group = geom_.GroupOf(buf.first_track);
    const int parity_disk = geom_.ParityDisk(
        object_id[id], group, geom_.GroupCluster(object_id[id], group));
    auto& disk_plan = plan_[static_cast<size_t>(parity_disk)];
    if (PlannerSeesUp(parity_disk) &&
        static_cast<int>(disk_plan.size()) < slots_per_disk()) {
      disk_plan.push_back(PlannedRead{id, 0, true});
      parity_planned_[static_cast<size_t>(id)] = true;
    }
  }
}

int ImprovedBandwidthScheduler::ShardCluster(const Stream& stream) const {
  const GroupBuffer& buf = state_[static_cast<size_t>(stream.id())];
  // Delivery (which precedes planning within the shard) advances the
  // stream past the buffered group before this cycle's plan targets the
  // next one.
  const int64_t pos =
      buf.ready ? buf.first_track + buf.tracks : stream.position();
  return geom_.GroupCluster(stream.object().id, geom_.GroupOf(pos));
}

void ImprovedBandwidthScheduler::ExecutePlan() {
  // Phase 1 — read execution, parallel over clusters: a planned read
  // touches only its own disk's slot account, and each disk belongs to
  // exactly one cluster, so per-disk outcomes match the serial schedule
  // exactly (the plan per disk was fixed before this point).
  const int dpc = layout_->disks_per_cluster();
  ParallelOverClusters([this, dpc](ShardCtx& ctx, int lo, int hi) {
    for (int disk = lo * dpc; disk < hi * dpc; ++disk) {
      for (PlannedRead& read : plan_[static_cast<size_t>(disk)]) {
        read.ok = TryRead(ctx, disk, read.parity) == ReadOutcome::kOk;
      }
    }
  });
  // Phase 2 — serial commit in disk order: a stream's group buffer is
  // shared between its data cluster and its neighbor-cluster parity read,
  // so the buffer updates stay out of the parallel phase.
  for (int disk = 0; disk < disks_->num_disks(); ++disk) {
    for (const PlannedRead& read : plan_[static_cast<size_t>(disk)]) {
      if (!read.ok) continue;
      GroupBuffer& buf = state_[static_cast<size_t>(read.stream)];
      ++buf.buffered_tracks;
      if (read.parity) {
        buf.parity_ok = true;
      } else {
        buf.have[static_cast<size_t>(read.pos)] = true;
        ++buf.have_count;
      }
    }
    plan_[static_cast<size_t>(disk)].clear();
  }
  // Account the buffered tracks for this cycle's reads.
  const int32_t rows = stream_table().size();
  for (int32_t id = 0; id < rows; ++id) {
    GroupBuffer& buf = state_[static_cast<size_t>(id)];
    if (buf.ready && buf.buffered_tracks > 0) {
      AcquireBuffers(buf.buffered_tracks);
    }
  }
}

void ImprovedBandwidthScheduler::DoRunCycle() {
  std::fill(missing_count_.begin(), missing_count_.end(), 0);
  std::fill(parity_planned_.begin(), parity_planned_.end(), false);
  // Delivery of the groups read last cycle fused with this cycle's data
  // planning, sharded by the cluster the stream's next group lives on
  // (delivery touches no disks; planning only pushes onto disks of that
  // cluster, and streams keep admission order within a shard, so every
  // per-disk plan comes out exactly as in the serial schedule). Parity
  // placement and execution follow serially: the right-shift cascade is
  // inherently cross-cluster.
  RunClusterSharded(
      [this](const Stream& stream) { return ShardCluster(stream); },
      [this](ShardCtx& ctx, std::span<Stream* const> shard) {
        for (Stream* stream : shard) {
          GroupBuffer& buf = state_[static_cast<size_t>(stream->id())];
          if (buf.ready) DeliverGroup(ctx, stream, &buf);
        }
        for (Stream* stream : shard) {
          PlanStreamReads(ctx, stream,
                          &state_[static_cast<size_t>(stream->id())]);
        }
      });
  PlanFailureParity();
  PlanPrefetchParity();
  ExecutePlan();
}

}  // namespace ftms
