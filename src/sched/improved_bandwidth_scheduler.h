#ifndef FTMS_SCHED_IMPROVED_BANDWIDTH_SCHEDULER_H_
#define FTMS_SCHED_IMPROVED_BANDWIDTH_SCHEDULER_H_

#include <vector>

#include "sched/cycle_scheduler.h"

namespace ftms {

// The Improved-bandwidth scheme of Section 4.
//
// Parity for cluster i lives on cluster i+1, so during normal operation
// every disk in the system delivers data and NO bandwidth idles in
// reserve. A stream reads its whole parity group's C-1 data tracks each
// cycle (like Streaming RAID) but, in normal mode, not the parity.
//
// On a disk failure, each affected group substitutes its parity block,
// which lives on the right-hand neighbor cluster. If the target disk has
// no idle slot, one of its scheduled LOCAL data reads is dropped in favor
// of the parity read (chained-declustering style); the dropped read is a
// partial failure of that cluster and pushes ITS parity read one cluster
// further right — the "shift to the right" cascade. When the cascade finds
// no idle capacity anywhere, degradation of service occurs and the request
// is dropped for the cycle.
//
// A failure in the middle of a cycle cannot be masked for the tracks
// already scheduled on the failed disk (parity was not being read
// concurrently): those streams suffer one isolated hiccup, after which the
// parity substitution takes over. Setting `ib_prefetch_parity` reads
// parity proactively whenever slots allow (the paper's "sophisticated
// scheduler" for lightly loaded systems), masking even mid-cycle failures.
class ImprovedBandwidthScheduler : public CycleScheduler {
 public:
  ImprovedBandwidthScheduler(const SchedulerConfig& config, DiskArray* disks,
                             const Layout* layout);

 protected:
  void DoRunCycle() override;
  void DoAddStream(Stream* stream) override;
  void DoOnStreamStopped(Stream* stream) override;

 private:
  // One group being read this cycle / delivered next cycle.
  struct GroupBuffer {
    bool ready = false;
    int64_t first_track = 0;
    int tracks = 0;
    int have_count = 0;         // data positions read OK (== trues in have)
    std::vector<uint8_t> have;  // byte flags, not vector<bool>
    bool parity_ok = false;
    int64_t buffered_tracks = 0;
  };

  struct PlannedRead {
    StreamId stream = -1;
    int pos = 0;         // position within the group (data reads)
    bool parity = false;
    bool ok = false;     // execution outcome (set in the parallel phase)
  };

  // True when the planner believes the disk serves reads this cycle
  // (an actual mid-cycle failure is discovered only at execution).
  // Inline: tested once per planned read.
  bool PlannerSeesUp(int disk) const {
    return DiskUp(disk) || FailedMidCycle(disk);
  }

  // The cluster holding the group this stream delivers/plans this cycle
  // (every data read of a group shares one cluster; the parity read is
  // planned separately in the serial cascade phase).
  int ShardCluster(const Stream& stream) const;

  void DeliverGroup(ShardCtx& ctx, Stream* stream, GroupBuffer* buf);
  void PlanStreamReads(ShardCtx& ctx, Stream* stream, GroupBuffer* buf);
  void PlanFailureParity();
  void PlanPrefetchParity();
  // Places the parity read for `stream`'s current group, shifting local
  // reads to the right as needed. Returns false on degradation.
  bool PlaceParityRead(StreamId stream, int depth);
  void ExecutePlan();

  std::vector<GroupBuffer> state_;
  std::vector<std::vector<PlannedRead>> plan_;     // per disk
  std::vector<int> missing_count_;                 // per stream, this cycle
  std::vector<uint8_t> parity_planned_;            // per stream, this cycle
};

}  // namespace ftms

#endif  // FTMS_SCHED_IMPROVED_BANDWIDTH_SCHEDULER_H_
