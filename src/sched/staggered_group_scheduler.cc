#include "sched/staggered_group_scheduler.h"

#include <algorithm>
#include <cassert>

namespace ftms {

StaggeredGroupScheduler::StaggeredGroupScheduler(
    const SchedulerConfig& config, DiskArray* disks, const Layout* layout)
    : CycleScheduler(config, disks, layout) {}

void StaggeredGroupScheduler::DoAddStream(Stream* stream) {
  state_.resize(std::max(state_.size(),
                         static_cast<size_t>(stream->id()) + 1));
  next_phase_per_cluster_.resize(
      static_cast<size_t>(layout_->num_clusters()), 0);
  SgState& st = state_[static_cast<size_t>(stream->id())];
  // Staggered phase assignment: spread each cluster's streams over the
  // C-1 read phases round-robin, so both the disk load and the memory
  // peaks are out of phase (Figure 4).
  const size_t home =
      static_cast<size_t>(geom_.HomeCluster(stream->object().id));
  st.phase = next_phase_per_cluster_[home]++ % geom_.per_group;
}

int64_t StaggeredGroupScheduler::BufferedTracksOf(StreamId id) const {
  if (id < 0 || static_cast<size_t>(id) >= state_.size()) return 0;
  return state_[static_cast<size_t>(id)].buffered_tracks;
}

void StaggeredGroupScheduler::DoOnStreamStopped(Stream* stream) {
  SgState& st = state_[static_cast<size_t>(stream->id())];
  if (st.buffered_tracks > 0) {
    ReleaseBuffersAtCycleEnd(st.buffered_tracks);
    st.buffered_tracks = 0;
  }
  st.delivered = st.tracks;  // nothing left to transmit
}

void StaggeredGroupScheduler::ReadGroup(ShardCtx& ctx, Stream* stream,
                                        SgState* st) {
  const int per_group = geom_.per_group;
  const int64_t first = stream->position();
  assert(first % per_group == 0);
  const int64_t group = geom_.GroupOf(first);
  const MediaObject& object = stream->object();
  const int tracks = static_cast<int>(
      std::min<int64_t>(per_group, object.num_tracks - first));

  st->first_track = first;
  st->tracks = tracks;
  st->delivered = 0;
  st->missing = 0;
  st->have.assign(static_cast<size_t>(tracks), false);

  // Group-aligned read: data position i is disk i of the group's cluster.
  const int cluster = geom_.GroupCluster(object.id, group);
  for (int i = 0; i < tracks; ++i) {
    const bool ok = TryRead(ctx, geom_.DataDisk(cluster, i),
                            /*is_parity=*/false) == ReadOutcome::kOk;
    st->have[static_cast<size_t>(i)] = ok;
    if (!ok) ++st->missing;
  }
  st->parity_ok =
      TryRead(ctx, geom_.ParityDisk(object.id, group, cluster),
              /*is_parity=*/true) == ReadOutcome::kOk;

  st->buffered_tracks = tracks + 1;  // group + parity held in memory
  AcquireBuffers(ctx, st->buffered_tracks);
  st->started = true;
}

void StaggeredGroupScheduler::DeliverOne(ShardCtx& ctx, Stream* stream,
                                         SgState* st) {
  const int i = st->delivered;
  // `missing` was counted once at ReadGroup; `have` is immutable between
  // the group read and its last delivery.
  bool on_time = st->have[static_cast<size_t>(i)];
  if (!on_time && st->missing == 1 && st->parity_ok) {
    // Entire group (minus the lost block) plus parity is in memory: the
    // missing track is rebuilt on the fly (Observation 2 holds because
    // the group was read in full before its first delivery cycle).
    on_time = true;
    ++ctx.metrics.reconstructed;
    CountReconstruction(geom_.GroupCluster(
        stream->object().id, geom_.GroupOf(stream->position())));
  }
  DeliverTrack(ctx, stream, on_time);
  ++st->delivered;
  // The delivered track's buffer is released; the parity buffer is held
  // until the whole group has been transmitted.
  ReleaseBuffersAtCycleEnd(ctx, 1);
  --st->buffered_tracks;
  if (st->delivered == st->tracks) {
    ReleaseBuffersAtCycleEnd(ctx, st->buffered_tracks);  // parity (and reconstruction) state
    st->buffered_tracks = 0;
  }
}

int StaggeredGroupScheduler::ShardCluster(const Stream& stream) const {
  const SgState& st = state_[static_cast<size_t>(stream.id())];
  int64_t pos = stream.position();
  // The delivery phase advances the position by one before any read this
  // cycle could happen.
  if (st.started && st.delivered < st.tracks) ++pos;
  return geom_.GroupCluster(stream.object().id, geom_.GroupOf(pos));
}

void StaggeredGroupScheduler::DoRunCycle() {
  RunClusterSharded(
      [this](const Stream& stream) { return ShardCluster(stream); },
      [this](ShardCtx& ctx, std::span<Stream* const> shard) {
        // Delivery phase: one track per active stream per cycle (streams
        // that have not yet had their first read cycle are still
        // starting up).
        for (Stream* stream : shard) {
          SgState& st = state_[static_cast<size_t>(stream->id())];
          if (st.started && st.delivered < st.tracks) {
            DeliverOne(ctx, stream, &st);
          }
        }
        // Read phase: streams whose staggered read cycle this is fetch
        // their next whole group. The last delivery cycle of the
        // previous group overlaps the read cycle of the next
        // (Section 2); the delivery pass above already emitted this
        // cycle's track, so on the overlap cycle the old group is fully
        // drained by now.
        for (Stream* stream : shard) {
          if (stream->state() != StreamState::kActive) continue;
          if (stream->finished()) continue;
          SgState& st = state_[static_cast<size_t>(stream->id())];
          if (IsReadCycle(st) &&
              (!st.started || st.delivered >= st.tracks)) {
            ReadGroup(ctx, stream, &st);
          }
        }
      });
}

}  // namespace ftms
