#include <memory>
#include <utility>

#include "sched/cycle_scheduler.h"
#include "sched/improved_bandwidth_scheduler.h"
#include "sched/non_clustered_scheduler.h"
#include "sched/staggered_group_scheduler.h"
#include "sched/streaming_raid_scheduler.h"

namespace ftms {

StatusOr<std::unique_ptr<CycleScheduler>> CreateScheduler(
    const SchedulerConfig& config, DiskArray* disks, const Layout* layout) {
  if (disks == nullptr || layout == nullptr) {
    return Status::InvalidArgument("disks and layout must be non-null");
  }
  if (config.parity_group_size != layout->parity_group_size()) {
    return Status::InvalidArgument(
        "scheduler parity group size differs from the layout's");
  }
  if (config.scheme == Scheme::kImprovedBandwidth &&
      layout->scheme_family() != Scheme::kImprovedBandwidth) {
    return Status::InvalidArgument(
        "Improved-bandwidth scheduling requires the IB layout");
  }
  if (config.scheme != Scheme::kImprovedBandwidth &&
      layout->scheme_family() == Scheme::kImprovedBandwidth) {
    return Status::InvalidArgument(
        "clustered schedulers require the clustered layout");
  }
  if (IsDualParity(config.scheme) != (layout->parity_blocks() == 2)) {
    return Status::InvalidArgument(
        "dual-parity schemes and the dual-parity layout must be paired");
  }
  std::unique_ptr<CycleScheduler> sched;
  switch (config.scheme) {
    case Scheme::kStreamingRaid:
    case Scheme::kStreamingRaid2:
      sched = std::make_unique<StreamingRaidScheduler>(config, disks,
                                                       layout);
      break;
    case Scheme::kStaggeredGroup:
      sched = std::make_unique<StaggeredGroupScheduler>(config, disks,
                                                        layout);
      break;
    case Scheme::kNonClustered:
    case Scheme::kNonClustered2:
      sched = std::make_unique<NonClusteredScheduler>(config, disks,
                                                      layout);
      break;
    case Scheme::kImprovedBandwidth:
      sched = std::make_unique<ImprovedBandwidthScheduler>(config, disks,
                                                           layout);
      break;
  }
  if (sched == nullptr) return Status::Internal("unknown scheme");
  return sched;
}

}  // namespace ftms
