#include "sched/non_clustered_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ftms {

NonClusteredScheduler::NonClusteredScheduler(const SchedulerConfig& config,
                                             DiskArray* disks,
                                             const Layout* layout)
    : CycleScheduler(config, disks, layout),
      servers_(config.buffer_servers,
               /*tracks_per_server=*/config.parity_group_size + 1),
      server_attached_(static_cast<size_t>(layout->num_clusters()), false) {}

void NonClusteredScheduler::DoAddStream(Stream* stream) {
  state_.resize(std::max(state_.size(),
                         static_cast<size_t>(stream->id()) + 1));
  NcState& st = state_[static_cast<size_t>(stream->id())];
  // One group plus the largest rate-multiplier burst; sized here so the
  // per-cycle buffering path never allocates.
  st.buffered.Reserve(static_cast<size_t>(layout_->parity_group_size()) +
                      16);
  st.multiplier = RateMultiplier(*stream);
}

int NonClusteredScheduler::FailedDataIndex(int cluster) const {
  const int c = layout_->parity_group_size();
  const int data_slots = c - layout_->parity_blocks();
  for (int i = 0; i < data_slots; ++i) {
    if (!disks_->disk(cluster * c + i).operational()) return i;
  }
  return -1;
}

int NonClusteredScheduler::NumFailedData(int cluster) const {
  // O(1) from the array's per-cluster failure count: every disk of the
  // cluster except the trailing parity slot(s) is a data disk.
  const int parity_failed =
      layout_->parity_blocks() - ParityDisksUp(cluster);
  return disks_->NumFailedInCluster(cluster) - parity_failed;
}

int NonClusteredScheduler::ParityDisksUp(int cluster) const {
  const int c = layout_->parity_group_size();
  int up = 0;
  for (int s = c - layout_->parity_blocks(); s < c; ++s) {
    if (disks_->DiskUp(cluster * c + s)) ++up;
  }
  return up;
}

bool NonClusteredScheduler::CanReconstruct(int cluster) const {
  const int failed = NumFailedData(cluster);
  return failed >= 1 && failed <= ParityDisksUp(cluster);
}

bool NonClusteredScheduler::ClusterDegraded(int cluster) const {
  return NumFailedData(cluster) > 0;
}

int64_t NonClusteredScheduler::DueTrack(const Stream& stream,
                                        const NcState& st) const {
  // Reads run after the delivery phase, so `position` already names the
  // track due next cycle — exactly what normal NC operation fetches.
  (void)st;
  const int64_t t = stream.position();
  return t < stream.object().num_tracks ? t : -1;
}

bool NonClusteredScheduler::SupportsRate(double rate_mb_s) const {
  const double ratio = rate_mb_s / config_.object_rate_mb_s;
  const double rounded = std::round(ratio);
  return rounded >= 1.0 && rounded <= 16.0 &&
         std::abs(ratio - rounded) < 1e-9;
}

int NonClusteredScheduler::RateMultiplier(const Stream& stream) const {
  return static_cast<int>(
      std::round(stream.object().rate_mb_s / config_.object_rate_mb_s));
}

void NonClusteredScheduler::BufferTrack(ShardCtx& ctx, NcState* st,
                                        int64_t track) {
  if (st->buffered.Insert(track)) AcquireBuffers(ctx, 1);
}

void NonClusteredScheduler::DeliverStream(ShardCtx& ctx, Stream* stream,
                                          NcState* st) {
  if (!st->started) return;
  // Streams at m-times the base rate transmit m tracks per cycle.
  const int multiplier = st->multiplier;
  for (int k = 0;
       k < multiplier && stream->state() == StreamState::kActive; ++k) {
    DeliverOneTrack(ctx, stream, st);
  }
}

void NonClusteredScheduler::DeliverOneTrack(ShardCtx& ctx, Stream* stream,
                                            NcState* st) {
  const int64_t p = stream->position();
  const bool have = st->buffered.Contains(p);
  if (have) {
    st->buffered.Erase(p);
    ReleaseBuffersAtCycleEnd(ctx, 1);
  }
  // Deferred strategy: while a group's reconstruction is pending, fold
  // the delivered track into the running XOR instead of discarding it.
  const int64_t group = geom_.GroupOf(p);
  if (config_.nc_transition == NcTransition::kDeferredRead &&
      st->acc_group == group && have &&
      geom_.PositionInGroup(p) == st->acc_prefix) {
    if (!st->acc_held) {
      AcquireBuffers(ctx, 1);  // the accumulator buffer
      st->acc_held = true;
    }
    ++st->acc_prefix;
  }
  DeliverTrack(ctx, stream, have);
  // Drop a stale accumulator at group end (e.g. the disk was repaired
  // before the reconstruction deadline) or at stream end.
  const bool group_done =
      geom_.PositionInGroup(p) == geom_.per_group - 1;
  if ((stream->state() != StreamState::kActive || group_done) &&
      st->acc_group == group) {
    if (st->acc_held) {
      ReleaseBuffersAtCycleEnd(ctx, 1);
      st->acc_held = false;
    }
    st->acc_group = -1;
    st->acc_prefix = 0;
  }
}

void NonClusteredScheduler::ReadGroupNow(ShardCtx& ctx, Stream* stream,
                                         NcState* st, int64_t group,
                                         bool with_server) {
  const int object_id = stream->object().id;
  const int per_group = geom_.per_group;
  const int cluster = geom_.GroupCluster(object_id, group);
  const int64_t first = group * per_group;
  const int64_t last = std::min<int64_t>(first + per_group,
                                         stream->object().num_tracks);

  // Read every not-yet-buffered, not-yet-delivered track of the group.
  bool all_survivors_ok = true;
  int missing_count = 0;
  int64_t missing_tracks[2] = {-1, -1};
  for (int64_t t = std::max(first, stream->position()); t < last; ++t) {
    if (st->buffered.Contains(t)) continue;
    // Position of t within this group is t - first (the loop stays inside
    // one group), so the disk is inline arithmetic off the group cluster.
    const int disk =
        geom_.DataDisk(cluster, static_cast<int>(t - first));
    if (!DiskUp(disk)) {
      // The planner never issues reads to a known-dead disk, so record
      // the degraded read here — TryRead can't see skipped attempts.
      CountDegradedRead(cluster);
      if (missing_count < 2) missing_tracks[missing_count] = t;
      ++missing_count;
      continue;
    }
    if (TryRead(ctx, disk, /*is_parity=*/false) == ReadOutcome::kOk) {
      BufferTrack(ctx, st, t);
    } else {
      all_survivors_ok = false;
    }
  }

  // Parity read(s) + on-the-fly reconstruction of the failed block(s):
  // one parity column per missing block (P for a single erasure, P and Q
  // for the dual-parity double-erasure repair). Requires the whole rest
  // of the group in memory: every survivor just read, plus (deferred
  // strategy) the accumulated prefix of already-delivered tracks.
  // Without a buffer server the cluster has no memory to stage the
  // group, so the block(s) are lost.
  if (missing_count > 0) {
    bool prefix_ok = true;
    for (int64_t t = first; t < stream->position() && t < last; ++t) {
      // Tracks delivered before this group read must be in the XOR
      // accumulator (deferred) -- otherwise they are gone.
      prefix_ok = st->acc_group == group &&
                  st->acc_prefix >= geom_.PositionInGroup(t) + 1;
      if (!prefix_ok) break;
    }
    int parity_reads_ok = 0;
    if (CanReconstruct(cluster) && missing_count <= ParityDisksUp(cluster) &&
        with_server && prefix_ok && all_survivors_ok) {
      AcquireBuffers(ctx, missing_count);
      const int c = geom_.disks_per_cluster;
      for (int s = c - geom_.parity_blocks;
           s < c && parity_reads_ok < missing_count; ++s) {
        const int disk = geom_.DataDisk(cluster, s);
        if (!DiskUp(disk)) continue;
        if (TryRead(ctx, disk, /*is_parity=*/true) == ReadOutcome::kOk) {
          ++parity_reads_ok;
        }
      }
      // Folded into the reconstruction immediately.
      ReleaseBuffersAtCycleEnd(ctx, missing_count);
    }
    if (parity_reads_ok >= missing_count) {
      for (int m = 0; m < missing_count; ++m) {
        BufferTrack(ctx, st, missing_tracks[m]);
        ++ctx.metrics.reconstructed;
        CountReconstruction(cluster);
      }
    }
  }

  // The group's reconstruction state is resolved; drop the accumulator.
  if (st->acc_group == group) {
    if (st->acc_held) {
      ReleaseBuffersAtCycleEnd(ctx, 1);
      st->acc_held = false;
    }
    st->acc_group = -1;
    st->acc_prefix = 0;
  }
  st->started = true;
}

void NonClusteredScheduler::GroupReadStream(ShardCtx& ctx, Stream* stream,
                                            NcState* st) {
  if (stream->state() != StreamState::kActive) return;
  const int64_t first_due = DueTrack(*stream, *st);
  if (first_due < 0) return;
  const int multiplier = st->multiplier;
  for (int k = 0; k < multiplier; ++k) {
    const int64_t due = first_due + k;
    if (due >= stream->object().num_tracks) break;
    if (st->buffered.Contains(due)) continue;
    const int64_t group = geom_.GroupOf(due);
    const int cluster =
        geom_.GroupCluster(stream->object().id, group);
    if (!ClusterDegraded(cluster)) continue;
    const bool with_server =
        server_attached_[static_cast<size_t>(cluster)];
    const int pos = geom_.PositionInGroup(due);
    const int failed = FailedDataIndex(cluster);

    if (config_.nc_transition == NcTransition::kImmediateShift) {
      // Entering the group: burst-read all of it now (Figure 6). Streams
      // caught mid-group keep their one-track-per-cycle schedule in the
      // normal pass and lose what the burst displaces.
      if (pos == 0 || !st->started) {
        ReadGroupNow(ctx, stream, st, group, with_server);
      }
    } else {
      // Deferred (Figure 7): start accumulating at group entry; when the
      // failed position comes due, read the suffix + parity just in time.
      // Mid-group streams have no accumulated prefix, so bursting could
      // not reconstruct anything — they stay on the normal schedule and
      // simply lose the failed-disk track.
      if ((pos == 0 && st->acc_group != group) && failed >= 0) {
        st->acc_group = group;
        st->acc_prefix = 0;
      }
      if (failed >= 0 && pos == failed && st->acc_group == group) {
        ReadGroupNow(ctx, stream, st, group, with_server);
      }
    }
  }
}

void NonClusteredScheduler::NormalReadStream(ShardCtx& ctx, Stream* stream,
                                             NcState* st) {
  if (stream->state() != StreamState::kActive) return;
  const int64_t first_due = DueTrack(*stream, *st);
  if (first_due < 0) return;
  const int multiplier = st->multiplier;
  const int object_id = stream->object().id;
  const int64_t num_tracks = stream->object().num_tracks;
  for (int k = 0; k < multiplier; ++k) {
    const int64_t due = first_due + k;
    if (due >= num_tracks) break;
    if (st->buffered.Contains(due)) {
      st->started = true;  // a group read already staged this track
      continue;
    }
    const int disk = geom_.DataDiskOf(object_id, due);
    if (!DiskUp(disk)) {
      // Lost to the failure; the delivery phase will record the hiccup
      // when the track comes due.
      CountDegradedRead(geom_.ClusterOfDisk(disk));
      st->started = true;
      continue;
    }
    if (TryRead(ctx, disk, /*is_parity=*/false) == ReadOutcome::kOk) {
      BufferTrack(ctx, st, due);
    }
    st->started = true;
  }
}

int NonClusteredScheduler::ShardCluster(const Stream& stream) const {
  const NcState& st = state_[static_cast<size_t>(stream.id())];
  const MediaObject& object = stream.object();
  const int multiplier = st.multiplier;
  // The delivery phase advances the position by the rate multiplier
  // before this cycle's reads pick their due tracks.
  const int64_t due =
      stream.position() + (st.started ? multiplier : 0);
  if (due >= object.num_tracks) {
    // No reads left; any cluster works for the (delivery-only) kernel.
    return geom_.HomeCluster(object.id);
  }
  const int64_t last =
      std::min<int64_t>(due + multiplier - 1, object.num_tracks - 1);
  const int64_t first_group = geom_.GroupOf(due);
  const int cluster = geom_.GroupCluster(object.id, first_group);
  for (int64_t g = first_group + 1; g <= geom_.GroupOf(last); ++g) {
    // A multi-rate burst crossing a group boundary can touch two
    // clusters in one cycle; signal the serial fallback.
    if (geom_.GroupCluster(object.id, g) != cluster) return -1;
  }
  return cluster;
}

void NonClusteredScheduler::DoRunCycle() {
  // With every disk up no cluster is degraded, so the group-read pass is
  // a per-stream no-op (its only effects are gated on ClusterDegraded);
  // skip the whole sweep in the failure-free common case. The decision
  // reads scheduler state only, so thread-count invariance holds.
  const bool any_failed = disks_->NumFailed() > 0;
  RunClusterSharded(
      [this](const Stream& stream) { return ShardCluster(stream); },
      [this, any_failed](ShardCtx& ctx, std::span<Stream* const> shard) {
        // Same three phases as the serial scheduler, restricted to one
        // cluster's streams: deliver, then high-priority group reads,
        // then low-priority single-track reads.
        for (Stream* stream : shard) {
          DeliverStream(ctx, stream,
                        &state_[static_cast<size_t>(stream->id())]);
        }
        if (any_failed) {
          for (Stream* stream : shard) {
            GroupReadStream(ctx, stream,
                            &state_[static_cast<size_t>(stream->id())]);
          }
        }
        for (Stream* stream : shard) {
          NormalReadStream(ctx, stream,
                           &state_[static_cast<size_t>(stream->id())]);
        }
      });
}

void NonClusteredScheduler::DoOnStreamStopped(Stream* stream) {
  NcState& st = state_[static_cast<size_t>(stream->id())];
  int64_t held = st.buffered.size();
  if (st.acc_held) ++held;
  if (held > 0) ReleaseBuffersAtCycleEnd(held);
  st.buffered.Clear();
  st.acc_held = false;
  st.acc_group = -1;
  st.acc_prefix = 0;
}

void NonClusteredScheduler::DoOnDiskFailed(int disk) {
  const int cluster = disk / layout_->parity_group_size();
  const int index = disk % layout_->parity_group_size();
  const int data_slots =
      layout_->parity_group_size() - layout_->parity_blocks();
  if (index >= data_slots) return;  // parity disk (P or Q)
  if (!server_attached_[static_cast<size_t>(cluster)]) {
    if (servers_.AttachToCluster(cluster).ok()) {
      server_attached_[static_cast<size_t>(cluster)] = true;
    } else {
      // All K buffer servers busy: degradation of service (Section 5's
      // MTTDS event). The cluster runs degraded without reconstruction.
      ++metrics_.degradation_events;
    }
  }
}

void NonClusteredScheduler::DoOnDiskRepaired(int disk) {
  const int cluster = disk / layout_->parity_group_size();
  if (!ClusterDegraded(cluster) &&
      server_attached_[static_cast<size_t>(cluster)]) {
    servers_.DetachFromCluster(cluster).ok();
    server_attached_[static_cast<size_t>(cluster)] = false;
  }
}

}  // namespace ftms
