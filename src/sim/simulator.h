#ifndef FTMS_SIM_SIMULATOR_H_
#define FTMS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace ftms {

// A minimal discrete-event simulation engine.
//
// Events are closures scheduled at absolute simulated times. Ties are broken
// by insertion order (FIFO), which makes simulations fully deterministic.
// The multimedia-server simulation advances in fixed-length scheduling
// cycles, while the reliability simulations schedule exponentially
// distributed failure/repair events; both run on this engine.
//
// The pending-event set lives in an EventQueue (sim/event_queue.h): a
// calendar queue by default, or the binary heap it is differentially
// tested against, selected by FTMS_EVENT_QUEUE=heap|calendar or the
// constructor argument. Both produce byte-identical simulations; see
// DESIGN.md §11. Callbacks with small trivial captures (≤ 3 words) are
// stored inline in the event record — scheduling them allocates nothing.
class Simulator {
 public:
  using Callback = EventCallback;

  Simulator() : Simulator(EventQueueKindFromEnv()) {}
  explicit Simulator(EventQueueKind kind)
      : queue_kind_(kind), queue_(MakeEventQueue(kind)) {}
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time. Starts at 0.
  SimTime Now() const { return now_; }

  EventQueueKind queue_kind() const { return queue_kind_; }

  // Schedules `cb` to run `delay` seconds from now. Negative delays clamp
  // to "now" (the event still runs after currently pending events at the
  // same timestamp that were scheduled earlier).
  void Schedule(SimTime delay, Callback cb) {
    ScheduleAt(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  // Schedules `cb` at absolute time `t` (clamped to Now()).
  void ScheduleAt(SimTime t, Callback cb) {
    queue_->Push(EventRec{t < now_ ? now_ : t, next_seq_++, std::move(cb)});
  }

  // Runs the next pending event, advancing the clock. Returns false when
  // no events remain. A direct Step() is a serial sync point: bound
  // instruments are brought up to date before it returns.
  bool Step() {
    const bool ran = StepNoFlush();
    FlushInstruments();
    return ran;
  }

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamp <= `t`, then advances the clock to exactly
  // `t` (even if the next pending event is later).
  void RunUntil(SimTime t);

  bool empty() const { return queue_->empty(); }
  size_t pending() const { return queue_->size(); }
  uint64_t events_processed() const { return events_processed_; }

  // Optional observability sinks (null = off; must outlive the simulator).
  // `events` counts processed events; `pending` tracks the queue size.
  // Updated at serial sync points (Step/Run/RunUntil boundaries), not per
  // event — the per-event relaxed-atomic traffic showed up in profiles.
  void BindInstruments(class Counter* events, class Gauge* pending) {
    events_counter_ = events;
    pending_gauge_ = pending;
    events_flushed_ = events_processed_;
  }

  // Optional QoS journal (null = off). Each completed Run()/RunUntil()
  // appends one kSimHorizon event carrying the final clock and the number
  // of events processed — a serial point, so the journal stays
  // deterministic.
  void BindJournal(class EventJournal* journal) { journal_ = journal; }

  // Optional telemetry hub (null = off). Every FlushInstruments — i.e.
  // every Step/Run/RunUntil boundary, the engine's serial sync points —
  // publishes a fresh snapshot for live scrapes (see telemetry/).
  void BindTelemetry(class TelemetryHub* hub) { telemetry_ = hub; }

 private:
  bool StepNoFlush() {
    EventRec ev;
    if (!queue_->PopMin(&ev)) return false;
    now_ = ev.time;
    ++events_processed_;
    ev.cb();
    return true;
  }

  void FlushInstruments();
  void JournalHorizon();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t events_flushed_ = 0;  // counted into events_counter_ so far

  EventQueueKind queue_kind_;
  std::unique_ptr<EventQueue> queue_;
  // Fire-and-forget timers created by SchedulePeriodic; owned here so a
  // simulator destroyed with ticks still queued leaks nothing.
  std::vector<std::unique_ptr<class PeriodicTimer>> owned_timers_;
  class Counter* events_counter_ = nullptr;
  class Gauge* pending_gauge_ = nullptr;
  class EventJournal* journal_ = nullptr;
  class TelemetryHub* telemetry_ = nullptr;

  friend void SchedulePeriodic(Simulator&, SimTime, SimTime,
                               std::function<bool()>);
};

// A self-rescheduling periodic process: fires `tick` every `period`
// seconds until it returns false or Cancel() is called. Each firing
// schedules the next one with a single inline-capture event (one pointer),
// so a steady periodic process allocates nothing per tick — unlike the old
// SchedulePeriodic, which copied a shared_ptr-held std::function every
// period.
//
// The tick runs BEFORE the next firing is scheduled, so the next event's
// sequence number is larger than those of any events the tick itself
// scheduled — exactly the legacy ordering, preserved for determinism.
//
// The timer must outlive its queued event (keep it alive until the
// simulator is done, or Cancel() it and run the queue dry). For
// fire-and-forget use, SchedulePeriodic below parks the timer in the
// simulator, which owns it for the rest of the simulation.
class PeriodicTimer {
 public:
  using Tick = std::function<bool()>;

  PeriodicTimer(Simulator* sim, SimTime period, Tick tick)
      : sim_(sim), period_(period), tick_(std::move(tick)) {}
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  // Schedules the first firing at absolute time `start` (clamped to now).
  void Start(SimTime start) {
    active_ = true;
    sim_->ScheduleAt(start, [this] { Fire(); });
  }

  // Stops the timer: the already queued firing becomes a no-op. Idempotent.
  void Cancel() { active_ = false; }

  bool active() const { return active_; }

 private:
  void Fire() {
    if (!active_) return;
    if (!tick_()) {
      active_ = false;
      return;
    }
    sim_->Schedule(period_, [this] { Fire(); });
  }

  Simulator* sim_;
  SimTime period_;
  Tick tick_;
  bool active_ = false;
};

// Convenience: schedules `cb` to run every `period` seconds, starting at
// `start`, until it returns false. Cancellation is by return value of the
// callback; the simulator owns the underlying timer. For external
// cancellation, own a PeriodicTimer directly.
void SchedulePeriodic(Simulator& sim, SimTime start, SimTime period,
                      std::function<bool()> cb);

}  // namespace ftms

#endif  // FTMS_SIM_SIMULATOR_H_
