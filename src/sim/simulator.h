#ifndef FTMS_SIM_SIMULATOR_H_
#define FTMS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ftms {

// Simulated time, in seconds.
using SimTime = double;

// A minimal discrete-event simulation engine.
//
// Events are closures scheduled at absolute simulated times. Ties are broken
// by insertion order (FIFO), which makes simulations fully deterministic.
// The multimedia-server simulation advances in fixed-length scheduling
// cycles, while the reliability simulations schedule exponentially
// distributed failure/repair events; both run on this engine.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time. Starts at 0.
  SimTime Now() const { return now_; }

  // Schedules `cb` to run `delay` seconds from now. Negative delays clamp
  // to "now" (the event still runs after currently pending events at the
  // same timestamp that were scheduled earlier).
  void Schedule(SimTime delay, Callback cb) {
    ScheduleAt(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  // Schedules `cb` at absolute time `t` (clamped to Now()).
  void ScheduleAt(SimTime t, Callback cb);

  // Runs the next pending event, advancing the clock. Returns false when
  // no events remain.
  bool Step();

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamp <= `t`, then advances the clock to exactly
  // `t` (even if the next pending event is later).
  void RunUntil(SimTime t);

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  // Optional observability sinks (null = off; must outlive the simulator).
  // `events` counts processed events; `pending` tracks the queue size.
  void BindInstruments(class Counter* events, class Gauge* pending) {
    events_counter_ = events;
    pending_gauge_ = pending;
  }

  // Optional QoS journal (null = off). Each completed Run()/RunUntil()
  // appends one kSimHorizon event carrying the final clock and the number
  // of events processed — a serial point, so the journal stays
  // deterministic.
  void BindJournal(class EventJournal* journal) { journal_ = journal; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among equal timestamps
    Callback cb;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  void JournalHorizon();

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  class Counter* events_counter_ = nullptr;
  class Gauge* pending_gauge_ = nullptr;
  class EventJournal* journal_ = nullptr;
};

// Convenience: schedules `cb` to run every `period` seconds, starting at
// `start`, until it returns false. Returns nothing; cancellation is by
// return value of the callback.
void SchedulePeriodic(Simulator& sim, SimTime start, SimTime period,
                      std::function<bool()> cb);

}  // namespace ftms

#endif  // FTMS_SIM_SIMULATOR_H_
