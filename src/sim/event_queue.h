#ifndef FTMS_SIM_EVENT_QUEUE_H_
#define FTMS_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/profiler.h"

namespace ftms {

// Simulated time, in seconds (shared with Simulator).
using SimTime = double;

// Thread-local size-class slab for event-callback captures that do not fit
// the inline buffer. Freed blocks go onto a per-class free list and are
// handed straight back to the next allocation, so a steady-state simulation
// that churns large closures recycles the same few blocks instead of
// hitting the global allocator per event. Pages are owned by the thread and
// released at thread exit. Single-threaded by design (one simulator runs on
// one thread); blocks must be freed on the thread that allocated them.
class CallbackArena {
 public:
  static void* Alloc(size_t bytes) {
    const int cls = ClassOf(bytes);
    if (cls < 0) return ::operator new(bytes);
    Shard& s = shard();
    std::vector<void*>& free_list = s.free_lists[cls];
    if (free_list.empty()) Carve(s, cls);
    void* p = free_list.back();
    free_list.pop_back();
    return p;
  }

  static void Free(void* p, size_t bytes) {
    const int cls = ClassOf(bytes);
    if (cls < 0) {
      ::operator delete(p);
      return;
    }
    shard().free_lists[cls].push_back(p);
  }

 private:
  static constexpr size_t kClassBytes[] = {32, 64, 128, 256, 512};
  static constexpr int kNumClasses = 5;
  static constexpr size_t kPageBytes = 16 * 1024;

  struct Shard {
    std::vector<void*> free_lists[kNumClasses];
    std::vector<std::unique_ptr<unsigned char[]>> pages;
  };

  static Shard& shard() {
    static thread_local Shard s;
    return s;
  }

  static int ClassOf(size_t bytes) {
    for (int c = 0; c < kNumClasses; ++c) {
      if (bytes <= kClassBytes[c]) return c;
    }
    return -1;
  }

  static void Carve(Shard& s, int cls) {
    const size_t block = kClassBytes[cls];
    auto page = std::make_unique<unsigned char[]>(kPageBytes);
    unsigned char* base = page.get();
    s.pages.push_back(std::move(page));
    std::vector<void*>& free_list = s.free_lists[cls];
    for (size_t off = 0; off + block <= kPageBytes; off += block) {
      free_list.push_back(base + off);
    }
  }
};

// Move-only type-erased void() closure sized for the event queue's hot
// path: captures of up to three words that are trivially copyable and
// trivially destructible live INLINE in the event record — scheduling such
// an event performs no heap allocation at all (std::function spills its
// capture to the heap at 17+ bytes on libstdc++). Larger or non-trivial
// captures spill to the CallbackArena slab above. Inline callbacks are
// trivially relocatable, which is what lets the calendar queue shuffle
// event records between buckets with plain vector moves.
class EventCallback {
 public:
  static constexpr size_t kInlineBytes = 3 * sizeof(void*);

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>);
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(void*) &&
                  std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      new (storage_.inline_bytes) Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*reinterpret_cast<Fn*>(self->storage_.inline_bytes))();
      };
      dispose_ = nullptr;  // trivially destructible: nothing to do
    } else if constexpr (alignof(Fn) <= 16) {
      void* mem = CallbackArena::Alloc(sizeof(Fn));
      storage_.heap = new (mem) Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*static_cast<Fn*>(self->storage_.heap))();
      };
      dispose_ = [](EventCallback* self) {
        Fn* fn = static_cast<Fn*>(self->storage_.heap);
        fn->~Fn();
        CallbackArena::Free(fn, sizeof(Fn));
      };
    } else {
      // Over-aligned captures (rare) bypass the slab.
      storage_.heap = new Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*static_cast<Fn*>(self->storage_.heap))();
      };
      dispose_ = [](EventCallback* self) {
        delete static_cast<Fn*>(self->storage_.heap);
      };
    }
  }

  EventCallback(EventCallback&& other) noexcept
      : invoke_(other.invoke_), dispose_(other.dispose_) {
    std::memcpy(&storage_, &other.storage_, sizeof(storage_));
    other.invoke_ = nullptr;
    other.dispose_ = nullptr;
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      if (dispose_ != nullptr) dispose_(this);
      invoke_ = other.invoke_;
      dispose_ = other.dispose_;
      std::memcpy(&storage_, &other.storage_, sizeof(storage_));
      other.invoke_ = nullptr;
      other.dispose_ = nullptr;
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() {
    if (dispose_ != nullptr) dispose_(this);
  }

  void operator()() { invoke_(this); }
  explicit operator bool() const { return invoke_ != nullptr; }
  // Whether the capture lives inline (no allocation) — observability hook
  // for tests and the microbenchmark.
  bool inlined() const { return invoke_ != nullptr && dispose_ == nullptr; }

 private:
  union Storage {
    alignas(void*) unsigned char inline_bytes[kInlineBytes];
    void* heap;
  };

  void (*invoke_)(EventCallback*) = nullptr;
  void (*dispose_)(EventCallback*) = nullptr;
  Storage storage_;
};

// One pending event: absolute time, FIFO tie-break sequence, callback.
struct EventRec {
  SimTime time = 0;
  uint64_t seq = 0;
  EventCallback cb;
};

// Strict event order: by time, then by scheduling sequence (FIFO among
// equal timestamps). Every queue implementation must pop in exactly this
// order — it is the simulation's determinism contract.
inline bool EarlierEvent(const EventRec& a, const EventRec& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

// Priority-queue interface the Simulator runs on. Implementations must be
// totally ordered by EarlierEvent and stable under interleaved push/pop.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void Push(EventRec rec) = 0;
  // Moves the earliest event into `*out`; false when empty.
  virtual bool PopMin(EventRec* out) = 0;
  // Time of the earliest pending event. Requires size() > 0. Non-const:
  // the calendar advances its cursor lazily to locate the minimum.
  virtual SimTime MinTime() = 0;
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }
};

// Binary-heap queue: std::push_heap/pop_heap over a plain vector. The
// legacy engine (std::priority_queue) forced a const_cast to move the
// callback out of top(); pop_heap instead rotates the minimum to the back
// where it can be moved from cleanly. Kept as the differential oracle for
// the calendar queue — both must produce byte-identical simulations.
class HeapEventQueue final : public EventQueue {
 public:
  void Push(EventRec rec) override {
    FTMS_PROF_SCOPE("sim/queue/push");
    heap_.push_back(std::move(rec));
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }

  bool PopMin(EventRec* out) override {
    FTMS_PROF_SCOPE("sim/queue/pop");
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    *out = std::move(heap_.back());
    heap_.pop_back();
    return true;
  }

  SimTime MinTime() override {
    assert(!heap_.empty());
    return heap_.front().time;
  }

  size_t size() const override { return heap_.size(); }

 private:
  // std::*_heap build a max-heap by `comp`; inverting the event order puts
  // the earliest event at the front.
  static bool Later(const EventRec& a, const EventRec& b) {
    return EarlierEvent(b, a);
  }

  std::vector<EventRec> heap_;
};

// Calendar queue (Brown 1988) with a sliding virtual-bucket window and an
// overflow heap, tuned for the simulation's dominant event mix: large
// batches of periodic events sharing a handful of distinct timestamps
// (scheduler cycles) plus a sparse tail of exponential failure/repair
// times. O(1) amortized push/pop versus the binary heap's O(log n), and a
// whole cycle's worth of same-time events lands in ONE bucket that is
// sorted once and drained linearly.
//
// Invariants:
//  * Virtual bucket vb(t) = floor(t / width). The window covers virtual
//    buckets [cur_vb, cur_vb + nb); bucket (vb & (nb-1)) holds exactly the
//    events of ONE in-window virtual bucket (distinct in-window vbs map to
//    distinct slots). Events at or past the window's end wait in a
//    min-heap (`overflow_`) and are promoted as the window slides over
//    them, so a far-future event costs two O(log) heap touches rather
//    than an unbounded bucket walk.
//  * Buckets are unsorted until first drained (sorted lazily by
//    (time, seq)); a push into the partially drained current bucket does
//    a sorted insert into the undrained tail, preserving pop order.
//  * Pop order is exactly EarlierEvent: every overflow event's time is at
//    least the window end, hence strictly after every in-window event,
//    and FIFO ties share a timestamp, hence a virtual bucket, hence a
//    slot, where the (time, seq) sort orders them.
//  * The bucket count tracks the population (grow at size > 2*nb, shrink
//    at size < nb/8) and the width is re-estimated from the median
//    positive gap between adjacent event times at each resize, so the
//    queue adapts to both the cycle-dominated and the exponential mixes.
class CalendarEventQueue final : public EventQueue {
 public:
  CalendarEventQueue() { Rebuild(kMinBuckets, 1.0, 0); }

  void Push(EventRec rec) override {
    FTMS_PROF_SCOPE("sim/queue/push");
    ++size_;
    if (InWindow(rec.time)) {
      InsertBucket(std::move(rec));
    } else {
      overflow_.push_back(std::move(rec));
      std::push_heap(overflow_.begin(), overflow_.end(), LaterRec);
    }
    if (size_ > 2 * num_buckets_ && num_buckets_ < kMaxBuckets) {
      Resize(num_buckets_ * 2);
    } else if (hot_inserts_ > 64 && hot_inserts_ > size_) {
      // The width has gone stale: pushes keep landing MID-bucket in the
      // partially drained current bucket (each one an O(bucket) shuffle),
      // which means one bucket is absorbing the whole near future. Keep
      // the bucket count but re-estimate the width from the current
      // population. Amortized O(1): at least size_ hot inserts between
      // re-tunes.
      Resize(num_buckets_);
    }
  }

  bool PopMin(EventRec* out) override {
    FTMS_PROF_SCOPE("sim/queue/pop");
    if (size_ == 0) return false;
    AdvanceToMin();
    std::vector<EventRec>& bucket = buckets_[CurSlot()];
    *out = std::move(bucket[cur_next_]);
    ++cur_next_;
    if (cur_next_ == bucket.size()) {
      bucket.clear();
      cur_next_ = 0;
      cur_sorted_ = false;
    }
    --in_window_;
    --size_;
    if (size_ < num_buckets_ / 8 && num_buckets_ > kMinBuckets) {
      Resize(num_buckets_ / 2);
    }
    return true;
  }

  SimTime MinTime() override {
    assert(size_ > 0);
    AdvanceToMin();
    return buckets_[CurSlot()][cur_next_].time;
  }

  size_t size() const override { return size_; }

  // Introspection for tests/benchmarks.
  size_t num_buckets() const { return num_buckets_; }
  size_t overflow_size() const { return overflow_.size(); }
  double bucket_width() const { return width_; }

 private:
  static constexpr size_t kMinBuckets = 32;
  static constexpr size_t kMaxBuckets = size_t{1} << 20;
  // Virtual-bucket ceiling: t/width beyond this collapses into one final
  // bucket (still correctly ordered by the in-bucket sort) instead of
  // overflowing the uint64 cast.
  static constexpr double kMaxVb = 4.6e18;

  static bool LaterRec(const EventRec& a, const EventRec& b) {
    return EarlierEvent(b, a);
  }

  size_t CurSlot() const { return cur_vb_ & (num_buckets_ - 1); }

  double ClampedVb(SimTime t) const {
    double dvb = t / width_;
    if (!(dvb < kMaxVb)) dvb = kMaxVb;  // also catches NaN/inf
    return dvb;
  }

  bool InWindow(SimTime t) const {
    return ClampedVb(t) < static_cast<double>(cur_vb_ + num_buckets_);
  }

  uint64_t VirtualBucket(SimTime t) const {
    const double dvb = ClampedVb(t);
    // Events behind the cursor (clock already inside their virtual
    // bucket, or clamped) belong to the current bucket; the in-bucket
    // sort still places them first.
    if (dvb <= static_cast<double>(cur_vb_)) return cur_vb_;
    return static_cast<uint64_t>(dvb);
  }

  void InsertBucket(EventRec rec) {
    const uint64_t vb = VirtualBucket(rec.time);
    std::vector<EventRec>& bucket = buckets_[vb & (num_buckets_ - 1)];
    if (vb == cur_vb_ && cur_sorted_) {
      // Keep the partially drained current bucket's tail ordered. An
      // insert before the end is the width-staleness signal (see Push):
      // same-time FIFO appends land AT the end and are cheap, but a
      // mid-bucket insert means later events were already queued here.
      auto it = std::upper_bound(
          bucket.begin() + static_cast<ptrdiff_t>(cur_next_), bucket.end(),
          rec, EarlierEvent);
      if (it != bucket.end()) ++hot_inserts_;
      bucket.insert(it, std::move(rec));
    } else {
      bucket.push_back(std::move(rec));
    }
    ++in_window_;
  }

  void PromoteOverflow() {
    while (!overflow_.empty() && InWindow(overflow_.front().time)) {
      std::pop_heap(overflow_.begin(), overflow_.end(), LaterRec);
      EventRec rec = std::move(overflow_.back());
      overflow_.pop_back();
      InsertBucket(std::move(rec));
    }
  }

  // Positions the cursor on the bucket holding the earliest event and
  // sorts it. Requires size_ > 0.
  void AdvanceToMin() {
    if (in_window_ == 0) JumpToOverflow();
    while (buckets_[CurSlot()].empty()) {
      ++cur_vb_;
      cur_sorted_ = false;
      PromoteOverflow();
      if (in_window_ == 0) JumpToOverflow();
    }
    if (!cur_sorted_) {
      std::vector<EventRec>& bucket = buckets_[CurSlot()];
      std::sort(bucket.begin() + static_cast<ptrdiff_t>(cur_next_),
                bucket.end(), EarlierEvent);
      cur_sorted_ = true;
    }
  }

  // Empty window, non-empty overflow: skip the cursor straight to the
  // overflow minimum's virtual bucket instead of stepping one empty
  // bucket at a time across a (possibly enormous) gap.
  void JumpToOverflow() {
    assert(!overflow_.empty());
    const uint64_t vb = VirtualBucket(overflow_.front().time);
    if (vb > cur_vb_) {
      cur_vb_ = vb;
      cur_sorted_ = false;
    }
    PromoteOverflow();
  }

  // Re-estimates the bucket width from the median positive gap between
  // adjacent event times (2x median: a bucket then typically covers a
  // couple of distinct timestamps) and redistributes every event over
  // `new_nb` buckets. Amortized O(1) per event by the doubling/halving
  // triggers.
  void Resize(size_t new_nb) {
    std::vector<EventRec> all;
    all.reserve(size_);
    for (size_t i = 0; i < num_buckets_; ++i) {
      std::vector<EventRec>& bucket = buckets_[i];
      const size_t first = (i == CurSlot()) ? cur_next_ : 0;
      for (size_t j = first; j < bucket.size(); ++j) {
        all.push_back(std::move(bucket[j]));
      }
      bucket.clear();
    }
    for (EventRec& rec : overflow_) all.push_back(std::move(rec));
    overflow_.clear();
    std::sort(all.begin(), all.end(), EarlierEvent);

    double width = width_;
    if (all.size() >= 2) {
      std::vector<double> gaps;
      const size_t sample = all.size() < 1025 ? all.size() : 1025;
      gaps.reserve(sample);
      for (size_t i = 1; i < sample; ++i) {
        const double gap = all[i].time - all[i - 1].time;
        if (gap > 0) gaps.push_back(gap);
      }
      if (!gaps.empty()) {
        auto mid = gaps.begin() + static_cast<ptrdiff_t>(gaps.size() / 2);
        std::nth_element(gaps.begin(), mid, gaps.end());
        const double w = 2.0 * *mid;
        if (w > 0 && w < 1e300) width = w;
      }
    }

    const uint64_t start_vb =
        all.empty() ? 0
                    : static_cast<uint64_t>(
                          all.front().time / width < kMaxVb
                              ? all.front().time / width
                              : kMaxVb);
    Rebuild(new_nb, width, start_vb);
    for (EventRec& rec : all) {
      if (InWindow(rec.time)) {
        InsertBucket(std::move(rec));
      } else {
        overflow_.push_back(std::move(rec));
      }
    }
    // `all` was sorted, so the overflow vector is heap-ordered already;
    // make it explicit for the heap algorithms.
    std::make_heap(overflow_.begin(), overflow_.end(), LaterRec);
  }

  void Rebuild(size_t nb, double width, uint64_t start_vb) {
    assert((nb & (nb - 1)) == 0 && "bucket count must be a power of two");
    buckets_.clear();
    buckets_.resize(nb);
    num_buckets_ = nb;
    width_ = width;
    cur_vb_ = start_vb;
    cur_next_ = 0;
    cur_sorted_ = false;
    in_window_ = 0;
    hot_inserts_ = 0;
  }

  std::vector<std::vector<EventRec>> buckets_;
  std::vector<EventRec> overflow_;  // min-heap by (time, seq)
  size_t num_buckets_ = 0;
  double width_ = 1.0;
  uint64_t cur_vb_ = 0;     // virtual bucket the cursor is on
  size_t cur_next_ = 0;     // drained prefix of the current bucket
  bool cur_sorted_ = false; // current bucket sorted from cur_next_ on
  size_t in_window_ = 0;    // events in buckets (rest in overflow_)
  size_t size_ = 0;
  size_t hot_inserts_ = 0;  // mid-bucket sorted inserts since last resize
};

// Queue implementation selector. The calendar queue is the engine default;
// the heap is the differential oracle (and an escape hatch), selected via
// FTMS_EVENT_QUEUE=heap.
enum class EventQueueKind { kHeap, kCalendar };

// Resolves FTMS_EVENT_QUEUE ("heap" | "calendar"; default calendar).
EventQueueKind EventQueueKindFromEnv();

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind);

}  // namespace ftms

#endif  // FTMS_SIM_EVENT_QUEUE_H_
