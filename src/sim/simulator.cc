#include "sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

#include "qos/event_journal.h"
#include "util/metrics.h"

namespace ftms {

void Simulator::ScheduleAt(SimTime t, Callback cb) {
  assert(cb);
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() returns a const ref; move the callback out via a
  // const_cast-free copy of the small struct members and a pop.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++events_processed_;
  if (events_counter_ != nullptr) events_counter_->Add(1);
  if (pending_gauge_ != nullptr) {
    pending_gauge_->Set(static_cast<double>(queue_.size()));
  }
  ev.cb();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
  JournalHorizon();
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  if (t > now_) now_ = t;
  JournalHorizon();
}

void Simulator::JournalHorizon() {
  if (journal_ == nullptr) return;
  QosEvent event;
  event.kind = QosEventKind::kSimHorizon;
  event.scheme = "sim";
  event.sim_us = static_cast<int64_t>(now_ * 1e6);
  event.value = static_cast<int64_t>(events_processed_);
  journal_->Append(event);
}

void SchedulePeriodic(Simulator& sim, SimTime start, SimTime period,
                      std::function<bool()> cb) {
  assert(period > 0);
  auto shared = std::make_shared<std::function<bool()>>(std::move(cb));
  // Self-rescheduling closure; stops (and releases itself) when the user
  // callback returns false.
  struct Ticker {
    Simulator* sim;
    SimTime period;
    std::shared_ptr<std::function<bool()>> cb;
    void operator()() const {
      if (!(*cb)()) return;
      Ticker next = *this;
      sim->Schedule(period, next);
    }
  };
  sim.ScheduleAt(start, Ticker{&sim, period, shared});
}

}  // namespace ftms
