#include "sim/simulator.h"

#include <cassert>

#include "qos/event_journal.h"
#include "telemetry/telemetry_server.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace ftms {

Simulator::~Simulator() = default;

void Simulator::Run() {
  {
    FTMS_PROF_SCOPE("sim/run");
    while (StepNoFlush()) {
    }
  }
  FlushInstruments();
  JournalHorizon();
}

void Simulator::RunUntil(SimTime t) {
  {
    FTMS_PROF_SCOPE("sim/run");
    while (!queue_->empty() && queue_->MinTime() <= t) {
      StepNoFlush();
    }
  }
  if (t > now_) now_ = t;
  FlushInstruments();
  JournalHorizon();
}

void Simulator::FlushInstruments() {
  // A flush is a serial sync point for every observability sink, so fold
  // the worker-thread profiler trees here too.
  if (Profiler::GlobalEnabled()) Profiler::FoldAtSyncPoint();
  if (events_counter_ != nullptr && events_processed_ != events_flushed_) {
    events_counter_->Add(
        static_cast<int64_t>(events_processed_ - events_flushed_));
    events_flushed_ = events_processed_;
  }
  if (pending_gauge_ != nullptr) {
    pending_gauge_->Set(static_cast<double>(queue_->size()));
  }
  if (telemetry_ != nullptr) {
    telemetry_->Publish(static_cast<int64_t>(now_ * 1e6));
  }
}

void Simulator::JournalHorizon() {
  if (journal_ == nullptr) return;
  QosEvent event;
  event.kind = QosEventKind::kSimHorizon;
  event.scheme = "sim";
  event.sim_us = static_cast<int64_t>(now_ * 1e6);
  event.value = static_cast<int64_t>(events_processed_);
  journal_->Append(event);
}

void SchedulePeriodic(Simulator& sim, SimTime start, SimTime period,
                      std::function<bool()> cb) {
  assert(period > 0);
  auto timer = std::make_unique<PeriodicTimer>(&sim, period, std::move(cb));
  timer->Start(start);
  sim.owned_timers_.push_back(std::move(timer));
}

}  // namespace ftms
