#include "sim/event_queue.h"

#include <cstdlib>
#include <cstring>

namespace ftms {

EventQueueKind EventQueueKindFromEnv() {
  const char* v = std::getenv("FTMS_EVENT_QUEUE");
  if (v != nullptr && std::strcmp(v, "heap") == 0) {
    return EventQueueKind::kHeap;
  }
  return EventQueueKind::kCalendar;
}

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kHeap:
      return std::make_unique<HeapEventQueue>();
    case EventQueueKind::kCalendar:
      return std::make_unique<CalendarEventQueue>();
  }
  return std::make_unique<CalendarEventQueue>();
}

}  // namespace ftms
