#include "stream/stream_table.h"

#include <cstring>
#include <new>

namespace ftms {

namespace {

constexpr size_t kColumnAlign = 64;  // cache-line aligned column starts

size_t AlignUp(size_t n) {
  return (n + kColumnAlign - 1) & ~(kColumnAlign - 1);
}

}  // namespace

StreamTable::~StreamTable() {
  if (arena_ != nullptr) {
    ::operator delete[](arena_, std::align_val_t{kColumnAlign});
  }
}

void StreamTable::Grow(int32_t capacity) {
  const size_t n = static_cast<size_t>(capacity);
  // One arena block; every column starts on its own cache line.
  const size_t off_state = 0;
  const size_t off_position = AlignUp(off_state + n * sizeof(StreamState));
  const size_t off_delivered = AlignUp(off_position + n * sizeof(int64_t));
  const size_t off_first = AlignUp(off_delivered + n * sizeof(int64_t));
  const size_t off_tracks = AlignUp(off_first + n * sizeof(int64_t));
  const size_t off_object = AlignUp(off_tracks + n * sizeof(int64_t));
  const size_t bytes = AlignUp(off_object + n * sizeof(int32_t));

  auto* arena = static_cast<unsigned char*>(
      ::operator new[](bytes, std::align_val_t{kColumnAlign}));
  auto* state = reinterpret_cast<StreamState*>(arena + off_state);
  auto* position = reinterpret_cast<int64_t*>(arena + off_position);
  auto* delivered = reinterpret_cast<int64_t*>(arena + off_delivered);
  auto* first = reinterpret_cast<int64_t*>(arena + off_first);
  auto* tracks = reinterpret_cast<int64_t*>(arena + off_tracks);
  auto* object = reinterpret_cast<int32_t*>(arena + off_object);

  const size_t used = static_cast<size_t>(size_);
  if (used > 0) {
    std::memcpy(state, state_, used * sizeof(StreamState));
    std::memcpy(position, position_, used * sizeof(int64_t));
    std::memcpy(delivered, delivered_, used * sizeof(int64_t));
    std::memcpy(first, first_delivered_, used * sizeof(int64_t));
    std::memcpy(tracks, num_tracks_, used * sizeof(int64_t));
    std::memcpy(object, object_id_, used * sizeof(int32_t));
  }
  if (arena_ != nullptr) {
    ::operator delete[](arena_, std::align_val_t{kColumnAlign});
  }
  arena_ = arena;
  arena_bytes_ = bytes;
  capacity_ = capacity;
  state_ = state;
  position_ = position;
  delivered_ = delivered;
  first_delivered_ = first;
  num_tracks_ = tracks;
  object_id_ = object;
}

int32_t StreamTable::AddRow(const MediaObject& object,
                            int64_t admitted_cycle) {
  if (size_ == capacity_) {
    Grow(capacity_ == 0 ? 64 : capacity_ * 2);
  }
  const int32_t row = size_++;
  const size_t r = static_cast<size_t>(row);
  state_[r] = StreamState::kActive;
  position_[r] = 0;
  delivered_[r] = 0;
  first_delivered_[r] = -1;
  num_tracks_[r] = object.num_tracks;
  object_id_[r] = object.id;
  cold_.push_back(ColdRow{object, admitted_cycle, {}});
  return row;
}

}  // namespace ftms
