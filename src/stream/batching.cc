#include "stream/batching.h"

namespace ftms {

void BatchCoordinator::Add(int object_id, double now_s) {
  ++viewers_total_;
  auto it = open_.find(object_id);
  if (it != open_.end()) {
    ++it->second.viewers;
    return;
  }
  Batch batch;
  batch.object_id = object_id;
  batch.viewers = 1;
  batch.opened_s = now_s;
  open_.emplace(object_id, batch);
}

std::vector<BatchCoordinator::Batch> BatchCoordinator::TakeDue(
    double now_s) {
  std::vector<Batch> due;
  for (auto it = open_.begin(); it != open_.end();) {
    if (now_s - it->second.opened_s >= window_s_) {
      due.push_back(it->second);
      ++batches_launched_;
      viewers_in_launched_ += it->second.viewers;
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

}  // namespace ftms
