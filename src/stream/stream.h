#ifndef FTMS_STREAM_STREAM_H_
#define FTMS_STREAM_STREAM_H_

#include <cstdint>
#include <vector>

#include "layout/media_object.h"

namespace ftms {

using StreamId = int;

enum class StreamState {
  kActive,      // being delivered
  kPaused,      // viewer paused; resources stay reserved
  kCompleted,   // played to the end
  kTerminated,  // stopped by the viewer or dropped (degradation)
};

// One lost or late track in a stream's delivery: the paper's "hiccup".
struct Hiccup {
  int64_t cycle = 0;  // scheduling cycle in which delivery was due
  int64_t track = 0;  // object track that was not delivered on time
};

// The delivery of one object to one viewer, offset in time from any other
// delivery of the same object (Section 2's definition). A Stream tracks
// the delivery pointer and the hiccups it suffered; the schedulers decide
// what is read, the stream only records what reached (or failed to reach)
// the viewer.
class Stream {
 public:
  Stream(StreamId id, const MediaObject& object, int64_t admitted_cycle = 0)
      : id_(id), object_(object), admitted_cycle_(admitted_cycle) {}

  StreamId id() const { return id_; }
  const MediaObject& object() const { return object_; }
  StreamState state() const { return state_; }

  // QoS bookkeeping: the cycle the stream was admitted in, and the cycle
  // its first track reached the viewer (-1 until then). Their difference
  // is the stream's startup latency in cycles.
  int64_t admitted_cycle() const { return admitted_cycle_; }
  int64_t first_delivered_cycle() const { return first_delivered_cycle_; }

  // Next object track due for delivery.
  int64_t position() const { return position_; }
  int64_t tracks_remaining() const { return object_.num_tracks - position_; }
  bool finished() const { return position_ >= object_.num_tracks; }

  // Records delivery of the track at the current position during `cycle`.
  // `on_time` is false when the track was missing (disk failure not yet
  // masked): the viewer sees a hiccup but playback continues. Advances the
  // position either way and completes the stream at the last track.
  void Deliver(int64_t cycle, bool on_time);

  // VCR controls: a paused stream keeps its position (and, in the
  // schedulers, its buffers) and resumes with no startup latency beyond
  // one read cycle.
  void Pause() {
    if (state_ == StreamState::kActive) state_ = StreamState::kPaused;
  }
  void Resume() {
    if (state_ == StreamState::kPaused) state_ = StreamState::kActive;
  }

  // Stops the stream (viewer abandon or degradation of service).
  void Terminate() {
    if (state_ == StreamState::kActive || state_ == StreamState::kPaused) {
      state_ = StreamState::kTerminated;
    }
  }

  const std::vector<Hiccup>& hiccups() const { return hiccups_; }
  int64_t hiccup_count() const {
    return static_cast<int64_t>(hiccups_.size());
  }
  int64_t delivered_tracks() const { return delivered_; }

 private:
  StreamId id_;
  MediaObject object_;
  StreamState state_ = StreamState::kActive;
  int64_t admitted_cycle_ = 0;
  int64_t first_delivered_cycle_ = -1;
  int64_t position_ = 0;
  int64_t delivered_ = 0;
  std::vector<Hiccup> hiccups_;
};

}  // namespace ftms

#endif  // FTMS_STREAM_STREAM_H_
