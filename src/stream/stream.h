#ifndef FTMS_STREAM_STREAM_H_
#define FTMS_STREAM_STREAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "layout/media_object.h"
#include "stream/stream_table.h"

namespace ftms {

using StreamId = int;

// The delivery of one object to one viewer, offset in time from any other
// delivery of the same object (Section 2's definition). A Stream tracks
// the delivery pointer and the hiccups it suffered; the schedulers decide
// what is read, the stream only records what reached (or failed to reach)
// the viewer.
//
// Storage lives in a StreamTable (structure-of-arrays; see
// stream/stream_table.h) — a Stream is a handle over one row, so the
// schedulers' per-cycle sweeps touch dense columns rather than scattered
// objects. Two construction modes:
//  * (table, row, id): a row of an externally owned table. The scheduler
//    admits streams this way; the table must outlive the handle.
//  * (id, object, admitted_cycle): standalone — the stream owns a private
//    single-row table. Unit tests and ad-hoc uses; semantics identical.
class Stream {
 public:
  Stream(StreamId id, const MediaObject& object, int64_t admitted_cycle = 0)
      : owned_(std::make_unique<StreamTable>()),
        table_(owned_.get()),
        id_(id),
        row_(owned_->AddRow(object, admitted_cycle)) {}

  Stream(StreamTable* table, int32_t row, StreamId id)
      : table_(table), id_(id), row_(row) {}

  StreamId id() const { return id_; }
  int32_t row() const { return row_; }
  const MediaObject& object() const { return table_->object(row_); }
  StreamState state() const { return table_->state()[row_]; }

  // QoS bookkeeping: the cycle the stream was admitted in, and the cycle
  // its first track reached the viewer (-1 until then). Their difference
  // is the stream's startup latency in cycles.
  int64_t admitted_cycle() const { return table_->admitted_cycle(row_); }
  int64_t first_delivered_cycle() const {
    return table_->first_delivered()[row_];
  }

  // Next object track due for delivery.
  int64_t position() const { return table_->position()[row_]; }
  int64_t tracks_remaining() const {
    return table_->num_tracks()[row_] - position();
  }
  bool finished() const { return position() >= table_->num_tracks()[row_]; }

  // Records delivery of the track at the current position during `cycle`.
  // `on_time` is false when the track was missing (disk failure not yet
  // masked): the viewer sees a hiccup but playback continues. Advances the
  // position either way and completes the stream at the last track.
  void Deliver(int64_t cycle, bool on_time) {
    table_->DeliverRow(row_, cycle, on_time);
  }

  // VCR controls: a paused stream keeps its position (and, in the
  // schedulers, its buffers) and resumes with no startup latency beyond
  // one read cycle.
  void Pause() {
    StreamState& s = table_->state()[row_];
    if (s == StreamState::kActive) s = StreamState::kPaused;
  }
  void Resume() {
    StreamState& s = table_->state()[row_];
    if (s == StreamState::kPaused) s = StreamState::kActive;
  }

  // Stops the stream (viewer abandon or degradation of service).
  void Terminate() {
    StreamState& s = table_->state()[row_];
    if (s == StreamState::kActive || s == StreamState::kPaused) {
      s = StreamState::kTerminated;
    }
  }

  const std::vector<Hiccup>& hiccups() const {
    return table_->hiccups(row_);
  }
  int64_t hiccup_count() const {
    return static_cast<int64_t>(hiccups().size());
  }
  int64_t delivered_tracks() const { return table_->delivered()[row_]; }

 private:
  std::unique_ptr<StreamTable> owned_;  // standalone mode only
  StreamTable* table_;
  StreamId id_;
  int32_t row_;
};

}  // namespace ftms

#endif  // FTMS_STREAM_STREAM_H_
