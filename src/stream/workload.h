#ifndef FTMS_STREAM_WORKLOAD_H_
#define FTMS_STREAM_WORKLOAD_H_

#include <vector>

#include "layout/media_object.h"
#include "util/random.h"

namespace ftms {

// A request for a new stream: which object, and when the viewer asked.
struct StreamRequest {
  double arrival_s = 0;  // simulated arrival time (seconds)
  int object_id = 0;
};

// Configuration of the synthetic video-on-demand workload. The paper's
// introduction motivates the scale (hundreds of MPEG movies, thousands of
// viewers); requests arrive Poisson and pick movies by a Zipf popularity
// (theta ~= 0.271 is the classic video-rental skew).
struct WorkloadConfig {
  double arrival_rate_per_s = 1.0;  // Poisson arrival rate
  double zipf_theta = 0.271;        // popularity skew over the catalog
  uint64_t seed = 42;
};

// Generates an arrival sequence over a fixed catalog of objects.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& config,
                    std::vector<MediaObject> catalog);

  // Next request; arrival times are non-decreasing across calls.
  StreamRequest Next();

  // Convenience: all requests arriving before `horizon_s`.
  std::vector<StreamRequest> GenerateUntil(double horizon_s);

  const std::vector<MediaObject>& catalog() const { return catalog_; }
  const MediaObject& object(int object_id) const;

 private:
  std::vector<MediaObject> catalog_;
  WorkloadConfig config_;
  Rng rng_;
  ZipfDistribution popularity_;
  double clock_s_ = 0;
};

// A standard catalog for examples and tests: `count` 90-minute movies,
// a `mpeg2_fraction` of them at the MPEG-2 rate and the rest at MPEG-1,
// track size `track_mb`.
std::vector<MediaObject> MakeStandardCatalog(int count,
                                             double mpeg2_fraction,
                                             double track_mb);

}  // namespace ftms

#endif  // FTMS_STREAM_WORKLOAD_H_
