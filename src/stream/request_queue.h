#ifndef FTMS_STREAM_REQUEST_QUEUE_H_
#define FTMS_STREAM_REQUEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "stream/workload.h"
#include "util/stats.h"

namespace ftms {

// Waiting room for viewers who arrive while the server is at its
// admission capacity. Video-on-demand practice (and the economics of
// Section 5: capacity is bought for a target concurrency) is to queue
// requests rather than drop them; viewers renege after a patience
// timeout. FIFO order.
class RequestQueue {
 public:
  // `patience_s` <= 0 means infinitely patient viewers.
  explicit RequestQueue(double patience_s = 0)
      : patience_s_(patience_s) {}

  // Enqueues a request that could not be admitted at `now_s`.
  void Enqueue(const StreamRequest& request, double now_s);

  // Pops the longest-waiting request still within patience, dropping
  // reneged ones. Returns false when the queue has no viable request.
  bool Dequeue(double now_s, StreamRequest* out);

  // The longest-waiting viable request without removing it (reneged
  // entries are dropped first), or nullptr when none. The pointer is
  // invalidated by any mutating call.
  const StreamRequest* Peek(double now_s);

  // Drops all reneged requests up front (bookkeeping without admitting).
  void ExpireReneged(double now_s);

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  int64_t enqueued_total() const { return enqueued_; }
  int64_t reneged_total() const { return reneged_; }

  // Waiting times of successfully admitted viewers (seconds).
  const StreamingStats& wait_stats() const { return wait_stats_; }

 private:
  struct Waiting {
    StreamRequest request;
    double enqueued_s = 0;
  };

  bool Reneged(const Waiting& w, double now_s) const {
    return patience_s_ > 0 && now_s - w.enqueued_s > patience_s_;
  }

  double patience_s_;
  std::deque<Waiting> queue_;
  int64_t enqueued_ = 0;
  int64_t reneged_ = 0;
  StreamingStats wait_stats_;
};

}  // namespace ftms

#endif  // FTMS_STREAM_REQUEST_QUEUE_H_
