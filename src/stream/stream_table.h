#ifndef FTMS_STREAM_STREAM_TABLE_H_
#define FTMS_STREAM_STREAM_TABLE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "layout/media_object.h"

namespace ftms {

enum class StreamState : uint8_t {
  kActive,      // being delivered
  kPaused,      // viewer paused; resources stay reserved
  kCompleted,   // played to the end
  kTerminated,  // stopped by the viewer or dropped (degradation)
};

// One lost or late track in a stream's delivery: the paper's "hiccup".
struct Hiccup {
  int64_t cycle = 0;  // scheduling cycle in which delivery was due
  int64_t track = 0;  // object track that was not delivered on time
};

// Structure-of-arrays store for per-stream state. The four schedulers
// touch `state`, `position`, `num_tracks` and the delivery counters for
// every active stream every cycle; as fields of heap-allocated Stream
// objects those loads were a pointer chase each into a ~100-byte object.
// Here each hot field is a dense column inside ONE arena block (64-byte
// aligned column starts, grown geometrically by column-wise memcpy), so a
// scheduler sweep walks a few contiguous arrays instead of the heap.
// Cold per-stream state — the MediaObject copy, the admission cycle, the
// hiccup log — stays row-wise in `cold_`, touched only off the per-cycle
// path. Stream (stream/stream.h) is a thin handle over one row.
//
// Rows are only appended (admission order), matching the schedulers'
// dense StreamId space; columns therefore never move mid-cycle (growth
// happens at admission, a serial point).
class StreamTable {
 public:
  StreamTable() = default;
  ~StreamTable();

  StreamTable(const StreamTable&) = delete;
  StreamTable& operator=(const StreamTable&) = delete;

  // Appends a row (initial state: active, position 0); returns its index.
  int32_t AddRow(const MediaObject& object, int64_t admitted_cycle);

  int32_t size() const { return size_; }

  // Hot columns, indexed by row in [0, size()).
  StreamState* state() { return state_; }
  const StreamState* state() const { return state_; }
  int64_t* position() { return position_; }
  const int64_t* position() const { return position_; }
  int64_t* delivered() { return delivered_; }
  const int64_t* delivered() const { return delivered_; }
  int64_t* first_delivered() { return first_delivered_; }
  const int64_t* first_delivered() const { return first_delivered_; }
  int64_t* num_tracks() { return num_tracks_; }
  const int64_t* num_tracks() const { return num_tracks_; }
  int32_t* object_id() { return object_id_; }
  const int32_t* object_id() const { return object_id_; }

  // Cold per-row state.
  const MediaObject& object(int32_t row) const {
    return cold_[static_cast<size_t>(row)].object;
  }
  int64_t admitted_cycle(int32_t row) const {
    return cold_[static_cast<size_t>(row)].admitted_cycle;
  }
  std::vector<Hiccup>& hiccups(int32_t row) {
    return cold_[static_cast<size_t>(row)].hiccups;
  }
  const std::vector<Hiccup>& hiccups(int32_t row) const {
    return cold_[static_cast<size_t>(row)].hiccups;
  }

  // Records delivery of the track at the row's current position during
  // `cycle` (Stream::Deliver semantics): a no-op unless active; playback
  // starts with the first delivery attempt, hiccup or not; the position
  // advances either way; the stream completes at the last track.
  void DeliverRow(int32_t row, int64_t cycle, bool on_time) {
    const size_t r = static_cast<size_t>(row);
    if (state_[r] != StreamState::kActive) return;
    if (first_delivered_[r] < 0) first_delivered_[r] = cycle;
    if (on_time) {
      ++delivered_[r];
    } else {
      cold_[r].hiccups.push_back(Hiccup{cycle, position_[r]});
    }
    if (++position_[r] >= num_tracks_[r]) {
      state_[r] = StreamState::kCompleted;
    }
  }

  // Exactly `n` consecutive DeliverRow(row, cycle, /*on_time=*/true)
  // calls, folded into one column update. The caller guarantees the row
  // never advances past its last track mid-batch (group reads are clipped
  // to the object end), which is what makes the fold equivalent.
  void DeliverRowBatchOnTime(int32_t row, int64_t cycle, int n) {
    const size_t r = static_cast<size_t>(row);
    if (state_[r] != StreamState::kActive) return;
    if (first_delivered_[r] < 0) first_delivered_[r] = cycle;
    delivered_[r] += n;
    position_[r] += n;
    if (position_[r] >= num_tracks_[r]) {
      state_[r] = StreamState::kCompleted;
    }
  }

 private:
  struct ColdRow {
    MediaObject object;
    int64_t admitted_cycle = 0;
    std::vector<Hiccup> hiccups;
  };

  // Reallocates the arena for `capacity` rows and rebases the columns.
  void Grow(int32_t capacity);

  int32_t size_ = 0;
  int32_t capacity_ = 0;
  unsigned char* arena_ = nullptr;
  size_t arena_bytes_ = 0;
  StreamState* state_ = nullptr;
  int64_t* position_ = nullptr;
  int64_t* delivered_ = nullptr;
  int64_t* first_delivered_ = nullptr;
  int64_t* num_tracks_ = nullptr;
  int32_t* object_id_ = nullptr;
  std::vector<ColdRow> cold_;
};

}  // namespace ftms

#endif  // FTMS_STREAM_STREAM_TABLE_H_
