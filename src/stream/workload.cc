#include "stream/workload.h"

#include <cassert>
#include <utility>

#include "util/units.h"

namespace ftms {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config,
                                     std::vector<MediaObject> catalog)
    : catalog_(std::move(catalog)),
      config_(config),
      rng_(config.seed),
      popularity_(static_cast<int>(catalog_.size()), config.zipf_theta) {
  assert(!catalog_.empty());
  assert(config_.arrival_rate_per_s > 0);
}

StreamRequest WorkloadGenerator::Next() {
  clock_s_ += rng_.ExponentialMean(1.0 / config_.arrival_rate_per_s);
  StreamRequest req;
  req.arrival_s = clock_s_;
  req.object_id = catalog_[static_cast<size_t>(popularity_.Sample(rng_))].id;
  return req;
}

std::vector<StreamRequest> WorkloadGenerator::GenerateUntil(
    double horizon_s) {
  std::vector<StreamRequest> out;
  for (;;) {
    StreamRequest req = Next();
    if (req.arrival_s >= horizon_s) break;
    out.push_back(req);
  }
  return out;
}

const MediaObject& WorkloadGenerator::object(int object_id) const {
  for (const MediaObject& obj : catalog_) {
    if (obj.id == object_id) return obj;
  }
  assert(false && "unknown object id");
  return catalog_.front();
}

std::vector<MediaObject> MakeStandardCatalog(int count,
                                             double mpeg2_fraction,
                                             double track_mb) {
  std::vector<MediaObject> catalog;
  catalog.reserve(static_cast<size_t>(count));
  const int mpeg2_count = static_cast<int>(mpeg2_fraction * count);
  for (int i = 0; i < count; ++i) {
    const bool mpeg2 = i < mpeg2_count;
    catalog.push_back(MakeMovie(
        i, (mpeg2 ? "mpeg2_movie_" : "mpeg1_movie_") + std::to_string(i),
        /*minutes=*/90.0, mpeg2 ? kMpeg2RateMbS : kMpeg1RateMbS, track_mb));
  }
  return catalog;
}

}  // namespace ftms
