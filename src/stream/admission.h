#ifndef FTMS_STREAM_ADMISSION_H_
#define FTMS_STREAM_ADMISSION_H_

#include <cstdint>

#include "layout/schemes.h"
#include "model/parameters.h"
#include "util/status.h"

namespace ftms {

// Admission control: a new stream is admitted only while the active count
// stays within the scheme's analytical capacity (equations (8)-(11)); this
// is what guarantees every admitted stream's reads fit in each cycle, the
// real-time requirement of Section 1.
class AdmissionController {
 public:
  // Capacity from the analytical model for (scheme, C, parameters).
  static StatusOr<AdmissionController> Create(const SystemParameters& p,
                                              Scheme scheme,
                                              int parity_group_size);

  // Directly sets capacity (used by tests and by down-scaled simulations).
  explicit AdmissionController(int capacity) : capacity_(capacity) {}

  // Reserves `weight` capacity slots for a new stream (a stream at m
  // times the base rate consumes m base-stream equivalents);
  // RESOURCE_EXHAUSTED when it does not fit.
  Status Admit(int weight = 1);

  // Releases the slots of a completed/terminated stream.
  void Release(int weight = 1);

  int capacity() const { return capacity_; }
  int active() const { return active_; }
  int64_t admitted_total() const { return admitted_total_; }
  int64_t rejected_total() const { return rejected_total_; }

 private:
  int capacity_;
  int active_ = 0;
  int64_t admitted_total_ = 0;
  int64_t rejected_total_ = 0;
};

}  // namespace ftms

#endif  // FTMS_STREAM_ADMISSION_H_
