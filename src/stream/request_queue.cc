#include "stream/request_queue.h"

namespace ftms {

void RequestQueue::Enqueue(const StreamRequest& request, double now_s) {
  queue_.push_back(Waiting{request, now_s});
  ++enqueued_;
}

void RequestQueue::ExpireReneged(double now_s) {
  while (!queue_.empty() && Reneged(queue_.front(), now_s)) {
    queue_.pop_front();
    ++reneged_;
  }
}

const StreamRequest* RequestQueue::Peek(double now_s) {
  ExpireReneged(now_s);
  return queue_.empty() ? nullptr : &queue_.front().request;
}

bool RequestQueue::Dequeue(double now_s, StreamRequest* out) {
  ExpireReneged(now_s);
  if (queue_.empty()) return false;
  const Waiting w = queue_.front();
  queue_.pop_front();
  wait_stats_.Add(now_s - w.enqueued_s);
  *out = w.request;
  return true;
}

}  // namespace ftms
