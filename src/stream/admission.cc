#include "stream/admission.h"

#include <cassert>
#include <string>

#include "model/capacity.h"

namespace ftms {

StatusOr<AdmissionController> AdmissionController::Create(
    const SystemParameters& p, Scheme scheme, int parity_group_size) {
  StatusOr<int> capacity = MaxStreams(p, scheme, parity_group_size);
  if (!capacity.ok()) return capacity.status();
  return AdmissionController(*capacity);
}

Status AdmissionController::Admit(int weight) {
  assert(weight > 0);
  if (active_ + weight > capacity_) {
    ++rejected_total_;
    return Status::ResourceExhausted(
        "at capacity: " + std::to_string(active_) + "/" +
        std::to_string(capacity_) + " base-stream equivalents in use");
  }
  active_ += weight;
  ++admitted_total_;
  return Status::Ok();
}

void AdmissionController::Release(int weight) {
  assert(weight > 0);
  assert(active_ >= weight);
  active_ -= weight;
}

}  // namespace ftms
