#ifndef FTMS_STREAM_BATCHING_H_
#define FTMS_STREAM_BATCHING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "util/status.h"

namespace ftms {

// Request batching (extension): viewers who ask for the same title
// within a short window share ONE delivery stream — the classic
// video-on-demand lever for the economies of scale the paper's
// introduction motivates (one stream's disk bandwidth can serve a whole
// audience when arrivals cluster on popular titles).
//
// Usage: Add() arriving requests; poll TakeDue() each scheduling cycle;
// every returned batch is started as a single stream.
class BatchCoordinator {
 public:
  // Requests for one title arriving within `window_s` of the FIRST
  // request share its batch; the batch launches when the window closes.
  // window_s == 0 degenerates to one stream per viewer.
  explicit BatchCoordinator(double window_s) : window_s_(window_s) {}

  struct Batch {
    int object_id = 0;
    int viewers = 0;
    double opened_s = 0;  // first request's arrival
  };

  // Registers one viewer request at `now_s`.
  void Add(int object_id, double now_s);

  // Batches whose window has closed by `now_s`, ready to launch.
  std::vector<Batch> TakeDue(double now_s);

  size_t pending_batches() const { return open_.size(); }
  int64_t viewers_total() const { return viewers_total_; }
  int64_t batches_launched() const { return batches_launched_; }

  // Streams saved so far: viewers folded into already-open batches.
  int64_t streams_saved() const {
    return viewers_in_launched_ - batches_launched_;
  }

 private:
  double window_s_;
  std::map<int, Batch> open_;  // keyed by object id
  int64_t viewers_total_ = 0;
  int64_t batches_launched_ = 0;
  int64_t viewers_in_launched_ = 0;
};

}  // namespace ftms

#endif  // FTMS_STREAM_BATCHING_H_
