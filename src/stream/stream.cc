#include "stream/stream.h"

namespace ftms {

void Stream::Deliver(int64_t cycle, bool on_time) {
  if (state_ != StreamState::kActive) return;
  // Playback starts with the first delivery attempt, hiccup or not.
  if (first_delivered_cycle_ < 0) first_delivered_cycle_ = cycle;
  if (on_time) {
    ++delivered_;
  } else {
    hiccups_.push_back(Hiccup{cycle, position_});
  }
  ++position_;
  if (finished()) state_ = StreamState::kCompleted;
}

}  // namespace ftms
