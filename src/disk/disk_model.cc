#include "disk/disk_model.h"

namespace ftms {

Status DiskParameters::Validate() const {
  if (seek_time_s < 0) return Status::InvalidArgument("negative seek time");
  if (track_time_s <= 0) {
    return Status::InvalidArgument("track time must be positive");
  }
  if (track_mb <= 0) {
    return Status::InvalidArgument("track size must be positive");
  }
  if (capacity_mb < track_mb) {
    return Status::InvalidArgument("capacity smaller than one track");
  }
  if (mttf_hours <= 0 || mttr_hours <= 0) {
    return Status::InvalidArgument("MTTF/MTTR must be positive");
  }
  return Status::Ok();
}

}  // namespace ftms
