#ifndef FTMS_DISK_DISK_MODEL_H_
#define FTMS_DISK_DISK_MODEL_H_

#include "util/status.h"

namespace ftms {

// The paper's simple disk model (Section 2):
//
//   T(r) = T_seek + r * T_trk
//
// where T_seek is the maximum seek between extreme cylinders, charged once
// per scheduling cycle (the cycle's reads are sorted into one sweep), and
// T_trk is the per-track time including the start/stop portion of each
// track's seek. The unit of I/O is one track; a full-track read starts at
// the next sector boundary so rotational latency is negligible.
//
// Defaults follow Table 1 (similar to a Seagate ST31200N "Hawk" drive).
struct DiskParameters {
  double seek_time_s = 0.025;    // T_seek: full-stroke seek (s)
  double track_time_s = 0.020;   // T_trk: time charged per track read (s)
  double track_mb = 0.050;       // B: bytes per track (MB) = 50 KB
  double capacity_mb = 1000.0;   // S_d: usable capacity (MB)
  double mttf_hours = 300000.0;  // mean time to failure
  double mttr_hours = 1.0;       // mean time to repair (swap + reload)

  // Maximum time to read `tracks` tracks within one cycle: T(r).
  double ReadTime(int tracks) const {
    return seek_time_s + static_cast<double>(tracks) * track_time_s;
  }

  // Largest r such that T(r) <= cycle_s: the per-disk track budget of one
  // scheduling cycle ("slots" in Section 3's transition discussion).
  int TracksPerCycle(double cycle_s) const {
    if (cycle_s <= seek_time_s) return 0;
    return static_cast<int>((cycle_s - seek_time_s) / track_time_s);
  }

  // Sustained transfer bandwidth implied by the model (MB/s); ~2.5 MB/s for
  // the defaults, consistent with the paper's "32 mbps" disk (footnote 2).
  double BandwidthMbS() const { return track_mb / track_time_s; }

  int TracksPerDisk() const {
    return static_cast<int>(capacity_mb / track_mb);
  }

  // Validates physical sanity (all positive, capacity at least one track).
  Status Validate() const;
};

}  // namespace ftms

#endif  // FTMS_DISK_DISK_MODEL_H_
