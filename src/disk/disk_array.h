#ifndef FTMS_DISK_DISK_ARRAY_H_
#define FTMS_DISK_DISK_ARRAY_H_

#include <vector>

#include "disk/disk.h"
#include "disk/disk_model.h"
#include "util/status.h"

namespace ftms {

// A farm of identical disks partitioned into fixed-size clusters.
//
// For the Streaming-RAID-family schemes a cluster holds C disks: C-1 data
// disks followed by one dedicated parity disk (the last disk of the
// cluster, as in the paper's Figure 3). For the Improved-bandwidth scheme
// the cluster holds only data-role disks and parity lives on the next
// cluster, so `cluster_size` is the number of disks grouped together and
// the caller decides what roles they play.
class DiskArray {
 public:
  // Creates `num_disks` disks in clusters of `cluster_size`. `num_disks`
  // must be a positive multiple of `cluster_size`.
  static StatusOr<DiskArray> Create(int num_disks, int cluster_size,
                                    const DiskParameters& params);

  int num_disks() const { return static_cast<int>(disks_.size()); }
  int cluster_size() const { return cluster_size_; }
  int num_clusters() const { return num_disks() / cluster_size_; }
  const DiskParameters& params() const { return params_; }

  // Mutable access is for I/O counters only: state transitions must go
  // through FailDisk / RepairDisk / StartRebuildDisk, which keep the
  // structure-of-arrays failure columns below in sync.
  Disk& disk(int id) { return disks_[static_cast<size_t>(id)]; }
  const Disk& disk(int id) const { return disks_[static_cast<size_t>(id)]; }

  // O(1) hot-path query backed by the per-disk up/down byte column (the
  // schedulers probe disk health for every planned read of every cycle;
  // a byte load here replaces a Disk-object chase + state compare).
  bool DiskUp(int id) const { return up_[static_cast<size_t>(id)] != 0; }

  // Cluster index of disk `id`.
  int ClusterOf(int id) const { return id / cluster_size_; }

  // Position of disk `id` within its cluster, in [0, cluster_size).
  int IndexInCluster(int id) const { return id % cluster_size_; }

  // Global id of disk `index` of cluster `cluster`.
  int DiskId(int cluster, int index) const {
    return cluster * cluster_size_ + index;
  }

  // Last disk of the cluster: the dedicated parity disk in the clustered
  // (SR/SG/NC) layouts.
  int ParityDiskOf(int cluster) const {
    return DiskId(cluster, cluster_size_ - 1);
  }

  // Failure / repair injection. StartRebuildDisk moves a disk to the
  // rebuilding state (still non-operational for reads); it exists so the
  // rebuild machinery never mutates Disk state behind the failure columns.
  Status FailDisk(int id);
  Status RepairDisk(int id);
  Status StartRebuildDisk(int id);

  // Number of currently failed (or rebuilding) disks, total and per
  // cluster — O(1), maintained incrementally by the mutators above.
  int NumFailed() const { return num_failed_; }
  int NumFailedInCluster(int cluster) const {
    return failed_in_cluster_[static_cast<size_t>(cluster)];
  }

  // True when some cluster has >= 2 failed disks: with one parity block per
  // group this is the paper's "catastrophic failure" for clustered layouts.
  bool HasCatastrophicClusterFailure() const;

  // List of currently failed disk ids (ascending).
  std::vector<int> FailedDisks() const;

 private:
  DiskArray(int num_disks, int cluster_size, const DiskParameters& params);

  // Re-derives the SoA failure columns for `id` after a state change.
  void SyncDiskUp(int id);

  int cluster_size_;
  DiskParameters params_;
  std::vector<Disk> disks_;
  // Structure-of-arrays mirror of the per-disk health the schedulers poll
  // every cycle: one byte per disk plus per-cluster / total failed counts,
  // updated only on the (rare) fail/repair/rebuild transitions.
  std::vector<uint8_t> up_;
  std::vector<int> failed_in_cluster_;
  int num_failed_ = 0;
};

}  // namespace ftms

#endif  // FTMS_DISK_DISK_ARRAY_H_
