#ifndef FTMS_DISK_DISK_ARRAY_H_
#define FTMS_DISK_DISK_ARRAY_H_

#include <vector>

#include "disk/disk.h"
#include "disk/disk_model.h"
#include "util/status.h"

namespace ftms {

// A farm of identical disks partitioned into fixed-size clusters.
//
// For the Streaming-RAID-family schemes a cluster holds C disks: C-1 data
// disks followed by one dedicated parity disk (the last disk of the
// cluster, as in the paper's Figure 3). For the Improved-bandwidth scheme
// the cluster holds only data-role disks and parity lives on the next
// cluster, so `cluster_size` is the number of disks grouped together and
// the caller decides what roles they play.
class DiskArray {
 public:
  // Creates `num_disks` disks in clusters of `cluster_size`. `num_disks`
  // must be a positive multiple of `cluster_size`.
  static StatusOr<DiskArray> Create(int num_disks, int cluster_size,
                                    const DiskParameters& params);

  int num_disks() const { return static_cast<int>(disks_.size()); }
  int cluster_size() const { return cluster_size_; }
  int num_clusters() const { return num_disks() / cluster_size_; }
  const DiskParameters& params() const { return params_; }

  Disk& disk(int id) { return disks_[static_cast<size_t>(id)]; }
  const Disk& disk(int id) const { return disks_[static_cast<size_t>(id)]; }

  // Cluster index of disk `id`.
  int ClusterOf(int id) const { return id / cluster_size_; }

  // Position of disk `id` within its cluster, in [0, cluster_size).
  int IndexInCluster(int id) const { return id % cluster_size_; }

  // Global id of disk `index` of cluster `cluster`.
  int DiskId(int cluster, int index) const {
    return cluster * cluster_size_ + index;
  }

  // Last disk of the cluster: the dedicated parity disk in the clustered
  // (SR/SG/NC) layouts.
  int ParityDiskOf(int cluster) const {
    return DiskId(cluster, cluster_size_ - 1);
  }

  // Failure / repair injection.
  Status FailDisk(int id);
  Status RepairDisk(int id);

  // Number of currently failed (or rebuilding) disks, total and per cluster.
  int NumFailed() const;
  int NumFailedInCluster(int cluster) const;

  // True when some cluster has >= 2 failed disks: with one parity block per
  // group this is the paper's "catastrophic failure" for clustered layouts.
  bool HasCatastrophicClusterFailure() const;

  // List of currently failed disk ids (ascending).
  std::vector<int> FailedDisks() const;

 private:
  DiskArray(int num_disks, int cluster_size, const DiskParameters& params);

  int cluster_size_;
  DiskParameters params_;
  std::vector<Disk> disks_;
};

}  // namespace ftms

#endif  // FTMS_DISK_DISK_ARRAY_H_
