#include "disk/disk_array.h"

#include <string>

namespace ftms {

DiskArray::DiskArray(int num_disks, int cluster_size,
                     const DiskParameters& params)
    : cluster_size_(cluster_size), params_(params) {
  disks_.reserve(static_cast<size_t>(num_disks));
  for (int i = 0; i < num_disks; ++i) disks_.emplace_back(i);
  up_.assign(static_cast<size_t>(num_disks), 1);
  failed_in_cluster_.assign(static_cast<size_t>(num_disks / cluster_size),
                            0);
}

void DiskArray::SyncDiskUp(int id) {
  const uint8_t now_up = disks_[static_cast<size_t>(id)].operational()
                             ? uint8_t{1}
                             : uint8_t{0};
  if (now_up == up_[static_cast<size_t>(id)]) return;
  up_[static_cast<size_t>(id)] = now_up;
  const int delta = now_up != 0 ? -1 : 1;
  num_failed_ += delta;
  failed_in_cluster_[static_cast<size_t>(ClusterOf(id))] += delta;
}

StatusOr<DiskArray> DiskArray::Create(int num_disks, int cluster_size,
                                      const DiskParameters& params) {
  if (num_disks <= 0) {
    return Status::InvalidArgument("num_disks must be positive");
  }
  if (cluster_size <= 0) {
    return Status::InvalidArgument("cluster_size must be positive");
  }
  if (num_disks % cluster_size != 0) {
    return Status::InvalidArgument(
        "num_disks (" + std::to_string(num_disks) +
        ") must be a multiple of cluster_size (" +
        std::to_string(cluster_size) + ")");
  }
  FTMS_RETURN_IF_ERROR(params.Validate());
  return DiskArray(num_disks, cluster_size, params);
}

Status DiskArray::FailDisk(int id) {
  if (id < 0 || id >= num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  disks_[static_cast<size_t>(id)].Fail();
  SyncDiskUp(id);
  return Status::Ok();
}

Status DiskArray::RepairDisk(int id) {
  if (id < 0 || id >= num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  disks_[static_cast<size_t>(id)].Repair();
  SyncDiskUp(id);
  return Status::Ok();
}

Status DiskArray::StartRebuildDisk(int id) {
  if (id < 0 || id >= num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  disks_[static_cast<size_t>(id)].StartRebuild();
  SyncDiskUp(id);
  return Status::Ok();
}

bool DiskArray::HasCatastrophicClusterFailure() const {
  for (int c = 0; c < num_clusters(); ++c) {
    if (NumFailedInCluster(c) >= 2) return true;
  }
  return false;
}

std::vector<int> DiskArray::FailedDisks() const {
  std::vector<int> out;
  for (const Disk& d : disks_) {
    if (!d.operational()) out.push_back(d.id());
  }
  return out;
}

}  // namespace ftms
