#include "disk/disk_array.h"

#include <string>

namespace ftms {

DiskArray::DiskArray(int num_disks, int cluster_size,
                     const DiskParameters& params)
    : cluster_size_(cluster_size), params_(params) {
  disks_.reserve(static_cast<size_t>(num_disks));
  for (int i = 0; i < num_disks; ++i) disks_.emplace_back(i);
}

StatusOr<DiskArray> DiskArray::Create(int num_disks, int cluster_size,
                                      const DiskParameters& params) {
  if (num_disks <= 0) {
    return Status::InvalidArgument("num_disks must be positive");
  }
  if (cluster_size <= 0) {
    return Status::InvalidArgument("cluster_size must be positive");
  }
  if (num_disks % cluster_size != 0) {
    return Status::InvalidArgument(
        "num_disks (" + std::to_string(num_disks) +
        ") must be a multiple of cluster_size (" +
        std::to_string(cluster_size) + ")");
  }
  FTMS_RETURN_IF_ERROR(params.Validate());
  return DiskArray(num_disks, cluster_size, params);
}

Status DiskArray::FailDisk(int id) {
  if (id < 0 || id >= num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  disks_[static_cast<size_t>(id)].Fail();
  return Status::Ok();
}

Status DiskArray::RepairDisk(int id) {
  if (id < 0 || id >= num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  disks_[static_cast<size_t>(id)].Repair();
  return Status::Ok();
}

int DiskArray::NumFailed() const {
  int n = 0;
  for (const Disk& d : disks_) {
    if (!d.operational()) ++n;
  }
  return n;
}

int DiskArray::NumFailedInCluster(int cluster) const {
  int n = 0;
  for (int i = 0; i < cluster_size_; ++i) {
    if (!disk(DiskId(cluster, i)).operational()) ++n;
  }
  return n;
}

bool DiskArray::HasCatastrophicClusterFailure() const {
  for (int c = 0; c < num_clusters(); ++c) {
    if (NumFailedInCluster(c) >= 2) return true;
  }
  return false;
}

std::vector<int> DiskArray::FailedDisks() const {
  std::vector<int> out;
  for (const Disk& d : disks_) {
    if (!d.operational()) out.push_back(d.id());
  }
  return out;
}

}  // namespace ftms
