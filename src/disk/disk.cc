#include "disk/disk.h"

namespace ftms {

const char* DiskStateName(DiskState state) {
  switch (state) {
    case DiskState::kOperational:
      return "operational";
    case DiskState::kFailed:
      return "failed";
    case DiskState::kRebuilding:
      return "rebuilding";
  }
  return "unknown";
}

bool Disk::Read(int tracks) {
  if (state_ != DiskState::kOperational) {
    ++failed_reads_;
    return false;
  }
  tracks_read_ += tracks;
  return true;
}

}  // namespace ftms
