#include "disk/disk.h"

namespace ftms {

const char* DiskStateName(DiskState state) {
  switch (state) {
    case DiskState::kOperational:
      return "operational";
    case DiskState::kFailed:
      return "failed";
    case DiskState::kRebuilding:
      return "rebuilding";
  }
  return "unknown";
}

}  // namespace ftms
