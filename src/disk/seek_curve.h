#ifndef FTMS_DISK_SEEK_CURVE_H_
#define FTMS_DISK_SEEK_CURVE_H_

#include "util/status.h"

namespace ftms {

// Distance-dependent seek-time curve after Ruemmler & Wilkes, "An
// Introduction to Disk Drive Modeling" (the paper's reference [9]):
// short seeks are dominated by arm settle time and grow with the square
// root of the distance; long seeks approach a linear coast:
//
//   seek(0) = 0
//   seek(d) = a + b * sqrt(d)   for 0 < d < threshold
//   seek(d) = c + e * d         for d >= threshold
//
// Defaults approximate the HP 97560 figures from that paper, scaled so
// the full stroke lands near the 25 ms T_seek of Table 1.
//
// The paper's analysis charges ONE full-stroke seek per cycle (the reads
// are served in a single arm sweep). This module lets benches quantify
// that simplification: a SCAN sweep over r uniformly spread requests
// performs r short seeks of ~cylinders/(r+1) each, whose total — because
// the curve is concave — EXCEEDS one full stroke, so the paper's charge
// is optimistic at high request counts.
struct SeekCurve {
  double short_a_s = 0.0032;   // settle-dominated intercept (s)
  double short_b_s = 0.00040;  // sqrt coefficient (s / sqrt(cyl))
  double long_c_s = 0.0110;    // linear-regime intercept (s)
  double long_e_s = 7.0e-6;    // linear coefficient (s / cyl)
  int threshold_cyl = 400;     // crossover distance
  int cylinders = 2000;        // total cylinders

  // Seek time for a move of `distance` cylinders.
  double SeekTimeS(int distance) const;

  // Full-stroke seek (distance = cylinders - 1).
  double FullStrokeS() const { return SeekTimeS(cylinders - 1); }

  // Expected seek of a random request under FIFO service: the average
  // move between two uniform random cylinders is cylinders/3.
  double AverageRandomSeekS() const { return SeekTimeS(cylinders / 3); }

  // Total seek time of one SCAN sweep serving `requests` uniformly
  // spread requests: `requests` hops of cylinders/(requests+1) each.
  double SweepSeekS(int requests) const;

  Status Validate() const;
};

// Largest r such that SweepSeekS(r) + r * track_time_s <= cycle_s: the
// per-disk track budget per cycle under the realistic curve (compare
// with DiskParameters::TracksPerCycle, which charges one full stroke).
int TracksPerCycleUnderCurve(const SeekCurve& curve, double track_time_s,
                             double cycle_s);

// The same budget under FIFO service (every request pays an average
// random seek).
int TracksPerCycleFifo(const SeekCurve& curve, double track_time_s,
                       double cycle_s);

}  // namespace ftms

#endif  // FTMS_DISK_SEEK_CURVE_H_
