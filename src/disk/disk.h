#ifndef FTMS_DISK_DISK_H_
#define FTMS_DISK_DISK_H_

#include <cstdint>

#include "disk/disk_model.h"

namespace ftms {

// Operational state of a single simulated drive (Section 1's three modes
// are system-level; per-disk we track whether the drive itself serves I/O).
enum class DiskState {
  kOperational,
  kFailed,
  kRebuilding,  // replaced drive being reloaded from parity/tertiary
};

const char* DiskStateName(DiskState state);

// One simulated disk drive: state machine plus I/O counters. Timing is not
// modeled here (the cycle-based schedulers account time via DiskParameters);
// a Disk knows only whether a read can succeed and how much work it did.
class Disk {
 public:
  explicit Disk(int id) : id_(id) {}

  int id() const { return id_; }
  DiskState state() const { return state_; }
  bool operational() const { return state_ == DiskState::kOperational; }

  // Marks the disk failed; subsequent reads fail until Repair()/Rebuild().
  void Fail() {
    if (state_ != DiskState::kFailed) ++times_failed_;
    state_ = DiskState::kFailed;
  }

  // A replacement drive is spinning and being reloaded.
  void StartRebuild() { state_ = DiskState::kRebuilding; }

  // The drive (or its replacement) is fully operational again.
  void Repair() { state_ = DiskState::kOperational; }

  // Attempts to read `tracks` tracks this cycle. Returns true and bumps the
  // counters when the disk is operational; returns false (recording the
  // failed attempt) otherwise. Rebuilding drives can serve reads only for
  // already-rebuilt data; the schedulers treat them as non-operational for
  // simplicity, matching the paper's normal/degraded-mode focus. Inline:
  // this sits on the schedulers' per-read path.
  bool Read(int tracks) {
    if (state_ != DiskState::kOperational) {
      ++failed_reads_;
      return false;
    }
    tracks_read_ += tracks;
    return true;
  }

  int64_t tracks_read() const { return tracks_read_; }
  int64_t failed_reads() const { return failed_reads_; }
  int64_t times_failed() const { return times_failed_; }

 private:
  int id_;
  DiskState state_ = DiskState::kOperational;
  int64_t tracks_read_ = 0;
  int64_t failed_reads_ = 0;
  int64_t times_failed_ = 0;
};

}  // namespace ftms

#endif  // FTMS_DISK_DISK_H_
