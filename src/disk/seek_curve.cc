#include "disk/seek_curve.h"

#include <cmath>

namespace ftms {

double SeekCurve::SeekTimeS(int distance) const {
  if (distance <= 0) return 0;
  if (distance < threshold_cyl) {
    return short_a_s + short_b_s * std::sqrt(static_cast<double>(distance));
  }
  return long_c_s + long_e_s * static_cast<double>(distance);
}

double SeekCurve::SweepSeekS(int requests) const {
  if (requests <= 0) return 0;
  const int hop = cylinders / (requests + 1);
  return static_cast<double>(requests) * SeekTimeS(hop);
}

Status SeekCurve::Validate() const {
  if (short_a_s < 0 || short_b_s < 0 || long_c_s < 0 || long_e_s < 0) {
    return Status::InvalidArgument("seek coefficients must be >= 0");
  }
  if (threshold_cyl <= 0 || cylinders <= threshold_cyl) {
    return Status::InvalidArgument(
        "need 0 < threshold_cyl < cylinders");
  }
  return Status::Ok();
}

namespace {

int LargestBudget(double cycle_s, double track_time_s,
                  double (*seek_total)(const SeekCurve&, int),
                  const SeekCurve& curve) {
  int r = 0;
  while (seek_total(curve, r + 1) +
             static_cast<double>(r + 1) * track_time_s <=
         cycle_s) {
    ++r;
    if (r > 1000000) break;  // guard against degenerate parameters
  }
  return r;
}

}  // namespace

int TracksPerCycleUnderCurve(const SeekCurve& curve, double track_time_s,
                             double cycle_s) {
  return LargestBudget(
      cycle_s, track_time_s,
      [](const SeekCurve& c, int r) { return c.SweepSeekS(r); }, curve);
}

int TracksPerCycleFifo(const SeekCurve& curve, double track_time_s,
                       double cycle_s) {
  return LargestBudget(
      cycle_s, track_time_s,
      [](const SeekCurve& c, int r) {
        return static_cast<double>(r) * c.AverageRandomSeekS();
      },
      curve);
}

}  // namespace ftms
