#include "server/staging.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

namespace ftms {

StagingManager::StagingManager(Catalog* catalog,
                               const TertiaryStore* tertiary,
                               double track_mb,
                               std::function<bool(int)> is_evictable)
    : catalog_(catalog),
      tertiary_(tertiary),
      track_mb_(track_mb),
      is_evictable_(std::move(is_evictable)) {}

Status StagingManager::AddToLibrary(const MediaObject& object) {
  if (InLibrary(object.id)) {
    return Status::AlreadyExists("title already in the tertiary library");
  }
  if (object.num_tracks <= 0) {
    return Status::InvalidArgument("title must have at least one track");
  }
  library_.push_back(object);
  return Status::Ok();
}

bool StagingManager::InLibrary(int object_id) const {
  return std::any_of(
      library_.begin(), library_.end(),
      [&](const MediaObject& o) { return o.id == object_id; });
}

void StagingManager::MarkUse(int object_id, double now_s) {
  auto it = last_use_s_.find(object_id);
  if (it != last_use_s_.end()) it->second = now_s;
}

Status StagingManager::MakeRoom(const MediaObject& object) {
  for (;;) {
    // Try placement; on space exhaustion evict the LRU idle title.
    Status added = catalog_->Add(object);
    if (added.ok()) {
      catalog_->Remove(object.id).ok();  // probe only; caller re-adds
      return Status::Ok();
    }
    if (added.code() != StatusCode::kResourceExhausted) return added;

    int victim = -1;
    double oldest = std::numeric_limits<double>::infinity();
    for (const auto& [id, used] : last_use_s_) {
      if (!is_evictable_(id)) continue;
      if (used < oldest) {
        oldest = used;
        victim = id;
      }
    }
    if (victim < 0) {
      return Status::ResourceExhausted(
          "working set full and every resident title has active streams");
    }
    FTMS_RETURN_IF_ERROR(catalog_->Remove(victim));
    last_use_s_.erase(victim);
    ++evictions_;
  }
}

StatusOr<double> StagingManager::EnsureResident(int object_id,
                                                double now_s) {
  if (catalog_->Contains(object_id)) {
    MarkUse(object_id, now_s);
    return now_s;
  }
  auto it = std::find_if(
      library_.begin(), library_.end(),
      [&](const MediaObject& o) { return o.id == object_id; });
  if (it == library_.end()) {
    return Status::NotFound("title " + std::to_string(object_id) +
                            " not in the tertiary library");
  }
  FTMS_RETURN_IF_ERROR(MakeRoom(*it));
  FTMS_RETURN_IF_ERROR(catalog_->Add(*it));
  last_use_s_[object_id] = now_s;
  ++stage_ins_;
  // One contiguous extent per title: robot switch + transfer.
  const double mb = it->SizeMb(track_mb_);
  mb_staged_ += mb;
  return now_s + tertiary_->ExtentTime(mb);
}

}  // namespace ftms
