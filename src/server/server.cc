#include "server/server.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "model/capacity.h"

namespace ftms {

namespace {

// ServerConfig::telemetry_port -1 defers to the environment; the
// variable absent (or empty) keeps telemetry fully off.
int ResolveTelemetryPort(int config_port) {
  if (config_port >= 0) return config_port;
  const char* env = std::getenv("FTMS_TELEMETRY_PORT");
  if (env == nullptr || env[0] == '\0') return -1;
  return std::atoi(env);
}

}  // namespace

StatusOr<std::unique_ptr<MultimediaServer>> MultimediaServer::Create(
    const ServerConfig& config) {
  FTMS_RETURN_IF_ERROR(config.params.Validate());
  const int c = config.parity_group_size;
  if (c < 2) {
    return Status::InvalidArgument("parity group size must be >= 2");
  }

  auto server = std::unique_ptr<MultimediaServer>(new MultimediaServer());
  server->config_ = config;

  // Layout first: it validates the D/C divisibility constraints.
  StatusOr<std::unique_ptr<Layout>> layout =
      CreateLayout(config.scheme, config.params.num_disks, c);
  if (!layout.ok()) return layout.status();
  server->layout_ = std::move(*layout);

  StatusOr<DiskArray> disks =
      DiskArray::Create(config.params.num_disks,
                        server->layout_->disks_per_cluster(),
                        config.params.disk);
  if (!disks.ok()) return disks.status();
  server->disks_ = std::make_unique<DiskArray>(std::move(*disks));

  server->catalog_ = std::make_unique<Catalog>(
      server->layout_.get(), config.params.disk.TracksPerDisk());

  if (config.admission_override > 0) {
    server->admission_ =
        std::make_unique<AdmissionController>(config.admission_override);
  } else {
    StatusOr<AdmissionController> admission =
        AdmissionController::Create(config.params, config.scheme, c);
    if (!admission.ok()) return admission.status();
    server->admission_ =
        std::make_unique<AdmissionController>(std::move(*admission));
  }

  SchedulerConfig sched_config;
  sched_config.scheme = config.scheme;
  sched_config.parity_group_size = c;
  sched_config.object_rate_mb_s = config.params.object_rate_mb_s;
  sched_config.disk = config.params.disk;
  sched_config.slots_per_disk = config.slots_per_disk;
  sched_config.nc_transition = config.nc_transition;
  sched_config.buffer_servers = config.params.k_reserve;
  sched_config.ib_prefetch_parity = config.ib_prefetch_parity;
  sched_config.journal = config.journal;
  sched_config.ledger = config.ledger;
  sched_config.timeseries = config.timeseries;
  StatusOr<std::unique_ptr<CycleScheduler>> scheduler = CreateScheduler(
      sched_config, server->disks_.get(), server->layout_.get());
  if (!scheduler.ok()) return scheduler.status();
  server->scheduler_ = std::move(*scheduler);

  server->rebuild_ = std::make_unique<RebuildManager>(
      server->disks_.get(), server->layout_.get(),
      server->scheduler_.get());

  // Live telemetry plane, only when asked for: the hub renders snapshots
  // at cycle boundaries (serial points), the HTTP thread serves them.
  // With telemetry off neither object exists — zero threads, zero
  // per-cycle cost, byte-identical outputs.
  const int telemetry_port = ResolveTelemetryPort(config.telemetry_port);
  if (telemetry_port >= 0) {
    MultimediaServer* raw = server.get();
    server->telemetry_hub_ = std::make_unique<TelemetryHub>();
    server->telemetry_hub_->AttachMetrics(
        server->scheduler_->metrics_registry());
    server->telemetry_hub_->AttachTimeSeries(
        server->scheduler_->timeseries_recorder());
    server->telemetry_hub_->AttachJournal(server->scheduler_->journal());
    server->telemetry_hub_->AddProbe([raw](TelemetrySnapshot* snap) {
      raw->ProbeTelemetry(snap);
    });
    TelemetryServerOptions options;
    options.port = telemetry_port;
    StatusOr<std::unique_ptr<TelemetryServer>> http =
        TelemetryServer::Start(server->telemetry_hub_.get(), options);
    if (!http.ok()) return http.status();
    server->telemetry_server_ = std::move(*http);
    server->PublishTelemetry();  // endpoints have content before cycle 1
  }

  return server;
}

void MultimediaServer::ProbeTelemetry(TelemetrySnapshot* snap) {
  snap->cycle = scheduler_->cycle();
  snap->status_line = StatusLine();
  snap->rebuild_active = rebuild_->Active();
  snap->rebuild_disk = rebuild_->active_disk();
  snap->rebuild_progress = rebuild_->Progress();

  const int num_clusters = layout_->num_clusters();
  const int disks_per_cluster = layout_->disks_per_cluster();
  const int slots = scheduler_->slots_per_disk();
  snap->clusters.assign(static_cast<size_t>(num_clusters), {});
  for (int cl = 0; cl < num_clusters; ++cl) {
    TelemetrySnapshot::ClusterStat& stat =
        snap->clusters[static_cast<size_t>(cl)];
    stat.cluster = cl;
    stat.failed_disks = disks_->NumFailedInCluster(cl);
    stat.rebuilding = rebuild_->Active() &&
                      disks_->ClusterOf(rebuild_->active_disk()) == cl;
    if (slots <= 0 || disks_per_cluster <= 0) continue;
    int used = 0;
    for (int d = cl * disks_per_cluster; d < (cl + 1) * disks_per_cluster;
         ++d) {
      used += scheduler_->SlotsUsedLastCycle(d);
    }
    stat.utilization = static_cast<double>(used) /
                       (static_cast<double>(slots) * disks_per_cluster);
  }

  const auto& streams = scheduler_->streams();
  snap->hiccups_total = scheduler_->metrics().hiccups;
  for (const auto& stream : streams) {
    snap->worst_stream_hiccups =
        std::max(snap->worst_stream_hiccups, stream->hiccup_count());
  }
  if (const QosLedger* ledger = scheduler_->qos_ledger()) {
    snap->active_breaches = ledger->active_breaches();
    for (const SloStatus& status : ledger->Evaluate(streams)) {
      snap->slo_burn.emplace_back(status.spec.name, status.budget_burn);
    }
  }
}

void MultimediaServer::PublishTelemetry() {
  if (telemetry_hub_ == nullptr) return;
  telemetry_hub_->Publish(static_cast<int64_t>(NowSeconds() * 1e6));
}

Status MultimediaServer::AddObject(const MediaObject& object) {
  if (!scheduler_->CanServeRate(object.rate_mb_s)) {
    return Status::InvalidArgument(
        "object rate not servable by the configured scheduler (base rate "
        "or, for the Non-clustered scheme, an integer multiple of it)");
  }
  return catalog_->Add(object);
}

Status MultimediaServer::RemoveObject(int object_id) {
  for (const auto& stream : scheduler_->streams()) {
    if (stream->state() == StreamState::kActive &&
        stream->object().id == object_id) {
      return Status::FailedPrecondition(
          "object has active streams; cannot purge");
    }
  }
  return catalog_->Remove(object_id);
}

namespace {

// Base-stream equivalents a stream consumes (its rate multiplier).
int AdmissionWeight(const MediaObject& object, double base_rate_mb_s) {
  return std::max(
      1, static_cast<int>(std::lround(object.rate_mb_s / base_rate_mb_s)));
}

}  // namespace

StatusOr<StreamId> MultimediaServer::StartStream(int object_id) {
  StatusOr<MediaObject> object = catalog_->Get(object_id);
  if (!object.ok()) return object.status();
  const int weight =
      AdmissionWeight(*object, config_.params.object_rate_mb_s);
  FTMS_RETURN_IF_ERROR(admission_->Admit(weight));
  StatusOr<StreamId> id = scheduler_->AddStream(*object);
  if (!id.ok()) {
    admission_->Release(weight);
    return id.status();
  }
  return id;
}

Status MultimediaServer::StopStream(StreamId id) {
  FTMS_RETURN_IF_ERROR(scheduler_->StopStream(id));
  ReleaseFinishedSlots();
  return Status::Ok();
}

void MultimediaServer::ReleaseFinishedSlots() {
  const auto& streams = scheduler_->streams();
  slot_released_.resize(streams.size(), false);
  for (size_t i = 0; i < streams.size(); ++i) {
    if (slot_released_[i]) continue;
    const StreamState state = streams[i]->state();
    if (state == StreamState::kCompleted ||
        state == StreamState::kTerminated) {
      admission_->Release(AdmissionWeight(
          streams[i]->object(), config_.params.object_rate_mb_s));
      slot_released_[i] = true;
    }
  }
}

void MultimediaServer::RunCycles(int n) {
  for (int i = 0; i < n; ++i) {
    scheduler_->RunCycle();
    rebuild_->AdvanceOneCycle();
    ReleaseFinishedSlots();
    // Cycle end is the serial sync point: scrapes see a complete cycle
    // or the one before it, never a torn view.
    PublishTelemetry();
  }
}

Status MultimediaServer::FailDisk(int disk, bool mid_cycle) {
  if (disk < 0 || disk >= disks_->num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  scheduler_->OnDiskFailed(disk, mid_cycle);
  return Status::Ok();
}

Status MultimediaServer::RepairDisk(int disk) {
  if (disk < 0 || disk >= disks_->num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  scheduler_->OnDiskRepaired(disk);
  return Status::Ok();
}

bool MultimediaServer::CatastrophicFailure() const {
  if (config_.scheme != Scheme::kImprovedBandwidth) {
    return disks_->HasCatastrophicClusterFailure();
  }
  // IB: two failures in the same or adjacent clusters are catastrophic
  // (Section 4: disks belong to two parity groups' worlds).
  const int nc = layout_->num_clusters();
  for (int cl = 0; cl < nc; ++cl) {
    const int here = disks_->NumFailedInCluster(cl);
    if (here >= 2) return true;
    if (here >= 1 && nc > 1 &&
        disks_->NumFailedInCluster((cl + 1) % nc) >= 1) {
      return true;
    }
  }
  return false;
}

double MultimediaServer::NowSeconds() const {
  return static_cast<double>(scheduler_->cycle()) *
         scheduler_->CycleSeconds();
}

std::string MultimediaServer::Summary() const {
  const SchedulerMetrics& m = scheduler_->metrics();
  std::ostringstream os;
  os << SchemeName(config_.scheme) << " C=" << config_.parity_group_size
     << " D=" << config_.params.num_disks << ": cycle " << scheduler_->cycle()
     << ", active " << scheduler_->ActiveStreams() << "/"
     << admission_->capacity() << ", delivered " << m.tracks_delivered
     << ", hiccups " << m.hiccups << ", reconstructed " << m.reconstructed
     << ", failed disks " << disks_->NumFailed();
  return os.str();
}

std::string MultimediaServer::StatusLine() const {
  const QosLedger* ledger = scheduler_->qos_ledger();
  int64_t worst = 0;
  for (const auto& stream : scheduler_->streams()) {
    worst = std::max(worst, stream->hiccup_count());
  }
  int64_t breaches;
  if (ledger != nullptr) {
    breaches = ledger->active_breaches();
  } else {
    // No ledger ran: evaluate the scheme's default SLOs against the
    // current stream table (degraded exposure unknown, failures scaled
    // by the disks currently down).
    breaches = CountBreaches(EvaluateSlos(
        CaptureStreamQos(scheduler_->streams()),
        DefaultSlos(config_.scheme, config_.parity_group_size),
        disks_->NumFailed()));
  }
  std::ostringstream os;
  os << Summary() << ", worst-stream hiccups " << worst
     << ", slo breaches " << breaches;
  return os.str();
}

}  // namespace ftms
