#ifndef FTMS_SERVER_TRACE_H_
#define FTMS_SERVER_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disk/disk_array.h"
#include "sched/cycle_scheduler.h"
#include "util/status.h"

namespace ftms {

// Per-cycle metrics snapshot, for plotting time series of a run (buffer
// occupancy sawtooths, hiccup bursts around failures, rebuild progress).
struct CycleSample {
  int64_t cycle = 0;
  int active_streams = 0;
  int64_t buffer_in_use = 0;
  int64_t tracks_delivered_delta = 0;
  int64_t hiccups_delta = 0;
  int64_t reconstructed_delta = 0;
  int64_t dropped_reads_delta = 0;
  int failed_disks = 0;
  // Per-disk busy slots this cycle, pulled from the scheduler's metrics
  // registry (empty when the scheduler runs uninstrumented). The pct
  // aggregates are busy/slots_per_disk over the farm.
  std::vector<int64_t> disk_busy_delta;
  double disk_util_mean_pct = 0;
  double disk_util_max_pct = 0;
};

// Records one CycleSample per scheduler cycle. Drive it manually:
//
//   TraceRecorder trace(&scheduler, &disks);
//   for (...) { scheduler.RunCycle(); trace.Sample(); }
//   WriteCsv(trace.samples(), "run.csv");
class TraceRecorder {
 public:
  TraceRecorder(const CycleScheduler* scheduler, const DiskArray* disks)
      : scheduler_(scheduler), disks_(disks) {}

  // Captures the current cycle's deltas relative to the previous sample.
  void Sample();

  const std::vector<CycleSample>& samples() const { return samples_; }
  void Clear();

 private:
  // Resolves the scheduler's per-disk busy counters from its registry on
  // the first Sample(); no-op (and re-checked never) when uninstrumented.
  void ResolveDiskCounters();

  const CycleScheduler* scheduler_;
  const DiskArray* disks_;
  std::vector<CycleSample> samples_;
  SchedulerMetrics last_;
  bool disk_counters_resolved_ = false;
  std::vector<const Counter*> disk_busy_counters_;  // null entries allowed
  std::vector<int64_t> last_disk_busy_;
};

// Renders samples as CSV (header + one row per cycle).
std::string ToCsv(const std::vector<CycleSample>& samples);

// Writes the CSV to `path`; returns an error on I/O failure.
Status WriteCsv(const std::vector<CycleSample>& samples,
                const std::string& path);

}  // namespace ftms

#endif  // FTMS_SERVER_TRACE_H_
