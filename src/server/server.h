#ifndef FTMS_SERVER_SERVER_H_
#define FTMS_SERVER_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "disk/disk_array.h"
#include "layout/catalog.h"
#include "layout/layout.h"
#include "model/parameters.h"
#include "sched/cycle_scheduler.h"
#include "server/rebuild_manager.h"
#include "stream/admission.h"
#include "telemetry/telemetry_server.h"
#include "util/status.h"

namespace ftms {

// Top-level configuration of a multimedia server instance.
struct ServerConfig {
  Scheme scheme = Scheme::kStreamingRaid;
  SystemParameters params;            // disks, rates, D, K (Table 1)
  int parity_group_size = 5;          // C
  NcTransition nc_transition = NcTransition::kDeferredRead;
  bool ib_prefetch_parity = false;
  int slots_per_disk = 0;             // 0 = derive from the disk model

  // When > 0, overrides the analytical admission capacity (used by
  // stress experiments that deliberately overload the disks).
  int admission_override = 0;

  // QoS sinks forwarded to the scheduler (see SchedulerConfig::journal /
  // ::ledger): null keeps the FTMS_QOS-gated defaults; examples and the
  // CLI inject private instances.
  EventJournal* journal = nullptr;
  QosLedger* ledger = nullptr;

  // Time-series recorder forwarded to the scheduler (see
  // SchedulerConfig::timeseries): null keeps the FTMS_TIMESERIES-gated
  // global recorder.
  TimeSeriesRecorder* timeseries = nullptr;

  // Telemetry exporter port: >= 0 starts the in-process HTTP server on
  // 127.0.0.1 (0 = kernel-assigned ephemeral port); -1 falls back to the
  // FTMS_TELEMETRY_PORT environment variable, and disables telemetry
  // entirely when that is unset — no thread, no socket, no per-cycle
  // snapshot work.
  int telemetry_port = -1;
};

// The multimedia on-demand server of Figure 1, disk subsystem side:
// a disk farm with a parity layout, a cycle-based scheduler for one of
// the paper's four schemes, a catalog of disk-resident objects, and
// admission control from the analytical capacity model.
//
// Usage:
//   auto server = MultimediaServer::Create(config).value();
//   server->AddObject(MakeMovie(...));
//   StreamId id = server->StartStream(object_id).value();
//   server->RunCycles(100);
//   server->FailDisk(7, /*mid_cycle=*/false);
//   server->RunCycles(100);
//   -> inspect server->scheduler().metrics(), per-stream hiccups, etc.
class MultimediaServer {
 public:
  static StatusOr<std::unique_ptr<MultimediaServer>> Create(
      const ServerConfig& config);

  MultimediaServer(const MultimediaServer&) = delete;
  MultimediaServer& operator=(const MultimediaServer&) = delete;

  // Stages an object onto the disk working set.
  Status AddObject(const MediaObject& object);

  // Purges an object (it must have no active streams).
  Status RemoveObject(int object_id);

  // Admits and starts a stream on a resident object.
  StatusOr<StreamId> StartStream(int object_id);

  // VCR controls. A paused stream keeps its admission slot (its
  // bandwidth stays reserved, so resuming is glitch-free); stopping
  // frees the slot and the stream's buffers.
  Status PauseStream(StreamId id) {
    return scheduler_->PauseStream(id);
  }
  Status ResumeStream(StreamId id) {
    return scheduler_->ResumeStream(id);
  }
  Status StopStream(StreamId id);

  // Advances simulated time by `n` scheduling cycles.
  void RunCycles(int n);

  // Failure injection; `mid_cycle` models a failure inside the upcoming
  // cycle's disk sweep.
  Status FailDisk(int disk, bool mid_cycle = false);
  Status RepairDisk(int disk);

  // Begins rebuilding a failed disk onto a hot spare using idle
  // bandwidth only (rebuild mode; progresses as cycles run and repairs
  // the disk on completion).
  Status StartRebuild(int disk) { return rebuild_->StartRebuild(disk); }
  const RebuildManager& rebuild() const { return *rebuild_; }
  // Mutable access for byte-level rebuild attachment
  // (RebuildManager::AttachDataPath) and rebuild drills.
  RebuildManager& mutable_rebuild() { return *rebuild_; }

  // True when some parity group has lost two members: data must be
  // reloaded from tertiary storage (Section 1's catastrophic failure).
  bool CatastrophicFailure() const;

  const ServerConfig& config() const { return config_; }
  const DiskArray& disks() const { return *disks_; }
  const Layout& layout() const { return *layout_; }
  const Catalog& catalog() const { return *catalog_; }
  // Mutable access for external staging managers (Figure 1's tertiary
  // pipeline); object lifetimes are still guarded by RemoveObject checks
  // when purging through the server API.
  Catalog& mutable_catalog() { return *catalog_; }
  const AdmissionController& admission() const { return *admission_; }
  CycleScheduler& scheduler() { return *scheduler_; }
  const CycleScheduler& scheduler() const { return *scheduler_; }

  double NowSeconds() const;
  int64_t cycle() const { return scheduler_->cycle(); }

  // One-line status summary (streams, hiccups, failures).
  std::string Summary() const;

  // Summary() extended with per-viewer QoS: the worst single stream's
  // hiccup count and the number of currently breached SLOs (from the
  // scheduler's ledger when one is attached, else evaluated on the fly
  // against the scheme's DefaultSlos).
  std::string StatusLine() const;

  // Live telemetry plane (null unless ServerConfig::telemetry_port or
  // FTMS_TELEMETRY_PORT enabled it at Create time). Snapshots publish at
  // every cycle boundary; PublishTelemetry() forces one extra publication
  // from a serial point (exporters call it right before their final
  // dump so the last scrape equals the written file).
  const TelemetryServer* telemetry_server() const {
    return telemetry_server_.get();
  }
  TelemetryHub* telemetry_hub() { return telemetry_hub_.get(); }
  void PublishTelemetry();

 private:
  MultimediaServer() = default;

  // Returns completed/terminated streams' admission slots to the pool.
  void ReleaseFinishedSlots();

  // Fills the live-state fields of a telemetry snapshot (rebuild window,
  // per-cluster utilization, SLO burn). Serial points only.
  void ProbeTelemetry(TelemetrySnapshot* snap);

  std::vector<bool> slot_released_;  // per StreamId
  ServerConfig config_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<Layout> layout_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<CycleScheduler> scheduler_;
  std::unique_ptr<RebuildManager> rebuild_;
  std::unique_ptr<TelemetryHub> telemetry_hub_;
  std::unique_ptr<TelemetryServer> telemetry_server_;
};

}  // namespace ftms

#endif  // FTMS_SERVER_SERVER_H_
