#ifndef FTMS_SERVER_REBUILD_H_
#define FTMS_SERVER_REBUILD_H_

#include "disk/disk_model.h"
#include "layout/schemes.h"
#include "server/tertiary.h"
#include "util/status.h"

namespace ftms {

// Rebuild-mode analysis (the paper's third operating mode, deferred there
// "due to lack of space"; implemented here as an extension).
//
// After a single failure, a loaded spare can be rebuilt from the surviving
// members of each parity group (C-1 reads + XOR per rebuilt track) using
// the cluster's spare bandwidth. After a catastrophic failure the parity
// path is gone and the contents must come back from tertiary storage,
// touching portions of many objects — the slow path whose avoidance
// motivates the whole design (Section 1).

struct RebuildEstimate {
  double hours = 0;            // wall-clock rebuild duration
  double degraded_fraction = 0;  // fraction of cluster bandwidth consumed
};

// Rebuild from parity: the spare is written track by track; each track
// needs one read from every surviving cluster member. `bandwidth_fraction`
// is the share of each surviving disk's bandwidth devoted to rebuild
// (the rest keeps serving streams).
StatusOr<RebuildEstimate> RebuildFromParity(const DiskParameters& disk,
                                            int parity_group_size,
                                            double bandwidth_fraction);

// Rebuild from tertiary after a catastrophic failure: `lost_mb` spread
// over `extents` object fragments.
StatusOr<RebuildEstimate> RebuildFromTertiary(const TertiaryStore& tertiary,
                                              double lost_mb,
                                              int64_t extents);

}  // namespace ftms

#endif  // FTMS_SERVER_REBUILD_H_
