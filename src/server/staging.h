#ifndef FTMS_SERVER_STAGING_H_
#define FTMS_SERVER_STAGING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "layout/catalog.h"
#include "server/tertiary.h"
#include "util/status.h"

namespace ftms {

// Object staging between tertiary storage and the disk working set — the
// data flow of Figure 1: "the entire database permanently resides on
// tertiary storage, from which objects are retrieved and placed on disk
// drives for delivery on demand. If the secondary storage capacity is
// exhausted ... one or more disk-resident objects must be purged."
//
// The manager keeps an LRU order over resident objects; a request for a
// non-resident title evicts the least-recently-used idle titles until it
// fits, then charges the tertiary transfer time (the title becomes
// watchable only once fully staged — tertiary bandwidth is far below the
// delivery rate, so playing through the staging is impossible; footnote
// 2 of the paper).
class StagingManager {
 public:
  // `is_evictable(object_id)` must return false for objects with active
  // streams. `track_mb` converts title lengths to transfer sizes. All
  // pointers/callbacks must outlive the manager.
  StagingManager(Catalog* catalog, const TertiaryStore* tertiary,
                 double track_mb, std::function<bool(int)> is_evictable);

  // Registers a title in the permanent tertiary library.
  Status AddToLibrary(const MediaObject& object);

  // Ensures `object_id` is disk-resident. Returns the simulated time at
  // which it is ready: `now_s` if already resident, now + staging time
  // otherwise. Fails with NOT_FOUND for unknown titles and
  // RESOURCE_EXHAUSTED when eviction cannot free enough space.
  StatusOr<double> EnsureResident(int object_id, double now_s);

  // Records a use (admission) for LRU purposes.
  void MarkUse(int object_id, double now_s);

  bool InLibrary(int object_id) const;
  int64_t stage_ins() const { return stage_ins_; }
  int64_t evictions() const { return evictions_; }
  double mb_staged() const { return mb_staged_; }

 private:
  // Evicts LRU idle objects until the catalog can hold `object`.
  Status MakeRoom(const MediaObject& object);

  Catalog* catalog_;
  const TertiaryStore* tertiary_;
  double track_mb_;
  std::function<bool(int)> is_evictable_;
  std::vector<MediaObject> library_;
  std::map<int, double> last_use_s_;  // resident objects only
  int64_t stage_ins_ = 0;
  int64_t evictions_ = 0;
  double mb_staged_ = 0;
};

}  // namespace ftms

#endif  // FTMS_SERVER_STAGING_H_
