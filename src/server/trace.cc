#include "server/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "layout/schemes.h"
#include "util/metrics.h"

namespace ftms {

void TraceRecorder::ResolveDiskCounters() {
  if (disk_counters_resolved_) return;
  disk_counters_resolved_ = true;
  const MetricsRegistry* registry = scheduler_->metrics_registry();
  if (registry == nullptr) return;
  const std::string scheme(SchemeAbbrev(scheduler_->config().scheme));
  const int n = disks_->num_disks();
  disk_busy_counters_.resize(static_cast<size_t>(n), nullptr);
  last_disk_busy_.assign(static_cast<size_t>(n), 0);
  for (int d = 0; d < n; ++d) {
    disk_busy_counters_[static_cast<size_t>(d)] = registry->FindCounter(
        LabeledName("ftms_sched_disk_busy_slots_total",
                    {{"scheme", scheme}, {"disk", std::to_string(d)}}));
  }
}

void TraceRecorder::Sample() {
  ResolveDiskCounters();
  const SchedulerMetrics& m = scheduler_->metrics();
  CycleSample sample;
  sample.cycle = scheduler_->cycle();
  sample.active_streams = scheduler_->ActiveStreams();
  sample.buffer_in_use = scheduler_->buffer_pool().in_use();
  sample.tracks_delivered_delta = m.tracks_delivered - last_.tracks_delivered;
  sample.hiccups_delta = m.hiccups - last_.hiccups;
  sample.reconstructed_delta = m.reconstructed - last_.reconstructed;
  sample.dropped_reads_delta = m.dropped_reads - last_.dropped_reads;
  sample.failed_disks = disks_->NumFailed();
  if (!disk_busy_counters_.empty()) {
    const double slots =
        static_cast<double>(std::max(1, scheduler_->slots_per_disk()));
    sample.disk_busy_delta.resize(disk_busy_counters_.size(), 0);
    double sum_pct = 0;
    for (size_t d = 0; d < disk_busy_counters_.size(); ++d) {
      const Counter* c = disk_busy_counters_[d];
      const int64_t total = c != nullptr ? c->value() : 0;
      const int64_t delta = total - last_disk_busy_[d];
      last_disk_busy_[d] = total;
      sample.disk_busy_delta[d] = delta;
      const double pct = 100.0 * static_cast<double>(delta) / slots;
      sum_pct += pct;
      sample.disk_util_max_pct = std::max(sample.disk_util_max_pct, pct);
    }
    sample.disk_util_mean_pct =
        sum_pct / static_cast<double>(disk_busy_counters_.size());
  }
  samples_.push_back(sample);
  last_ = m;
}

void TraceRecorder::Clear() {
  samples_.clear();
  last_ = SchedulerMetrics();
  std::fill(last_disk_busy_.begin(), last_disk_busy_.end(), 0);
}

std::string ToCsv(const std::vector<CycleSample>& samples) {
  std::ostringstream os;
  os << "cycle,active_streams,buffer_in_use,delivered,hiccups,"
        "reconstructed,dropped_reads,failed_disks,util_mean_pct,"
        "util_max_pct\n";
  for (const CycleSample& s : samples) {
    os << s.cycle << ',' << s.active_streams << ',' << s.buffer_in_use
       << ',' << s.tracks_delivered_delta << ',' << s.hiccups_delta << ','
       << s.reconstructed_delta << ',' << s.dropped_reads_delta << ','
       << s.failed_disks << ',' << s.disk_util_mean_pct << ','
       << s.disk_util_max_pct << '\n';
  }
  return os.str();
}

Status WriteCsv(const std::vector<CycleSample>& samples,
                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const std::string csv = ToCsv(samples);
  const size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  if (written != csv.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace ftms
