#include "server/trace.h"

#include <cstdio>
#include <sstream>

namespace ftms {

void TraceRecorder::Sample() {
  const SchedulerMetrics& m = scheduler_->metrics();
  CycleSample sample;
  sample.cycle = scheduler_->cycle();
  sample.active_streams = scheduler_->ActiveStreams();
  sample.buffer_in_use = scheduler_->buffer_pool().in_use();
  sample.tracks_delivered_delta = m.tracks_delivered - last_.tracks_delivered;
  sample.hiccups_delta = m.hiccups - last_.hiccups;
  sample.reconstructed_delta = m.reconstructed - last_.reconstructed;
  sample.dropped_reads_delta = m.dropped_reads - last_.dropped_reads;
  sample.failed_disks = disks_->NumFailed();
  samples_.push_back(sample);
  last_ = m;
}

void TraceRecorder::Clear() {
  samples_.clear();
  last_ = SchedulerMetrics();
}

std::string ToCsv(const std::vector<CycleSample>& samples) {
  std::ostringstream os;
  os << "cycle,active_streams,buffer_in_use,delivered,hiccups,"
        "reconstructed,dropped_reads,failed_disks\n";
  for (const CycleSample& s : samples) {
    os << s.cycle << ',' << s.active_streams << ',' << s.buffer_in_use
       << ',' << s.tracks_delivered_delta << ',' << s.hiccups_delta << ','
       << s.reconstructed_delta << ',' << s.dropped_reads_delta << ','
       << s.failed_disks << '\n';
  }
  return os.str();
}

Status WriteCsv(const std::vector<CycleSample>& samples,
                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const std::string csv = ToCsv(samples);
  const size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  if (written != csv.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace ftms
