#ifndef FTMS_SERVER_REBUILD_MANAGER_H_
#define FTMS_SERVER_REBUILD_MANAGER_H_

#include <cstdint>

#include "disk/disk_array.h"
#include "layout/layout.h"
#include "sched/cycle_scheduler.h"
#include "util/status.h"
#include "verify/datapath.h"

namespace ftms {

// Rebuild mode (the third operating mode of Section 1, deferred in the
// paper, implemented here as an extension): a hot spare replaces the
// failed drive and its contents are regenerated track by track from the
// surviving parity-group members, using ONLY the bandwidth left idle by
// the stream schedule. Streams keep strict priority — the paper's
// real-time requirement — so rebuild speed adapts to load: an idle
// cluster rebuilds at full disk speed, a saturated one starves the
// rebuild (which is exactly the paper's argument for reserving capacity).
//
// While rebuilding, the drive stays non-operational for the schedulers
// (parity reconstruction continues to serve its data); on completion the
// disk is repaired and the cluster returns to normal mode.
class RebuildManager {
 public:
  // All pointers must outlive the manager.
  RebuildManager(DiskArray* disks, const Layout* layout,
                 CycleScheduler* scheduler);

  // Begins rebuilding `disk` onto a spare. The disk must currently be
  // failed, and no other rebuild may be in progress on its cluster.
  // Rebuilding requires the cluster to be reconstructible: at most this
  // one failed member for single-parity layouts, or one additional
  // failed member for dual-parity (P+Q) layouts.
  Status StartRebuild(int disk);

  // Optional byte-level rebuild: attaches the verify datapath so each
  // cycle's regenerated tracks are ACTUALLY reconstructed — every data
  // track of `object_id` resident on the rebuilt disk flows through the
  // batched ReconstructTracksInto (one call per cycle, multi-source
  // kernel folds) and is verified against the synthesized ground truth.
  // Call before or after StartRebuild; the track list is (re)derived for
  // the active disk. Simulation-only timing is unaffected — this adds
  // real byte movement for tests, benches and integrity drills.
  Status AttachDataPath(int object_id, int64_t object_tracks,
                        size_t block_bytes);

  // Byte-level rebuild observability (all zero until AttachDataPath).
  int64_t data_tracks_reconstructed() const {
    return data_tracks_reconstructed_;
  }
  int64_t data_bytes_reconstructed() const {
    return data_bytes_reconstructed_;
  }
  int64_t data_mismatches() const { return data_mismatches_; }
  int64_t data_tracks_pending() const {
    return static_cast<int64_t>(data_pending_.size()) - data_pos_;
  }

  // Advances the rebuild by one scheduling cycle; call after each
  // CycleScheduler::RunCycle(). Regenerating one track consumes one idle
  // read slot on EVERY surviving source disk (the C-2 data members plus
  // the parity holder), so progress per cycle is the minimum idle slot
  // count across the sources. Completes the rebuild (repairing the disk)
  // when all tracks are regenerated.
  void AdvanceOneCycle();

  bool Active() const { return active_disk_ >= 0; }
  int active_disk() const { return active_disk_; }
  int64_t tracks_rebuilt() const { return tracks_rebuilt_; }
  int64_t tracks_total() const { return tracks_total_; }
  int64_t cycles_elapsed() const { return cycles_elapsed_; }
  int64_t rebuilds_completed() const { return rebuilds_completed_; }

  // Fraction of the rebuild finished, in [0, 1].
  double Progress() const;

 private:
  // Source disks whose idle slots gate this cycle's progress.
  std::vector<int> SourceDisks(int disk) const;
  // Derives the attached object's tracks resident on the active disk.
  void PrepareDataRebuild();
  // Rebuilt disk plus any currently-down sources (dual-parity layouts
  // run with up to one), recomputed per batch.
  void RefreshDataFailedSet();
  // Reconstructs and verifies up to `budget` pending tracks in one
  // batched datapath call.
  void ReconstructDataTracks(int budget);
  // Resolves registry cells / the trace track from the scheduler's
  // observability sinks (no-op when instrumentation is off).
  void InitInstruments();
  QosEvent JournalEvent(QosEventKind kind, int disk, int64_t value) const;

  DiskArray* disks_;
  const Layout* layout_;
  CycleScheduler* scheduler_;

  int active_disk_ = -1;
  int64_t tracks_rebuilt_ = 0;
  int64_t tracks_total_ = 0;
  int64_t cycles_elapsed_ = 0;
  int64_t rebuilds_completed_ = 0;

  // Byte-level rebuild state (inactive until AttachDataPath).
  bool data_attached_ = false;
  int data_object_ = 0;
  int64_t data_object_tracks_ = 0;
  size_t data_block_bytes_ = 0;
  std::vector<int64_t> data_pending_;  // object tracks on the rebuilt disk
  int64_t data_pos_ = 0;               // next pending index
  std::vector<int64_t> data_batch_;    // this cycle's batch (reused)
  std::vector<TrackRead> data_reads_;  // batch outputs (reused)
  DegradedReadScratch data_scratch_;
  DiskSet data_failed_;
  Block data_expected_;
  int64_t data_tracks_reconstructed_ = 0;
  int64_t data_bytes_reconstructed_ = 0;
  int64_t data_mismatches_ = 0;
  Counter* data_bytes_counter_ = nullptr;

  // Observability (null = off). The whole rebuild renders as one span on
  // its own trace track, from StartRebuild to completion, in SimTime;
  // the journal gets start / quarter-progress / done events.
  EventJournal* journal_ = nullptr;
  int last_progress_quarter_ = 0;
  Counter* tracks_counter_ = nullptr;
  Counter* completed_counter_ = nullptr;
  Counter* stalled_cycles_counter_ = nullptr;
  Gauge* progress_gauge_ = nullptr;
  HistogramCell* tracks_per_cycle_hist_ = nullptr;
  Tracer* tracer_ = nullptr;
  int32_t trace_tid_ = -1;
  int64_t start_sim_us_ = 0;
  TimeSeriesRecorder* ts_ = nullptr;
  int ts_progress_ = -1;
};

}  // namespace ftms

#endif  // FTMS_SERVER_REBUILD_MANAGER_H_
