#include "server/tertiary.h"

#include <algorithm>

namespace ftms {

double TertiaryStore::ReloadTime(double total_mb, int64_t num_extents) const {
  if (total_mb <= 0) return 0;
  num_extents = std::max<int64_t>(num_extents, 1);
  const double switches =
      static_cast<double>(num_extents) * params_.tape_switch_s;
  const double transfer = total_mb / params_.bandwidth_mb_s;
  return (switches + transfer) / std::max(1, params_.num_drives);
}

}  // namespace ftms
