#ifndef FTMS_SERVER_TERTIARY_H_
#define FTMS_SERVER_TERTIARY_H_

#include <cstdint>

#include "util/status.h"

namespace ftms {

// Model of the tertiary storage library of Figure 1 (a tape robot). The
// entire database resides here permanently; disk-resident objects are
// staged from it, and after a catastrophic failure the lost contents must
// be reloaded from it — which is slow: the paper's footnote 2 prices a
// tape drive at ~4 Mb/s (0.5 MB/s) versus ~32 Mb/s for a disk, and a
// rebuild touches portions of MANY objects, i.e. many tape switches.
struct TertiaryParameters {
  double bandwidth_mb_s = 0.5;    // per-drive sustained transfer
  double tape_switch_s = 90.0;    // robot exchange + mount + seek
  double capacity_per_tape_mb = 5000.0;
  int num_drives = 4;
};

class TertiaryStore {
 public:
  explicit TertiaryStore(const TertiaryParameters& params)
      : params_(params) {}

  const TertiaryParameters& params() const { return params_; }

  // Time for one drive to deliver one contiguous extent of `mb` megabytes
  // (one tape switch + transfer).
  double ExtentTime(double mb) const {
    return params_.tape_switch_s + mb / params_.bandwidth_mb_s;
  }

  // Time to reload `total_mb` spread over `num_extents` extents (the
  // rebuild case: portions of many objects on many tapes), using all
  // drives in parallel.
  double ReloadTime(double total_mb, int64_t num_extents) const;

 private:
  TertiaryParameters params_;
};

}  // namespace ftms

#endif  // FTMS_SERVER_TERTIARY_H_
