#include "server/rebuild.h"

#include "util/units.h"

namespace ftms {

StatusOr<RebuildEstimate> RebuildFromParity(const DiskParameters& disk,
                                            int parity_group_size,
                                            double bandwidth_fraction) {
  FTMS_RETURN_IF_ERROR(disk.Validate());
  if (parity_group_size < 2) {
    return Status::InvalidArgument("parity group size must be >= 2");
  }
  if (bandwidth_fraction <= 0 || bandwidth_fraction > 1) {
    return Status::InvalidArgument("bandwidth_fraction must be in (0, 1]");
  }
  // Every rebuilt track requires one track read on each of the C-1
  // surviving members; they proceed in parallel, so the bottleneck is one
  // survivor reading all its tracks at the allotted bandwidth fraction
  // (writes to the spare keep pace: it is otherwise idle).
  const double tracks = disk.capacity_mb / disk.track_mb;
  const double read_seconds =
      tracks * disk.track_time_s / bandwidth_fraction;
  RebuildEstimate est;
  est.hours = read_seconds / kSecondsPerHour;
  est.degraded_fraction = bandwidth_fraction;
  return est;
}

StatusOr<RebuildEstimate> RebuildFromTertiary(const TertiaryStore& tertiary,
                                              double lost_mb,
                                              int64_t extents) {
  if (lost_mb < 0) {
    return Status::InvalidArgument("lost_mb must be non-negative");
  }
  RebuildEstimate est;
  est.hours = tertiary.ReloadTime(lost_mb, extents) / kSecondsPerHour;
  est.degraded_fraction = 0;  // tertiary path does not tax the survivors
  return est;
}

}  // namespace ftms
