#include "server/rebuild_manager.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace ftms {

RebuildManager::RebuildManager(DiskArray* disks, const Layout* layout,
                               CycleScheduler* scheduler)
    : disks_(disks), layout_(layout), scheduler_(scheduler) {
  assert(disks_ != nullptr && layout_ != nullptr && scheduler_ != nullptr);
}

std::vector<int> RebuildManager::SourceDisks(int disk) const {
  std::vector<int> sources;
  const int cluster = disks_->ClusterOf(disk);
  // Every other member of the disk's cluster contributes to each
  // regenerated track's XOR.
  for (int i = 0; i < disks_->cluster_size(); ++i) {
    const int d = disks_->DiskId(cluster, i);
    if (d != disk) sources.push_back(d);
  }
  if (layout_->scheme_family() == Scheme::kImprovedBandwidth) {
    // The parity blocks live on the right-hand neighbor cluster
    // (rotating over its disks), so its members are sources too.
    const int parity_cluster = (cluster + 1) % disks_->num_clusters();
    for (int i = 0; i < disks_->cluster_size(); ++i) {
      sources.push_back(disks_->DiskId(parity_cluster, i));
    }
  }
  return sources;
}

Status RebuildManager::StartRebuild(int disk) {
  if (disk < 0 || disk >= disks_->num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  if (Active()) {
    return Status::FailedPrecondition(
        "a rebuild is already in progress (disk " +
        std::to_string(active_disk_) + ")");
  }
  Disk& d = disks_->disk(disk);
  if (d.state() != DiskState::kFailed) {
    return Status::FailedPrecondition("disk is not failed");
  }
  // Regeneration needs every source operational.
  for (int source : SourceDisks(disk)) {
    if (!disks_->disk(source).operational()) {
      return Status::FailedPrecondition(
          "source disk " + std::to_string(source) +
          " is down: rebuild impossible from parity (catastrophic "
          "failure; reload from tertiary storage instead)");
    }
  }
  d.StartRebuild();
  active_disk_ = disk;
  tracks_rebuilt_ = 0;
  tracks_total_ = disks_->params().TracksPerDisk();
  cycles_elapsed_ = 0;
  return Status::Ok();
}

void RebuildManager::AdvanceOneCycle() {
  if (!Active()) return;
  ++cycles_elapsed_;
  // Progress is gated by the least-idle source: one idle slot on every
  // source regenerates one track (the spare's write bandwidth is never
  // the bottleneck; it serves no reads while rebuilding).
  int idle = scheduler_->slots_per_disk();
  for (int source : SourceDisks(active_disk_)) {
    if (!disks_->disk(source).operational()) {
      idle = 0;  // a source died mid-rebuild: stall until repaired
      break;
    }
    idle = std::min(
        idle, scheduler_->slots_per_disk() -
                  scheduler_->SlotsUsedLastCycle(source));
  }
  tracks_rebuilt_ += std::max(0, idle);
  if (tracks_rebuilt_ >= tracks_total_) {
    tracks_rebuilt_ = tracks_total_;
    scheduler_->OnDiskRepaired(active_disk_);
    active_disk_ = -1;
    ++rebuilds_completed_;
  }
}

double RebuildManager::Progress() const {
  if (tracks_total_ == 0) return 0;
  return static_cast<double>(tracks_rebuilt_) /
         static_cast<double>(tracks_total_);
}

}  // namespace ftms
