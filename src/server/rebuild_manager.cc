#include "server/rebuild_manager.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "layout/schemes.h"
#include "util/profiler.h"
#include "util/timeseries.h"

namespace ftms {

RebuildManager::RebuildManager(DiskArray* disks, const Layout* layout,
                               CycleScheduler* scheduler)
    : disks_(disks), layout_(layout), scheduler_(scheduler) {
  assert(disks_ != nullptr && layout_ != nullptr && scheduler_ != nullptr);
  InitInstruments();
}

void RebuildManager::InitInstruments() {
  MetricsRegistry* registry = scheduler_->metrics_registry();
  if (registry != nullptr) {
    // Label with the scheduler's actual scheme, not the layout family
    // (the clustered family serves SR, SG and NC alike).
    const std::string scheme(SchemeAbbrev(scheduler_->config().scheme));
    tracks_counter_ = registry->GetCounter(
        LabeledName("ftms_rebuild_tracks_rebuilt_total", {{"scheme", scheme}}),
        "Tracks reconstructed onto the spare disk across all rebuilds");
    completed_counter_ = registry->GetCounter(
        LabeledName("ftms_rebuilds_completed_total", {{"scheme", scheme}}),
        "Rebuilds that ran to completion and repaired the failed disk");
    stalled_cycles_counter_ = registry->GetCounter(
        LabeledName("ftms_rebuild_stalled_cycles_total", {{"scheme", scheme}}),
        "Cycles an active rebuild made no progress for lack of idle slots");
    progress_gauge_ = registry->GetGauge(
        LabeledName("ftms_rebuild_progress_ratio", {{"scheme", scheme}}),
        "Fraction of the failed disk rebuilt so far (0 when idle)");
    tracks_per_cycle_hist_ = registry->GetHistogram(
        "ftms_rebuild_tracks_per_cycle", 0.0,
        static_cast<double>(scheduler_->slots_per_disk() + 1),
        scheduler_->slots_per_disk() + 1,
        "Distribution of tracks rebuilt per cycle while a rebuild is active");
    data_bytes_counter_ = registry->GetCounter(
        LabeledName("ftms_rebuild_data_bytes_reconstructed_total",
                    {{"scheme", scheme}}),
        "Bytes of track data regenerated through the parity datapath");
  }
  tracer_ = scheduler_->tracer();
  if (tracer_ != nullptr) {
    trace_tid_ = tracer_->RegisterTrack("rebuild");
  }
  journal_ = scheduler_->journal();
  ts_ = scheduler_->timeseries_recorder();
  if (ts_ != nullptr) {
    ts_progress_ = ts_->DefineSeries(
        "rebuild." + scheduler_->timeseries_prefix() + ".progress");
  }
}

// All rebuild journal events share the scheduler's scheme label and the
// rebuilt disk; `value` is kind-specific (see QosEventKind).
QosEvent RebuildManager::JournalEvent(QosEventKind kind, int disk,
                                      int64_t value) const {
  QosEvent event;
  event.kind = kind;
  event.scheme = SchemeAbbrev(scheduler_->config().scheme);
  event.sim_us = scheduler_->SimTimeMicros();
  event.cycle = scheduler_->cycle();
  event.disk = disk;
  event.cluster = disks_->ClusterOf(disk);
  event.value = value;
  return event;
}

std::vector<int> RebuildManager::SourceDisks(int disk) const {
  std::vector<int> sources;
  const int cluster = disks_->ClusterOf(disk);
  // Every other member of the disk's cluster contributes to each
  // regenerated track's XOR.
  for (int i = 0; i < disks_->cluster_size(); ++i) {
    const int d = disks_->DiskId(cluster, i);
    if (d != disk) sources.push_back(d);
  }
  if (layout_->scheme_family() == Scheme::kImprovedBandwidth) {
    // The parity blocks live on the right-hand neighbor cluster
    // (rotating over its disks), so its members are sources too.
    const int parity_cluster = (cluster + 1) % disks_->num_clusters();
    for (int i = 0; i < disks_->cluster_size(); ++i) {
      sources.push_back(disks_->DiskId(parity_cluster, i));
    }
  }
  return sources;
}

Status RebuildManager::StartRebuild(int disk) {
  if (disk < 0 || disk >= disks_->num_disks()) {
    return Status::OutOfRange("disk id out of range");
  }
  if (Active()) {
    return Status::FailedPrecondition(
        "a rebuild is already in progress (disk " +
        std::to_string(active_disk_) + ")");
  }
  Disk& d = disks_->disk(disk);
  if (d.state() != DiskState::kFailed) {
    return Status::FailedPrecondition("disk is not failed");
  }
  // Regeneration needs enough operational sources: every one for
  // single-parity layouts; dual-parity (P+Q) layouts absorb ONE more
  // failed column — the codec repairs two erasures per group, so the
  // rebuild can run while a second cluster disk is still down.
  const int tolerated_down = layout_->parity_blocks() - 1;
  int down_sources = 0;
  for (int source : SourceDisks(disk)) {
    if (!disks_->disk(source).operational() &&
        ++down_sources > tolerated_down) {
      return Status::FailedPrecondition(
          "source disk " + std::to_string(source) +
          " is down: rebuild impossible from parity (catastrophic "
          "failure; reload from tertiary storage instead)");
    }
  }
  // Through the array so its failure columns stay in sync.
  disks_->StartRebuildDisk(disk).ok();
  active_disk_ = disk;
  if (data_attached_) PrepareDataRebuild();
  tracks_rebuilt_ = 0;
  tracks_total_ = disks_->params().TracksPerDisk();
  cycles_elapsed_ = 0;
  start_sim_us_ = scheduler_->SimTimeMicros();
  last_progress_quarter_ = 0;
  if (progress_gauge_ != nullptr) progress_gauge_->Set(0.0);
  if (tracer_ != nullptr) {
    tracer_->Instant("rebuild_start", "rebuild", trace_tid_, start_sim_us_,
                     "disk", disk, "tracks_total", tracks_total_);
  }
  if (journal_ != nullptr) {
    journal_->Append(
        JournalEvent(QosEventKind::kRebuildStart, disk, tracks_total_));
  }
  return Status::Ok();
}

void RebuildManager::AdvanceOneCycle() {
  if (!Active()) return;
  FTMS_PROF_SCOPE("rebuild/advance");
  ++cycles_elapsed_;
  // Progress is gated by the least-idle source: one idle slot on every
  // source regenerates one track (the spare's write bandwidth is never
  // the bottleneck; it serves no reads while rebuilding). Dual-parity
  // layouts keep rebuilding with one source down — that column is simply
  // skipped and the P+Q codec covers it; a second down source stalls.
  int idle = scheduler_->slots_per_disk();
  int down_sources = 0;
  const int tolerated_down = layout_->parity_blocks() - 1;
  for (int source : SourceDisks(active_disk_)) {
    if (!disks_->disk(source).operational()) {
      if (++down_sources > tolerated_down) {
        idle = 0;  // sources died mid-rebuild: stall until repaired
        break;
      }
      continue;
    }
    idle = std::min(
        idle, scheduler_->slots_per_disk() -
                  scheduler_->SlotsUsedLastCycle(source));
  }
  const int regenerated = std::max(0, idle);
  tracks_rebuilt_ += regenerated;
  if (tracks_counter_ != nullptr) {
    // Clamp the last cycle's count to the tracks actually remaining so
    // the counter total equals tracks_total_ on completion.
    tracks_counter_->Add(
        std::min<int64_t>(regenerated,
                          std::max<int64_t>(0, tracks_total_ -
                                                   (tracks_rebuilt_ -
                                                    regenerated))));
    if (regenerated == 0) stalled_cycles_counter_->Add(1);
    tracks_per_cycle_hist_->Add(static_cast<double>(regenerated));
  }
  if (data_attached_ && regenerated > 0) {
    // One batched datapath call per cycle. The completing cycle flushes
    // every remaining pending track — the spare is fully regenerated
    // when the simulated rebuild finishes.
    ReconstructDataTracks(tracks_rebuilt_ >= tracks_total_
                              ? static_cast<int>(data_pending_.size())
                              : regenerated);
  }
  if (journal_ != nullptr && tracks_rebuilt_ < tracks_total_ &&
      tracks_total_ > 0) {
    // Quarter crossings only, so long rebuilds don't flood the journal.
    const int quarter =
        static_cast<int>((tracks_rebuilt_ * 4) / tracks_total_);
    if (quarter > last_progress_quarter_) {
      last_progress_quarter_ = quarter;
      journal_->Append(JournalEvent(QosEventKind::kRebuildProgress,
                                    active_disk_,
                                    (tracks_rebuilt_ * 100) / tracks_total_));
    }
  }
  if (tracks_rebuilt_ >= tracks_total_) {
    tracks_rebuilt_ = tracks_total_;
    const int rebuilt_disk = active_disk_;
    scheduler_->OnDiskRepaired(active_disk_);
    active_disk_ = -1;
    ++rebuilds_completed_;
    if (completed_counter_ != nullptr) {
      completed_counter_->Add(1);
      progress_gauge_->Set(1.0);
    }
    if (journal_ != nullptr) {
      journal_->Append(JournalEvent(QosEventKind::kRebuildDone, rebuilt_disk,
                                    cycles_elapsed_));
    }
    if (tracer_ != nullptr) {
      // The whole rebuild as one span, from StartRebuild to now.
      const int64_t end_us = scheduler_->SimTimeMicros();
      tracer_->Complete("rebuild", "rebuild", trace_tid_, start_sim_us_,
                        std::max<int64_t>(1, end_us - start_sim_us_),
                        "disk", rebuilt_disk, "cycles",
                        static_cast<double>(cycles_elapsed_));
    }
  } else if (progress_gauge_ != nullptr) {
    progress_gauge_->Set(Progress());
  }
  if (ts_ != nullptr) {
    // AdvanceOneCycle runs serially right after the scheduler's cycle
    // fold, so this push keeps the thread-invariance contract.
    ts_->Append(ts_progress_, scheduler_->SimTimeMicros(), Progress());
  }
}

Status RebuildManager::AttachDataPath(int object_id, int64_t object_tracks,
                                      size_t block_bytes) {
  if (object_tracks <= 0) {
    return Status::InvalidArgument("object must have at least one track");
  }
  if (block_bytes == 0) {
    return Status::InvalidArgument("block_bytes must be positive");
  }
  data_attached_ = true;
  data_object_ = object_id;
  data_object_tracks_ = object_tracks;
  data_block_bytes_ = block_bytes;
  data_tracks_reconstructed_ = 0;
  data_bytes_reconstructed_ = 0;
  data_mismatches_ = 0;
  if (Active()) PrepareDataRebuild();
  return Status::Ok();
}

void RebuildManager::PrepareDataRebuild() {
  data_pending_.clear();
  data_pos_ = 0;
  for (int64_t t = 0; t < data_object_tracks_; ++t) {
    if (layout_->DataLocation(data_object_, t).disk == active_disk_) {
      data_pending_.push_back(t);
    }
  }
  RefreshDataFailedSet();
}

void RebuildManager::RefreshDataFailedSet() {
  // The rebuilt disk plus every source currently down (dual-parity only;
  // single-parity rebuilds never run with a down source) — recomputed per
  // batch so a mid-rebuild source failure reaches the datapath's erasure
  // accounting.
  data_failed_.Clear();
  data_failed_.Add(active_disk_);
  for (int source : SourceDisks(active_disk_)) {
    if (!disks_->disk(source).operational()) data_failed_.Add(source);
  }
}

void RebuildManager::ReconstructDataTracks(int budget) {
  FTMS_PROF_SCOPE("rebuild/reconstruct");
  const int64_t remaining =
      static_cast<int64_t>(data_pending_.size()) - data_pos_;
  const int64_t take = std::min<int64_t>(budget, remaining);
  if (take <= 0) return;
  RefreshDataFailedSet();
  data_batch_.assign(data_pending_.begin() + data_pos_,
                     data_pending_.begin() + data_pos_ + take);
  data_pos_ += take;
  const Status status = ReconstructTracksInto(
      *layout_, data_object_, data_batch_, data_object_tracks_,
      data_failed_, data_block_bytes_, &data_scratch_, &data_reads_);
  if (!status.ok()) {
    // A batch that cannot reconstruct (second failure appeared) counts
    // every track as a mismatch; the simulated rebuild already stalls
    // via the idle-slot gate, so just record the damage.
    data_mismatches_ += take;
    return;
  }
  for (size_t i = 0; i < data_reads_.size(); ++i) {
    SynthesizeDataBlockInto(data_object_, data_batch_[i],
                            data_block_bytes_, &data_expected_);
    if (data_reads_[i].data != data_expected_) ++data_mismatches_;
  }
  data_tracks_reconstructed_ += take;
  data_bytes_reconstructed_ +=
      take * static_cast<int64_t>(data_block_bytes_);
  if (data_bytes_counter_ != nullptr) {
    data_bytes_counter_->Add(take *
                             static_cast<int64_t>(data_block_bytes_));
  }
}

double RebuildManager::Progress() const {
  if (tracks_total_ == 0) return 0;
  return static_cast<double>(tracks_rebuilt_) /
         static_cast<double>(tracks_total_);
}

}  // namespace ftms
