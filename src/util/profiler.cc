#include "util/profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ftms {

namespace {

// One call tree per thread. States are heap-allocated, registered in a
// global list and never freed: a snapshot taken after a worker thread
// exits must still see its data.
struct ThreadState {
  Profiler::Node root{"", nullptr, {}, 0, 0};
  Profiler::Node* current = &root;
};

// Guards tree structure (child creation), the thread-state registry and
// the persistent global tree. Counts inside a node are only written by
// the owning thread; folds and snapshots run at serial sync points.
std::mutex& GlobalMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<ThreadState*>& ThreadStates() {
  static std::vector<ThreadState*>* states =
      new std::vector<ThreadState*>();
  return *states;
}

// The persistent tree that FoldAtSyncPoint() accumulates into; keyed by
// scope name at every level, children kept sorted by name.
Profiler::MergedNode& GlobalTree() {
  static Profiler::MergedNode* tree = new Profiler::MergedNode();
  return *tree;
}

ThreadState& State() {
  thread_local ThreadState* state = nullptr;
  if (state == nullptr) {
    state = new ThreadState();  // leaked: outlives the thread
    std::lock_guard<std::mutex> lock(GlobalMu());
    ThreadStates().push_back(state);
  }
  return *state;
}

Profiler::MergedNode* ChildByName(Profiler::MergedNode& parent,
                                  const char* name) {
  const auto it = std::lower_bound(
      parent.children.begin(), parent.children.end(), name,
      [](const Profiler::MergedNode& n, const char* key) {
        return n.name < key;
      });
  if (it != parent.children.end() && it->name == name) return &*it;
  Profiler::MergedNode node;
  node.name = name;
  return &*parent.children.insert(it, std::move(node));
}

// Adds `src`'s counts into `dst` (matching children by name); when
// `consume` is set the source counts are zeroed so the next fold does not
// double-count. Structure is kept either way — nodes are allocation-free
// on revisit.
void MergeInto(Profiler::MergedNode& dst, Profiler::Node& src,
               bool consume) {
  dst.count += src.count;
  dst.total_ns += src.total_ns;
  if (consume) {
    src.count = 0;
    src.total_ns = 0;
  }
  for (const auto& child : src.children) {
    MergeInto(*ChildByName(dst, child->name), *child, consume);
  }
}

void MergeMerged(Profiler::MergedNode& dst,
                 const Profiler::MergedNode& src) {
  dst.count += src.count;
  dst.total_ns += src.total_ns;
  for (const auto& child : src.children) {
    MergeMerged(*ChildByName(dst, child.name.c_str()), child);
  }
}

void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

void AppendNodeJson(std::string* out, const Profiler::MergedNode& node) {
  *out += "{\"name\": \"";
  for (const char c : node.name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  *out += "\", \"count\": ";
  AppendNumber(out, static_cast<double>(node.count));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(node.total_ns) / 1000.0);
  *out += ", \"wall_us\": ";
  *out += buf;
  *out += ", \"children\": [";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendNodeJson(out, node.children[i]);
  }
  *out += "]}";
}

int64_t SumCountsByName(const Profiler::MergedNode& node,
                        const std::string& name) {
  int64_t total = node.name == name ? node.count : 0;
  for (const auto& child : node.children) {
    total += SumCountsByName(child, name);
  }
  return total;
}

}  // namespace

std::atomic<int> Profiler::enabled_state_{-1};

bool Profiler::ResolveEnabledFromEnv() {
  const char* env = std::getenv("FTMS_PROF");
  const bool on =
      env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  enabled_state_.store(on ? 1 : 0, std::memory_order_release);
  return on;
}

void Profiler::SetGlobalEnabled(bool enabled) {
  enabled_state_.store(enabled ? 1 : 0, std::memory_order_release);
}

Profiler::Node* Profiler::Enter(const char* name) {
  ThreadState& state = State();
  Node* current = state.current;
  for (const auto& child : current->children) {
    // Scope names are literals, so pointer equality is the common case;
    // fall back to strcmp for identical literals from different TUs.
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      ++child->count;
      state.current = child.get();
      return child.get();
    }
  }
  // First visit of this path: create the child under the structure lock
  // so a concurrent snapshot never walks a reallocating vector.
  std::lock_guard<std::mutex> lock(GlobalMu());
  auto node = std::make_unique<Node>();
  node->name = name;
  node->parent = current;
  node->count = 1;
  current->children.push_back(std::move(node));
  state.current = current->children.back().get();
  return state.current;
}

void Profiler::Exit(Node* node, int64_t elapsed_ns) {
  node->total_ns += elapsed_ns;
  State().current = node->parent;
}

void Profiler::FoldAtSyncPoint() {
  if (!GlobalEnabled()) return;
  std::lock_guard<std::mutex> lock(GlobalMu());
  for (ThreadState* state : ThreadStates()) {
    MergeInto(GlobalTree(), state->root, /*consume=*/true);
  }
}

Profiler::MergedNode Profiler::MergedTree() {
  std::lock_guard<std::mutex> lock(GlobalMu());
  MergedNode merged = GlobalTree();  // copy
  for (ThreadState* state : ThreadStates()) {
    MergeInto(merged, state->root, /*consume=*/false);
  }
  merged.name = "";
  return merged;
}

int64_t Profiler::CountOf(const std::string& name) {
  return SumCountsByName(MergedTree(), name);
}

std::string Profiler::SnapshotJson() {
  const MergedNode merged = MergedTree();
  std::string out = "{\"schema\": 1, \"nodes\": [";
  for (size_t i = 0; i < merged.children.size(); ++i) {
    if (i > 0) out += ", ";
    AppendNodeJson(&out, merged.children[i]);
  }
  out += "]}";
  return out;
}

Status Profiler::WriteJson(const std::string& path) {
  const std::string json = SnapshotJson() + "\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(GlobalMu());
  GlobalTree() = MergedNode();
  for (ThreadState* state : ThreadStates()) {
    state->root.children.clear();
    state->root.count = 0;
    state->root.total_ns = 0;
    state->current = &state->root;
  }
}

}  // namespace ftms
