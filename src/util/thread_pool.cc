#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace ftms {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("FTMS_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  const int64_t count = end - begin;
  if (pool == nullptr || pool->size() <= 1 || count <= 1) {
    body(begin, end);
    return;
  }
  const int64_t chunks = std::min<int64_t>(pool->size(), count);
  const int64_t per_chunk = (count + chunks - 1) / chunks;

  std::mutex mu;
  std::condition_variable done_cv;
  int64_t remaining = 0;
  for (int64_t lo = begin; lo < end; lo += per_chunk) ++remaining;

  for (int64_t lo = begin; lo < end; lo += per_chunk) {
    const int64_t hi = std::min(lo + per_chunk, end);
    pool->Submit([&, lo, hi] {
      body(lo, hi);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace ftms
