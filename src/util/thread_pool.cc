#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/metrics.h"

namespace ftms {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::BindInstruments(Counter* submitted, Counter* executed,
                                 Gauge* queue_depth) {
  submitted_counter_ = submitted;
  executed_counter_ = executed;
  queue_depth_gauge_ = queue_depth;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  if (submitted_counter_ != nullptr) submitted_counter_->Add(1);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      }
    }
    task();
    if (executed_counter_ != nullptr) executed_counter_->Add(1);
  }
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("FTMS_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(DefaultThreadCount());
    if (MetricsRegistry* registry = MetricsRegistry::GlobalIfEnabled()) {
      p->BindInstruments(
          registry->GetCounter("ftms_threadpool_tasks_submitted_total",
                               "Tasks enqueued on the shared worker pool"),
          registry->GetCounter("ftms_threadpool_tasks_executed_total",
                               "Tasks the shared worker pool finished"),
          registry->GetGauge("ftms_threadpool_queue_depth",
                             "Tasks currently waiting for a worker"));
    }
    return p;
  }();
  return *pool;
}

namespace {

// Ceiling-division chunk width for splitting `count` elements over at most
// `pool->size()` chunks. With ceil division the number of NON-EMPTY chunks
// is ceil(count / per_chunk), which can be smaller than the pool size
// (e.g. 9 elements on 8 threads -> 5 chunks of <= 2); ParallelChunkCount
// reports that corrected number so chunk indices are always dense.
int64_t PerChunk(const ThreadPool* pool, int64_t count) {
  const int64_t target = std::min<int64_t>(pool->size(), count);
  return (count + target - 1) / target;
}

}  // namespace

int64_t ParallelChunkCount(const ThreadPool* pool, int64_t begin,
                           int64_t end) {
  if (begin >= end) return 0;
  const int64_t count = end - begin;
  if (pool == nullptr || pool->size() <= 1 || count <= 1) return 1;
  const int64_t per_chunk = PerChunk(pool, count);
  return (count + per_chunk - 1) / per_chunk;
}

void ParallelForChunks(
    ThreadPool* pool, int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t, int64_t)>& body) {
  const int64_t chunks = ParallelChunkCount(pool, begin, end);
  if (chunks == 0) return;
  if (chunks == 1) {
    body(0, begin, end);
    return;
  }
  const int64_t per_chunk = PerChunk(pool, end - begin);

  std::mutex mu;
  std::condition_variable done_cv;
  int64_t remaining = chunks;
  for (int64_t chunk = 0; chunk < chunks; ++chunk) {
    const int64_t lo = begin + chunk * per_chunk;
    const int64_t hi = std::min(lo + per_chunk, end);
    pool->Submit([&, chunk, lo, hi] {
      body(chunk, lo, hi);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body) {
  ParallelForChunks(pool, begin, end,
                    [&body](int64_t /*chunk*/, int64_t lo, int64_t hi) {
                      body(lo, hi);
                    });
}

}  // namespace ftms
