#ifndef FTMS_UTIL_STATUS_H_
#define FTMS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ftms {

// Error codes used throughout the library. Modeled on the small set of
// canonical codes used by production database codebases; we deliberately do
// not use exceptions (consistent with the Google C++ style this repository
// follows), so every fallible public API returns Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kOutOfRange,
  kUnavailable,
  kInternal,
};

// Returns a human readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeToString(StatusCode code);

// A Status is a cheap value type carrying an error code and message.
// The OK status carries no message and is the default constructed value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  // Factory helpers, one per canonical error code.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// StatusOr<T> holds either an OK status and a value, or a non-OK status.
// Accessing the value of a non-OK StatusOr aborts (assert in debug builds).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // in functions returning StatusOr<T>, mirroring absl::StatusOr.
  StatusOr(const T& value) : status_(Status::Ok()), value_(value) {}
  StatusOr(T&& value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value, or `fallback` when not OK.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors to the caller: evaluates `expr`, returning its status
// from the enclosing function if it is not OK.
#define FTMS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::ftms::Status ftms_status_ = (expr);           \
    if (!ftms_status_.ok()) return ftms_status_;    \
  } while (false)

}  // namespace ftms

#endif  // FTMS_UTIL_STATUS_H_
