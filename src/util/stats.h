#ifndef FTMS_UTIL_STATS_H_
#define FTMS_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ftms {

// Single-pass (Welford) accumulator for mean / variance / extrema.
// Used by the reliability Monte-Carlo and the scheduler metrics.
class StreamingStats {
 public:
  void Add(double x);
  void Merge(const StreamingStats& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  // Half-width of the ~95% confidence interval on the mean (normal
  // approximation, 1.96 * stderr). 0 for fewer than 2 samples.
  double ConfidenceHalfWidth95() const;

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width histogram over [lo, hi) with out-of-range values clamped to
// the first/last bucket. Supports approximate quantiles.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_buckets);

  void Add(double x);
  int64_t count() const { return count_; }

  // Approximate q-quantile (q in [0,1]) assuming uniform density inside a
  // bucket. Returns lo() for an empty histogram.
  double Quantile(double q) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<int64_t>& buckets() const { return buckets_; }

  std::string ToString(int max_rows = 16) const;

 private:
  double lo_;
  double hi_;
  double width_;
  int64_t count_ = 0;
  std::vector<int64_t> buckets_;
};

// Time-weighted average of a step function, e.g. buffer occupancy in
// tracks over simulated cycles: call Record(value, duration) for each
// interval during which the tracked quantity held `value`.
class TimeWeightedStats {
 public:
  void Record(double value, double duration);

  double total_time() const { return total_time_; }
  double time_average() const {
    return total_time_ > 0 ? weighted_sum_ / total_time_ : 0.0;
  }
  double peak() const { return peak_; }

 private:
  double weighted_sum_ = 0;
  double total_time_ = 0;
  double peak_ = 0;
};

}  // namespace ftms

#endif  // FTMS_UTIL_STATS_H_
