#ifndef FTMS_UTIL_PROFILER_H_
#define FTMS_UTIL_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace ftms {

// Scoped hierarchical wall-clock profiler.
//
// Each thread owns a private call tree; `FTMS_PROF_SCOPE("sched/cycle")`
// pushes a node on entry and accumulates steady-clock nanoseconds on
// exit. Thread trees are folded into one persistent global tree at serial
// sync points (Simulator::FlushInstruments, exporters), where no worker
// holds an open scope; the merged tree orders children by name, so its
// *structure and counts* are identical across runs and FTMS_THREADS
// settings while the wall times describe this particular run.
//
// Zero-cost-off follows the metrics registry's pattern: when profiling is
// off (no FTMS_PROF=1 / SetGlobalEnabled(true)), a scope is one atomic
// load and an untaken branch — no clock reads, no allocation. Scope names
// must be string literals (or otherwise outlive the process).
//
// Invariance contract: a scope's count per NAME (summed over every path
// and thread it appears under) equals the number of times the annotated
// work unit ran, so counts are thread-count invariant as long as sites
// annotate logical work units (a cycle, a kernel call, a trial) rather
// than pool-sized chunks.
class Profiler {
 public:
  struct Node {
    const char* name;  // static lifetime
    Node* parent;      // null for a tree root
    std::vector<std::unique_ptr<Node>> children;
    int64_t count = 0;
    int64_t total_ns = 0;
  };

  // Merged (cross-thread, cross-path-preserving) view of the call tree.
  struct MergedNode {
    std::string name;
    int64_t count = 0;
    int64_t total_ns = 0;
    std::vector<MergedNode> children;  // sorted by name
  };

  static bool GlobalEnabled() {
    const int state = enabled_state_.load(std::memory_order_acquire);
    if (state < 0) return ResolveEnabledFromEnv();
    return state == 1;
  }
  static void SetGlobalEnabled(bool enabled);

  // Enters `name` under the calling thread's current scope and returns
  // the node for Exit. Only called with profiling on (see ProfScope).
  static Node* Enter(const char* name);
  static void Exit(Node* node, int64_t elapsed_ns);

  // Folds every thread-local tree into the persistent global tree and
  // zeroes the thread-local counts. Call at serial sync points only (no
  // open scopes on worker threads). Cheap no-op when profiling is off.
  static void FoldAtSyncPoint();

  // Merged tree: the persistent global tree plus any not-yet-folded
  // thread-local residue. Children are sorted by name at every level.
  // Call at serial points.
  static MergedNode MergedTree();

  // Total count for `name` summed over every path and thread (the
  // thread-invariant quantity).
  static int64_t CountOf(const std::string& name);

  // JSON export: {"schema": 1, "nodes": [{"name", "count", "wall_us",
  // "children": [...]}, ...]} — stable node order, wall times in
  // microseconds with 3 decimals.
  static std::string SnapshotJson();
  static Status WriteJson(const std::string& path);

  // Drops all recorded data (global tree and thread-local trees). Call at
  // serial points only; intended for tests.
  static void Reset();

 private:
  static bool ResolveEnabledFromEnv();

  static std::atomic<int> enabled_state_;  // -1 = not yet resolved
};

// RAII profiling scope. When profiling is off the constructor is a single
// atomic load; when on, it records steady-clock nanoseconds into the
// calling thread's call tree under the currently open scope.
class ProfScope {
 public:
  explicit ProfScope(const char* name) {
    if (Profiler::GlobalEnabled()) {
      node_ = Profiler::Enter(name);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfScope() {
    if (node_ != nullptr) {
      const int64_t elapsed =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count();
      Profiler::Exit(node_, elapsed);
    }
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler::Node* node_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

#define FTMS_PROF_CONCAT_INNER(a, b) a##b
#define FTMS_PROF_CONCAT(a, b) FTMS_PROF_CONCAT_INNER(a, b)
#define FTMS_PROF_SCOPE(name) \
  ::ftms::ProfScope FTMS_PROF_CONCAT(ftms_prof_scope_, __LINE__)(name)

}  // namespace ftms

#endif  // FTMS_UTIL_PROFILER_H_
