#include "util/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/metrics.h"

namespace ftms {

namespace {

std::atomic<int> g_ts_enabled{-1};  // -1 = not yet resolved from env

bool ResolveEnabledFromEnv() {
  const char* env = std::getenv("FTMS_TIMESERIES");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

size_t CapacityFromEnv() {
  if (const char* env = std::getenv("FTMS_TIMESERIES_CAPACITY")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<size_t>(v);
  }
  return 512;
}

int64_t IntervalFromEnv() {
  if (const char* env = std::getenv("FTMS_TIMESERIES_INTERVAL_US")) {
    const long long v = std::strtoll(env, nullptr, 10);
    if (v > 0) return static_cast<int64_t>(v);
  }
  return 0;
}

void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out->append(buf);
}

void AppendJsonKey(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(size_t capacity, int64_t interval_us)
    : capacity_(capacity > 1 ? capacity : CapacityFromEnv()),
      interval_us_(interval_us >= 0 ? interval_us : IntervalFromEnv()) {}

TimeSeriesRecorder& TimeSeriesRecorder::Global() {
  static TimeSeriesRecorder* recorder =
      new TimeSeriesRecorder();  // leaked: usable from exit paths
  return *recorder;
}

bool TimeSeriesRecorder::GlobalEnabled() {
  int state = g_ts_enabled.load(std::memory_order_acquire);
  if (state < 0) {
    state = ResolveEnabledFromEnv() ? 1 : 0;
    g_ts_enabled.store(state, std::memory_order_release);
  }
  return state == 1;
}

void TimeSeriesRecorder::SetGlobalEnabled(bool enabled) {
  g_ts_enabled.store(enabled ? 1 : 0, std::memory_order_release);
}

int TimeSeriesRecorder::DefineSeriesLocked(const std::string& name) {
  for (size_t i = 0; i < series_.size(); ++i) {
    if (series_[i]->name == name) return static_cast<int>(i);
  }
  auto s = std::make_unique<Series>();
  s->name = name;
  s->pts.reserve(capacity_);
  series_.push_back(std::move(s));
  return static_cast<int>(series_.size() - 1);
}

int TimeSeriesRecorder::DefineSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return DefineSeriesLocked(name);
}

void TimeSeriesRecorder::AppendLocked(Series& s, int64_t t_us, double v) {
  if (s.skip > 0) {
    --s.skip;
    return;
  }
  s.skip = s.stride - 1;
  if (s.pts.size() >= capacity_) {
    // Ring full: 2x downsample in place (keep even indices) and double
    // the stride so future appends continue the halved cadence.
    size_t w = 0;
    for (size_t r = 0; r < s.pts.size(); r += 2) s.pts[w++] = s.pts[r];
    s.pts.resize(w);
    s.stride *= 2;
    s.skip = s.stride - 1;
  }
  s.pts.push_back(Point{t_us, v});
}

void TimeSeriesRecorder::Append(int id, int64_t t_us, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= series_.size()) return;
  AppendLocked(*series_[static_cast<size_t>(id)], t_us, v);
}

void TimeSeriesRecorder::AddCounterSeries(const std::string& name,
                                          const Counter* counter,
                                          bool as_rate) {
  if (counter == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = *series_[static_cast<size_t>(DefineSeriesLocked(name))];
  s.counter = counter;
  s.gauge = nullptr;
  s.as_rate = as_rate;
  s.last_value = counter->value();
}

void TimeSeriesRecorder::AddGaugeSeries(const std::string& name,
                                        const Gauge* gauge) {
  if (gauge == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = *series_[static_cast<size_t>(DefineSeriesLocked(name))];
  s.gauge = gauge;
  s.counter = nullptr;
}

void TimeSeriesRecorder::Sample(int64_t t_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (t_us <= last_sample_t_) return;  // once per distinct time
  if (last_sample_t_ != INT64_MIN && interval_us_ > 0 &&
      t_us < last_sample_t_ + interval_us_) {
    return;
  }
  const int64_t prev_t = last_sample_t_;
  last_sample_t_ = t_us;
  for (const auto& sp : series_) {
    Series& s = *sp;
    if (s.counter != nullptr) {
      const int64_t now = s.counter->value();
      if (s.as_rate) {
        const int64_t dt = prev_t == INT64_MIN ? 0 : t_us - prev_t;
        const double rate =
            dt > 0 ? static_cast<double>(now - s.last_value) /
                         (static_cast<double>(dt) / 1e6)
                   : 0.0;
        AppendLocked(s, t_us, rate);
      } else {
        AppendLocked(s, t_us, static_cast<double>(now));
      }
      s.last_value = now;
    } else if (s.gauge != nullptr) {
      AppendLocked(s, t_us, s.gauge->value());
    }
  }
}

size_t TimeSeriesRecorder::num_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::vector<TimeSeriesRecorder::Point> TimeSeriesRecorder::SeriesPoints(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : series_) {
    if (s->name == name) return s->pts;
  }
  return {};
}

int64_t TimeSeriesRecorder::SeriesStride(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : series_) {
    if (s->name == name) return s->stride;
  }
  return 0;
}

std::string TimeSeriesRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Series*> ordered;
  ordered.reserve(series_.size());
  for (const auto& s : series_) ordered.push_back(s.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Series* a, const Series* b) { return a->name < b->name; });

  std::string out = "{\n  \"schema\": 1,\n  \"series\": {";
  bool first = true;
  for (const Series* s : ordered) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonKey(&out, s->name);
    out += ": {\"stride\": ";
    AppendNumber(&out, static_cast<double>(s->stride));
    out += ", \"t\": [";
    for (size_t i = 0; i < s->pts.size(); ++i) {
      if (i > 0) out += ", ";
      AppendNumber(&out, static_cast<double>(s->pts[i].t_us));
    }
    out += "], \"v\": [";
    for (size_t i = 0; i < s->pts.size(); ++i) {
      if (i > 0) out += ", ";
      AppendNumber(&out, s->pts[i].v);
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string TimeSeriesRecorder::ToCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Series*> ordered;
  ordered.reserve(series_.size());
  for (const auto& s : series_) ordered.push_back(s.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Series* a, const Series* b) { return a->name < b->name; });

  std::string out = "series,t_us,value\n";
  for (const Series* s : ordered) {
    for (const Point& p : s->pts) {
      out += s->name;
      out += ',';
      AppendNumber(&out, static_cast<double>(p.t_us));
      out += ',';
      AppendNumber(&out, p.v);
      out += '\n';
    }
  }
  return out;
}

std::string TimeSeriesRecorder::SummaryJson(
    const std::string& indent, const std::string& close_indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Series*> ordered;
  ordered.reserve(series_.size());
  for (const auto& s : series_) ordered.push_back(s.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Series* a, const Series* b) { return a->name < b->name; });

  size_t points_total = 0;
  for (const Series* s : ordered) points_total += s->pts.size();

  std::string out = "{\n";
  out += indent + "\"series_count\": " + std::to_string(ordered.size()) +
         ",\n";
  out += indent + "\"points_total\": " + std::to_string(points_total) +
         ",\n";
  out += indent + "\"series\": {";
  bool first = true;
  for (const Series* s : ordered) {
    if (s->pts.empty()) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += indent + "  ";
    AppendJsonKey(&out, s->name);
    out += ": {\"points\": " + std::to_string(s->pts.size());
    out += ", \"t_first\": ";
    AppendNumber(&out, static_cast<double>(s->pts.front().t_us));
    out += ", \"t_last\": ";
    AppendNumber(&out, static_cast<double>(s->pts.back().t_us));
    out += ", \"v_last\": ";
    AppendNumber(&out, s->pts.back().v);
    out += "}";
  }
  out += first ? "}\n" : "\n" + indent + "}\n";
  out += close_indent + "}";
  return out;
}

Status TimeSeriesRecorder::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

Status TimeSeriesRecorder::WriteCsv(const std::string& path) const {
  return WriteFile(path, ToCsv());
}

void TimeSeriesRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  last_sample_t_ = INT64_MIN;
}

}  // namespace ftms
