#ifndef FTMS_UTIL_RANDOM_H_
#define FTMS_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ftms {

// One full round of the SplitMix64 mixer applied to `x` itself (stateless,
// unlike the seeding sequence inside Rng::Seed). Used to derive
// statistically independent per-trial seeds: trial i of a simulation with
// base seed s runs on Rng(s ^ SplitMix64Hash(i)), which depends only on
// (s, i) — never on which thread runs the trial — so parallel runs are
// bit-identical at any thread count.
uint64_t SplitMix64Hash(uint64_t x);

// Deterministic, fast pseudo random number generator (xoshiro256**),
// seeded via SplitMix64. Every stochastic component of the library takes an
// explicit Rng so simulations are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  // Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextUint64();

  // Uniform on [0, 1).
  double NextDouble();

  // Uniform on [lo, hi).
  double Uniform(double lo, double hi) {
    assert(hi >= lo);
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer on [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean (= 1/rate). Used for disk lifetimes and
  // repair times in the reliability simulations.
  double ExponentialMean(double mean);

  // Creates an independent generator whose seed derives from this one;
  // useful to give each simulated component its own stream.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  uint64_t state_[4];
};

// Zipf(theta) distribution over {0, ..., n-1}: rank r is drawn with
// probability proportional to 1 / (r+1)^theta. theta in [0, 1] covers the
// video-on-demand popularity skews typically assumed for movie catalogs
// (theta ~ 0.271 matches the classic video-store measurements). Sampling is
// O(log n) via binary search over the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(int n, double theta);

  int Sample(Rng& rng) const;

  // Probability mass of rank r.
  double Pmf(int r) const;

  int n() const { return static_cast<int>(cdf_.size()); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace ftms

#endif  // FTMS_UTIL_RANDOM_H_
