#ifndef FTMS_UTIL_LOG_H_
#define FTMS_UTIL_LOG_H_

#include <iostream>
#include <sstream>
#include <string_view>

namespace ftms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_log {

// Minimum level actually emitted; everything below is compiled but skipped.
LogLevel GetMinLevel();
void SetMinLevel(LogLevel level);

// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_log

// Sets the global log verbosity (default: kWarning, so library code is
// quiet under tests and benchmarks unless asked).
inline void SetLogLevel(LogLevel level) { internal_log::SetMinLevel(level); }

#define FTMS_LOG(level)                                                    \
  ::ftms::internal_log::LogMessage(::ftms::LogLevel::k##level, __FILE__, \
                                   __LINE__)

}  // namespace ftms

#endif  // FTMS_UTIL_LOG_H_
