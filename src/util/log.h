#ifndef FTMS_UTIL_LOG_H_
#define FTMS_UTIL_LOG_H_

#include <iostream>
#include <sstream>
#include <string_view>

#include <optional>

namespace ftms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Parses a log level name: "debug"/"info"/"warning"/"error"
// (case-insensitive, "warn" accepted) or a numeric value 0-3.
// std::nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

namespace internal_log {

// Minimum level actually emitted; everything below is compiled but skipped.
LogLevel GetMinLevel();
void SetMinLevel(LogLevel level);

// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_log

// Sets the global log verbosity. The default is kWarning (library code
// stays quiet under tests and benchmarks), overridable at startup with
// the FTMS_LOG_LEVEL environment variable (Debug / Info / Warning /
// Error, case-insensitive, or 0-3), which is read once on first use.
inline void SetLogLevel(LogLevel level) { internal_log::SetMinLevel(level); }

#define FTMS_LOG(level)                                                    \
  ::ftms::internal_log::LogMessage(::ftms::LogLevel::k##level, __FILE__, \
                                   __LINE__)

}  // namespace ftms

#endif  // FTMS_UTIL_LOG_H_
