#ifndef FTMS_UTIL_UNITS_H_
#define FTMS_UTIL_UNITS_H_

namespace ftms {

// Unit conventions used throughout the library, matching the paper:
//   * storage sizes in megabytes (MB),
//   * bandwidths in megabytes per second (MB/s) -- the paper quotes object
//     rates in megabits per second (Mb/s) in prose but always uses MB/s in
//     equations, and so do we,
//   * times in seconds for scheduling and hours for reliability.

inline constexpr double kHoursPerYear = 8760.0;
inline constexpr double kSecondsPerHour = 3600.0;

// Megabits/s -> megabytes/s (e.g. MPEG-1 1.5 Mb/s -> 0.1875 MB/s).
constexpr double MbitsToMBytes(double mbits) { return mbits / 8.0; }

// Megabytes/s -> megabits/s.
constexpr double MBytesToMbits(double mbytes) { return mbytes * 8.0; }

constexpr double HoursToYears(double hours) { return hours / kHoursPerYear; }

constexpr double YearsToHours(double years) { return years * kHoursPerYear; }

constexpr double KilobytesToMegabytes(double kb) { return kb / 1000.0; }

// Object bandwidth classes discussed in the paper's introduction.
inline constexpr double kMpeg1RateMbS = MbitsToMBytes(1.5);   // "low TV"
inline constexpr double kMpeg2RateMbS = MbitsToMBytes(4.5);   // "good TV"

}  // namespace ftms

#endif  // FTMS_UTIL_UNITS_H_
