#ifndef FTMS_UTIL_TRACE_EVENT_H_
#define FTMS_UTIL_TRACE_EVENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace ftms {

class Counter;

// Timeline tracer: a fixed-capacity ring buffer of spans and instant
// events that exports Chrome `chrome://tracing` / Perfetto JSON, so one
// run — failure injection, degraded transition, rebuild, catch-up — is
// visible on a single timeline.
//
// Timestamps are microseconds of SIMULATED time (SimTime / cycle clock):
// the timeline then lines up with the paper's cycle arithmetic regardless
// of host speed. Each event additionally records the WALL-clock
// microseconds since tracer construction (exported under args.wall_us),
// which is what the perf work cares about. Recording is allocation-free
// after construction: names and categories must be string literals (or
// otherwise outlive the tracer), the ring never grows, and when it wraps
// the oldest events are overwritten (counted in overwritten()).
//
// Zero-cost-off follows the metrics registry's pattern: components hold a
// nullable Tracer*; Global() is only handed out when FTMS_TRACE=1 (or
// SetGlobalEnabled(true)).
class Tracer {
 public:
  struct Event {
    const char* name = "";  // static lifetime
    const char* cat = "";   // static lifetime
    char phase = 'i';       // 'X' = complete span, 'i' = instant
    int32_t tid = 0;        // track id (see RegisterTrack)
    int64_t ts_us = 0;      // simulated time, microseconds
    int64_t dur_us = 0;     // span length ('X' only)
    int64_t wall_us = 0;    // wall clock at record time
    const char* arg1_name = nullptr;  // static lifetime
    double arg1 = 0;
    const char* arg2_name = nullptr;  // static lifetime
    double arg2 = 0;
  };

  // `capacity` = max buffered events; 0 uses FTMS_TRACE_CAPACITY from the
  // environment, defaulting to 65536.
  explicit Tracer(size_t capacity = 0);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();
  static bool GlobalEnabled();
  static void SetGlobalEnabled(bool enabled);
  static Tracer* GlobalIfEnabled() {
    return GlobalEnabled() ? &Global() : nullptr;
  }

  // Names a timeline track and returns its tid. Each instrumented
  // component (a scheduler instance, the rebuild manager, ...) registers
  // its own track so its events render as one row.
  int32_t RegisterTrack(const std::string& name);

  // Records a complete span [ts_us, ts_us + dur_us) on `tid`.
  void Complete(const char* name, const char* cat, int32_t tid,
                int64_t ts_us, int64_t dur_us,
                const char* arg1_name = nullptr, double arg1 = 0,
                const char* arg2_name = nullptr, double arg2 = 0);

  // Records an instant event at ts_us on `tid`.
  void Instant(const char* name, const char* cat, int32_t tid, int64_t ts_us,
               const char* arg1_name = nullptr, double arg1 = 0,
               const char* arg2_name = nullptr, double arg2 = 0);

  // Buffered events in timestamp order (stable on ties).
  std::vector<Event> Snapshot() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Events lost to ring wrap-around since construction / Clear().
  int64_t overwritten() const;
  void Clear();

  // Chrome trace JSON: {"traceEvents":[...], ...}. Events are sorted by
  // timestamp and every track gets a thread_name metadata record.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  void Record(const Event& event);
  int64_t WallMicros() const;

  const std::chrono::steady_clock::time_point epoch_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;     // fixed at capacity_ entries
  size_t next_ = 0;             // ring write cursor
  size_t used_ = 0;             // min(total recorded, capacity_)
  int64_t overwritten_ = 0;
  // Mirrors overwritten_ into ftms_trace_dropped_total when the metrics
  // registry is enabled; resolved lazily on the first overwrite.
  bool dropped_counter_resolved_ = false;
  Counter* dropped_counter_ = nullptr;
  int32_t next_tid_ = 0;
  std::map<int32_t, std::string> track_names_;
};

}  // namespace ftms

#endif  // FTMS_UTIL_TRACE_EVENT_H_
