#ifndef FTMS_UTIL_FASTDIV_H_
#define FTMS_UTIL_FASTDIV_H_

#include <cassert>
#include <cstdint>

namespace ftms {

// Division / remainder by a runtime-constant 32-bit divisor without a div
// instruction, after Lemire, Kaser & Kurz, "Faster remainder by direct
// computation" (2019): precompute M = ceil(2^64 / d); then for any
// n < 2^32, n / d = (M * n) >> 64 and n % d = ((M * n mod 2^64) * d) >> 64,
// both exactly. The schedulers divide by layout constants (C-1, cluster
// count, disks per cluster) on every read of every cycle; dividends are
// track/cluster indices, far below 2^32 (asserted in debug builds by the
// callers). Each op is one or two 64x64->128 multiplies — ~5x cheaper than
// a 64-bit divide and independent of the divisor's value.
class FastDiv {
 public:
  // Divisor 1 so a default-constructed instance is harmless.
  FastDiv() : magic_(0), d_(1) {}
  explicit FastDiv(uint32_t d) : magic_(d > 1 ? ~uint64_t{0} / d + 1 : 0),
                                 d_(d) {
    assert(d > 0);
  }

  uint32_t divisor() const { return d_; }

  uint32_t Div(uint32_t n) const {
    // M would need 65 bits for d == 1; special-case it (predicted branch).
    if (d_ == 1) return n;
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(magic_) * n) >> 64);
  }

  uint32_t Mod(uint32_t n) const {
    if (d_ == 1) return 0;
    const uint64_t low = magic_ * n;  // M * n mod 2^64
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(low) * d_) >> 64);
  }

 private:
  uint64_t magic_;
  uint32_t d_;
};

}  // namespace ftms

#endif  // FTMS_UTIL_FASTDIV_H_
