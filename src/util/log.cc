#include "util/log.h"

#include <atomic>
#include <cstring>

namespace ftms {
namespace internal_log {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetMinLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetMinLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace internal_log
}  // namespace ftms
