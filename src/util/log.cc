#include "util/log.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ftms {
namespace internal_log {
namespace {

int InitialMinLevel() {
  if (const char* env = std::getenv("FTMS_LOG_LEVEL")) {
    if (const std::optional<LogLevel> level = ParseLogLevel(env)) {
      return static_cast<int>(*level);
    }
  }
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int>& MinLevelCell() {
  // Function-local so the FTMS_LOG_LEVEL lookup happens exactly once, on
  // first use, regardless of static initialization order.
  static std::atomic<int> level{InitialMinLevel()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetMinLevel() {
  return static_cast<LogLevel>(
      MinLevelCell().load(std::memory_order_relaxed));
}

void SetMinLevel(LogLevel level) {
  MinLevelCell().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetMinLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace internal_log

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

}  // namespace ftms
