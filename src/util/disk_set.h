#ifndef FTMS_UTIL_DISK_SET_H_
#define FTMS_UTIL_DISK_SET_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace ftms {

// Flat set of disk ids, stored as per-disk byte flags (vector<uint8_t>,
// not vector<bool>, so Contains() is one load with no bit twiddling).
// This is the failure-tracking representation shared by the scheduler's
// mid-cycle bookkeeping and the degraded-read datapath: membership tests
// sit on per-read hot paths where an ordered std::set's pointer chasing
// would dominate. Grows on Add; ids beyond the current size read as
// absent, and negative ids are never members.
class DiskSet {
 public:
  DiskSet() = default;
  // Pre-sizes the flag array for disks [0, num_disks) so Add never
  // reallocates in steady state.
  explicit DiskSet(int num_disks)
      : flags_(num_disks > 0 ? static_cast<size_t>(num_disks) : 0, 0) {}
  DiskSet(std::initializer_list<int> disks) {
    for (int disk : disks) Add(disk);
  }

  void Add(int disk) {
    if (disk < 0) return;
    if (static_cast<size_t>(disk) >= flags_.size()) {
      flags_.resize(static_cast<size_t>(disk) + 1, 0);
    }
    if (!flags_[static_cast<size_t>(disk)]) {
      flags_[static_cast<size_t>(disk)] = 1;
      ++count_;
    }
  }

  void Remove(int disk) {
    if (disk < 0 || static_cast<size_t>(disk) >= flags_.size()) return;
    if (flags_[static_cast<size_t>(disk)]) {
      flags_[static_cast<size_t>(disk)] = 0;
      --count_;
    }
  }

  bool Contains(int disk) const {
    return disk >= 0 && static_cast<size_t>(disk) < flags_.size() &&
           flags_[static_cast<size_t>(disk)] != 0;
  }

  bool empty() const { return count_ == 0; }
  int count() const { return count_; }

  // Removes every member, keeping the allocated flag array. O(1) when
  // already empty, so per-cycle clears are free in the common
  // failure-free case.
  void Clear() {
    if (count_ == 0) return;
    std::fill(flags_.begin(), flags_.end(), 0);
    count_ = 0;
  }

 private:
  std::vector<uint8_t> flags_;
  int count_ = 0;
};

}  // namespace ftms

#endif  // FTMS_UTIL_DISK_SET_H_
