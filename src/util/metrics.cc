#include "util/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace ftms {

namespace {

std::atomic<int> g_global_enabled{-1};  // -1 = not yet resolved from env

bool ResolveGlobalEnabledFromEnv() {
  const char* env = std::getenv("FTMS_METRICS");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

// Family name of a sample: everything before the label block.
std::string_view FamilyOf(std::string_view name) {
  const size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// Compact numeric formatting shared by both exporters (integers render
// without an exponent; doubles keep round-trip-enough precision).
void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out->append(buf);
}

// Splices `suffix` into a sample name before its label block:
// ("h{d=\"1\"}", "_sum") -> "h_sum{d=\"1\"}".
std::string WithSuffix(const std::string& name, const char* suffix) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

// Adds one label to a sample name: ("h{d=\"1\"}", "le", "2") ->
// "h{d=\"1\",le=\"2\"}".
std::string WithLabel(const std::string& name, const char* key,
                      const std::string& value) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + "{" + key + "=\"" + value + "\"}";
  }
  std::string out = name.substr(0, name.size() - 1);
  out += ",";
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

std::string FormatEdge(double v) {
  std::string s;
  AppendNumber(&s, v);
  return s;
}

}  // namespace

HistogramCell::HistogramCell(double lo, double hi, int num_buckets)
    : lo_(lo), hi_(hi), buckets_(static_cast<size_t>(num_buckets)) {
  assert(hi > lo);
  assert(num_buckets > 0);
  width_ = (hi - lo) / num_buckets;
}

void HistogramCell::Add(double x) {
  int idx = static_cast<int>((x - lo_) / width_);
  idx = std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
  buckets_[static_cast<size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

double HistogramCell::Quantile(double q) const {
  const int64_t n = count();
  if (n == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const int64_t b = buckets_[i].load(std::memory_order_relaxed);
    const double next = cum + static_cast<double>(b);
    if (next >= target) {
      const double frac =
          b > 0 ? (target - cum) / static_cast<double>(b) : 0.0;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string LabeledName(
    std::string_view family,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(family);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

std::string IndexedName(std::string_view family, std::string_view label_key,
                        int index) {
  return LabeledName(family, {{label_key, std::to_string(index)}});
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

bool MetricsRegistry::GlobalEnabled() {
  int state = g_global_enabled.load(std::memory_order_acquire);
  if (state < 0) {
    state = ResolveGlobalEnabledFromEnv() ? 1 : 0;
    g_global_enabled.store(state, std::memory_order_release);
  }
  return state == 1;
}

void MetricsRegistry::SetGlobalEnabled(bool enabled) {
  g_global_enabled.store(enabled ? 1 : 0, std::memory_order_release);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricKind::kCounter;
    it->second.help = help;
    it->second.counter = std::make_unique<Counter>();
  }
  if (it->second.kind != MetricKind::kCounter ||
      it->second.counter == nullptr) {
    return nullptr;
  }
  return it->second.counter.get();
}

ShardedCounter* MetricsRegistry::GetShardedCounter(const std::string& name,
                                                   std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricKind::kCounter;
    it->second.help = help;
    it->second.sharded = std::make_unique<ShardedCounter>();
  }
  if (it->second.kind != MetricKind::kCounter ||
      it->second.sharded == nullptr) {
    return nullptr;
  }
  return it->second.sharded.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricKind::kGauge;
    it->second.help = help;
    it->second.gauge = std::make_unique<Gauge>();
  }
  if (it->second.kind != MetricKind::kGauge) return nullptr;
  return it->second.gauge.get();
}

HistogramCell* MetricsRegistry::GetHistogram(const std::string& name,
                                             double lo, double hi,
                                             int num_buckets,
                                             std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricKind::kHistogram;
    it->second.help = help;
    it->second.histogram =
        std::make_unique<HistogramCell>(lo, hi, num_buckets);
  }
  if (it->second.kind != MetricKind::kHistogram) return nullptr;
  return it->second.histogram.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricKind::kCounter) {
    return nullptr;
  }
  return it->second.counter.get();  // null for sharded counters
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricKind::kGauge) {
    return nullptr;
  }
  return it->second.gauge.get();
}

const HistogramCell* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return it->second.histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string_view last_family;
  // Histogram quantile summaries, grouped by suffixed family so each
  // emits exactly one TYPE line (they are separate gauge families and
  // must not appear under the histogram family's TYPE).
  std::map<std::string, std::vector<std::pair<std::string, double>>>
      quantile_families;
  for (const auto& [name, metric] : metrics_) {
    const std::string_view family = FamilyOf(name);
    if (family != last_family) {
      last_family = family;
      if (!metric.help.empty()) {
        out += "# HELP ";
        out += family;
        out += ' ';
        out += metric.help;
        out += '\n';
      }
      out += "# TYPE ";
      out += family;
      out += ' ';
      out += KindName(metric.kind);
      out += '\n';
    }
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += name;
        out += ' ';
        AppendNumber(&out, static_cast<double>(metric.CounterValue()));
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += name;
        out += ' ';
        AppendNumber(&out, metric.gauge->value());
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        const HistogramCell& h = *metric.histogram;
        int64_t cum = 0;
        for (int i = 0; i < h.num_buckets(); ++i) {
          cum += h.bucket(i);
          out += WithLabel(WithSuffix(name, "_bucket"), "le",
                           FormatEdge(h.bucket_upper(i)));
          out += ' ';
          AppendNumber(&out, static_cast<double>(cum));
          out += '\n';
        }
        out += WithLabel(WithSuffix(name, "_bucket"), "le", "+Inf");
        out += ' ';
        AppendNumber(&out, static_cast<double>(h.count()));
        out += '\n';
        out += WithSuffix(name, "_sum");
        out += ' ';
        AppendNumber(&out, h.sum());
        out += '\n';
        out += WithSuffix(name, "_count");
        out += ' ';
        AppendNumber(&out, static_cast<double>(h.count()));
        out += '\n';
        for (const auto& [suffix, q] :
             {std::pair<const char*, double>{"_p50", 0.5},
              {"_p90", 0.9},
              {"_p99", 0.99}}) {
          const std::string sample = WithSuffix(name, suffix);
          quantile_families[std::string(FamilyOf(sample))].emplace_back(
              sample, h.Quantile(q));
        }
        break;
      }
    }
  }
  for (const auto& [family, samples] : quantile_families) {
    out += "# TYPE ";
    out += family;
    out += " gauge\n";
    for (const auto& [sample, value] : samples) {
      out += sample;
      out += ' ';
      AppendNumber(&out, value);
      out += '\n';
    }
  }
  return out;
}

std::string MetricsRegistry::JsonObject(const std::string& indent,
                                        const std::string& close_indent)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  const auto emit = [&](const std::string& key, double value) {
    out += first ? "\n" : ",\n";
    first = false;
    out += indent;
    out += '"';
    // Series names carry Prometheus label syntax ({k="v"}); the quotes
    // and any backslashes must be escaped to keep the JSON well-formed.
    for (const char c : key) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\": ";
    AppendNumber(&out, value);
  };
  for (const auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        emit(name, static_cast<double>(metric.CounterValue()));
        break;
      case MetricKind::kGauge:
        emit(name, metric.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const HistogramCell& h = *metric.histogram;
        emit(WithSuffix(name, "_count"), static_cast<double>(h.count()));
        emit(WithSuffix(name, "_sum"), h.sum());
        emit(WithSuffix(name, "_p50"), h.Quantile(0.5));
        emit(WithSuffix(name, "_p90"), h.Quantile(0.9));
        emit(WithSuffix(name, "_p99"), h.Quantile(0.99));
        break;
      }
    }
  }
  out += first ? "}" : "\n" + close_indent + "}";
  return out;
}

Status MetricsRegistry::WritePrometheusFile(const std::string& path) const {
  const std::string text = PrometheusText();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace ftms
