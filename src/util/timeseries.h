#ifndef FTMS_UTIL_TIMESERIES_H_
#define FTMS_UTIL_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace ftms {

class Counter;
class Gauge;

// Records named time series over SIMULATED time so temporal behaviour —
// degraded-read load, queue depth, rebuild progress, SLO burn — becomes a
// plottable curve instead of an end-of-run scalar.
//
// Two feeding models share the same storage:
//  * push: a component defines a series once (DefineSeries) and appends
//    (t, v) points from its serial sync point (cycle end, fold point);
//  * pull: AddCounterSeries / AddGaugeSeries register registry cells that
//    Sample(t) reads, optionally as a derived per-second rate.
//
// Every series is a fixed-capacity ring with on-the-fly 2x downsampling:
// when a ring fills, every other point is dropped and the series' stride
// doubles, so a run of any length keeps a uniform-cadence curve in
// bounded memory. Appends and samples must happen at serial sync points
// only — that is what keeps dumps byte-identical at any FTMS_THREADS.
//
// Zero-cost-off follows the metrics registry's pattern: components hold a
// nullable TimeSeriesRecorder*; Global() is only handed out when
// FTMS_TIMESERIES=1 (or SetGlobalEnabled(true)). Knobs:
//   FTMS_TIMESERIES=1            enable the global recorder
//   FTMS_TIMESERIES_OUT=path     write the JSON dump (exporters/CLI)
//   FTMS_TIMESERIES_CSV=path     write the CSV dump
//   FTMS_TIMESERIES_CAPACITY=N   per-series ring capacity (default 512)
//   FTMS_TIMESERIES_INTERVAL_US=N  minimum simulated-us between pull
//                                  samples (default 0 = every Sample())
class TimeSeriesRecorder {
 public:
  struct Point {
    int64_t t_us = 0;  // simulated time, microseconds
    double v = 0;
  };

  // `capacity` 0 uses FTMS_TIMESERIES_CAPACITY (default 512);
  // `interval_us` < 0 uses FTMS_TIMESERIES_INTERVAL_US (default 0).
  explicit TimeSeriesRecorder(size_t capacity = 0,
                              int64_t interval_us = -1);

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  static TimeSeriesRecorder& Global();
  static bool GlobalEnabled();
  static void SetGlobalEnabled(bool enabled);
  static TimeSeriesRecorder* GlobalIfEnabled() {
    return GlobalEnabled() ? &Global() : nullptr;
  }

  // Defines (or finds) a push-model series and returns its id. Call from
  // serial code (component init); ids are stable for the recorder's life.
  int DefineSeries(const std::string& name);

  // Appends one point to a push-model series. Serial sync points only;
  // t_us must be monotone non-decreasing per series (equal-t appends are
  // kept — callers sample once per cycle, so ties do not occur in
  // practice).
  void Append(int id, int64_t t_us, double v);

  // Registers a pull-model source read by Sample(). With `as_rate`, the
  // series records the counter's per-second delta rate between samples
  // (first sample records 0).
  void AddCounterSeries(const std::string& name, const Counter* counter,
                        bool as_rate = false);
  void AddGaugeSeries(const std::string& name, const Gauge* gauge);

  // Samples every pull-model source at simulated time t_us; gated so a
  // recorder shared by several components samples at most once per
  // distinct time and at most once per configured interval. Serial sync
  // points only.
  void Sample(int64_t t_us);

  size_t num_series() const;
  size_t capacity() const { return capacity_; }
  // Points currently held by `name` (empty when unknown).
  std::vector<Point> SeriesPoints(const std::string& name) const;
  // Current keep-stride of `name` (1 until the first decimation, then
  // doubling); 0 when unknown.
  int64_t SeriesStride(const std::string& name) const;

  // JSON dump: {"schema": 1, "series": {name: {"stride": s,
  // "t": [...], "v": [...]}}} with series sorted by name — the dump is
  // byte-identical across FTMS_THREADS settings.
  std::string ToJson() const;
  // Long-format CSV: series,t_us,value rows, series sorted by name.
  std::string ToCsv() const;
  // Compact per-series summary for embedding in bench JSON:
  // {"series_count": n, "points_total": m, "series": {name:
  // {"points": p, "t_first": a, "t_last": b, "v_last": v}}}.
  std::string SummaryJson(const std::string& indent,
                          const std::string& close_indent) const;

  Status WriteJson(const std::string& path) const;
  Status WriteCsv(const std::string& path) const;

  // Drops all series and pull sources (tests / fresh runs on the global).
  void Clear();

 private:
  struct Series {
    std::string name;
    std::vector<Point> pts;
    int64_t stride = 1;  // keep every stride-th appended point
    int64_t skip = 0;    // points to drop before the next keep
    // Pull-model source (at most one of counter/gauge set).
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    bool as_rate = false;
    int64_t last_value = 0;  // counter reading at the previous sample
  };

  int DefineSeriesLocked(const std::string& name);
  void AppendLocked(Series& s, int64_t t_us, double v);

  const size_t capacity_;
  const int64_t interval_us_;
  // Guards the series table; all writers are serial sync points, the
  // mutex is defensive (exports racing a late Append stay well-formed).
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Series>> series_;
  int64_t last_sample_t_ = INT64_MIN;
};

}  // namespace ftms

#endif  // FTMS_UTIL_TIMESERIES_H_
