#include "util/trace_event.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/metrics.h"

namespace ftms {

namespace {

std::atomic<int> g_trace_enabled{-1};  // -1 = not yet resolved from env

bool ResolveEnabledFromEnv() {
  const char* env = std::getenv("FTMS_TRACE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

size_t CapacityFromEnv() {
  if (const char* env = std::getenv("FTMS_TRACE_CAPACITY")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 65536;
}

void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

// The strings we emit (metric/event names, track labels) are plain
// identifiers, but escape quotes/backslashes/control bytes anyway so the
// output is well-formed JSON no matter what a caller registers.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity > 0 ? capacity : CapacityFromEnv()) {
  ring_.resize(capacity_);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: usable from exit paths
  return *tracer;
}

bool Tracer::GlobalEnabled() {
  int state = g_trace_enabled.load(std::memory_order_acquire);
  if (state < 0) {
    state = ResolveEnabledFromEnv() ? 1 : 0;
    g_trace_enabled.store(state, std::memory_order_release);
  }
  return state == 1;
}

void Tracer::SetGlobalEnabled(bool enabled) {
  g_trace_enabled.store(enabled ? 1 : 0, std::memory_order_release);
}

int32_t Tracer::RegisterTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const int32_t tid = next_tid_++;
  track_names_[tid] = name;
  return tid;
}

int64_t Tracer::WallMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (used_ == capacity_) {
    ++overwritten_;
    // Resolve once, on the first drop (registry mutex is distinct from
    // mu_ and the registry never calls back into the tracer).
    if (!dropped_counter_resolved_) {
      dropped_counter_resolved_ = true;
      if (MetricsRegistry* registry = MetricsRegistry::GlobalIfEnabled()) {
        dropped_counter_ = registry->GetCounter(
            "ftms_trace_dropped_total",
            "trace events lost to ring wrap-around");
      }
    }
    if (dropped_counter_ != nullptr) dropped_counter_->Add(1);
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  used_ = std::min(used_ + 1, capacity_);
}

void Tracer::Complete(const char* name, const char* cat, int32_t tid,
                      int64_t ts_us, int64_t dur_us, const char* arg1_name,
                      double arg1, const char* arg2_name, double arg2) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'X';
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.wall_us = WallMicros();
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  Record(e);
}

void Tracer::Instant(const char* name, const char* cat, int32_t tid,
                     int64_t ts_us, const char* arg1_name, double arg1,
                     const char* arg2_name, double arg2) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.tid = tid;
  e.ts_us = ts_us;
  e.wall_us = WallMicros();
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  Record(e);
}

std::vector<Tracer::Event> Tracer::Snapshot() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.reserve(used_);
    // Oldest-first: when wrapped, the oldest entry is at `next_`.
    const size_t start = used_ == capacity_ ? next_ : 0;
    for (size_t i = 0; i < used_; ++i) {
      events.push_back(ring_[(start + i) % capacity_]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

int64_t Tracer::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overwritten_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  used_ = 0;
  overwritten_ = 0;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<Event> events = Snapshot();
  std::map<int32_t, std::string> tracks;
  int64_t overwritten;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tracks = track_names_;
    overwritten = overwritten_;
  }

  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
                    "{\"clock\": \"sim_us\", \"overwritten\": ";
  AppendNumber(&out, static_cast<double>(overwritten));
  // "dropped" is the stable name consumers key on; "overwritten" is kept
  // for older tooling (same value: a wrap drops exactly one event).
  out += ", \"dropped\": ";
  AppendNumber(&out, static_cast<double>(overwritten));
  out += "},\n\"traceEvents\": [";
  bool first = true;
  const auto begin_event = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  for (const auto& [tid, name] : tracks) {
    begin_event();
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": ";
    AppendNumber(&out, tid);
    out += ", \"args\": {\"name\": ";
    AppendJsonString(&out, name);
    out += "}}";
  }
  for (const Event& e : events) {
    begin_event();
    out += "{\"name\": ";
    AppendJsonString(&out, e.name);
    out += ", \"cat\": ";
    AppendJsonString(&out, e.cat[0] != '\0' ? e.cat : "ftms");
    out += ", \"ph\": \"";
    out.push_back(e.phase);
    out += "\", \"pid\": 1, \"tid\": ";
    AppendNumber(&out, e.tid);
    out += ", \"ts\": ";
    AppendNumber(&out, static_cast<double>(e.ts_us));
    if (e.phase == 'X') {
      out += ", \"dur\": ";
      AppendNumber(&out, static_cast<double>(e.dur_us));
    }
    if (e.phase == 'i') out += ", \"s\": \"t\"";
    out += ", \"args\": {\"wall_us\": ";
    AppendNumber(&out, static_cast<double>(e.wall_us));
    if (e.arg1_name != nullptr) {
      out += ", ";
      AppendJsonString(&out, e.arg1_name);
      out += ": ";
      AppendNumber(&out, e.arg1);
    }
    if (e.arg2_name != nullptr) {
      out += ", ";
      AppendJsonString(&out, e.arg2_name);
      out += ": ";
      AppendNumber(&out, e.arg2);
    }
    out += "}}";
  }
  out += "\n]\n}\n";
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace ftms
