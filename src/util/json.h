#ifndef FTMS_UTIL_JSON_H_
#define FTMS_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ftms {

// Minimal recursive-descent JSON reader for the project's own artifacts
// (QoS journals, timeseries/profile dumps, bench snapshots). Supports the
// full JSON grammar with a bounded nesting depth; objects preserve key
// order. No external dependencies — the toolchain policy forbids them.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses a complete document; trailing non-whitespace is an error.
  static StatusOr<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Convenience constructors (tests, programmatic building).
  JsonValue() = default;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace ftms

#endif  // FTMS_UTIL_JSON_H_
