#include "util/random.h"

#include <algorithm>

namespace ftms {
namespace {

// SplitMix64: used only to expand the user seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Hash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // A state of all zeros is the one illegal xoshiro state; SplitMix64 cannot
  // produce four consecutive zeros, but be defensive anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::ExponentialMean(double mean) {
  assert(mean > 0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - NextDouble());
}

ZipfDistribution::ZipfDistribution(int n, double theta) : theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (int r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = sum;
  }
  for (int r = 0; r < n; ++r) cdf_[r] /= sum;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(int r) const {
  assert(r >= 0 && r < n());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace ftms
