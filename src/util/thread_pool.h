#ifndef FTMS_UTIL_THREAD_POOL_H_
#define FTMS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftms {

// Fixed-size thread pool for the embarrassingly-parallel parts of the
// simulation stack (Monte-Carlo trials, multi-config bench sweeps).
//
// Deliberately simple: one shared FIFO queue, no work stealing, no task
// futures. Parallel work is expressed through ParallelFor below, which
// partitions an index range into contiguous chunks — together with
// per-trial RNG streams this keeps every parallel computation bit-identical
// at any thread count, including 1.
class ThreadPool {
 public:
  // Spawns `num_threads` workers; values < 1 are clamped to 1. A pool of
  // size 1 still runs submitted work on its single worker thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  // Enqueues `task` for execution on some worker thread.
  void Submit(std::function<void()> task);

  // Optional observability sinks; any pointer may be null (that series is
  // simply not published). `submitted`/`executed` count tasks; `queue_depth`
  // tracks the instantaneous FIFO backlog. Call before the pool is shared
  // across threads (Shared() binds its own pool when the global registry is
  // enabled). Pointers must outlive the pool.
  void BindInstruments(class Counter* submitted, class Counter* executed,
                       class Gauge* queue_depth);

  // Thread count used by Shared() and by components configured with
  // "0 = default": the FTMS_THREADS environment variable when set to a
  // positive integer, else std::thread::hardware_concurrency().
  static int DefaultThreadCount();

  // Lazily-constructed process-wide pool of DefaultThreadCount() workers.
  // Never destroyed (intentionally leaked) so it is safe to use from
  // static destructors and exit paths.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;

  // Observability (null = off).
  class Counter* submitted_counter_ = nullptr;
  class Counter* executed_counter_ = nullptr;
  class Gauge* queue_depth_gauge_ = nullptr;
};

// Number of chunks ParallelForChunks will split [begin, end) into: a pure
// function of the range and the pool size (never of scheduling order), so
// callers can pre-size per-chunk scratch state. 0 for an empty range; 1
// when the work runs inline (null pool, single-thread pool, or a range of
// at most one element).
int64_t ParallelChunkCount(const ThreadPool* pool, int64_t begin,
                           int64_t end);

// Splits [begin, end) into ParallelChunkCount() contiguous chunks and runs
// `body(chunk, chunk_begin, chunk_end)` on the pool, blocking until every
// chunk is done. Chunk indices are dense (0 .. count-1) and ordered by
// range position, so per-chunk scratch written by the body can be folded
// in chunk order afterwards for results that are bit-identical at any
// thread count. Runs inline (no pool hop) when ParallelChunkCount() is 1.
void ParallelForChunks(
    ThreadPool* pool, int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t, int64_t)>& body);

// Index-only convenience wrapper over ParallelForChunks: body receives
// just (chunk_begin, chunk_end).
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace ftms

#endif  // FTMS_UTIL_THREAD_POOL_H_
