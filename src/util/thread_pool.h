#ifndef FTMS_UTIL_THREAD_POOL_H_
#define FTMS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftms {

// Fixed-size thread pool for the embarrassingly-parallel parts of the
// simulation stack (Monte-Carlo trials, multi-config bench sweeps).
//
// Deliberately simple: one shared FIFO queue, no work stealing, no task
// futures. Parallel work is expressed through ParallelFor below, which
// partitions an index range into contiguous chunks — together with
// per-trial RNG streams this keeps every parallel computation bit-identical
// at any thread count, including 1.
class ThreadPool {
 public:
  // Spawns `num_threads` workers; values < 1 are clamped to 1. A pool of
  // size 1 still runs submitted work on its single worker thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  // Enqueues `task` for execution on some worker thread.
  void Submit(std::function<void()> task);

  // Thread count used by Shared() and by components configured with
  // "0 = default": the FTMS_THREADS environment variable when set to a
  // positive integer, else std::thread::hardware_concurrency().
  static int DefaultThreadCount();

  // Lazily-constructed process-wide pool of DefaultThreadCount() workers.
  // Never destroyed (intentionally leaked) so it is safe to use from
  // static destructors and exit paths.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// Splits [begin, end) into at most `pool->size()` contiguous chunks and
// runs `body(chunk_begin, chunk_end)` on the pool, blocking until every
// chunk is done. The partition depends only on the range and the pool
// size, never on scheduling order, so any per-index output written by the
// body lands in the same place regardless of which thread runs the chunk.
// Runs inline (no pool hop) when the pool has one thread, the range has at
// most one element, or `pool` is null.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace ftms

#endif  // FTMS_UTIL_THREAD_POOL_H_
