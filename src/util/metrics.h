#ifndef FTMS_UTIL_METRICS_H_
#define FTMS_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ftms {

// Registry of named counters, gauges and histograms shared by the
// scheduler hot path, the rebuild machinery and the benches.
//
// Design constraints (see DESIGN.md "Observability"):
//  * Zero-cost-off: components hold a nullable registry pointer; when it is
//    null every instrumentation site is a single predictable branch and no
//    cell is ever touched. The global registry is off unless FTMS_METRICS=1
//    (or SetGlobalEnabled(true)) — tests use private instances instead.
//  * Allocation-free recording: cells are fixed atomic slots created at
//    registration time; Add/Set never allocate, lock or retry, so they are
//    safe inside the cluster-parallel cycle kernels.
//  * Determinism: every cell is either written only from serial points
//    (gauges, histograms sampled at cycle end) or accumulated with
//    commutative relaxed atomic adds (counters), so the exported values are
//    bit-identical at any FTMS_THREADS setting. The one exception is
//    HistogramCell::sum() for wall-clock inputs, which is inherently
//    timing-dependent; nothing deterministic is derived from it.
//
// Sample names follow Prometheus conventions: `family{label="v"}`. The
// part before '{' is the family; all samples of one family must share a
// kind. LabeledName() builds such names without hand-quoting.

// Monotonic counter. Relaxed atomic adds: concurrent increments from
// cluster kernels fold commutatively, so totals are thread-count
// invariant.
class Counter {
 public:
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Sharded counter for sites hot enough that even an uncontended atomic
// add per event is too much: each shard owns a cache line, value() folds
// the cells. Addition is commutative, so the fold is deterministic.
class ShardedCounter {
 public:
  static constexpr int kCells = 16;

  void Add(int shard, int64_t n = 1) {
    cells_[static_cast<size_t>(shard) % kCells].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  int64_t value() const {
    int64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  Cell cells_[kCells];
};

// Last-written-wins scalar. Written from serial points only (cycle end,
// fold points); readers may race benignly with relaxed loads.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Fixed-width histogram over [lo, hi), out-of-range values clamped to the
// edge buckets (mirrors util/stats Histogram, but with atomic cells so it
// can be shared through the registry). Bucket counts are integer sums and
// therefore deterministic; sum() uses floating-point atomic adds and is
// order-dependent when fed concurrently (our recorders feed it serially).
class HistogramCell {
 public:
  HistogramCell(double lo, double hi, int num_buckets);

  void Add(double x);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Approximate q-quantile assuming uniform density inside a bucket;
  // returns lo() when empty.
  double Quantile(double q) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  // Upper bound of bucket i (the Prometheus `le` edge).
  double bucket_upper(int i) const {
    return lo_ + width_ * static_cast<double>(i + 1);
  }

 private:
  double lo_;
  double hi_;
  double width_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
  std::vector<std::atomic<int64_t>> buckets_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// Builds `family{k1="v1",k2="v2"}` from label pairs (values are not
// escaped; callers pass identifier-like values such as disk indices).
std::string LabeledName(
    std::string_view family,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);
std::string IndexedName(std::string_view family, std::string_view label_key,
                        int index);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry, enabled by FTMS_METRICS=1 in the environment
  // (read once) or programmatically. GlobalIfEnabled() is the form
  // instrumented components use: null means "off", and the component then
  // skips all recording.
  static MetricsRegistry& Global();
  static bool GlobalEnabled();
  static void SetGlobalEnabled(bool enabled);
  static MetricsRegistry* GlobalIfEnabled() {
    return GlobalEnabled() ? &Global() : nullptr;
  }

  // Find-or-create. The returned pointer is stable for the registry's
  // lifetime; resolving it once up front keeps the recording site
  // allocation- and lock-free. Re-registering an existing name with a
  // different kind returns null (and logs nothing — callers treat it as
  // "off").
  Counter* GetCounter(const std::string& name, std::string_view help = "");
  ShardedCounter* GetShardedCounter(const std::string& name,
                                    std::string_view help = "");
  Gauge* GetGauge(const std::string& name, std::string_view help = "");
  HistogramCell* GetHistogram(const std::string& name, double lo, double hi,
                              int num_buckets, std::string_view help = "");

  // Read-only lookups (null when absent or of another kind).
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const HistogramCell* FindHistogram(const std::string& name) const;

  // Number of registered metrics (sharded counters count once).
  size_t size() const;

  // Prometheus text exposition (one # HELP / # TYPE pair per family,
  // histogram as cumulative _bucket{le=...} + _sum + _count).
  std::string PrometheusText() const;

  // Flat JSON object mapping sample name -> numeric value. Histograms
  // contribute <name>_count, <name>_sum, <name>_p50 and <name>_p99.
  // `indent` is prepended to every entry line and `close_indent` to the
  // closing brace; no trailing newline, so the result embeds cleanly in a
  // larger document.
  std::string JsonObject(const std::string& indent = "  ",
                         const std::string& close_indent = "") const;

  Status WritePrometheusFile(const std::string& path) const;

 private:
  struct Metric {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<ShardedCounter> sharded;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramCell> histogram;

    int64_t CounterValue() const {
      return sharded != nullptr ? sharded->value() : counter->value();
    }
  };

  // Ordered by full sample name, which clusters a family's samples
  // together and makes exports reproducible.
  mutable std::mutex mu_;
  std::map<std::string, Metric> metrics_;
};

}  // namespace ftms

#endif  // FTMS_UTIL_METRICS_H_
