#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace ftms {

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Status::Ok();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Status::Ok();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        out->type_ = JsonValue::Type::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // BMP-only UTF-8 encoding; surrogate pairs are not produced by
          // any of our writers.
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = v;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace ftms
