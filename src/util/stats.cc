#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace ftms {

void StreamingStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::Reset() { *this = StreamingStats(); }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::ConfidenceHalfWidth95() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

std::string StreamingStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, int num_buckets)
    : lo_(lo), hi_(hi), buckets_(static_cast<size_t>(num_buckets), 0) {
  assert(hi > lo);
  assert(num_buckets > 0);
  width_ = (hi - lo) / num_buckets;
}

void Histogram::Add(double x) {
  int idx = static_cast<int>((x - lo_) / width_);
  idx = std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
  ++buckets_[static_cast<size_t>(idx)];
  ++count_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double frac =
          buckets_[i] > 0 ? (target - cum) / static_cast<double>(buckets_[i])
                          : 0.0;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString(int max_rows) const {
  std::ostringstream os;
  const int stride =
      std::max(1, static_cast<int>(buckets_.size()) / std::max(1, max_rows));
  for (size_t i = 0; i < buckets_.size(); i += static_cast<size_t>(stride)) {
    int64_t sum = 0;
    for (size_t j = i;
         j < std::min(buckets_.size(), i + static_cast<size_t>(stride)); ++j) {
      sum += buckets_[j];
    }
    os << "[" << lo_ + static_cast<double>(i) * width_ << ", "
       << lo_ + static_cast<double>(i + static_cast<size_t>(stride)) * width_
       << "): " << sum << "\n";
  }
  return os.str();
}

void TimeWeightedStats::Record(double value, double duration) {
  assert(duration >= 0);
  weighted_sum_ += value * duration;
  total_time_ += duration;
  peak_ = std::max(peak_, value);
}

}  // namespace ftms
