#include "reliability/failure_process.h"

#include <utility>

#include "util/units.h"

namespace ftms {

FailureProcess::FailureProcess(Simulator* sim, DiskArray* disks,
                               uint64_t seed, Callbacks callbacks)
    : sim_(sim), disks_(disks), rng_(seed),
      callbacks_(std::move(callbacks)) {}

void FailureProcess::Start() {
  for (int d = 0; d < disks_->num_disks(); ++d) ScheduleFailure(d);
}

void FailureProcess::ScheduleFailure(int disk) {
  const double lifetime_s =
      rng_.ExponentialMean(disks_->params().mttf_hours * kSecondsPerHour);
  sim_->Schedule(lifetime_s, [this, disk] {
    if (!disks_->disk(disk).operational()) return;
    disks_->FailDisk(disk).ok();
    ++failures_;
    if (callbacks_.on_failure) callbacks_.on_failure(disk);
    ScheduleRepair(disk);
  });
}

void FailureProcess::ScheduleRepair(int disk) {
  const double repair_s =
      rng_.ExponentialMean(disks_->params().mttr_hours * kSecondsPerHour);
  sim_->Schedule(repair_s, [this, disk] {
    disks_->RepairDisk(disk).ok();
    ++repairs_;
    if (callbacks_.on_repair) callbacks_.on_repair(disk);
    ScheduleFailure(disk);
  });
}

}  // namespace ftms
