#ifndef FTMS_RELIABILITY_MARKOV_SIM_H_
#define FTMS_RELIABILITY_MARKOV_SIM_H_

#include <cstdint>

#include "layout/schemes.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"

namespace ftms {

// Monte-Carlo failure/repair simulation cross-validating the closed-form
// reliability equations (4)-(6).
//
// Disks fail independently with exponential lifetimes (mean MTTF) and are
// repaired in exponential time (mean MTTR). A trial runs until the target
// event occurs; the estimate is the mean over trials with a 95% CI.
//
// Events:
//  * catastrophic, clustered schemes: two disks of one C-disk cluster are
//    down simultaneously (the group's data can no longer be reconstructed);
//    the dual-parity variants (SR-2/NC-2) survive two and die at THREE
//    down disks in one cluster — P+Q repairs any two erasures;
//  * catastrophic, Improved-bandwidth: two down disks in the same or in
//    adjacent (C-1)-disk clusters — disks serve their own cluster's data
//    AND the left neighbor's parity, so adjacency is fatal (Section 4);
//  * degradation of service: `k_concurrent` disks down simultaneously
//    anywhere in the farm (buffer-server pool / reserved bandwidth
//    exhausted) — the event behind equation (6).
//
// With the paper's real parameters these events take centuries, so tests
// and benches run scaled-down MTTF/MTTR where the same formulas apply and
// events are observable; the point is validating the FORMULA, which is
// scale-free in MTTF/MTTR ratio.
struct ReliabilitySimConfig {
  int num_disks = 100;
  int parity_group_size = 5;  // C
  Scheme scheme = Scheme::kStreamingRaid;
  double mttf_hours = 1000.0;
  double mttr_hours = 10.0;
  int trials = 200;
  uint64_t seed = 1234;
  // Worker threads for the trial loop: 0 = ThreadPool::DefaultThreadCount()
  // (the FTMS_THREADS env var, else hardware concurrency), 1 = run inline
  // on the calling thread. Trials are independent and each runs on its own
  // RNG stream (seed ^ SplitMix64Hash(trial)), so every estimate is
  // bit-identical at any thread count.
  int threads = 0;
  // Metrics sink override: null uses MetricsRegistry::Global() when
  // FTMS_METRICS=1, else no metrics. Estimates are published at the serial
  // fold (after all trials), so the values are thread-count invariant.
  class MetricsRegistry* metrics = nullptr;
};

struct ReliabilityEstimate {
  double mean_hours = 0;
  double ci95_hours = 0;  // 95% confidence half-width
  int trials = 0;
};

// Mean time until catastrophic failure for the configured scheme.
StatusOr<ReliabilityEstimate> EstimateMttfCatastrophic(
    const ReliabilitySimConfig& config);

// Mean time until `k_concurrent` disks are down simultaneously.
StatusOr<ReliabilityEstimate> EstimateKConcurrent(
    const ReliabilitySimConfig& config, int k_concurrent);

// Mean time until `k_clusters` distinct clusters have a failed disk at
// the same time — the Non-clustered scheme's exact degradation event:
// the (K+1)-st degraded cluster finds all K buffer servers busy
// (Section 3). With sparse failures this coincides with k-concurrent
// disks (two failures rarely share a cluster), which is why the paper
// uses equation (6) for it.
StatusOr<ReliabilityEstimate> EstimateKDegradedClusters(
    const ReliabilitySimConfig& config, int k_clusters);

}  // namespace ftms

#endif  // FTMS_RELIABILITY_MARKOV_SIM_H_
