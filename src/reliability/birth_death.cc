#include "reliability/birth_death.h"

namespace ftms {

StatusOr<double> ExactKConcurrentMeanHours(double mttf_hours,
                                           double mttr_hours,
                                           int num_disks, int k) {
  if (mttf_hours <= 0 || mttr_hours <= 0) {
    return Status::InvalidArgument("MTTF/MTTR must be positive");
  }
  if (num_disks <= 0) {
    return Status::InvalidArgument("num_disks must be positive");
  }
  if (k < 1 || k > num_disks) {
    return Status::InvalidArgument("k must be in [1, num_disks]");
  }
  // First-step analysis: with E_j the expected time to go from j to j+1
  // failed disks,
  //   E_0 = 1/lambda_0,
  //   E_j = 1/lambda_j + (mu_j/lambda_j) * E_{j-1},
  // and the hitting time of K is the sum of E_0..E_{K-1}.
  double total = 0;
  double e_prev = 0;
  for (int j = 0; j < k; ++j) {
    const double lambda = static_cast<double>(num_disks - j) / mttf_hours;
    const double mu = static_cast<double>(j) / mttr_hours;
    const double e_j = (1.0 + mu * e_prev) / lambda;
    total += e_j;
    e_prev = e_j;
  }
  return total;
}

double AsymptoticKConcurrentMeanHours(double mttf_hours, double mttr_hours,
                                      int num_disks, int k) {
  // (K-1)! MTTF^K / (D (D-1) ... (D-K+1) MTTR^(K-1)), arranged to keep
  // intermediates finite.
  double result = mttf_hours / static_cast<double>(num_disks);
  for (int i = 1; i < k; ++i) {
    result *= static_cast<double>(i) * mttf_hours /
              (static_cast<double>(num_disks - i) * mttr_hours);
  }
  return result;
}

}  // namespace ftms
