#ifndef FTMS_RELIABILITY_FAILURE_PROCESS_H_
#define FTMS_RELIABILITY_FAILURE_PROCESS_H_

#include <functional>

#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace ftms {

// Drives exponential disk failures and repairs on a DiskArray inside a
// discrete-event simulation. Used by the server-level failure-injection
// experiments: the scheduler sees FailDisk/RepairDisk at the simulated
// times this process generates.
class FailureProcess {
 public:
  // Callbacks fire after the array state change. Times are in SECONDS on
  // the simulator clock (MTTF/MTTR are converted from hours).
  struct Callbacks {
    std::function<void(int disk)> on_failure;
    std::function<void(int disk)> on_repair;
  };

  FailureProcess(Simulator* sim, DiskArray* disks, uint64_t seed,
                 Callbacks callbacks);

  // Schedules the initial lifetime for every disk. Call once.
  void Start();

  int64_t failures_injected() const { return failures_; }
  int64_t repairs_completed() const { return repairs_; }

 private:
  void ScheduleFailure(int disk);
  void ScheduleRepair(int disk);

  Simulator* sim_;
  DiskArray* disks_;
  Rng rng_;
  Callbacks callbacks_;
  int64_t failures_ = 0;
  int64_t repairs_ = 0;
};

}  // namespace ftms

#endif  // FTMS_RELIABILITY_FAILURE_PROCESS_H_
