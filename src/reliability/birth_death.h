#ifndef FTMS_RELIABILITY_BIRTH_DEATH_H_
#define FTMS_RELIABILITY_BIRTH_DEATH_H_

#include "util/status.h"

namespace ftms {

// Exact reliability analysis of the disk farm as a birth-death Markov
// chain (the analytical backbone behind equations (4)-(6), after Muntz &
// Lui's disk-array analysis [6]).
//
// State j = number of concurrently failed disks. With D disks of
// exponential lifetime MTTF and independent exponential repairs MTTR:
//
//   failure rate  lambda_j = (D - j) / MTTF
//   repair rate   mu_j     = j / MTTR          (parallel repairs)
//
// The expected hitting time of state K from state 0 has the standard
// closed recurrence; this module evaluates it exactly, which lets tests
// and benches quantify the approximation error of the paper's equation
// (6) (which keeps only the dominant product term and drops a (K-1)!
// factor).

// Exact expected time (hours) until `k` disks are down simultaneously,
// starting from all-up.
StatusOr<double> ExactKConcurrentMeanHours(double mttf_hours,
                                           double mttr_hours, int num_disks,
                                           int k);

// The rare-event asymptote including the (K-1)! factor:
//   (K-1)! MTTF^K / (D (D-1) ... (D-K+1) MTTR^(K-1)).
double AsymptoticKConcurrentMeanHours(double mttf_hours, double mttr_hours,
                                      int num_disks, int k);

}  // namespace ftms

#endif  // FTMS_RELIABILITY_BIRTH_DEATH_H_
