#include "reliability/markov_sim.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/profiler.h"
#include "util/thread_pool.h"

namespace ftms {
namespace {

struct Event {
  double time;
  int disk;
  bool is_failure;  // false = repair completion
};
struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return a.time > b.time;
  }
};

Status Validate(const ReliabilitySimConfig& c) {
  if (c.num_disks <= 0) {
    return Status::InvalidArgument("num_disks must be positive");
  }
  if (c.parity_group_size < 2) {
    return Status::InvalidArgument("parity group size must be >= 2");
  }
  if (c.mttf_hours <= 0 || c.mttr_hours <= 0) {
    return Status::InvalidArgument("MTTF/MTTR must be positive");
  }
  if (c.trials <= 0) {
    return Status::InvalidArgument("trials must be positive");
  }
  if (c.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  return Status::Ok();
}

// Per-worker simulation state, allocated once per chunk of trials and
// reused — the trial loop itself is allocation-free after the first trial
// of a chunk (the event heap and the per-cluster counters keep their
// capacity across trials).
struct TrialScratch {
  std::vector<int> down_in_cluster;
  std::vector<uint8_t> down;
  std::vector<Event> heap_storage;
};

// One trial: simulate until `stop(down_per_cluster, total_down, disk)`
// returns true right after a failure event; returns the event time.
template <typename StopFn>
double RunTrial(const ReliabilitySimConfig& c, int cluster_size, Rng& rng,
                TrialScratch& scratch, StopFn stop) {
  const int clusters = (c.num_disks + cluster_size - 1) / cluster_size;
  scratch.down_in_cluster.assign(static_cast<size_t>(clusters), 0);
  scratch.down.assign(static_cast<size_t>(c.num_disks), 0);
  int total_down = 0;

  // Min-heap on the scratch vector (std::push_heap/pop_heap with the
  // inverted comparator) so the event queue's buffer survives the trial.
  std::vector<Event>& heap = scratch.heap_storage;
  heap.clear();
  heap.reserve(static_cast<size_t>(c.num_disks) + 1);
  const EventLater later;
  for (int d = 0; d < c.num_disks; ++d) {
    heap.push_back(Event{rng.ExponentialMean(c.mttf_hours), d, true});
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Event ev = heap.back();
    heap.pop_back();
    const size_t disk = static_cast<size_t>(ev.disk);
    const size_t cluster = static_cast<size_t>(ev.disk / cluster_size);
    if (ev.is_failure) {
      scratch.down[disk] = 1;
      ++scratch.down_in_cluster[cluster];
      ++total_down;
      if (stop(scratch.down_in_cluster, total_down, ev.disk)) return ev.time;
      heap.push_back(
          Event{ev.time + rng.ExponentialMean(c.mttr_hours), ev.disk, false});
    } else {
      scratch.down[disk] = 0;
      --scratch.down_in_cluster[cluster];
      --total_down;
      heap.push_back(
          Event{ev.time + rng.ExponentialMean(c.mttf_hours), ev.disk, true});
    }
    std::push_heap(heap.begin(), heap.end(), later);
  }
  return 0;  // unreachable: the heap is never empty
}

// Publishes one finished estimate into the metrics registry, keyed by the
// estimate kind ("catastrophic", "k_concurrent", "k_degraded_clusters").
// Runs strictly after the parallel trial loop, on the calling thread.
void PublishEstimate(const ReliabilitySimConfig& c, const char* kind,
                     const ReliabilityEstimate& est) {
  MetricsRegistry* registry =
      c.metrics != nullptr ? c.metrics : MetricsRegistry::GlobalIfEnabled();
  if (registry == nullptr) return;
  registry
      ->GetCounter(
          LabeledName("ftms_reliability_trials_total", {{"kind", kind}}),
          "Monte Carlo trials contributing to this reliability estimate")
      ->Add(est.trials);
  registry
      ->GetGauge(
          LabeledName("ftms_reliability_mean_hours", {{"kind", kind}}),
          "Estimated mean hours to the event named by the kind label")
      ->Set(est.mean_hours);
  registry
      ->GetGauge(
          LabeledName("ftms_reliability_ci95_hours", {{"kind", kind}}),
          "Half-width of the 95% confidence interval on the mean")
      ->Set(est.ci95_hours);
}

// Runs `c.trials` independent trials, each on its own deterministic RNG
// stream, parallelized over the shared pool. The per-trial results are
// gathered positionally and folded into the estimate in trial order, so
// the returned numbers are bit-identical for any `c.threads`.
template <typename StopFn>
ReliabilityEstimate RunTrials(const ReliabilitySimConfig& c,
                              int cluster_size, const char* kind,
                              StopFn stop) {
  std::vector<double> times(static_cast<size_t>(c.trials), 0.0);
  const int threads =
      c.threads > 0 ? c.threads : ThreadPool::DefaultThreadCount();
  ThreadPool* pool = threads > 1 ? &ThreadPool::Shared() : nullptr;
  ParallelFor(pool, 0, c.trials, [&](int64_t lo, int64_t hi) {
    TrialScratch scratch;
    for (int64_t t = lo; t < hi; ++t) {
      // One scope per TRIAL (the logical work unit), never per chunk:
      // chunk shapes vary with the thread count, trial counts do not.
      FTMS_PROF_SCOPE("reliability/trial");
      Rng rng(c.seed ^ SplitMix64Hash(static_cast<uint64_t>(t)));
      times[static_cast<size_t>(t)] =
          RunTrial(c, cluster_size, rng, scratch, stop);
    }
  });

  StreamingStats stats;
  for (double t : times) stats.Add(t);
  ReliabilityEstimate est;
  est.mean_hours = stats.mean();
  est.ci95_hours = stats.ConfidenceHalfWidth95();
  est.trials = static_cast<int>(stats.count());
  PublishEstimate(c, kind, est);
  return est;
}

}  // namespace

StatusOr<ReliabilityEstimate> EstimateMttfCatastrophic(
    const ReliabilitySimConfig& config) {
  FTMS_RETURN_IF_ERROR(Validate(config));
  const bool ib = config.scheme == Scheme::kImprovedBandwidth;
  const int cluster_size =
      ib ? config.parity_group_size - 1 : config.parity_group_size;
  if (config.num_disks % cluster_size != 0) {
    return Status::InvalidArgument(
        "num_disks must be a multiple of the cluster size");
  }
  const int clusters = config.num_disks / cluster_size;
  // Single-parity clusters die at two concurrent failures; dual-parity
  // (P+Q) clusters survive two and die at three.
  const int fatal = ParityDisksPerCluster(config.scheme) >= 2 ? 3 : 2;

  return RunTrials(
      config, cluster_size, "catastrophic",
      [ib, clusters, cluster_size,
       fatal](const std::vector<int>& down_per_cluster, int /*total*/,
              int disk) {
        const int cl = disk / cluster_size;
        if (down_per_cluster[static_cast<size_t>(cl)] >= fatal) return true;
        if (!ib) return false;
        // IB: a down disk in an adjacent cluster is also fatal (shared
        // parity dependency across the cluster boundary).
        const int left = (cl + clusters - 1) % clusters;
        const int right = (cl + 1) % clusters;
        return down_per_cluster[static_cast<size_t>(left)] > 0 ||
               down_per_cluster[static_cast<size_t>(right)] > 0;
      });
}

StatusOr<ReliabilityEstimate> EstimateKDegradedClusters(
    const ReliabilitySimConfig& config, int k_clusters) {
  FTMS_RETURN_IF_ERROR(Validate(config));
  const int cluster_size = config.parity_group_size;
  if (config.num_disks % cluster_size != 0) {
    return Status::InvalidArgument(
        "num_disks must be a multiple of the cluster size");
  }
  const int clusters = config.num_disks / cluster_size;
  if (k_clusters < 1 || k_clusters > clusters) {
    return Status::InvalidArgument("k_clusters out of range");
  }
  return RunTrials(
      config, cluster_size, "k_degraded_clusters",
      [k_clusters](const std::vector<int>& down_per_cluster, int, int) {
        int degraded = 0;
        for (int d : down_per_cluster) {
          if (d > 0) ++degraded;
        }
        return degraded >= k_clusters;
      });
}

StatusOr<ReliabilityEstimate> EstimateKConcurrent(
    const ReliabilitySimConfig& config, int k_concurrent) {
  FTMS_RETURN_IF_ERROR(Validate(config));
  if (k_concurrent < 1 || k_concurrent > config.num_disks) {
    return Status::InvalidArgument("k_concurrent out of range");
  }
  return RunTrials(config, config.parity_group_size, "k_concurrent",
                   [k_concurrent](const std::vector<int>&, int total, int) {
                     return total >= k_concurrent;
                   });
}

}  // namespace ftms
