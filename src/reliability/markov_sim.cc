#include "reliability/markov_sim.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace ftms {
namespace {

struct Event {
  double time;
  int disk;
  bool is_failure;  // false = repair completion
};
struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return a.time > b.time;
  }
};

Status Validate(const ReliabilitySimConfig& c) {
  if (c.num_disks <= 0) {
    return Status::InvalidArgument("num_disks must be positive");
  }
  if (c.parity_group_size < 2) {
    return Status::InvalidArgument("parity group size must be >= 2");
  }
  if (c.mttf_hours <= 0 || c.mttr_hours <= 0) {
    return Status::InvalidArgument("MTTF/MTTR must be positive");
  }
  if (c.trials <= 0) {
    return Status::InvalidArgument("trials must be positive");
  }
  return Status::Ok();
}

// One trial: simulate until `stop(down_per_cluster, total_down, disk)`
// returns true right after a failure event; returns the event time.
template <typename StopFn>
double RunTrial(const ReliabilitySimConfig& c, int cluster_size, Rng& rng,
                StopFn stop) {
  const int clusters = (c.num_disks + cluster_size - 1) / cluster_size;
  std::vector<int> down_in_cluster(static_cast<size_t>(clusters), 0);
  std::vector<bool> down(static_cast<size_t>(c.num_disks), false);
  int total_down = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  for (int d = 0; d < c.num_disks; ++d) {
    queue.push(Event{rng.ExponentialMean(c.mttf_hours), d, true});
  }
  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    const size_t disk = static_cast<size_t>(ev.disk);
    const size_t cluster = static_cast<size_t>(ev.disk / cluster_size);
    if (ev.is_failure) {
      down[disk] = true;
      ++down_in_cluster[cluster];
      ++total_down;
      if (stop(down_in_cluster, total_down, ev.disk)) return ev.time;
      queue.push(
          Event{ev.time + rng.ExponentialMean(c.mttr_hours), ev.disk, false});
    } else {
      down[disk] = false;
      --down_in_cluster[cluster];
      --total_down;
      queue.push(
          Event{ev.time + rng.ExponentialMean(c.mttf_hours), ev.disk, true});
    }
  }
  return 0;  // unreachable: the queue is never empty
}

ReliabilityEstimate Summarize(const StreamingStats& stats) {
  ReliabilityEstimate est;
  est.mean_hours = stats.mean();
  est.ci95_hours = stats.ConfidenceHalfWidth95();
  est.trials = static_cast<int>(stats.count());
  return est;
}

}  // namespace

StatusOr<ReliabilityEstimate> EstimateMttfCatastrophic(
    const ReliabilitySimConfig& config) {
  FTMS_RETURN_IF_ERROR(Validate(config));
  const bool ib = config.scheme == Scheme::kImprovedBandwidth;
  const int cluster_size =
      ib ? config.parity_group_size - 1 : config.parity_group_size;
  if (config.num_disks % cluster_size != 0) {
    return Status::InvalidArgument(
        "num_disks must be a multiple of the cluster size");
  }
  const int clusters = config.num_disks / cluster_size;

  Rng rng(config.seed);
  StreamingStats stats;
  for (int t = 0; t < config.trials; ++t) {
    const double time = RunTrial(
        config, cluster_size, rng,
        [&](const std::vector<int>& down_per_cluster, int /*total*/,
            int disk) {
          const int cl = disk / cluster_size;
          if (down_per_cluster[static_cast<size_t>(cl)] >= 2) return true;
          if (!ib) return false;
          // IB: a down disk in an adjacent cluster is also fatal (shared
          // parity dependency across the cluster boundary).
          const int left = (cl + clusters - 1) % clusters;
          const int right = (cl + 1) % clusters;
          return down_per_cluster[static_cast<size_t>(left)] > 0 ||
                 down_per_cluster[static_cast<size_t>(right)] > 0;
        });
    stats.Add(time);
  }
  return Summarize(stats);
}

StatusOr<ReliabilityEstimate> EstimateKDegradedClusters(
    const ReliabilitySimConfig& config, int k_clusters) {
  FTMS_RETURN_IF_ERROR(Validate(config));
  const int cluster_size = config.parity_group_size;
  if (config.num_disks % cluster_size != 0) {
    return Status::InvalidArgument(
        "num_disks must be a multiple of the cluster size");
  }
  const int clusters = config.num_disks / cluster_size;
  if (k_clusters < 1 || k_clusters > clusters) {
    return Status::InvalidArgument("k_clusters out of range");
  }
  Rng rng(config.seed);
  StreamingStats stats;
  for (int t = 0; t < config.trials; ++t) {
    const double time = RunTrial(
        config, cluster_size, rng,
        [&](const std::vector<int>& down_per_cluster, int, int) {
          int degraded = 0;
          for (int d : down_per_cluster) {
            if (d > 0) ++degraded;
          }
          return degraded >= k_clusters;
        });
    stats.Add(time);
  }
  return Summarize(stats);
}

StatusOr<ReliabilityEstimate> EstimateKConcurrent(
    const ReliabilitySimConfig& config, int k_concurrent) {
  FTMS_RETURN_IF_ERROR(Validate(config));
  if (k_concurrent < 1 || k_concurrent > config.num_disks) {
    return Status::InvalidArgument("k_concurrent out of range");
  }
  Rng rng(config.seed);
  StreamingStats stats;
  for (int t = 0; t < config.trials; ++t) {
    const double time =
        RunTrial(config, config.parity_group_size, rng,
                 [&](const std::vector<int>&, int total, int) {
                   return total >= k_concurrent;
                 });
    stats.Add(time);
  }
  return Summarize(stats);
}

}  // namespace ftms
