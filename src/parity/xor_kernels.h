#ifndef FTMS_PARITY_XOR_KERNELS_H_
#define FTMS_PARITY_XOR_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/status.h"

namespace ftms {

class MetricsRegistry;

// Vectorized multi-source XOR kernels with runtime dispatch.
//
// Every degraded read, rebuild pass, scrub and parity verify bottoms out
// in "dst ^= s0 ^ s1 ^ ... ^ s(n-1)". Doing that pairwise makes n full
// passes over dst; a multi-source kernel makes ONE pass, keeping the
// destination in registers while it streams the sources. Like Linux's
// xor_blocks, the dispatcher micro-benchmarks every kernel the binary
// was compiled with AND the CPU can run, once at startup, and picks the
// fastest; FTMS_XOR_KERNEL=<name> pins the choice instead (and
// FTMS_XOR_KERNEL=scalar is how CI proves all kernels agree byte for
// byte).
//
// Determinism: XOR is exact, so every kernel produces byte-identical
// output — selection affects speed only, never results.

// Kernels fold at most this many sources per call; XorIntoN() batches
// larger groups.
inline constexpr int kMaxXorSources = 8;

struct XorKernel {
  // Stable lowercase identifier: "scalar", "sse2", "avx2", "avx512",
  // "neon". Used by FTMS_XOR_KERNEL and in metric labels.
  const char* name;
  // True when the running CPU can execute this kernel. (Kernels the
  // COMPILER could not build are absent from CompiledXorKernels()
  // entirely.)
  bool (*supported)();
  // dst[i] ^= srcs[0][i] ^ ... ^ srcs[nsrc-1][i] for i in [0, bytes).
  // Requires 1 <= nsrc <= kMaxXorSources. No alignment requirements on
  // dst or any source; sources may not overlap dst.
  void (*xor_n)(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
                size_t bytes);
};

// Every kernel compiled into this binary, scalar first. Entries are
// stable for the process lifetime.
std::span<const XorKernel> CompiledXorKernels();

// The dispatched kernel: the FTMS_XOR_KERNEL pin if set and valid,
// otherwise the micro-benchmark winner. Selection runs once on first
// use and is thread-safe.
const XorKernel& ActiveXorKernel();
const char* ActiveXorKernelName();

// dst ^= XOR of all sources, one fused pass per kMaxXorSources batch
// through the active kernel. Any nsrc >= 0 (0 is a no-op).
void XorIntoN(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
              size_t bytes);

// One row of the startup selection report.
struct XorKernelMeasurement {
  const char* name = nullptr;
  bool supported = false;   // CPU can run it
  double gb_per_s = 0.0;    // 0 when unsupported; counts source reads +
                            // dst read + dst write (memory traffic)
  bool selected = false;
};

// The measurements the dispatcher took (one entry per compiled kernel,
// in CompiledXorKernels() order). Triggers selection on first call.
std::span<const XorKernelMeasurement> XorKernelSelectionReport();

// Looks up a compiled kernel by name; InvalidArgument on unknown names
// (the message lists the valid ones).
StatusOr<const XorKernel*> FindXorKernel(std::string_view name);

// Parses an FTMS_XOR_KERNEL-style value. "" and "auto" mean
// auto-select and return nullptr; otherwise the named kernel, which
// must be compiled in (InvalidArgument) and runnable on this CPU
// (FailedPrecondition).
StatusOr<const XorKernel*> ParseXorKernelSpec(std::string_view spec);

// Test hook: overrides the active kernel (nullptr returns to the
// dispatcher's choice). Not for production use — the metrics exported
// at selection time keep describing the dispatcher's pick.
void PinXorKernel(const XorKernel* kernel);

// Publishes the selection as gauges in `registry` (no-op when null):
//   ftms_parity_kernel_gb_per_s{kernel="..."}  measured throughput
//   ftms_parity_kernel_active{kernel="..."}    1 for the dispatched kernel
// Called automatically against the global registry (when enabled) at
// selection time; benches with private registries call it directly.
void ExportXorKernelMetrics(MetricsRegistry* registry);

}  // namespace ftms

#endif  // FTMS_PARITY_XOR_KERNELS_H_
