#include "parity/parity.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "parity/gf256.h"

namespace ftms {
namespace {

// Folds blocks[first..), minus the optional skip index, into dst in
// kernel-width batches: each batch is one pass over dst.
void FoldBlocksInto(std::span<uint8_t> dst, std::span<const Block> blocks,
                    size_t first, size_t skip = static_cast<size_t>(-1)) {
  const uint8_t* srcs[kMaxXorSources];
  int pending = 0;
  for (size_t i = first; i < blocks.size(); ++i) {
    if (i == skip) continue;
    srcs[pending++] = blocks[i].data();
    if (pending == kMaxXorSources) {
      XorIntoN(dst.data(), srcs, pending, dst.size());
      pending = 0;
    }
  }
  XorIntoN(dst.data(), srcs, pending, dst.size());
}

}  // namespace

void XorInto(std::span<uint8_t> dst, std::span<const uint8_t> src) {
  assert(dst.size() == src.size());
  const uint8_t* s = src.data();
  XorIntoN(dst.data(), &s, 1, dst.size());
}

void XorIntoN(std::span<uint8_t> dst, const uint8_t* const* srcs,
              int nsrc) {
  XorIntoN(dst.data(), srcs, nsrc, dst.size());
}

StatusOr<size_t> CheckEqualBlockSizes(std::span<const Block> blocks,
                                      const Block* extra) {
  if (blocks.empty() && extra == nullptr) {
    return Status::InvalidArgument("parity of empty group");
  }
  const size_t size = extra != nullptr ? extra->size()
                                       : blocks.front().size();
  for (const Block& b : blocks) {
    if (b.size() != size) {
      return Status::InvalidArgument("parity group blocks differ in size");
    }
  }
  return size;
}

StatusOr<Block> ComputeParity(std::span<const Block> blocks) {
  StatusOr<size_t> size = CheckEqualBlockSizes(blocks);
  if (!size.ok()) return size.status();
  Block parity = blocks.front();
  FoldBlocksInto(parity, blocks, 1);
  return parity;
}

StatusOr<Block> ReconstructMissing(std::span<const Block> survivors,
                                   const Block& parity) {
  StatusOr<size_t> size = CheckEqualBlockSizes(survivors, &parity);
  if (!size.ok()) {
    return Status::InvalidArgument(
        "survivor block size differs from parity block size");
  }
  Block result = parity;
  FoldBlocksInto(result, survivors, 0);
  return result;
}

StatusOr<bool> VerifyGroup(std::span<const Block> data, const Block& parity) {
  if (data.empty()) {
    return Status::InvalidArgument("parity of empty group");
  }
  StatusOr<size_t> size = CheckEqualBlockSizes(data, &parity);
  if (!size.ok()) {
    return Status::InvalidArgument("parity block size mismatch");
  }
  // Accumulate-and-compare through a stack chunk: XOR parity and every
  // data block together one chunk at a time and test for zero, without
  // ever materializing the computed parity block.
  constexpr size_t kChunk = 4096;
  uint8_t chunk[kChunk];
  const uint8_t* srcs[kMaxXorSources];
  for (size_t off = 0; off < *size; off += kChunk) {
    const size_t n = std::min(kChunk, *size - off);
    std::memcpy(chunk, parity.data() + off, n);
    size_t i = 0;
    while (i < data.size()) {
      int pending = 0;
      while (i < data.size() && pending < kMaxXorSources) {
        srcs[pending++] = data[i++].data() + off;
      }
      XorIntoN(chunk, srcs, pending, n);
    }
    for (size_t j = 0; j < n; ++j) {
      if (chunk[j] != 0) return false;
    }
  }
  return true;
}

namespace {

// Accumulates the P/Q syndromes of every data block except the (up to
// two) skipped indices into p/q, each block weighted by its TRUE
// column coefficient g^i — the survivor fold of two-erasure repair.
void AccumulatePqSurvivors(std::span<const Block> data, size_t skip1,
                           size_t skip2, uint8_t* p, uint8_t* q,
                           size_t bytes) {
  const uint8_t* srcs[kMaxPqSources];
  uint8_t coeffs[kMaxPqSources];
  int pending = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (i == skip1 || i == skip2) continue;
    srcs[pending] = data[i].data();
    coeffs[pending] = gf256::Exp(static_cast<int>(i));
    if (++pending == kMaxPqSources) {
      PqAccumulate(p, q, srcs, coeffs, pending, bytes);
      pending = 0;
    }
  }
  PqAccumulate(p, q, srcs, coeffs, pending, bytes);
}

constexpr size_t kNoSkip = static_cast<size_t>(-1);

}  // namespace

Status ComputePq(std::span<const Block> data, Block* p, Block* q) {
  StatusOr<size_t> size = CheckEqualBlockSizes(data);
  if (!size.ok()) return size.status();
  p->assign(*size, 0);
  q->assign(*size, 0);
  std::vector<const uint8_t*> srcs(data.size());
  for (size_t i = 0; i < data.size(); ++i) srcs[i] = data[i].data();
  PqGenerateN(p->data(), q->data(), srcs.data(),
              static_cast<int>(srcs.size()), *size);
  return Status::Ok();
}

StatusOr<bool> VerifyPqGroup(std::span<const Block> data, const Block& p,
                             const Block& q) {
  StatusOr<size_t> size = CheckEqualBlockSizes(data, &p);
  if (!size.ok() || q.size() != *size) {
    return Status::InvalidArgument("pq group block size mismatch");
  }
  Block want_p, want_q;
  Status computed = ComputePq(data, &want_p, &want_q);
  if (!computed.ok()) return computed;
  return want_p == p && want_q == q;
}

Status ReconstructPq(std::span<Block> data, Block* p, Block* q,
                     std::span<const int> missing) {
  const int k = static_cast<int>(data.size());
  if (k == 0) return Status::InvalidArgument("pq group with no data");
  if (missing.size() > 2) {
    return Status::InvalidArgument(
        "pq groups recover at most two erasures");
  }
  std::span<const Block> cdata(data.data(), data.size());
  StatusOr<size_t> checked = CheckEqualBlockSizes(cdata, p);
  if (!checked.ok() || q->size() != *checked) {
    return Status::InvalidArgument("pq group block size mismatch");
  }
  const size_t size = *checked;
  int m0 = missing.size() > 0 ? missing[0] : -1;
  int m1 = missing.size() > 1 ? missing[1] : -1;
  if (missing.size() == 2 && m0 > m1) std::swap(m0, m1);
  for (const int m : missing) {
    if (m < 0 || m > k + 1) {
      return Status::InvalidArgument("pq unit index out of range");
    }
  }
  if (missing.size() == 2 && m0 == m1) {
    return Status::InvalidArgument("duplicate pq unit index");
  }

  if (missing.empty()) return Status::Ok();

  if (missing.size() == 1) {
    if (m0 < k) {
      // Single data erasure: plain XOR through P, exactly the
      // single-parity path.
      data[m0].assign(p->begin(), p->end());
      FoldBlocksInto(data[m0], cdata, 0, static_cast<size_t>(m0));
    } else if (m0 == k) {
      p->assign(data[0].begin(), data[0].end());
      FoldBlocksInto(*p, cdata, 1);
    } else {
      // Q alone: regenerate the syndrome (the P half lands in scratch).
      Block scratch(size);
      q->assign(size, 0);
      AccumulatePqSurvivors(cdata, kNoSkip, kNoSkip, scratch.data(),
                            q->data(), size);
    }
    return Status::Ok();
  }

  if (m1 == k + 1 && m0 == k) {
    // P+Q: both syndromes from intact data.
    return ComputePq(cdata, p, q);
  }
  if (m1 == k + 1) {
    // Data + Q: recover the data block through P, then regenerate Q.
    data[m0].assign(p->begin(), p->end());
    FoldBlocksInto(data[m0], cdata, 0, static_cast<size_t>(m0));
    Block scratch(size);
    q->assign(size, 0);
    AccumulatePqSurvivors(cdata, kNoSkip, kNoSkip, scratch.data(),
                          q->data(), size);
    return Status::Ok();
  }
  if (m1 == k) {
    // Data + P: fold the survivors' Q-syndrome into Q, leaving
    // g^m0 * D_m0; scale by g^-m0, then rebuild P from complete data.
    Block scratch(size);
    Block qprime(q->begin(), q->end());
    AccumulatePqSurvivors(cdata, static_cast<size_t>(m0), kNoSkip,
                          scratch.data(), qprime.data(), size);
    data[m0].assign(size, 0);
    GfMulXorInto(data[m0].data(), qprime.data(), gf256::Exp(-m0), size);
    p->assign(data[0].begin(), data[0].end());
    FoldBlocksInto(*p, cdata, 1);
    return Status::Ok();
  }

  // Two data erasures x < y (Anvin's recipe): with P' and Q' the
  // partial syndromes of the survivors folded into P and Q,
  //   D_x = A*P' ^ B*Q',  D_y = P' ^ D_x.
  const int x = m0;
  const int y = m1;
  Block pprime(p->begin(), p->end());
  Block qprime(q->begin(), q->end());
  AccumulatePqSurvivors(cdata, static_cast<size_t>(x),
                        static_cast<size_t>(y), pprime.data(),
                        qprime.data(), size);
  uint8_t a, b;
  gf256::TwoDataCoefficients(x, y, &a, &b);
  data[x].assign(size, 0);
  GfMulXorInto(data[x].data(), pprime.data(), a, size);
  GfMulXorInto(data[x].data(), qprime.data(), b, size);
  data[y] = std::move(pprime);
  XorInto(data[y], data[x]);
  return Status::Ok();
}

Status ParityAccumulator::Add(std::span<const uint8_t> block) {
  const uint8_t* src = block.data();
  return AddSources(&src, 1, block.size());
}

Status ParityAccumulator::AddSources(const uint8_t* const* blocks, int count,
                                     size_t block_size) {
  if (count <= 0) return Status::Ok();
  int first = 0;
  if (count_ == 0) {
    // Seed with a single copy of the first block — no zero-fill and no
    // redundant XOR against a cleared buffer.
    acc_.assign(blocks[0], blocks[0] + block_size);
    ++count_;
    ++first;
  }
  if (block_size != acc_.size()) {
    return Status::InvalidArgument("accumulator block size mismatch");
  }
  XorIntoN(acc_.data(), blocks + first, count - first, block_size);
  count_ += count - first;
  return Status::Ok();
}

Block ParityAccumulator::Take() {
  Block out = std::move(acc_);
  Reset();
  return out;
}

void ParityAccumulator::Reset() {
  acc_.clear();
  count_ = 0;
}

}  // namespace ftms
