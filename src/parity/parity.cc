#include "parity/parity.h"

#include <algorithm>
#include <cassert>

namespace ftms {

void XorInto(std::span<uint8_t> dst, std::span<const uint8_t> src) {
  assert(dst.size() == src.size());
  size_t i = 0;
  // Word-at-a-time main loop; tracks are 50 KB so this path dominates.
  const size_t words = dst.size() / sizeof(uint64_t);
  for (size_t w = 0; w < words; ++w) {
    uint64_t d;
    uint64_t s;
    __builtin_memcpy(&d, dst.data() + w * sizeof(uint64_t), sizeof(d));
    __builtin_memcpy(&s, src.data() + w * sizeof(uint64_t), sizeof(s));
    d ^= s;
    __builtin_memcpy(dst.data() + w * sizeof(uint64_t), &d, sizeof(d));
  }
  for (i = words * sizeof(uint64_t); i < dst.size(); ++i) {
    dst[i] = static_cast<uint8_t>(dst[i] ^ src[i]);
  }
}

StatusOr<Block> ComputeParity(std::span<const Block> blocks) {
  if (blocks.empty()) {
    return Status::InvalidArgument("parity of empty group");
  }
  const size_t size = blocks.front().size();
  for (const Block& b : blocks) {
    if (b.size() != size) {
      return Status::InvalidArgument("parity group blocks differ in size");
    }
  }
  Block parity = blocks.front();
  for (size_t i = 1; i < blocks.size(); ++i) {
    XorInto(parity, blocks[i]);
  }
  return parity;
}

StatusOr<Block> ReconstructMissing(std::span<const Block> survivors,
                                   const Block& parity) {
  Block result = parity;
  for (const Block& b : survivors) {
    if (b.size() != result.size()) {
      return Status::InvalidArgument(
          "survivor block size differs from parity block size");
    }
    XorInto(result, b);
  }
  return result;
}

StatusOr<bool> VerifyGroup(std::span<const Block> data, const Block& parity) {
  StatusOr<Block> computed = ComputeParity(data);
  if (!computed.ok()) return computed.status();
  if (computed->size() != parity.size()) {
    return Status::InvalidArgument("parity block size mismatch");
  }
  return std::equal(computed->begin(), computed->end(), parity.begin());
}

Status ParityAccumulator::Add(std::span<const uint8_t> block) {
  if (count_ == 0) {
    acc_.assign(block.begin(), block.end());
  } else {
    if (block.size() != acc_.size()) {
      return Status::InvalidArgument("accumulator block size mismatch");
    }
    XorInto(acc_, block);
  }
  ++count_;
  return Status::Ok();
}

Block ParityAccumulator::Take() {
  Block out = std::move(acc_);
  Reset();
  return out;
}

void ParityAccumulator::Reset() {
  acc_.clear();
  count_ = 0;
}

}  // namespace ftms
