#include "parity/parity.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ftms {
namespace {

// Folds blocks[first..), minus the optional skip index, into dst in
// kernel-width batches: each batch is one pass over dst.
void FoldBlocksInto(std::span<uint8_t> dst, std::span<const Block> blocks,
                    size_t first, size_t skip = static_cast<size_t>(-1)) {
  const uint8_t* srcs[kMaxXorSources];
  int pending = 0;
  for (size_t i = first; i < blocks.size(); ++i) {
    if (i == skip) continue;
    srcs[pending++] = blocks[i].data();
    if (pending == kMaxXorSources) {
      XorIntoN(dst.data(), srcs, pending, dst.size());
      pending = 0;
    }
  }
  XorIntoN(dst.data(), srcs, pending, dst.size());
}

}  // namespace

void XorInto(std::span<uint8_t> dst, std::span<const uint8_t> src) {
  assert(dst.size() == src.size());
  const uint8_t* s = src.data();
  XorIntoN(dst.data(), &s, 1, dst.size());
}

void XorIntoN(std::span<uint8_t> dst, const uint8_t* const* srcs,
              int nsrc) {
  XorIntoN(dst.data(), srcs, nsrc, dst.size());
}

StatusOr<size_t> CheckEqualBlockSizes(std::span<const Block> blocks,
                                      const Block* extra) {
  if (blocks.empty() && extra == nullptr) {
    return Status::InvalidArgument("parity of empty group");
  }
  const size_t size = extra != nullptr ? extra->size()
                                       : blocks.front().size();
  for (const Block& b : blocks) {
    if (b.size() != size) {
      return Status::InvalidArgument("parity group blocks differ in size");
    }
  }
  return size;
}

StatusOr<Block> ComputeParity(std::span<const Block> blocks) {
  StatusOr<size_t> size = CheckEqualBlockSizes(blocks);
  if (!size.ok()) return size.status();
  Block parity = blocks.front();
  FoldBlocksInto(parity, blocks, 1);
  return parity;
}

StatusOr<Block> ReconstructMissing(std::span<const Block> survivors,
                                   const Block& parity) {
  StatusOr<size_t> size = CheckEqualBlockSizes(survivors, &parity);
  if (!size.ok()) {
    return Status::InvalidArgument(
        "survivor block size differs from parity block size");
  }
  Block result = parity;
  FoldBlocksInto(result, survivors, 0);
  return result;
}

StatusOr<bool> VerifyGroup(std::span<const Block> data, const Block& parity) {
  if (data.empty()) {
    return Status::InvalidArgument("parity of empty group");
  }
  StatusOr<size_t> size = CheckEqualBlockSizes(data, &parity);
  if (!size.ok()) {
    return Status::InvalidArgument("parity block size mismatch");
  }
  // Accumulate-and-compare through a stack chunk: XOR parity and every
  // data block together one chunk at a time and test for zero, without
  // ever materializing the computed parity block.
  constexpr size_t kChunk = 4096;
  uint8_t chunk[kChunk];
  const uint8_t* srcs[kMaxXorSources];
  for (size_t off = 0; off < *size; off += kChunk) {
    const size_t n = std::min(kChunk, *size - off);
    std::memcpy(chunk, parity.data() + off, n);
    size_t i = 0;
    while (i < data.size()) {
      int pending = 0;
      while (i < data.size() && pending < kMaxXorSources) {
        srcs[pending++] = data[i++].data() + off;
      }
      XorIntoN(chunk, srcs, pending, n);
    }
    for (size_t j = 0; j < n; ++j) {
      if (chunk[j] != 0) return false;
    }
  }
  return true;
}

Status ParityAccumulator::Add(std::span<const uint8_t> block) {
  const uint8_t* src = block.data();
  return AddSources(&src, 1, block.size());
}

Status ParityAccumulator::AddSources(const uint8_t* const* blocks, int count,
                                     size_t block_size) {
  if (count <= 0) return Status::Ok();
  int first = 0;
  if (count_ == 0) {
    // Seed with a single copy of the first block — no zero-fill and no
    // redundant XOR against a cleared buffer.
    acc_.assign(blocks[0], blocks[0] + block_size);
    ++count_;
    ++first;
  }
  if (block_size != acc_.size()) {
    return Status::InvalidArgument("accumulator block size mismatch");
  }
  XorIntoN(acc_.data(), blocks + first, count - first, block_size);
  count_ += count - first;
  return Status::Ok();
}

Block ParityAccumulator::Take() {
  Block out = std::move(acc_);
  Reset();
  return out;
}

void ParityAccumulator::Reset() {
  acc_.clear();
  count_ = 0;
}

}  // namespace ftms
