#include "parity/xor_kernels_internal.h"

#if defined(FTMS_XOR_BUILD_AVX512) && defined(__AVX512F__)

#include <immintrin.h>

namespace ftms::internal {
namespace {

bool Avx512Supported() { return __builtin_cpu_supports("avx512f"); }

void XorNAvx512(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
                size_t bytes) {
  size_t off = 0;
  for (; off + 256 <= bytes; off += 256) {
    __m512i a0 = _mm512_loadu_si512(dst + off);
    __m512i a1 = _mm512_loadu_si512(dst + off + 64);
    __m512i a2 = _mm512_loadu_si512(dst + off + 128);
    __m512i a3 = _mm512_loadu_si512(dst + off + 192);
    for (int s = 0; s < nsrc; ++s) {
      const uint8_t* src = srcs[s] + off;
      a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(src));
      a1 = _mm512_xor_si512(a1, _mm512_loadu_si512(src + 64));
      a2 = _mm512_xor_si512(a2, _mm512_loadu_si512(src + 128));
      a3 = _mm512_xor_si512(a3, _mm512_loadu_si512(src + 192));
    }
    _mm512_storeu_si512(dst + off, a0);
    _mm512_storeu_si512(dst + off + 64, a1);
    _mm512_storeu_si512(dst + off + 128, a2);
    _mm512_storeu_si512(dst + off + 192, a3);
  }
  for (; off + 64 <= bytes; off += 64) {
    __m512i a = _mm512_loadu_si512(dst + off);
    for (int s = 0; s < nsrc; ++s) {
      a = _mm512_xor_si512(a, _mm512_loadu_si512(srcs[s] + off));
    }
    _mm512_storeu_si512(dst + off, a);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxXorSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    XorNScalarImpl(dst + off, tails, nsrc, bytes - off);
  }
}

}  // namespace

const XorKernel* GetXorKernelAvx512() {
  static constexpr XorKernel kKernel = {"avx512", Avx512Supported,
                                        XorNAvx512};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without AVX-512 support

namespace ftms::internal {
const XorKernel* GetXorKernelAvx512() { return nullptr; }
}  // namespace ftms::internal

#endif
