#include "parity/pq_kernels_internal.h"

#if defined(FTMS_PQ_BUILD_GFNI) && defined(__GFNI__) && \
    defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include "parity/gf256.h"

namespace ftms::internal {
namespace {

// 512-bit VGF2P8AFFINEQB needs GFNI + AVX-512F (GCC additionally gates
// the intrinsic behind AVX-512BW). The instruction's own gf2p8mulb is
// locked to polynomial 0x11b; the affine form takes our 0x11d multiply
// as an 8x8 bit matrix, so one instruction does 64 GF multiplies with
// no table loads at all.
bool GfniSupported() {
  return __builtin_cpu_supports("gfni") &&
         __builtin_cpu_supports("avx512bw");
}

void PqGfni(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
            const uint8_t* coeffs, int nsrc, size_t bytes) {
  __m512i mats[kMaxPqSources];
  for (int s = 0; s < nsrc; ++s) {
    mats[s] = _mm512_set1_epi64(
        static_cast<long long>(gf256::GfniMatrix(coeffs[s])));
  }
  size_t off = 0;
  for (; off + 64 <= bytes; off += 64) {
    __m512i vp = _mm512_loadu_si512(p + off);
    __m512i vq = _mm512_loadu_si512(q + off);
    for (int s = 0; s < nsrc; ++s) {
      const __m512i v = _mm512_loadu_si512(srcs[s] + off);
      vp = _mm512_xor_si512(vp, v);
      vq = _mm512_xor_si512(
          vq, _mm512_gf2p8affine_epi64_epi8(v, mats[s], 0));
    }
    _mm512_storeu_si512(p + off, vp);
    _mm512_storeu_si512(q + off, vq);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxPqSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    PqScalarImpl(p + off, q + off, tails, coeffs, nsrc, bytes - off);
  }
}

void MulXorGfni(uint8_t* dst, const uint8_t* src, uint8_t c,
                size_t bytes) {
  const __m512i mat = _mm512_set1_epi64(
      static_cast<long long>(gf256::GfniMatrix(c)));
  size_t off = 0;
  for (; off + 64 <= bytes; off += 64) {
    const __m512i v = _mm512_loadu_si512(src + off);
    __m512i d = _mm512_loadu_si512(dst + off);
    d = _mm512_xor_si512(d, _mm512_gf2p8affine_epi64_epi8(v, mat, 0));
    _mm512_storeu_si512(dst + off, d);
  }
  if (off < bytes) MulXorScalarImpl(dst + off, src + off, c, bytes - off);
}

}  // namespace

const PqKernel* GetPqKernelGfni() {
  static constexpr PqKernel kKernel = {"gfni", GfniSupported, PqGfni,
                                       MulXorGfni};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without GFNI + AVX-512 support

namespace ftms::internal {
const PqKernel* GetPqKernelGfni() { return nullptr; }
}  // namespace ftms::internal

#endif
