#include "parity/xor_kernels_internal.h"

namespace ftms::internal {
namespace {

bool AlwaysSupported() { return true; }

}  // namespace

void XorNScalarImpl(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
                    size_t bytes) {
  size_t off = 0;
  // Word-at-a-time over the destination, folding every source before the
  // store: one pass over dst regardless of group size. memcpy loads keep
  // this UB-free on unaligned spans; compilers lower them to plain
  // (auto-vectorizable) loads.
  for (; off + 8 <= bytes; off += 8) {
    uint64_t d;
    __builtin_memcpy(&d, dst + off, 8);
    for (int s = 0; s < nsrc; ++s) {
      uint64_t v;
      __builtin_memcpy(&v, srcs[s] + off, 8);
      d ^= v;
    }
    __builtin_memcpy(dst + off, &d, 8);
  }
  for (; off < bytes; ++off) {
    uint8_t d = dst[off];
    for (int s = 0; s < nsrc; ++s) {
      d = static_cast<uint8_t>(d ^ srcs[s][off]);
    }
    dst[off] = d;
  }
}

const XorKernel* GetXorKernelScalar() {
  static constexpr XorKernel kKernel = {"scalar", AlwaysSupported,
                                        XorNScalarImpl};
  return &kKernel;
}

}  // namespace ftms::internal
