#include "parity/gf256.h"

#include <cassert>

namespace ftms::gf256 {

uint8_t MulSlow(uint8_t a, uint8_t b) {
  unsigned acc = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= kPoly;
  }
  return static_cast<uint8_t>(acc);
}

const Tables& GetTables() {
  static const Tables* tables = [] {
    auto* t = new Tables();
    unsigned x = 1;
    for (int i = 0; i < 255; ++i) {
      t->exp[i] = static_cast<uint8_t>(x);
      t->exp[i + 255] = static_cast<uint8_t>(x);
      t->log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPoly;
    }
    assert(x == 1);  // g must have full order 255
    t->log[0] = 0;
    t->inv[0] = 0;
    for (int a = 1; a < 256; ++a) {
      t->inv[a] = t->exp[255 - t->log[a]];
    }
    for (int a = 0; a < 256; ++a) {
      t->mul[0][a] = 0;
      t->mul[a][0] = 0;
    }
    for (int a = 1; a < 256; ++a) {
      const int la = t->log[a];
      for (int b = 1; b < 256; ++b) {
        t->mul[a][b] = t->exp[la + t->log[b]];
      }
    }
    return t;
  }();
  return *tables;
}

uint8_t Exp(int e) {
  int r = e % 255;
  if (r < 0) r += 255;
  return GetTables().exp[r];
}

uint8_t Log(uint8_t a) {
  assert(a != 0);
  return GetTables().log[a];
}

uint8_t Inv(uint8_t a) {
  assert(a != 0);
  return GetTables().inv[a];
}

void NibbleTables(uint8_t c, uint8_t lo[16], uint8_t hi[16]) {
  const uint8_t* row = MulRow(c);
  for (int i = 0; i < 16; ++i) {
    lo[i] = row[i];
    hi[i] = row[i << 4];
  }
}

uint64_t GfniMatrix(uint8_t c) {
  // GF2P8AFFINEQB computes dst bit i = parity(matrix_byte[7-i] & src),
  // so byte k of the qword is the row for output bit 7-k, and bit j of
  // that row must be bit (7-k) of c * 2^j.
  uint64_t m = 0;
  for (int k = 0; k < 8; ++k) {
    uint8_t row = 0;
    for (int j = 0; j < 8; ++j) {
      if ((Mul(c, static_cast<uint8_t>(1u << j)) >> (7 - k)) & 1) {
        row |= static_cast<uint8_t>(1u << j);
      }
    }
    m |= static_cast<uint64_t>(row) << (8 * k);
  }
  return m;
}

void TwoDataCoefficients(int x, int y, uint8_t* a, uint8_t* b) {
  assert(0 <= x && x < y);
  const uint8_t gyx = Exp(y - x);
  const uint8_t denom_inv = Inv(static_cast<uint8_t>(gyx ^ 1));
  *a = Mul(gyx, denom_inv);
  *b = Mul(Exp(-x), denom_inv);
}

}  // namespace ftms::gf256
