#ifndef FTMS_PARITY_PARITY_H_
#define FTMS_PARITY_PARITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "parity/xor_kernels.h"
#include "util/status.h"

namespace ftms {

// A data block: the contents of one disk track. All blocks in a parity
// group must have equal size (one track, B bytes).
using Block = std::vector<uint8_t>;

// dst ^= src, byte-wise, through the dispatched xor kernel. Sizes must
// match.
void XorInto(std::span<uint8_t> dst, std::span<const uint8_t> src);

// dst ^= srcs[0] ^ ... ^ srcs[nsrc-1] in one fused pass over dst (the
// kernel batches groups larger than kMaxXorSources). Every source must
// be dst.size() bytes; nsrc may be 0 (no-op).
void XorIntoN(std::span<uint8_t> dst, const uint8_t* const* srcs, int nsrc);

// Verifies that every block (plus `extra`, when non-null) shares one
// size and returns it. InvalidArgument on a mismatch or when there is
// nothing to size (empty blocks and no extra). Shared precheck of
// ComputeParity / ReconstructMissing / VerifyGroup.
StatusOr<size_t> CheckEqualBlockSizes(std::span<const Block> blocks,
                                      const Block* extra = nullptr);

// Returns the bitwise XOR of all `blocks` (which must be non-empty and of
// equal size). This is the parity block of a parity group:
//   Xp = X0 ^ X1 ^ ... ^ X(C-2)   (paper Section 1, Figure 3).
StatusOr<Block> ComputeParity(std::span<const Block> blocks);

// Reconstructs the single missing data block of a parity group on the fly:
// given the C-2 surviving data blocks and the parity block, the missing
// block is their XOR. `survivors` are the available data blocks in any
// order. This is the degraded-mode read path of every scheme in the paper.
StatusOr<Block> ReconstructMissing(std::span<const Block> survivors,
                                   const Block& parity);

// Verifies that parity XOR all data blocks is zero, i.e. the group is
// internally consistent. Allocation-free: the fold runs chunk-wise
// through a stack buffer and never materializes the computed parity.
StatusOr<bool> VerifyGroup(std::span<const Block> data, const Block& parity);

// Incremental XOR accumulator. Section 3's deferred-transition scheme
// buffers "A0 ^ A1" after delivering A0 and A1 so the missing A2 can be
// rebuilt later from a single buffered track instead of the whole prefix:
// this type is that buffer. Add() folds one block in; AddSources() folds
// a batch in one multi-source kernel pass; Take() releases the
// accumulated XOR.
class ParityAccumulator {
 public:
  ParityAccumulator() = default;

  // Folds `block` into the accumulator. The first Add seeds the
  // accumulator with a single copy (no zero-fill, no XOR) and fixes the
  // block size; later Adds must match it.
  Status Add(std::span<const uint8_t> block);

  // Folds `count` equal-sized blocks in one pass over the accumulator
  // (batched through the multi-source kernel). Equivalent to `count`
  // Add() calls, minus count-1 passes over the accumulator.
  Status AddSources(const uint8_t* const* blocks, int count,
                    size_t block_size);

  int count() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t block_size() const { return acc_.size(); }
  const Block& value() const { return acc_; }

  // Returns the accumulated XOR and resets the accumulator.
  Block Take();

  void Reset();

 private:
  Block acc_;
  int count_ = 0;
};

}  // namespace ftms

#endif  // FTMS_PARITY_PARITY_H_
