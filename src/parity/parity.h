#ifndef FTMS_PARITY_PARITY_H_
#define FTMS_PARITY_PARITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "parity/pq_kernels.h"
#include "parity/xor_kernels.h"
#include "util/status.h"

namespace ftms {

// A data block: the contents of one disk track. All blocks in a parity
// group must have equal size (one track, B bytes).
using Block = std::vector<uint8_t>;

// dst ^= src, byte-wise, through the dispatched xor kernel. Sizes must
// match.
void XorInto(std::span<uint8_t> dst, std::span<const uint8_t> src);

// dst ^= srcs[0] ^ ... ^ srcs[nsrc-1] in one fused pass over dst (the
// kernel batches groups larger than kMaxXorSources). Every source must
// be dst.size() bytes; nsrc may be 0 (no-op).
void XorIntoN(std::span<uint8_t> dst, const uint8_t* const* srcs, int nsrc);

// Verifies that every block (plus `extra`, when non-null) shares one
// size and returns it. InvalidArgument on a mismatch or when there is
// nothing to size (empty blocks and no extra). Shared precheck of
// ComputeParity / ReconstructMissing / VerifyGroup.
StatusOr<size_t> CheckEqualBlockSizes(std::span<const Block> blocks,
                                      const Block* extra = nullptr);

// Returns the bitwise XOR of all `blocks` (which must be non-empty and of
// equal size). This is the parity block of a parity group:
//   Xp = X0 ^ X1 ^ ... ^ X(C-2)   (paper Section 1, Figure 3).
StatusOr<Block> ComputeParity(std::span<const Block> blocks);

// Reconstructs the single missing data block of a parity group on the fly:
// given the C-2 surviving data blocks and the parity block, the missing
// block is their XOR. `survivors` are the available data blocks in any
// order. This is the degraded-mode read path of every scheme in the paper.
StatusOr<Block> ReconstructMissing(std::span<const Block> survivors,
                                   const Block& parity);

// Verifies that parity XOR all data blocks is zero, i.e. the group is
// internally consistent. Allocation-free: the fold runs chunk-wise
// through a stack buffer and never materializes the computed parity.
StatusOr<bool> VerifyGroup(std::span<const Block> data, const Block& parity);

// ---------------------------------------------------------------------
// P+Q (RAID-6) codec — the dual-parity groups of the SR-2/NC-2 scheme
// variants. Unit index convention for a group with k data blocks:
// units 0..k-1 are the data blocks, unit k is P, unit k+1 is Q, with
//   P = D0 ^ ... ^ D(k-1),   Q = g^0*D0 ^ ... ^ g^(k-1)*D(k-1)
// over GF(2^8) (parity/gf256.h). Any two lost units are recoverable.

inline constexpr int PqUnitP(int data_blocks) { return data_blocks; }
inline constexpr int PqUnitQ(int data_blocks) { return data_blocks + 1; }

// Computes both syndromes of `data` (non-empty, equal-sized) in fused
// kernel passes; p and q are overwritten.
Status ComputePq(std::span<const Block> data, Block* p, Block* q);

// Verifies that p and q both match `data` — the dual-parity scrub
// check.
StatusOr<bool> VerifyPqGroup(std::span<const Block> data, const Block& p,
                             const Block& q);

// Repairs up to two missing units of a P+Q group in place. `missing`
// holds the distinct unit indices of the lost blocks (0..k+1 with
// k = data.size()), in any order; the blocks at those positions must be
// allocated to the group's block size (contents ignored), every other
// block must hold its true contents. Covers all two-erasure cases:
// data+data, data+P, data+Q and P+Q. InvalidArgument on more than two
// missing units, duplicate or out-of-range indices, or size mismatches.
Status ReconstructPq(std::span<Block> data, Block* p, Block* q,
                     std::span<const int> missing);

// Incremental XOR accumulator. Section 3's deferred-transition scheme
// buffers "A0 ^ A1" after delivering A0 and A1 so the missing A2 can be
// rebuilt later from a single buffered track instead of the whole prefix:
// this type is that buffer. Add() folds one block in; AddSources() folds
// a batch in one multi-source kernel pass; Take() releases the
// accumulated XOR.
class ParityAccumulator {
 public:
  ParityAccumulator() = default;

  // Folds `block` into the accumulator. The first Add seeds the
  // accumulator with a single copy (no zero-fill, no XOR) and fixes the
  // block size; later Adds must match it.
  Status Add(std::span<const uint8_t> block);

  // Folds `count` equal-sized blocks in one pass over the accumulator
  // (batched through the multi-source kernel). Equivalent to `count`
  // Add() calls, minus count-1 passes over the accumulator.
  Status AddSources(const uint8_t* const* blocks, int count,
                    size_t block_size);

  int count() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t block_size() const { return acc_.size(); }
  const Block& value() const { return acc_; }

  // Returns the accumulated XOR and resets the accumulator.
  Block Take();

  void Reset();

 private:
  Block acc_;
  int count_ = 0;
};

}  // namespace ftms

#endif  // FTMS_PARITY_PARITY_H_
