#ifndef FTMS_PARITY_PQ_KERNELS_INTERNAL_H_
#define FTMS_PARITY_PQ_KERNELS_INTERNAL_H_

#include "parity/pq_kernels.h"

// Per-ISA P+Q kernel factories, one translation unit each so CMake can
// attach the matching target-feature flags (-mssse3, -mavx2, -mavx512bw,
// -mgfni, ...) to exactly the code that needs them; a factory returns
// nullptr when its TU was compiled without the ISA (missing compiler
// support, non-matching architecture, or -DFTMS_SIMD=OFF), which simply
// drops the kernel from the dispatch table.

namespace ftms::internal {

const PqKernel* GetPqKernelScalar();  // never null
const PqKernel* GetPqKernelSsse3();
const PqKernel* GetPqKernelAvx2();
const PqKernel* GetPqKernelAvx512();
const PqKernel* GetPqKernelGfni();
const PqKernel* GetPqKernelNeon();

// The scalar table implementations, exposed so SIMD kernels can
// delegate their sub-vector tails to one shared implementation.
void PqScalarImpl(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
                  const uint8_t* coeffs, int nsrc, size_t bytes);
void MulXorScalarImpl(uint8_t* dst, const uint8_t* src, uint8_t c,
                      size_t bytes);

}  // namespace ftms::internal

#endif  // FTMS_PARITY_PQ_KERNELS_INTERNAL_H_
