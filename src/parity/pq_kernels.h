#ifndef FTMS_PARITY_PQ_KERNELS_H_
#define FTMS_PARITY_PQ_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/status.h"

namespace ftms {

class MetricsRegistry;

// Vectorized GF(2^8) P+Q syndrome kernels with runtime dispatch.
//
// The dual-parity (RAID-6) schemes need, per group write and per
// two-erasure reconstruct,
//   P ^= D0 ^ D1 ^ ... ^ D(k-1)
//   Q ^= c0*D0 ^ c1*D1 ^ ... ^ c(k-1)*D(k-1)     (c_i in GF(2^8))
// A PqKernel computes BOTH syndromes in ONE fused pass over the
// sources, so each data byte is loaded exactly once and P/Q stay in
// registers. Byte-at-a-time log/exp lookups run at a few hundred MB/s;
// the SIMD kernels (pshufb nibble tables, GFNI affine) run at memory
// bandwidth.
//
// Dispatch mirrors parity/xor_kernels.h: the dispatcher
// micro-benchmarks every kernel the binary was compiled with AND the
// CPU can run, once at startup, and picks the fastest;
// FTMS_PQ_KERNEL=<name> pins the choice instead (FTMS_PQ_KERNEL=scalar
// is how CI proves all kernels agree byte for byte).
//
// Determinism: GF(2^8) arithmetic is exact, so every kernel produces
// byte-identical output — selection affects speed only, never results.

// Kernels fold at most this many sources per call; PqGenerateN()
// batches larger groups.
inline constexpr int kMaxPqSources = 8;

struct PqKernel {
  // Stable lowercase identifier: "scalar", "ssse3", "avx2", "avx512",
  // "gfni", "neon". Used by FTMS_PQ_KERNEL and in metric labels.
  const char* name;
  // True when the running CPU can execute this kernel. (Kernels the
  // COMPILER could not build are absent from CompiledPqKernels()
  // entirely.)
  bool (*supported)();
  // p[i] ^= srcs[0][i] ^ ... ^ srcs[nsrc-1][i]
  // q[i] ^= coeffs[0]*srcs[0][i] ^ ... ^ coeffs[nsrc-1]*srcs[nsrc-1][i]
  // for i in [0, bytes), products in GF(2^8). XOR-accumulating, so
  // callers seed p/q (zero for a fresh syndrome) and batch freely.
  // Requires 1 <= nsrc <= kMaxPqSources. No alignment requirements;
  // sources may not overlap p or q, and p may not overlap q.
  void (*pq)(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
             const uint8_t* coeffs, int nsrc, size_t bytes);
  // dst[i] ^= c * src[i] in GF(2^8) — the scaling primitive of
  // two-erasure reconstruction. src may not overlap dst.
  void (*mul_xor)(uint8_t* dst, const uint8_t* src, uint8_t c,
                  size_t bytes);
};

// Every kernel compiled into this binary, scalar first. Entries are
// stable for the process lifetime.
std::span<const PqKernel> CompiledPqKernels();

// The dispatched kernel: the FTMS_PQ_KERNEL pin if set and valid,
// otherwise the micro-benchmark winner. Selection runs once on first
// use and is thread-safe.
const PqKernel& ActivePqKernel();
const char* ActivePqKernelName();

// Accumulates the P and Q syndromes of `nsrc` sources into p/q through
// the active kernel, batching kMaxPqSources at a time. Source s takes
// the standard RAID-6 coefficient g^(first_index + s), so a group's
// syndrome can be built across multiple calls by advancing first_index.
// p and q must be seeded (zero for a fresh syndrome); nsrc may be 0.
void PqGenerateN(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
                 int nsrc, size_t bytes, int first_index = 0);

// Like PqGenerateN but with an explicit coefficient per source —
// two-erasure reconstruction folds SURVIVING data, whose indices skip
// the erased columns, so the g^i run is not contiguous there.
void PqAccumulate(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
                  const uint8_t* coeffs, int nsrc, size_t bytes);

// dst ^= c * src through the active kernel.
void GfMulXorInto(uint8_t* dst, const uint8_t* src, uint8_t c,
                  size_t bytes);

// One row of the startup selection report.
struct PqKernelMeasurement {
  const char* name = nullptr;
  bool supported = false;   // CPU can run it
  double gb_per_s = 0.0;    // 0 when unsupported; counts source reads +
                            // p/q reads + p/q writes (memory traffic)
  bool selected = false;
};

// The measurements the dispatcher took (one entry per compiled kernel,
// in CompiledPqKernels() order). Triggers selection on first call.
std::span<const PqKernelMeasurement> PqKernelSelectionReport();

// Looks up a compiled kernel by name; InvalidArgument on unknown names
// (the message lists the valid ones).
StatusOr<const PqKernel*> FindPqKernel(std::string_view name);

// Parses an FTMS_PQ_KERNEL-style value. "" and "auto" mean auto-select
// and return nullptr; otherwise the named kernel, which must be
// compiled in (InvalidArgument) and runnable on this CPU
// (FailedPrecondition).
StatusOr<const PqKernel*> ParsePqKernelSpec(std::string_view spec);

// Test hook: overrides the active kernel (nullptr returns to the
// dispatcher's choice). Not for production use — the metrics exported
// at selection time keep describing the dispatcher's pick.
void PinPqKernel(const PqKernel* kernel);

// Publishes the selection as gauges in `registry` (no-op when null):
//   ftms_parity_pq_kernel_gb_per_s{kernel="..."}  measured throughput
//   ftms_parity_pq_kernel_active{kernel="..."}    1 for the dispatched
// Called automatically against the global registry (when enabled) at
// selection time; benches with private registries call it directly.
void ExportPqKernelMetrics(MetricsRegistry* registry);

}  // namespace ftms

#endif  // FTMS_PARITY_PQ_KERNELS_H_
