#include "parity/pq_kernels_internal.h"

#if defined(FTMS_PQ_BUILD_AVX512) && defined(__AVX512F__) && \
    defined(__AVX512BW__)

#include <immintrin.h>

#include "parity/gf256.h"

namespace ftms::internal {
namespace {

// vpshufb on zmm registers needs AVX-512BW (AVX-512F alone has no
// 512-bit byte shuffle).
bool Avx512Supported() { return __builtin_cpu_supports("avx512bw"); }

// The shuffle stays lane-local, so the 16-byte nibble tables broadcast
// to all four 128-bit lanes: 64 GF multiplies per instruction pair.
struct NibblePair {
  __m512i lo;
  __m512i hi;
};

NibblePair LoadTables(uint8_t c) {
  alignas(16) uint8_t lo[16];
  alignas(16) uint8_t hi[16];
  gf256::NibbleTables(c, lo, hi);
  return {_mm512_broadcast_i32x4(
              _mm_load_si128(reinterpret_cast<const __m128i*>(lo))),
          _mm512_broadcast_i32x4(
              _mm_load_si128(reinterpret_cast<const __m128i*>(hi)))};
}

inline __m512i MulBytes(__m512i v, const NibblePair& t, __m512i mask) {
  const __m512i lo = _mm512_and_si512(v, mask);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), mask);
  return _mm512_xor_si512(_mm512_shuffle_epi8(t.lo, lo),
                          _mm512_shuffle_epi8(t.hi, hi));
}

void PqAvx512(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
              const uint8_t* coeffs, int nsrc, size_t bytes) {
  NibblePair tables[kMaxPqSources];
  for (int s = 0; s < nsrc; ++s) tables[s] = LoadTables(coeffs[s]);
  const __m512i mask = _mm512_set1_epi8(0x0f);
  size_t off = 0;
  for (; off + 64 <= bytes; off += 64) {
    __m512i vp = _mm512_loadu_si512(p + off);
    __m512i vq = _mm512_loadu_si512(q + off);
    for (int s = 0; s < nsrc; ++s) {
      const __m512i v = _mm512_loadu_si512(srcs[s] + off);
      vp = _mm512_xor_si512(vp, v);
      vq = _mm512_xor_si512(vq, MulBytes(v, tables[s], mask));
    }
    _mm512_storeu_si512(p + off, vp);
    _mm512_storeu_si512(q + off, vq);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxPqSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    PqScalarImpl(p + off, q + off, tails, coeffs, nsrc, bytes - off);
  }
}

void MulXorAvx512(uint8_t* dst, const uint8_t* src, uint8_t c,
                  size_t bytes) {
  const NibblePair t = LoadTables(c);
  const __m512i mask = _mm512_set1_epi8(0x0f);
  size_t off = 0;
  for (; off + 64 <= bytes; off += 64) {
    const __m512i v = _mm512_loadu_si512(src + off);
    __m512i d = _mm512_loadu_si512(dst + off);
    d = _mm512_xor_si512(d, MulBytes(v, t, mask));
    _mm512_storeu_si512(dst + off, d);
  }
  if (off < bytes) MulXorScalarImpl(dst + off, src + off, c, bytes - off);
}

}  // namespace

const PqKernel* GetPqKernelAvx512() {
  static constexpr PqKernel kKernel = {"avx512", Avx512Supported, PqAvx512,
                                       MulXorAvx512};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without AVX-512BW support

namespace ftms::internal {
const PqKernel* GetPqKernelAvx512() { return nullptr; }
}  // namespace ftms::internal

#endif
