#ifndef FTMS_PARITY_GF256_H_
#define FTMS_PARITY_GF256_H_

#include <cstdint>

namespace ftms::gf256 {

// GF(2^8) arithmetic for the P+Q (RAID-6) codec.
//
// Field: polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), generator g = 2
// — the same parameters as Linux's raid6 and ISA-L, so Q syndromes are
// byte-compatible with standard RAID-6 tooling. With two parity blocks
//   P = D0 ^ D1 ^ ... ^ D(k-1)
//   Q = g^0·D0 ^ g^1·D1 ^ ... ^ g^(k-1)·D(k-1)
// any two erasures in a group are recoverable (the 2x2 Vandermonde
// system is nonsingular because the g^i are distinct and nonzero).
//
// Everything here is table-driven and built once at first use; the
// PqKernel translation units consume the rows/tables below.

inline constexpr unsigned kPoly = 0x11d;
inline constexpr uint8_t kGenerator = 2;

struct Tables {
  // exp[i] = g^i. Doubled so exp[log a + log b] never needs a mod 255.
  uint8_t exp[510];
  // log[a] for a != 0; log[0] is 0 and must never be consulted.
  uint8_t log[256];
  // inv[a] for a != 0; inv[0] is 0 and must never be consulted.
  uint8_t inv[256];
  // Full product table; mul[c] is the 256-byte multiply-by-c row the
  // scalar kernel walks (64 KB total, L2-resident).
  uint8_t mul[256][256];
};

// The process-wide tables, built on first call (thread-safe).
const Tables& GetTables();

// a * b in the field, via the product table.
inline uint8_t Mul(uint8_t a, uint8_t b) { return GetTables().mul[a][b]; }

// The 256-byte multiply-by-c row.
inline const uint8_t* MulRow(uint8_t c) { return GetTables().mul[c]; }

// Bitwise carry-less multiply-and-reduce. Independent of the tables —
// the reference the table builders and tests are checked against.
uint8_t MulSlow(uint8_t a, uint8_t b);

// g^e for any integer exponent, negatives included (g^-e = g^(255-e)).
uint8_t Exp(int e);

// Discrete log of a (a != 0; asserts in debug builds).
uint8_t Log(uint8_t a);

// Multiplicative inverse of a (a != 0; asserts in debug builds).
uint8_t Inv(uint8_t a);

// a / b (b != 0).
inline uint8_t Div(uint8_t a, uint8_t b) { return Mul(a, Inv(b)); }

// Fills the two 16-byte pshufb/vtbl tables for multiply-by-c:
//   lo[i] = c * i          (low nibble contribution)
//   hi[i] = c * (i << 4)   (high nibble contribution)
// so c*x = lo[x & 15] ^ hi[x >> 4] — the classic nibble-split SIMD
// GF multiply.
void NibbleTables(uint8_t c, uint8_t lo[16], uint8_t hi[16]);

// The 8x8 bit matrix for GF2P8AFFINEQB that implements multiply-by-c
// in THIS field (the affine form works for any polynomial; the
// instruction's own gf2p8mulb is locked to 0x11b and useless here).
// Byte k of the result is the matrix row producing output bit 7-k:
// bit j of that row is bit (7-k) of c * 2^j.
uint64_t GfniMatrix(uint8_t c);

// Coefficients for the two-missing-data reconstruction (missing data
// indices x < y). With P' = P ^ (XOR of surviving data) and
// Q' = Q ^ (Q-syndrome of surviving data):
//   D_x = A*P' ^ B*Q',   D_y = P' ^ D_x
// where A = g^(y-x) / (g^(y-x) ^ 1) and B = g^(-x) / (g^(y-x) ^ 1).
void TwoDataCoefficients(int x, int y, uint8_t* a, uint8_t* b);

}  // namespace ftms::gf256

#endif  // FTMS_PARITY_GF256_H_
