#include "parity/pq_kernels_internal.h"

#if defined(FTMS_PQ_BUILD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include "parity/gf256.h"

namespace ftms::internal {
namespace {

bool Avx2Supported() { return __builtin_cpu_supports("avx2"); }

// vpshufb shuffles within each 128-bit lane, so broadcasting the
// 16-byte nibble tables across both lanes gives 32 GF multiplies per
// instruction pair.
struct NibblePair {
  __m256i lo;
  __m256i hi;
};

NibblePair LoadTables(uint8_t c) {
  alignas(16) uint8_t lo[16];
  alignas(16) uint8_t hi[16];
  gf256::NibbleTables(c, lo, hi);
  return {_mm256_broadcastsi128_si256(
              _mm_load_si128(reinterpret_cast<const __m128i*>(lo))),
          _mm256_broadcastsi128_si256(
              _mm_load_si128(reinterpret_cast<const __m128i*>(hi)))};
}

inline __m256i MulBytes(__m256i v, const NibblePair& t, __m256i mask) {
  const __m256i lo = _mm256_and_si256(v, mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(t.lo, lo),
                          _mm256_shuffle_epi8(t.hi, hi));
}

void PqAvx2(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
            const uint8_t* coeffs, int nsrc, size_t bytes) {
  NibblePair tables[kMaxPqSources];
  for (int s = 0; s < nsrc; ++s) tables[s] = LoadTables(coeffs[s]);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t off = 0;
  // Two 32-byte accumulator pairs hide shuffle latency while the
  // sources stream; p and q stay in registers for the whole fold.
  for (; off + 64 <= bytes; off += 64) {
    __m256i p0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(p + off));
    __m256i p1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(p + off + 32));
    __m256i q0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(q + off));
    __m256i q1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(q + off + 32));
    for (int s = 0; s < nsrc; ++s) {
      const uint8_t* src = srcs[s] + off;
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + 32));
      p0 = _mm256_xor_si256(p0, v0);
      p1 = _mm256_xor_si256(p1, v1);
      q0 = _mm256_xor_si256(q0, MulBytes(v0, tables[s], mask));
      q1 = _mm256_xor_si256(q1, MulBytes(v1, tables[s], mask));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + off), p0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + off + 32), p1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + off), q0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + off + 32), q1);
  }
  for (; off + 32 <= bytes; off += 32) {
    __m256i vp = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(p + off));
    __m256i vq = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(q + off));
    for (int s = 0; s < nsrc; ++s) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(srcs[s] + off));
      vp = _mm256_xor_si256(vp, v);
      vq = _mm256_xor_si256(vq, MulBytes(v, tables[s], mask));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + off), vp);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + off), vq);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxPqSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    PqScalarImpl(p + off, q + off, tails, coeffs, nsrc, bytes - off);
  }
}

void MulXorAvx2(uint8_t* dst, const uint8_t* src, uint8_t c,
                size_t bytes) {
  const NibblePair t = LoadTables(c);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t off = 0;
  for (; off + 32 <= bytes; off += 32) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + off));
    __m256i d = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + off));
    d = _mm256_xor_si256(d, MulBytes(v, t, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + off), d);
  }
  if (off < bytes) MulXorScalarImpl(dst + off, src + off, c, bytes - off);
}

}  // namespace

const PqKernel* GetPqKernelAvx2() {
  static constexpr PqKernel kKernel = {"avx2", Avx2Supported, PqAvx2,
                                       MulXorAvx2};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without AVX2 support

namespace ftms::internal {
const PqKernel* GetPqKernelAvx2() { return nullptr; }
}  // namespace ftms::internal

#endif
