#include "parity/pq_kernels.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "parity/gf256.h"
#include "parity/pq_kernels_internal.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace ftms {
namespace {

// Selection micro-benchmark shape: a syndrome-sized fold (5 sources,
// 32 KB — comfortably L1/L2 resident so it measures the kernel, not the
// memory system of whatever else is running). Best-of-kPasses guards
// against scheduler noise, same as the XOR dispatcher.
constexpr size_t kBenchBytes = 32 * 1024;
constexpr int kBenchSources = 5;
constexpr int kBenchReps = 24;
constexpr int kBenchPasses = 3;

double MeasureGbPerS(const PqKernel& kernel) {
  static std::vector<uint8_t>* buffers = [] {
    auto* bufs = new std::vector<uint8_t>[kBenchSources + 2];
    for (int i = 0; i < kBenchSources + 2; ++i) {
      bufs[i].assign(kBenchBytes, static_cast<uint8_t>(0x5d * (i + 1)));
    }
    return bufs;
  }();
  uint8_t* p = buffers[kBenchSources].data();
  uint8_t* q = buffers[kBenchSources + 1].data();
  const uint8_t* srcs[kBenchSources];
  uint8_t coeffs[kBenchSources];
  for (int i = 0; i < kBenchSources; ++i) {
    srcs[i] = buffers[i].data();
    coeffs[i] = gf256::Exp(i);
  }

  kernel.pq(p, q, srcs, coeffs, kBenchSources, kBenchBytes);  // warm up
  double best_seconds = 1e30;
  for (int pass = 0; pass < kBenchPasses; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kBenchReps; ++rep) {
      kernel.pq(p, q, srcs, coeffs, kBenchSources, kBenchBytes);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (seconds < best_seconds) best_seconds = seconds;
  }
  if (best_seconds <= 0) return 0;
  // Memory traffic per call: nsrc source reads + p read/write + q
  // read/write.
  const double bytes_moved = static_cast<double>(kBenchReps) *
                             static_cast<double>(kBenchSources + 4) *
                             static_cast<double>(kBenchBytes);
  return bytes_moved / best_seconds / 1e9;
}

struct Selection {
  const PqKernel* active = nullptr;
  std::vector<PqKernelMeasurement> report;
};

void ExportSelection(const Selection& selection, MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (const PqKernelMeasurement& m : selection.report) {
    Gauge* gbps = registry->GetGauge(
        LabeledName("ftms_parity_pq_kernel_gb_per_s", {{"kernel", m.name}}),
        "Measured GF(2^8) P+Q kernel throughput at selection time");
    if (gbps != nullptr) gbps->Set(m.gb_per_s);
    Gauge* active = registry->GetGauge(
        LabeledName("ftms_parity_pq_kernel_active", {{"kernel", m.name}}),
        "1 for the P+Q kernel the selector chose, 0 for the others");
    if (active != nullptr) active->Set(m.selected ? 1.0 : 0.0);
  }
}

const Selection& GetSelection() {
  static const Selection selection = [] {
    Selection sel;
    const PqKernel* best = internal::GetPqKernelScalar();
    double best_gbps = 0;
    for (const PqKernel& kernel : CompiledPqKernels()) {
      PqKernelMeasurement m;
      m.name = kernel.name;
      m.supported = kernel.supported();
      m.gb_per_s = m.supported ? MeasureGbPerS(kernel) : 0.0;
      if (m.supported && m.gb_per_s > best_gbps) {
        best = &kernel;
        best_gbps = m.gb_per_s;
      }
      sel.report.push_back(m);
    }
    bool pinned = false;
    if (const char* env = std::getenv("FTMS_PQ_KERNEL")) {
      StatusOr<const PqKernel*> pin = ParsePqKernelSpec(env);
      if (!pin.ok()) {
        FTMS_LOG(Warning) << "FTMS_PQ_KERNEL: " << pin.status().ToString()
                          << "; auto-selecting";
      } else if (*pin != nullptr) {
        best = *pin;
        pinned = true;
      }
    }
    sel.active = best;
    for (PqKernelMeasurement& m : sel.report) {
      m.selected = std::string_view(m.name) == best->name;
      FTMS_LOG(Info) << "pq kernel " << m.name << ": "
                     << (m.supported ? "" : "unsupported, ") << m.gb_per_s
                     << " GB/s" << (m.selected ? "  <= selected" : "");
    }
    if (pinned) {
      FTMS_LOG(Info) << "pq kernel pinned via FTMS_PQ_KERNEL="
                     << best->name;
    }
    ExportSelection(sel, MetricsRegistry::GlobalIfEnabled());
    return sel;
  }();
  return selection;
}

std::atomic<const PqKernel*> g_pinned{nullptr};

}  // namespace

std::span<const PqKernel> CompiledPqKernels() {
  static const std::vector<PqKernel> kernels = [] {
    std::vector<PqKernel> v;
    v.push_back(*internal::GetPqKernelScalar());
    for (const PqKernel* (*factory)() :
         {internal::GetPqKernelSsse3, internal::GetPqKernelAvx2,
          internal::GetPqKernelAvx512, internal::GetPqKernelGfni,
          internal::GetPqKernelNeon}) {
      if (const PqKernel* kernel = factory()) v.push_back(*kernel);
    }
    return v;
  }();
  return kernels;
}

const PqKernel& ActivePqKernel() {
  if (const PqKernel* pinned = g_pinned.load(std::memory_order_acquire)) {
    return *pinned;
  }
  return *GetSelection().active;
}

const char* ActivePqKernelName() { return ActivePqKernel().name; }

void PqGenerateN(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
                 int nsrc, size_t bytes, int first_index) {
  FTMS_PROF_SCOPE("parity/pq");
  const PqKernel& kernel = ActivePqKernel();
  uint8_t coeffs[kMaxPqSources];
  int index = first_index;
  while (nsrc > 0) {
    const int batch = nsrc < kMaxPqSources ? nsrc : kMaxPqSources;
    for (int s = 0; s < batch; ++s) {
      coeffs[s] = gf256::Exp(index + s);
    }
    kernel.pq(p, q, srcs, coeffs, batch, bytes);
    srcs += batch;
    index += batch;
    nsrc -= batch;
  }
}

void PqAccumulate(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
                  const uint8_t* coeffs, int nsrc, size_t bytes) {
  FTMS_PROF_SCOPE("parity/pq");
  const PqKernel& kernel = ActivePqKernel();
  while (nsrc > kMaxPqSources) {
    kernel.pq(p, q, srcs, coeffs, kMaxPqSources, bytes);
    srcs += kMaxPqSources;
    coeffs += kMaxPqSources;
    nsrc -= kMaxPqSources;
  }
  if (nsrc > 0) kernel.pq(p, q, srcs, coeffs, nsrc, bytes);
}

void GfMulXorInto(uint8_t* dst, const uint8_t* src, uint8_t c,
                  size_t bytes) {
  ActivePqKernel().mul_xor(dst, src, c, bytes);
}

std::span<const PqKernelMeasurement> PqKernelSelectionReport() {
  return GetSelection().report;
}

StatusOr<const PqKernel*> FindPqKernel(std::string_view name) {
  std::string valid;
  for (const PqKernel& kernel : CompiledPqKernels()) {
    if (name == kernel.name) return &kernel;
    if (!valid.empty()) valid += ", ";
    valid += kernel.name;
  }
  return Status::InvalidArgument("unknown pq kernel '" + std::string(name) +
                                 "' (compiled kernels: " + valid + ")");
}

StatusOr<const PqKernel*> ParsePqKernelSpec(std::string_view spec) {
  if (spec.empty() || spec == "auto") {
    return static_cast<const PqKernel*>(nullptr);
  }
  StatusOr<const PqKernel*> kernel = FindPqKernel(spec);
  if (!kernel.ok()) return kernel.status();
  if (!(*kernel)->supported()) {
    return Status::FailedPrecondition("pq kernel '" + std::string(spec) +
                                      "' is not supported by this CPU");
  }
  return kernel;
}

void PinPqKernel(const PqKernel* kernel) {
  g_pinned.store(kernel, std::memory_order_release);
}

void ExportPqKernelMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  ExportSelection(GetSelection(), registry);
}

}  // namespace ftms
