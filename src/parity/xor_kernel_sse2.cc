#include "parity/xor_kernels_internal.h"

#if defined(FTMS_XOR_BUILD_SSE2) && defined(__SSE2__)

#include <emmintrin.h>

namespace ftms::internal {
namespace {

bool Sse2Supported() {
  // SSE2 is part of the x86-64 baseline; the check matters only for
  // exotic 32-bit builds that enabled FTMS_XOR_BUILD_SSE2 by hand.
  return __builtin_cpu_supports("sse2");
}

void XorNSse2(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
              size_t bytes) {
  size_t off = 0;
  for (; off + 64 <= bytes; off += 64) {
    __m128i a0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(dst + off));
    __m128i a1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(dst + off + 16));
    __m128i a2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(dst + off + 32));
    __m128i a3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(dst + off + 48));
    for (int s = 0; s < nsrc; ++s) {
      const uint8_t* src = srcs[s] + off;
      a0 = _mm_xor_si128(
          a0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(src)));
      a1 = _mm_xor_si128(
          a1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 16)));
      a2 = _mm_xor_si128(
          a2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 32)));
      a3 = _mm_xor_si128(
          a3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 48)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + off), a0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + off + 16), a1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + off + 32), a2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + off + 48), a3);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxXorSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    XorNScalarImpl(dst + off, tails, nsrc, bytes - off);
  }
}

}  // namespace

const XorKernel* GetXorKernelSse2() {
  static constexpr XorKernel kKernel = {"sse2", Sse2Supported, XorNSse2};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without SSE2 support

namespace ftms::internal {
const XorKernel* GetXorKernelSse2() { return nullptr; }
}  // namespace ftms::internal

#endif
