#include "parity/gf256.h"
#include "parity/pq_kernels_internal.h"

namespace ftms::internal {
namespace {

bool AlwaysSupported() { return true; }

}  // namespace

void PqScalarImpl(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
                  const uint8_t* coeffs, int nsrc, size_t bytes) {
  // One 256-byte multiply row per coefficient (hot rows stay in L1),
  // one pass over p and q: per byte, fold every source into both
  // accumulators before the store. This table walk IS the scalar GF
  // baseline the SIMD kernels are measured against.
  const uint8_t* rows[kMaxPqSources];
  for (int s = 0; s < nsrc; ++s) rows[s] = gf256::MulRow(coeffs[s]);
  for (size_t i = 0; i < bytes; ++i) {
    uint8_t dp = p[i];
    uint8_t dq = q[i];
    for (int s = 0; s < nsrc; ++s) {
      const uint8_t v = srcs[s][i];
      dp = static_cast<uint8_t>(dp ^ v);
      dq = static_cast<uint8_t>(dq ^ rows[s][v]);
    }
    p[i] = dp;
    q[i] = dq;
  }
}

void MulXorScalarImpl(uint8_t* dst, const uint8_t* src, uint8_t c,
                      size_t bytes) {
  const uint8_t* row = gf256::MulRow(c);
  for (size_t i = 0; i < bytes; ++i) {
    dst[i] = static_cast<uint8_t>(dst[i] ^ row[src[i]]);
  }
}

const PqKernel* GetPqKernelScalar() {
  static constexpr PqKernel kKernel = {"scalar", AlwaysSupported,
                                       PqScalarImpl, MulXorScalarImpl};
  return &kKernel;
}

}  // namespace ftms::internal
