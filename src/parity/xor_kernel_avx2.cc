#include "parity/xor_kernels_internal.h"

#if defined(FTMS_XOR_BUILD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace ftms::internal {
namespace {

bool Avx2Supported() { return __builtin_cpu_supports("avx2"); }

void XorNAvx2(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
              size_t bytes) {
  size_t off = 0;
  // Four 32-byte accumulators hide xor/load latency while the sources
  // stream; the destination stays in registers for the whole fold.
  for (; off + 128 <= bytes; off += 128) {
    __m256i a0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + off));
    __m256i a1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + off + 32));
    __m256i a2 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + off + 64));
    __m256i a3 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + off + 96));
    for (int s = 0; s < nsrc; ++s) {
      const uint8_t* src = srcs[s] + off;
      a0 = _mm256_xor_si256(
          a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
      a1 = _mm256_xor_si256(
          a1,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32)));
      a2 = _mm256_xor_si256(
          a2,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 64)));
      a3 = _mm256_xor_si256(
          a3,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 96)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + off), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + off + 32), a1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + off + 64), a2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + off + 96), a3);
  }
  for (; off + 32 <= bytes; off += 32) {
    __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + off));
    for (int s = 0; s < nsrc; ++s) {
      a = _mm256_xor_si256(
          a, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(srcs[s] + off)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + off), a);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxXorSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    XorNScalarImpl(dst + off, tails, nsrc, bytes - off);
  }
}

}  // namespace

const XorKernel* GetXorKernelAvx2() {
  static constexpr XorKernel kKernel = {"avx2", Avx2Supported, XorNAvx2};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without AVX2 support

namespace ftms::internal {
const XorKernel* GetXorKernelAvx2() { return nullptr; }
}  // namespace ftms::internal

#endif
