#include "parity/xor_kernels.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "parity/xor_kernels_internal.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace ftms {
namespace {

// Selection micro-benchmark shape: a reconstruct-sized fold (5 sources,
// 32 KB — comfortably L1/L2 resident so it measures the kernel, not the
// memory system of whatever else is running). Best-of-kPasses guards
// against scheduler noise, the same trick Linux's calibrate_xor_blocks
// uses.
constexpr size_t kBenchBytes = 32 * 1024;
constexpr int kBenchSources = 5;
constexpr int kBenchReps = 24;
constexpr int kBenchPasses = 3;

double MeasureGbPerS(const XorKernel& kernel) {
  static std::vector<uint8_t>* buffers = [] {
    auto* bufs = new std::vector<uint8_t>[kBenchSources + 1];
    for (int i = 0; i <= kBenchSources; ++i) {
      bufs[i].assign(kBenchBytes, static_cast<uint8_t>(0x3b * (i + 1)));
    }
    return bufs;
  }();
  uint8_t* dst = buffers[kBenchSources].data();
  const uint8_t* srcs[kBenchSources];
  for (int i = 0; i < kBenchSources; ++i) srcs[i] = buffers[i].data();

  kernel.xor_n(dst, srcs, kBenchSources, kBenchBytes);  // warm up
  double best_seconds = 1e30;
  for (int pass = 0; pass < kBenchPasses; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kBenchReps; ++rep) {
      kernel.xor_n(dst, srcs, kBenchSources, kBenchBytes);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (seconds < best_seconds) best_seconds = seconds;
  }
  if (best_seconds <= 0) return 0;
  // Memory traffic per call: nsrc source reads + dst read + dst write.
  const double bytes_moved = static_cast<double>(kBenchReps) *
                             static_cast<double>(kBenchSources + 2) *
                             static_cast<double>(kBenchBytes);
  return bytes_moved / best_seconds / 1e9;
}

struct Selection {
  const XorKernel* active = nullptr;
  std::vector<XorKernelMeasurement> report;
};

void ExportSelection(const Selection& selection, MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (const XorKernelMeasurement& m : selection.report) {
    Gauge* gbps = registry->GetGauge(
        LabeledName("ftms_parity_kernel_gb_per_s", {{"kernel", m.name}}),
        "Measured XOR kernel throughput at selection time");
    if (gbps != nullptr) gbps->Set(m.gb_per_s);
    Gauge* active = registry->GetGauge(
        LabeledName("ftms_parity_kernel_active", {{"kernel", m.name}}),
        "1 for the XOR kernel the selector chose, 0 for the others");
    if (active != nullptr) active->Set(m.selected ? 1.0 : 0.0);
  }
}

const Selection& GetSelection() {
  static const Selection selection = [] {
    Selection sel;
    const XorKernel* best = internal::GetXorKernelScalar();
    double best_gbps = 0;
    for (const XorKernel& kernel : CompiledXorKernels()) {
      XorKernelMeasurement m;
      m.name = kernel.name;
      m.supported = kernel.supported();
      m.gb_per_s = m.supported ? MeasureGbPerS(kernel) : 0.0;
      if (m.supported && m.gb_per_s > best_gbps) {
        best = &kernel;
        best_gbps = m.gb_per_s;
      }
      sel.report.push_back(m);
    }
    bool pinned = false;
    if (const char* env = std::getenv("FTMS_XOR_KERNEL")) {
      StatusOr<const XorKernel*> pin = ParseXorKernelSpec(env);
      if (!pin.ok()) {
        FTMS_LOG(Warning) << "FTMS_XOR_KERNEL: " << pin.status().ToString()
                          << "; auto-selecting";
      } else if (*pin != nullptr) {
        best = *pin;
        pinned = true;
      }
    }
    sel.active = best;
    for (XorKernelMeasurement& m : sel.report) {
      m.selected = std::string_view(m.name) == best->name;
      FTMS_LOG(Info) << "xor kernel " << m.name << ": "
                     << (m.supported ? "" : "unsupported, ") << m.gb_per_s
                     << " GB/s" << (m.selected ? "  <= selected" : "");
    }
    if (pinned) {
      FTMS_LOG(Info) << "xor kernel pinned via FTMS_XOR_KERNEL="
                     << best->name;
    }
    ExportSelection(sel, MetricsRegistry::GlobalIfEnabled());
    return sel;
  }();
  return selection;
}

std::atomic<const XorKernel*> g_pinned{nullptr};

}  // namespace

std::span<const XorKernel> CompiledXorKernels() {
  static const std::vector<XorKernel> kernels = [] {
    std::vector<XorKernel> v;
    v.push_back(*internal::GetXorKernelScalar());
    for (const XorKernel* (*factory)() :
         {internal::GetXorKernelSse2, internal::GetXorKernelAvx2,
          internal::GetXorKernelAvx512, internal::GetXorKernelNeon}) {
      if (const XorKernel* kernel = factory()) v.push_back(*kernel);
    }
    return v;
  }();
  return kernels;
}

const XorKernel& ActiveXorKernel() {
  if (const XorKernel* pinned = g_pinned.load(std::memory_order_acquire)) {
    return *pinned;
  }
  return *GetSelection().active;
}

const char* ActiveXorKernelName() { return ActiveXorKernel().name; }

void XorIntoN(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
              size_t bytes) {
  FTMS_PROF_SCOPE("parity/xor");
  const XorKernel& kernel = ActiveXorKernel();
  while (nsrc > kMaxXorSources) {
    kernel.xor_n(dst, srcs, kMaxXorSources, bytes);
    srcs += kMaxXorSources;
    nsrc -= kMaxXorSources;
  }
  if (nsrc > 0) kernel.xor_n(dst, srcs, nsrc, bytes);
}

std::span<const XorKernelMeasurement> XorKernelSelectionReport() {
  return GetSelection().report;
}

StatusOr<const XorKernel*> FindXorKernel(std::string_view name) {
  std::string valid;
  for (const XorKernel& kernel : CompiledXorKernels()) {
    if (name == kernel.name) return &kernel;
    if (!valid.empty()) valid += ", ";
    valid += kernel.name;
  }
  return Status::InvalidArgument("unknown xor kernel '" + std::string(name) +
                                 "' (compiled kernels: " + valid + ")");
}

StatusOr<const XorKernel*> ParseXorKernelSpec(std::string_view spec) {
  if (spec.empty() || spec == "auto") {
    return static_cast<const XorKernel*>(nullptr);
  }
  StatusOr<const XorKernel*> kernel = FindXorKernel(spec);
  if (!kernel.ok()) return kernel.status();
  if (!(*kernel)->supported()) {
    return Status::FailedPrecondition("xor kernel '" + std::string(spec) +
                                      "' is not supported by this CPU");
  }
  return kernel;
}

void PinXorKernel(const XorKernel* kernel) {
  g_pinned.store(kernel, std::memory_order_release);
}

void ExportXorKernelMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  ExportSelection(GetSelection(), registry);
}

}  // namespace ftms
