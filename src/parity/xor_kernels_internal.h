#ifndef FTMS_PARITY_XOR_KERNELS_INTERNAL_H_
#define FTMS_PARITY_XOR_KERNELS_INTERNAL_H_

#include "parity/xor_kernels.h"

// Per-ISA kernel factories. Each lives in its own translation unit so
// CMake can attach the matching target-feature flag (-mavx2, ...) to
// exactly the code that needs it; a factory returns nullptr when its
// TU was compiled without the ISA (missing compiler support, non-x86
// host, or -DFTMS_SIMD=OFF), which simply drops the kernel from the
// dispatch table.

namespace ftms::internal {

const XorKernel* GetXorKernelScalar();  // never null
const XorKernel* GetXorKernelSse2();
const XorKernel* GetXorKernelAvx2();
const XorKernel* GetXorKernelAvx512();
const XorKernel* GetXorKernelNeon();

// The scalar fold, exposed so SIMD kernels can delegate their sub-word
// tails to one shared implementation.
void XorNScalarImpl(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
                    size_t bytes);

}  // namespace ftms::internal

#endif  // FTMS_PARITY_XOR_KERNELS_INTERNAL_H_
