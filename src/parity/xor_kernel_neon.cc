#include "parity/xor_kernels_internal.h"

#if defined(FTMS_XOR_BUILD_NEON) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))

#include <arm_neon.h>

namespace ftms::internal {
namespace {

// NEON is architectural on AArch64 (and implied by __ARM_NEON on
// 32-bit builds that enabled it), so compile-time presence is enough.
bool NeonSupported() { return true; }

void XorNNeon(uint8_t* dst, const uint8_t* const* srcs, int nsrc,
              size_t bytes) {
  size_t off = 0;
  for (; off + 64 <= bytes; off += 64) {
    uint8x16_t a0 = vld1q_u8(dst + off);
    uint8x16_t a1 = vld1q_u8(dst + off + 16);
    uint8x16_t a2 = vld1q_u8(dst + off + 32);
    uint8x16_t a3 = vld1q_u8(dst + off + 48);
    for (int s = 0; s < nsrc; ++s) {
      const uint8_t* src = srcs[s] + off;
      a0 = veorq_u8(a0, vld1q_u8(src));
      a1 = veorq_u8(a1, vld1q_u8(src + 16));
      a2 = veorq_u8(a2, vld1q_u8(src + 32));
      a3 = veorq_u8(a3, vld1q_u8(src + 48));
    }
    vst1q_u8(dst + off, a0);
    vst1q_u8(dst + off + 16, a1);
    vst1q_u8(dst + off + 32, a2);
    vst1q_u8(dst + off + 48, a3);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxXorSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    XorNScalarImpl(dst + off, tails, nsrc, bytes - off);
  }
}

}  // namespace

const XorKernel* GetXorKernelNeon() {
  static constexpr XorKernel kKernel = {"neon", NeonSupported, XorNNeon};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without NEON support

namespace ftms::internal {
const XorKernel* GetXorKernelNeon() { return nullptr; }
}  // namespace ftms::internal

#endif
