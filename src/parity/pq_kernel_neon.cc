#include "parity/pq_kernels_internal.h"

#if defined(FTMS_PQ_BUILD_NEON) && defined(__ARM_NEON)

#include <arm_neon.h>

#include "parity/gf256.h"

namespace ftms::internal {
namespace {

// NEON is architectural on AArch64.
bool NeonSupported() { return true; }

// vqtbl1q_u8 is the 16-byte table lookup — the same nibble-split GF
// multiply as pshufb.
struct NibblePair {
  uint8x16_t lo;
  uint8x16_t hi;
};

NibblePair LoadTables(uint8_t c) {
  alignas(16) uint8_t lo[16];
  alignas(16) uint8_t hi[16];
  gf256::NibbleTables(c, lo, hi);
  return {vld1q_u8(lo), vld1q_u8(hi)};
}

inline uint8x16_t MulBytes(uint8x16_t v, const NibblePair& t,
                           uint8x16_t mask) {
  const uint8x16_t lo = vandq_u8(v, mask);
  const uint8x16_t hi = vandq_u8(vshrq_n_u8(v, 4), mask);
  return veorq_u8(vqtbl1q_u8(t.lo, lo), vqtbl1q_u8(t.hi, hi));
}

void PqNeon(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
            const uint8_t* coeffs, int nsrc, size_t bytes) {
  NibblePair tables[kMaxPqSources];
  for (int s = 0; s < nsrc; ++s) tables[s] = LoadTables(coeffs[s]);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  size_t off = 0;
  for (; off + 16 <= bytes; off += 16) {
    uint8x16_t vp = vld1q_u8(p + off);
    uint8x16_t vq = vld1q_u8(q + off);
    for (int s = 0; s < nsrc; ++s) {
      const uint8x16_t v = vld1q_u8(srcs[s] + off);
      vp = veorq_u8(vp, v);
      vq = veorq_u8(vq, MulBytes(v, tables[s], mask));
    }
    vst1q_u8(p + off, vp);
    vst1q_u8(q + off, vq);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxPqSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    PqScalarImpl(p + off, q + off, tails, coeffs, nsrc, bytes - off);
  }
}

void MulXorNeon(uint8_t* dst, const uint8_t* src, uint8_t c,
                size_t bytes) {
  const NibblePair t = LoadTables(c);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  size_t off = 0;
  for (; off + 16 <= bytes; off += 16) {
    const uint8x16_t v = vld1q_u8(src + off);
    uint8x16_t d = vld1q_u8(dst + off);
    d = veorq_u8(d, MulBytes(v, t, mask));
    vst1q_u8(dst + off, d);
  }
  if (off < bytes) MulXorScalarImpl(dst + off, src + off, c, bytes - off);
}

}  // namespace

const PqKernel* GetPqKernelNeon() {
  static constexpr PqKernel kKernel = {"neon", NeonSupported, PqNeon,
                                       MulXorNeon};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without NEON support

namespace ftms::internal {
const PqKernel* GetPqKernelNeon() { return nullptr; }
}  // namespace ftms::internal

#endif
