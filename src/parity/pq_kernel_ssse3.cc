#include "parity/pq_kernels_internal.h"

#if defined(FTMS_PQ_BUILD_SSSE3) && defined(__SSSE3__)

#include <immintrin.h>

#include "parity/gf256.h"

namespace ftms::internal {
namespace {

bool Ssse3Supported() { return __builtin_cpu_supports("ssse3"); }

// Loads the two 16-byte nibble tables for multiply-by-c: the classic
// pshufb GF multiply splits each byte into nibbles and looks both up,
// c*x = lo[x & 15] ^ hi[x >> 4].
struct NibblePair {
  __m128i lo;
  __m128i hi;
};

NibblePair LoadTables(uint8_t c) {
  alignas(16) uint8_t lo[16];
  alignas(16) uint8_t hi[16];
  gf256::NibbleTables(c, lo, hi);
  return {_mm_load_si128(reinterpret_cast<const __m128i*>(lo)),
          _mm_load_si128(reinterpret_cast<const __m128i*>(hi))};
}

inline __m128i MulBytes(__m128i v, const NibblePair& t, __m128i mask) {
  const __m128i lo = _mm_and_si128(v, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(t.lo, lo),
                       _mm_shuffle_epi8(t.hi, hi));
}

void PqSsse3(uint8_t* p, uint8_t* q, const uint8_t* const* srcs,
             const uint8_t* coeffs, int nsrc, size_t bytes) {
  NibblePair tables[kMaxPqSources];
  for (int s = 0; s < nsrc; ++s) tables[s] = LoadTables(coeffs[s]);
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t off = 0;
  for (; off + 16 <= bytes; off += 16) {
    __m128i vp = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(p + off));
    __m128i vq = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(q + off));
    for (int s = 0; s < nsrc; ++s) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(srcs[s] + off));
      vp = _mm_xor_si128(vp, v);
      vq = _mm_xor_si128(vq, MulBytes(v, tables[s], mask));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + off), vp);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + off), vq);
  }
  if (off < bytes) {
    const uint8_t* tails[kMaxPqSources];
    for (int s = 0; s < nsrc; ++s) tails[s] = srcs[s] + off;
    PqScalarImpl(p + off, q + off, tails, coeffs, nsrc, bytes - off);
  }
}

void MulXorSsse3(uint8_t* dst, const uint8_t* src, uint8_t c,
                 size_t bytes) {
  const NibblePair t = LoadTables(c);
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t off = 0;
  for (; off + 16 <= bytes; off += 16) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + off));
    __m128i d = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(dst + off));
    d = _mm_xor_si128(d, MulBytes(v, t, mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + off), d);
  }
  if (off < bytes) MulXorScalarImpl(dst + off, src + off, c, bytes - off);
}

}  // namespace

const PqKernel* GetPqKernelSsse3() {
  static constexpr PqKernel kKernel = {"ssse3", Ssse3Supported, PqSsse3,
                                       MulXorSsse3};
  return &kKernel;
}

}  // namespace ftms::internal

#else  // compiled without SSSE3 support

namespace ftms::internal {
const PqKernel* GetPqKernelSsse3() { return nullptr; }
}  // namespace ftms::internal

#endif
