#ifndef FTMS_LAYOUT_CATALOG_H_
#define FTMS_LAYOUT_CATALOG_H_

#include <cstdint>
#include <vector>

#include "layout/layout.h"
#include "layout/media_object.h"
#include "util/status.h"

namespace ftms {

// The set of objects currently resident on the disk subsystem, with
// capacity accounting. The full database lives on tertiary storage
// (Figure 1); the catalog models the disk-resident working set: objects
// are staged in (Add) and purged (Remove) to make room, and placement
// fails with RESOURCE_EXHAUSTED when the data disks are full.
//
// Capacity model: striping spreads an object's groups round-robin over all
// clusters, so space is consumed evenly; we account per data-disk tracks
// (data tracks on data disks, parity tracks on parity disks or, for the
// Improved-bandwidth layout, on every disk's parity fraction).
class Catalog {
 public:
  // `layout` must outlive the catalog. `tracks_per_disk` bounds capacity.
  Catalog(const Layout* layout, int64_t tracks_per_disk);

  // Adds `object` if there is room. Object ids must be unique.
  Status Add(const MediaObject& object);

  // Removes (purges) the object, releasing its space.
  Status Remove(int object_id);

  StatusOr<MediaObject> Get(int object_id) const;
  bool Contains(int object_id) const;

  const std::vector<MediaObject>& objects() const { return objects_; }
  int64_t used_data_tracks() const { return used_data_tracks_; }
  int64_t used_parity_tracks() const { return used_parity_tracks_; }

  // Total data-track capacity across the layout's data role: for clustered
  // layouts, (C-1)/C of all tracks; for Improved-bandwidth the same
  // fraction (each disk is (C-1)/C data).
  int64_t data_track_capacity() const;

 private:
  // Parity groups (rounded up) occupied by an object.
  int64_t GroupsOf(const MediaObject& object) const;

  const Layout* layout_;
  int64_t tracks_per_disk_;
  std::vector<MediaObject> objects_;
  int64_t used_data_tracks_ = 0;
  int64_t used_parity_tracks_ = 0;
};

}  // namespace ftms

#endif  // FTMS_LAYOUT_CATALOG_H_
