#ifndef FTMS_LAYOUT_SCHEMES_H_
#define FTMS_LAYOUT_SCHEMES_H_

#include <string_view>

namespace ftms {

// The four fault-tolerance schemes compared in the paper (Section 5),
// plus the dual-parity (P+Q / RAID-6) variants of SR and NC: same
// scheduling discipline, but each cluster dedicates TWO parity disks
// (P at C-2, Q at C-1) so a cluster survives any two concurrent disk
// failures.
enum class Scheme {
  kStreamingRaid,      // SR: Section 2, after Tobagi et al. [11]
  kStaggeredGroup,     // SG: Section 2
  kNonClustered,       // NC: Section 3, with shared buffer-server pool
  kImprovedBandwidth,  // IB: Section 4
  kStreamingRaid2,     // SR-2: SR with P+Q dual parity per cluster
  kNonClustered2,      // NC-2: NC with P+Q dual parity per cluster
};

// The paper's original comparison set. The dual-parity variants are
// deliberately NOT in this list: the golden tables/cost outputs
// reproduce the paper's four-scheme figures.
inline constexpr Scheme kAllSchemes[] = {
    Scheme::kStreamingRaid,
    Scheme::kStaggeredGroup,
    Scheme::kNonClustered,
    Scheme::kImprovedBandwidth,
};

inline constexpr Scheme kDualParitySchemes[] = {
    Scheme::kStreamingRaid2,
    Scheme::kNonClustered2,
};

std::string_view SchemeName(Scheme scheme);
std::string_view SchemeAbbrev(Scheme scheme);

// True for the P+Q variants with two parity disks per cluster.
constexpr bool IsDualParity(Scheme scheme) {
  return scheme == Scheme::kStreamingRaid2 ||
         scheme == Scheme::kNonClustered2;
}

// Number of dedicated parity disks per cluster (0 for IB, which spreads
// parity over the next cluster's data disks).
constexpr int ParityDisksPerCluster(Scheme scheme) {
  if (scheme == Scheme::kImprovedBandwidth) return 0;
  return IsDualParity(scheme) ? 2 : 1;
}

// The single-parity scheme a dual-parity variant derives its
// scheduling discipline from (identity for the original four).
constexpr Scheme BaseScheme(Scheme scheme) {
  switch (scheme) {
    case Scheme::kStreamingRaid2:
      return Scheme::kStreamingRaid;
    case Scheme::kNonClustered2:
      return Scheme::kNonClustered;
    default:
      return scheme;
  }
}

// True for the schemes whose clusters own dedicated parity disks
// (SR / SG / NC and the dual-parity variants); false for
// Improved-bandwidth, where parity for cluster i is spread over the
// disks of cluster i+1 and every disk serves data.
constexpr bool UsesDedicatedParityDisk(Scheme scheme) {
  return scheme != Scheme::kImprovedBandwidth;
}

}  // namespace ftms

#endif  // FTMS_LAYOUT_SCHEMES_H_
