#ifndef FTMS_LAYOUT_SCHEMES_H_
#define FTMS_LAYOUT_SCHEMES_H_

#include <string_view>

namespace ftms {

// The four fault-tolerance schemes compared in the paper (Section 5).
enum class Scheme {
  kStreamingRaid,      // SR: Section 2, after Tobagi et al. [11]
  kStaggeredGroup,     // SG: Section 2
  kNonClustered,       // NC: Section 3, with shared buffer-server pool
  kImprovedBandwidth,  // IB: Section 4
};

inline constexpr Scheme kAllSchemes[] = {
    Scheme::kStreamingRaid,
    Scheme::kStaggeredGroup,
    Scheme::kNonClustered,
    Scheme::kImprovedBandwidth,
};

std::string_view SchemeName(Scheme scheme);
std::string_view SchemeAbbrev(Scheme scheme);

// True for the schemes whose clusters own a dedicated parity disk
// (SR / SG / NC); false for Improved-bandwidth, where parity for cluster i
// is spread over the disks of cluster i+1 and every disk serves data.
constexpr bool UsesDedicatedParityDisk(Scheme scheme) {
  return scheme != Scheme::kImprovedBandwidth;
}

}  // namespace ftms

#endif  // FTMS_LAYOUT_SCHEMES_H_
