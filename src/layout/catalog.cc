#include "layout/catalog.h"

#include <algorithm>
#include <string>

namespace ftms {

Catalog::Catalog(const Layout* layout, int64_t tracks_per_disk)
    : layout_(layout), tracks_per_disk_(tracks_per_disk) {}

int64_t Catalog::GroupsOf(const MediaObject& object) const {
  const int64_t per_group = layout_->DataBlocksPerGroup();
  return (object.num_tracks + per_group - 1) / per_group;
}

int64_t Catalog::data_track_capacity() const {
  const int64_t total =
      static_cast<int64_t>(layout_->num_disks()) * tracks_per_disk_;
  // A fraction (C-1)/C of all storage holds data in every scheme (eq. (1)
  // and Tables 2/3: storage overhead = 1/C).
  return total * layout_->DataBlocksPerGroup() / layout_->parity_group_size();
}

Status Catalog::Add(const MediaObject& object) {
  if (object.num_tracks <= 0) {
    return Status::InvalidArgument("object must have at least one track");
  }
  if (Contains(object.id)) {
    return Status::AlreadyExists("object " + std::to_string(object.id) +
                                 " already resident");
  }
  const int64_t groups = GroupsOf(object);
  const int64_t data_tracks = groups * layout_->DataBlocksPerGroup();
  if (used_data_tracks_ + data_tracks > data_track_capacity()) {
    return Status::ResourceExhausted(
        "disk working set full: need " + std::to_string(data_tracks) +
        " tracks, free " +
        std::to_string(data_track_capacity() - used_data_tracks_));
  }
  objects_.push_back(object);
  used_data_tracks_ += data_tracks;
  used_parity_tracks_ += groups;
  return Status::Ok();
}

Status Catalog::Remove(int object_id) {
  auto it = std::find_if(objects_.begin(), objects_.end(),
                         [&](const MediaObject& o) { return o.id == object_id; });
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(object_id) +
                            " not resident");
  }
  const int64_t groups = GroupsOf(*it);
  used_data_tracks_ -= groups * layout_->DataBlocksPerGroup();
  used_parity_tracks_ -= groups;
  objects_.erase(it);
  return Status::Ok();
}

StatusOr<MediaObject> Catalog::Get(int object_id) const {
  auto it = std::find_if(objects_.begin(), objects_.end(),
                         [&](const MediaObject& o) { return o.id == object_id; });
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(object_id) +
                            " not resident");
  }
  return *it;
}

bool Catalog::Contains(int object_id) const {
  return std::any_of(objects_.begin(), objects_.end(),
                     [&](const MediaObject& o) { return o.id == object_id; });
}

}  // namespace ftms
