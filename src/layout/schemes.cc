#include "layout/schemes.h"

namespace ftms {

std::string_view SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kStreamingRaid:
      return "Streaming RAID";
    case Scheme::kStaggeredGroup:
      return "Staggered-group";
    case Scheme::kNonClustered:
      return "Non-clustered";
    case Scheme::kImprovedBandwidth:
      return "Improved-bandwidth";
    case Scheme::kStreamingRaid2:
      return "Streaming RAID P+Q";
    case Scheme::kNonClustered2:
      return "Non-clustered P+Q";
  }
  return "unknown";
}

std::string_view SchemeAbbrev(Scheme scheme) {
  switch (scheme) {
    case Scheme::kStreamingRaid:
      return "SR";
    case Scheme::kStaggeredGroup:
      return "SG";
    case Scheme::kNonClustered:
      return "NC";
    case Scheme::kImprovedBandwidth:
      return "IB";
    case Scheme::kStreamingRaid2:
      return "SR2";
    case Scheme::kNonClustered2:
      return "NC2";
  }
  return "??";
}

}  // namespace ftms
