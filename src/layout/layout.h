#ifndef FTMS_LAYOUT_LAYOUT_H_
#define FTMS_LAYOUT_LAYOUT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "layout/media_object.h"
#include "layout/schemes.h"
#include "util/fastdiv.h"
#include "util/status.h"

namespace ftms {

// Where one track (data block or parity block) of an object lives.
struct BlockLocation {
  int disk = -1;     // global disk id
  int cluster = -1;  // cluster owning the block
  bool is_parity = false;

  friend bool operator==(const BlockLocation&, const BlockLocation&) =
      default;
};

// Devirtualized snapshot of a Layout's placement geometry. Every layout in
// this codebase is a pure integer function of (clusters, disks-per-cluster,
// C-1, striped?, IB placement?) — LayoutGeom captures those five values
// plus Lemire fast-division magic for the three divisors, so the
// schedulers' per-read location math is inline integer arithmetic instead
// of two virtual calls and three 64-bit divides. Built by Layout::Geom();
// CycleScheduler cross-checks it against the virtual interface in debug
// builds, so a future Layout subclass with novel placement math fails loud
// rather than silently desyncing.
struct LayoutGeom {
  int num_clusters = 1;
  int disks_per_cluster = 1;
  int per_group = 1;   // data blocks per parity group (C - parity_blocks)
  int parity_blocks = 1;  // parity blocks per group (2 for P+Q layouts)
  bool striped = true;  // round-robin groups over clusters?
  bool ib = false;      // Improved-bandwidth placement (parity on i+1)
  FastDiv per_group_div;  // by per_group
  FastDiv clusters_div;   // by num_clusters
  FastDiv dpc_div;        // by disks_per_cluster

  int64_t GroupOf(int64_t track) const {
    assert(track >= 0 && track <= INT64_C(0xffffffff));
    return per_group_div.Div(static_cast<uint32_t>(track));
  }
  int PositionInGroup(int64_t track) const {
    assert(track >= 0 && track <= INT64_C(0xffffffff));
    return static_cast<int>(
        per_group_div.Mod(static_cast<uint32_t>(track)));
  }
  int HomeCluster(int object_id) const {
    assert(object_id >= 0);
    return static_cast<int>(
        clusters_div.Mod(static_cast<uint32_t>(object_id)));
  }
  int GroupCluster(int object_id, int64_t group) const {
    const int home = HomeCluster(object_id);
    if (!striped) return home;
    assert(group >= 0 && home + group <= INT64_C(0xffffffff));
    return static_cast<int>(
        clusters_div.Mod(static_cast<uint32_t>(home + group)));
  }
  int ClusterOfDisk(int disk) const {
    return static_cast<int>(dpc_div.Div(static_cast<uint32_t>(disk)));
  }
  // Global disk of data position `pos` of a group on `cluster`.
  int DataDisk(int cluster, int pos) const {
    return cluster * disks_per_cluster + pos;
  }
  int DataDiskOf(int object_id, int64_t track) const {
    return DataDisk(GroupCluster(object_id, GroupOf(track)),
                    PositionInGroup(track));
  }
  // Global disk of the parity block of `group`, and the cluster it lives
  // on (the data cluster for clustered layouts; the right-hand neighbor
  // for Improved-bandwidth). For dual-parity layouts this is the P disk
  // (slot C-2); QParityDisk() below is the Q disk (slot C-1).
  int ParityDisk(int object_id, int64_t group, int data_cluster) const {
    if (!ib) {
      return DataDisk(data_cluster, disks_per_cluster - parity_blocks);
    }
    const int pc = data_cluster + 1 == num_clusters ? 0 : data_cluster + 1;
    assert(object_id >= 0 && group >= 0 &&
           object_id + group <= INT64_C(0xffffffff));
    const int index = static_cast<int>(dpc_div.Mod(
        static_cast<uint32_t>(static_cast<int64_t>(object_id) + group)));
    return DataDisk(pc, index);
  }
  int ParityCluster(int data_cluster) const {
    if (!ib) return data_cluster;
    return data_cluster + 1 == num_clusters ? 0 : data_cluster + 1;
  }
  // The Q (second parity) disk of a dual-parity cluster: the last slot.
  // Meaningful only when parity_blocks == 2.
  int QParityDisk(int data_cluster) const {
    return DataDisk(data_cluster, disks_per_cluster - 1);
  }
};

// Maps (object, track) -> disk for a given data layout. Layouts are pure
// functions of the configuration: they do not track capacity (see
// StorageAllocator for that), which lets schedulers query them cheaply.
//
// Terminology: a parity group consists of `DataBlocksPerGroup()` = C-1
// consecutive data tracks of ONE object plus one parity track
// (Observation 1: never mix objects in a group). Group j of an object whose
// home cluster is h lives on cluster (h + j) mod Nc — the round-robin
// allocation of Section 2.
class Layout {
 public:
  virtual ~Layout() = default;

  virtual Scheme scheme_family() const = 0;

  int num_disks() const { return num_disks_; }
  int parity_group_size() const { return parity_group_size_; }  // C
  // Parity blocks per group: 1 for the paper's four schemes, 2 for the
  // P+Q dual-parity variants.
  int parity_blocks() const { return parity_blocks_; }
  int DataBlocksPerGroup() const {
    return parity_group_size_ - parity_blocks_;
  }

  // Number of disk clusters. Clustered layouts group C disks; the
  // Improved-bandwidth layout groups C-1 (all of data role).
  virtual int num_clusters() const = 0;
  virtual int disks_per_cluster() const = 0;

  // Parity group index of data track `track`.
  int64_t GroupOf(int64_t track) const { return track / DataBlocksPerGroup(); }

  // Position of `track` within its parity group, in [0, C-1).
  int PositionInGroup(int64_t track) const {
    return static_cast<int>(track % DataBlocksPerGroup());
  }

  // Home cluster of object `object_id` (where its group 0 lives).
  int HomeCluster(int object_id) const {
    return object_id % num_clusters();
  }

  // Cluster where parity group `group` of the object lives: round-robin
  // from the home cluster (Section 2). Virtual so the non-striped
  // ablation layout can pin objects to their home cluster.
  virtual int GroupCluster(int object_id, int64_t group) const {
    return static_cast<int>(
        (HomeCluster(object_id) + group) % num_clusters());
  }

  // Whether groups round-robin over clusters (everything except the
  // non-striped ablation layout).
  virtual bool striped() const { return true; }

  // Devirtualized geometry for scheduler hot paths; see LayoutGeom.
  LayoutGeom Geom() const;

  // Location of data track `track` of the object.
  virtual BlockLocation DataLocation(int object_id, int64_t track) const = 0;

  // Location of the parity block for group `group` of the object (the
  // P block for dual-parity layouts).
  virtual BlockLocation ParityLocation(int object_id,
                                       int64_t group) const = 0;

  // Location of the Q (second parity) block for dual-parity layouts;
  // a default-constructed location (disk == -1) everywhere else.
  virtual BlockLocation QParityLocation(int /*object_id*/,
                                        int64_t /*group*/) const {
    return BlockLocation{};
  }

  // All data locations of group `group` in group order (C-1 entries).
  std::vector<BlockLocation> GroupDataLocations(int object_id,
                                                int64_t group) const;

 protected:
  Layout(int num_disks, int parity_group_size, int parity_blocks = 1)
      : num_disks_(num_disks),
        parity_group_size_(parity_group_size),
        parity_blocks_(parity_blocks) {}

 private:
  int num_disks_;
  int parity_group_size_;
  int parity_blocks_;
};

// Layout for the Streaming RAID, Staggered-group and Non-clustered schemes
// (they share the same placement; only scheduling differs — Section 2).
// Clusters hold C disks: data disks 0..C-2 and the dedicated parity disk
// C-1, exactly as drawn in Figure 3.
class ClusteredLayout : public Layout {
 public:
  // `num_disks` must be a positive multiple of `parity_group_size` (C).
  static StatusOr<std::unique_ptr<ClusteredLayout>> Create(
      int num_disks, int parity_group_size);

  Scheme scheme_family() const override { return Scheme::kStreamingRaid; }
  int num_clusters() const override {
    return num_disks() / parity_group_size();
  }
  int disks_per_cluster() const override { return parity_group_size(); }

  BlockLocation DataLocation(int object_id, int64_t track) const override;
  BlockLocation ParityLocation(int object_id, int64_t group) const override;

  // The dedicated parity disk of `cluster`.
  int ParityDisk(int cluster) const {
    return cluster * parity_group_size() + parity_group_size() - 1;
  }

 protected:
  ClusteredLayout(int num_disks, int parity_group_size)
      : Layout(num_disks, parity_group_size) {}
};

// Layout for the dual-parity (P+Q / RAID-6) scheme variants SR-2 and
// NC-2: clusters hold C disks — data disks 0..C-3, the P disk at C-2
// and the Q disk at C-1. Placement is otherwise identical to
// ClusteredLayout (round-robin groups, one object per group); only the
// split of each cluster into data and parity roles changes, so any two
// concurrent failures inside one cluster stay recoverable.
class DualParityLayout : public Layout {
 public:
  // `num_disks` must be a positive multiple of C, and C >= 3 (at least
  // one data disk next to the two parity disks).
  static StatusOr<std::unique_ptr<DualParityLayout>> Create(
      int num_disks, int parity_group_size);

  Scheme scheme_family() const override { return Scheme::kStreamingRaid2; }
  int num_clusters() const override {
    return num_disks() / parity_group_size();
  }
  int disks_per_cluster() const override { return parity_group_size(); }

  BlockLocation DataLocation(int object_id, int64_t track) const override;
  BlockLocation ParityLocation(int object_id, int64_t group) const override;
  BlockLocation QParityLocation(int object_id,
                                int64_t group) const override;

  // The dedicated P and Q disks of `cluster`.
  int PDisk(int cluster) const {
    return cluster * parity_group_size() + parity_group_size() - 2;
  }
  int QDisk(int cluster) const {
    return cluster * parity_group_size() + parity_group_size() - 1;
  }

 private:
  DualParityLayout(int num_disks, int parity_group_size)
      : Layout(num_disks, parity_group_size, /*parity_blocks=*/2) {}
};

// Layout for the Improved-bandwidth scheme (Section 4, Figure 8): clusters
// hold C-1 disks, all of which store data; the parity block of a group on
// cluster i is stored on a disk of cluster i+1 (rotating over that
// cluster's disks so parity load spreads evenly). Every disk therefore
// holds a (C-1)/C fraction of data and a 1/C fraction of parity, and —
// as the paper notes for disk 4 of Figure 8 — belongs to two parity
// groups' worlds: data for its own cluster, parity for its left neighbor.
class ImprovedBandwidthLayout : public Layout {
 public:
  // `num_disks` must be a positive multiple of C-1 and give >= 2 clusters
  // (parity must land on a different cluster than its data).
  static StatusOr<std::unique_ptr<ImprovedBandwidthLayout>> Create(
      int num_disks, int parity_group_size);

  Scheme scheme_family() const override {
    return Scheme::kImprovedBandwidth;
  }
  int num_clusters() const override {
    return num_disks() / disks_per_cluster();
  }
  int disks_per_cluster() const override { return parity_group_size() - 1; }

  BlockLocation DataLocation(int object_id, int64_t track) const override;
  BlockLocation ParityLocation(int object_id, int64_t group) const override;

 private:
  ImprovedBandwidthLayout(int num_disks, int parity_group_size)
      : Layout(num_disks, parity_group_size) {}
};

// ABLATION layout: no striping — every group of an object stays on its
// home cluster (as if each movie lived contiguously on one small array).
// The paper's designs stripe "over all the data disks" precisely to
// avoid what this layout exhibits: a popular title's entire load lands
// on one cluster while the rest of the farm idles. Used by the striping
// ablation bench; scheduling-compatible with the clustered schemes.
class NonStripedLayout : public ClusteredLayout {
 public:
  static StatusOr<std::unique_ptr<NonStripedLayout>> Create(
      int num_disks, int parity_group_size);

  int GroupCluster(int object_id, int64_t /*group*/) const override {
    return HomeCluster(object_id);
  }
  bool striped() const override { return false; }

 protected:
  NonStripedLayout(int num_disks, int parity_group_size)
      : ClusteredLayout(num_disks, parity_group_size) {}
};

// Factory dispatching on scheme.
StatusOr<std::unique_ptr<Layout>> CreateLayout(Scheme scheme, int num_disks,
                                               int parity_group_size);

}  // namespace ftms

#endif  // FTMS_LAYOUT_LAYOUT_H_
