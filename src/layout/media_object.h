#ifndef FTMS_LAYOUT_MEDIA_OBJECT_H_
#define FTMS_LAYOUT_MEDIA_OBJECT_H_

#include <cstdint>
#include <string>

namespace ftms {

// A continuous-media object (e.g. a movie) stored on the server. Objects
// are striped track-by-track over the disk farm and must be delivered at a
// constant bandwidth once started (the paper's real-time requirement).
struct MediaObject {
  int id = 0;
  std::string name;
  double rate_mb_s = 0.1875;  // b_o: delivery bandwidth (MB/s); 1.5 Mb/s
  int64_t num_tracks = 0;     // length in disk tracks of B MB each

  // Total size in MB given track size `track_mb`.
  double SizeMb(double track_mb) const {
    return static_cast<double>(num_tracks) * track_mb;
  }

  // Playback duration in seconds given track size `track_mb`.
  double DurationSeconds(double track_mb) const {
    return SizeMb(track_mb) / rate_mb_s;
  }
};

// Convenience factory: a movie of `minutes` minutes at `rate_mb_s`,
// length rounded up to whole tracks of `track_mb` MB.
MediaObject MakeMovie(int id, const std::string& name, double minutes,
                      double rate_mb_s, double track_mb);

}  // namespace ftms

#endif  // FTMS_LAYOUT_MEDIA_OBJECT_H_
