#include "layout/media_object.h"

#include <cmath>

namespace ftms {

MediaObject MakeMovie(int id, const std::string& name, double minutes,
                      double rate_mb_s, double track_mb) {
  MediaObject obj;
  obj.id = id;
  obj.name = name;
  obj.rate_mb_s = rate_mb_s;
  const double size_mb = minutes * 60.0 * rate_mb_s;
  obj.num_tracks = static_cast<int64_t>(std::ceil(size_mb / track_mb));
  return obj;
}

}  // namespace ftms
