#include "layout/invariants.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace ftms {

namespace {

std::string Where(int object_id, int64_t group) {
  return " (object " + std::to_string(object_id) + ", group " +
         std::to_string(group) + ")";
}

}  // namespace

Status CheckNoDuplicateDisksInGroup(const Layout& layout, int num_objects,
                                    int64_t num_groups) {
  for (int obj = 0; obj < num_objects; ++obj) {
    for (int64_t g = 0; g < num_groups; ++g) {
      std::set<int> disks;
      for (const BlockLocation& loc : layout.GroupDataLocations(obj, g)) {
        if (!disks.insert(loc.disk).second) {
          return Status::Internal("duplicate data disk " +
                                  std::to_string(loc.disk) + Where(obj, g));
        }
      }
      const BlockLocation parity = layout.ParityLocation(obj, g);
      if (!disks.insert(parity.disk).second) {
        return Status::Internal("parity disk " + std::to_string(parity.disk) +
                                " collides with a data disk" + Where(obj, g));
      }
      if (layout.parity_blocks() == 2) {
        const BlockLocation q = layout.QParityLocation(obj, g);
        if (!disks.insert(q.disk).second) {
          return Status::Internal("q parity disk " +
                                  std::to_string(q.disk) +
                                  " collides with another group disk" +
                                  Where(obj, g));
        }
      }
    }
  }
  return Status::Ok();
}

Status CheckGroupWithinCluster(const Layout& layout, int num_objects,
                               int64_t num_groups) {
  for (int obj = 0; obj < num_objects; ++obj) {
    for (int64_t g = 0; g < num_groups; ++g) {
      const int cluster = layout.GroupCluster(obj, g);
      for (const BlockLocation& loc : layout.GroupDataLocations(obj, g)) {
        if (loc.cluster != cluster) {
          return Status::Internal("data block off-cluster" + Where(obj, g));
        }
      }
      const BlockLocation parity = layout.ParityLocation(obj, g);
      if (parity.cluster != cluster) {
        return Status::Internal("parity block off-cluster" + Where(obj, g));
      }
      if (!parity.is_parity) {
        return Status::Internal("parity block not marked parity" +
                                Where(obj, g));
      }
    }
  }
  return Status::Ok();
}

Status CheckParityOnNextCluster(const Layout& layout, int num_objects,
                                int64_t num_groups) {
  const int nc = layout.num_clusters();
  for (int obj = 0; obj < num_objects; ++obj) {
    for (int64_t g = 0; g < num_groups; ++g) {
      const int data_cluster = layout.GroupCluster(obj, g);
      const BlockLocation parity = layout.ParityLocation(obj, g);
      if (parity.cluster != (data_cluster + 1) % nc) {
        return Status::Internal("parity not on right-hand neighbor cluster" +
                                Where(obj, g));
      }
      if (parity.cluster == data_cluster && nc > 1) {
        return Status::Internal("parity on its own data cluster" +
                                Where(obj, g));
      }
    }
  }
  return Status::Ok();
}

Status CheckRoundRobinGroups(const Layout& layout, int num_objects,
                             int64_t num_groups) {
  const int nc = layout.num_clusters();
  for (int obj = 0; obj < num_objects; ++obj) {
    const int home = layout.HomeCluster(obj);
    for (int64_t g = 0; g < num_groups; ++g) {
      const int expected = static_cast<int>((home + g) % nc);
      if (layout.GroupCluster(obj, g) != expected) {
        return Status::Internal("group not round-robin" + Where(obj, g));
      }
      const std::vector<BlockLocation> data =
          layout.GroupDataLocations(obj, g);
      for (const BlockLocation& loc : data) {
        if (loc.cluster != expected) {
          return Status::Internal("data block not on round-robin cluster" +
                                  Where(obj, g));
        }
      }
    }
  }
  return Status::Ok();
}

Status CheckDataLoadBalance(const Layout& layout, int object_id,
                            int64_t num_groups, int64_t tolerance) {
  std::vector<int64_t> per_disk(static_cast<size_t>(layout.num_disks()), 0);
  for (int64_t g = 0; g < num_groups; ++g) {
    for (const BlockLocation& loc :
         layout.GroupDataLocations(object_id, g)) {
      ++per_disk[static_cast<size_t>(loc.disk)];
    }
  }
  // Only disks that can hold data participate: for the clustered family
  // the dedicated parity disks (one per cluster, two for dual-parity)
  // never receive data.
  std::vector<int64_t> data_disks;
  for (int d = 0; d < layout.num_disks(); ++d) {
    const bool parity_only =
        layout.scheme_family() != Scheme::kImprovedBandwidth &&
        d % layout.parity_group_size() >=
            layout.parity_group_size() - layout.parity_blocks();
    if (!parity_only) data_disks.push_back(per_disk[static_cast<size_t>(d)]);
  }
  const auto [min_it, max_it] =
      std::minmax_element(data_disks.begin(), data_disks.end());
  if (*max_it - *min_it > tolerance) {
    return Status::Internal(
        "data load imbalance: min=" + std::to_string(*min_it) +
        " max=" + std::to_string(*max_it));
  }
  return Status::Ok();
}

Status CheckDualParityDisks(const Layout& layout, int num_objects,
                            int64_t num_groups) {
  if (layout.parity_blocks() != 2) {
    return Status::Internal("layout does not advertise two parity blocks");
  }
  const int c = layout.parity_group_size();
  for (int obj = 0; obj < num_objects; ++obj) {
    for (int64_t g = 0; g < num_groups; ++g) {
      const int cluster = layout.GroupCluster(obj, g);
      const BlockLocation p = layout.ParityLocation(obj, g);
      const BlockLocation q = layout.QParityLocation(obj, g);
      if (p.cluster != cluster || q.cluster != cluster) {
        return Status::Internal("P/Q block off-cluster" + Where(obj, g));
      }
      if (p.disk != cluster * c + c - 2) {
        return Status::Internal("P not on slot C-2" + Where(obj, g));
      }
      if (q.disk != cluster * c + c - 1) {
        return Status::Internal("Q not on slot C-1" + Where(obj, g));
      }
      if (!p.is_parity || !q.is_parity) {
        return Status::Internal("P/Q block not marked parity" +
                                Where(obj, g));
      }
      for (const BlockLocation& loc : layout.GroupDataLocations(obj, g)) {
        if (loc.disk == p.disk || loc.disk == q.disk) {
          return Status::Internal("data block on a parity disk" +
                                  Where(obj, g));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace ftms
