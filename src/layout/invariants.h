#ifndef FTMS_LAYOUT_INVARIANTS_H_
#define FTMS_LAYOUT_INVARIANTS_H_

#include "layout/layout.h"
#include "util/status.h"

namespace ftms {

// Structural invariants the paper's analysis depends on. Each checker
// walks the first `num_groups` parity groups of `num_objects` synthetic
// objects and returns the first violation found (or OK). They are used by
// property tests and can be run against any Layout implementation.

// Observation 1 is enforced by construction (a group's tracks come from a
// single object); what must be checked is that a group's blocks never
// collide: the C-1 data disks and the parity disk are pairwise distinct.
Status CheckNoDuplicateDisksInGroup(const Layout& layout, int num_objects,
                                    int64_t num_groups);

// Clustered family: all data blocks of a group live on one cluster and the
// parity block lives on that same cluster's dedicated parity disk.
Status CheckGroupWithinCluster(const Layout& layout, int num_objects,
                               int64_t num_groups);

// Improved-bandwidth: the parity block of every group lives on the cluster
// immediately to the right (mod Nc) of the group's data cluster — never on
// the data cluster itself.
Status CheckParityOnNextCluster(const Layout& layout, int num_objects,
                                int64_t num_groups);

// Successive groups of one object visit clusters round-robin: group j is
// on cluster (h + j) mod Nc.
Status CheckRoundRobinGroups(const Layout& layout, int num_objects,
                             int64_t num_groups);

// Load balance: over `num_groups` consecutive groups of one object, every
// data disk of the layout is touched a near-equal number of times (max and
// min per-disk counts differ by at most `tolerance`).
Status CheckDataLoadBalance(const Layout& layout, int object_id,
                            int64_t num_groups, int64_t tolerance);

// Dual-parity family (SR-2/NC-2): every group's P block lives on its
// cluster's slot C-2 and the Q block on slot C-1, both distinct from
// every data disk of the group, and the layout advertises two parity
// blocks per group.
Status CheckDualParityDisks(const Layout& layout, int num_objects,
                            int64_t num_groups);

}  // namespace ftms

#endif  // FTMS_LAYOUT_INVARIANTS_H_
