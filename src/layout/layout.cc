#include "layout/layout.h"

#include <string>
#include <utility>

namespace ftms {

LayoutGeom Layout::Geom() const {
  LayoutGeom g;
  g.num_clusters = num_clusters();
  g.disks_per_cluster = disks_per_cluster();
  g.per_group = DataBlocksPerGroup();
  g.parity_blocks = parity_blocks();
  g.striped = striped();
  g.ib = scheme_family() == Scheme::kImprovedBandwidth;
  g.per_group_div = FastDiv(static_cast<uint32_t>(g.per_group));
  g.clusters_div = FastDiv(static_cast<uint32_t>(g.num_clusters));
  g.dpc_div = FastDiv(static_cast<uint32_t>(g.disks_per_cluster));
  return g;
}

std::vector<BlockLocation> Layout::GroupDataLocations(int object_id,
                                                      int64_t group) const {
  std::vector<BlockLocation> out;
  out.reserve(static_cast<size_t>(DataBlocksPerGroup()));
  const int64_t first = group * DataBlocksPerGroup();
  for (int i = 0; i < DataBlocksPerGroup(); ++i) {
    out.push_back(DataLocation(object_id, first + i));
  }
  return out;
}

namespace {

Status ValidateCommon(int num_disks, int parity_group_size) {
  if (parity_group_size < 2) {
    return Status::InvalidArgument("parity group size must be >= 2");
  }
  if (num_disks <= 0) {
    return Status::InvalidArgument("num_disks must be positive");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<ClusteredLayout>> ClusteredLayout::Create(
    int num_disks, int parity_group_size) {
  FTMS_RETURN_IF_ERROR(ValidateCommon(num_disks, parity_group_size));
  if (num_disks % parity_group_size != 0) {
    return Status::InvalidArgument(
        "num_disks (" + std::to_string(num_disks) +
        ") must be a multiple of the parity group size (" +
        std::to_string(parity_group_size) + ")");
  }
  return std::unique_ptr<ClusteredLayout>(
      new ClusteredLayout(num_disks, parity_group_size));
}

BlockLocation ClusteredLayout::DataLocation(int object_id,
                                            int64_t track) const {
  const int64_t group = GroupOf(track);
  const int cluster = GroupCluster(object_id, group);
  BlockLocation loc;
  loc.cluster = cluster;
  loc.disk = cluster * parity_group_size() + PositionInGroup(track);
  loc.is_parity = false;
  return loc;
}

BlockLocation ClusteredLayout::ParityLocation(int object_id,
                                              int64_t group) const {
  const int cluster = GroupCluster(object_id, group);
  BlockLocation loc;
  loc.cluster = cluster;
  loc.disk = ParityDisk(cluster);
  loc.is_parity = true;
  return loc;
}

StatusOr<std::unique_ptr<DualParityLayout>> DualParityLayout::Create(
    int num_disks, int parity_group_size) {
  FTMS_RETURN_IF_ERROR(ValidateCommon(num_disks, parity_group_size));
  if (parity_group_size < 3) {
    return Status::InvalidArgument(
        "dual-parity clusters need C >= 3 (two parity disks plus data)");
  }
  if (num_disks % parity_group_size != 0) {
    return Status::InvalidArgument(
        "num_disks (" + std::to_string(num_disks) +
        ") must be a multiple of the parity group size (" +
        std::to_string(parity_group_size) + ")");
  }
  return std::unique_ptr<DualParityLayout>(
      new DualParityLayout(num_disks, parity_group_size));
}

BlockLocation DualParityLayout::DataLocation(int object_id,
                                             int64_t track) const {
  const int64_t group = GroupOf(track);
  const int cluster = GroupCluster(object_id, group);
  BlockLocation loc;
  loc.cluster = cluster;
  loc.disk = cluster * parity_group_size() + PositionInGroup(track);
  loc.is_parity = false;
  return loc;
}

BlockLocation DualParityLayout::ParityLocation(int object_id,
                                               int64_t group) const {
  const int cluster = GroupCluster(object_id, group);
  BlockLocation loc;
  loc.cluster = cluster;
  loc.disk = PDisk(cluster);
  loc.is_parity = true;
  return loc;
}

BlockLocation DualParityLayout::QParityLocation(int object_id,
                                                int64_t group) const {
  const int cluster = GroupCluster(object_id, group);
  BlockLocation loc;
  loc.cluster = cluster;
  loc.disk = QDisk(cluster);
  loc.is_parity = true;
  return loc;
}

StatusOr<std::unique_ptr<ImprovedBandwidthLayout>>
ImprovedBandwidthLayout::Create(int num_disks, int parity_group_size) {
  FTMS_RETURN_IF_ERROR(ValidateCommon(num_disks, parity_group_size));
  const int per_cluster = parity_group_size - 1;
  if (num_disks % per_cluster != 0) {
    return Status::InvalidArgument(
        "num_disks (" + std::to_string(num_disks) +
        ") must be a multiple of C-1 (" + std::to_string(per_cluster) + ")");
  }
  if (num_disks / per_cluster < 2) {
    return Status::InvalidArgument(
        "Improved-bandwidth layout needs at least two clusters");
  }
  return std::unique_ptr<ImprovedBandwidthLayout>(
      new ImprovedBandwidthLayout(num_disks, parity_group_size));
}

BlockLocation ImprovedBandwidthLayout::DataLocation(int object_id,
                                                    int64_t track) const {
  const int64_t group = GroupOf(track);
  const int cluster = GroupCluster(object_id, group);
  BlockLocation loc;
  loc.cluster = cluster;
  loc.disk = cluster * disks_per_cluster() + PositionInGroup(track);
  loc.is_parity = false;
  return loc;
}

BlockLocation ImprovedBandwidthLayout::ParityLocation(int object_id,
                                                      int64_t group) const {
  // Parity of a group living on cluster i goes to cluster i+1 (mod Nc),
  // rotating over that cluster's disks so no single disk absorbs all the
  // neighbor's parity.
  const int data_cluster = GroupCluster(object_id, group);
  const int parity_cluster = (data_cluster + 1) % num_clusters();
  const int index = static_cast<int>(
      (static_cast<int64_t>(object_id) + group) % disks_per_cluster());
  BlockLocation loc;
  loc.cluster = parity_cluster;
  loc.disk = parity_cluster * disks_per_cluster() + index;
  loc.is_parity = true;
  return loc;
}

StatusOr<std::unique_ptr<NonStripedLayout>> NonStripedLayout::Create(
    int num_disks, int parity_group_size) {
  // Same geometric constraints as the striped clustered layout.
  StatusOr<std::unique_ptr<ClusteredLayout>> base =
      ClusteredLayout::Create(num_disks, parity_group_size);
  if (!base.ok()) return base.status();
  return std::unique_ptr<NonStripedLayout>(
      new NonStripedLayout(num_disks, parity_group_size));
}

StatusOr<std::unique_ptr<Layout>> CreateLayout(Scheme scheme, int num_disks,
                                               int parity_group_size) {
  if (scheme == Scheme::kImprovedBandwidth) {
    auto layout = ImprovedBandwidthLayout::Create(num_disks,
                                                  parity_group_size);
    if (!layout.ok()) return layout.status();
    return StatusOr<std::unique_ptr<Layout>>(std::move(layout.value()));
  }
  if (IsDualParity(scheme)) {
    auto layout = DualParityLayout::Create(num_disks, parity_group_size);
    if (!layout.ok()) return layout.status();
    return StatusOr<std::unique_ptr<Layout>>(std::move(layout.value()));
  }
  auto layout = ClusteredLayout::Create(num_disks, parity_group_size);
  if (!layout.ok()) return layout.status();
  return StatusOr<std::unique_ptr<Layout>>(std::move(layout.value()));
}

}  // namespace ftms
