#ifndef FTMS_QOS_EVENT_JOURNAL_H_
#define FTMS_QOS_EVENT_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ftms {

// Semantic event kinds recorded by the schedulers, the rebuild manager and
// the simulation engine. Unlike trace spans (timing) and registry counters
// (totals), journal events capture WHAT happened to WHOM: a specific disk
// failed mid-sweep, a specific cluster entered its degraded transition, a
// rebuild crossed a progress quarter, an SLO started burning.
enum class QosEventKind : uint8_t {
  kDiskFailed,               // value = 1 when the failure hit mid-sweep
  kDiskRepaired,             // value = 0
  kDegradedTransitionStart,  // value = transition length bound in cycles (C)
  kDegradedTransitionEnd,    // value = 1 when cut short by a repair
  kRebuildStart,             // value = tracks to regenerate
  kRebuildProgress,          // value = percent complete (quarter crossings)
  kRebuildDone,              // value = cycles the rebuild took
  kHiccups,                  // value = tracks missed in the cycle just run
  kAdmissionRejected,        // value = 0
  kSloBreach,                // value = index of the breached SloSpec
  kSimHorizon,               // value = events processed by the Simulator
};

// Stable wire name of a kind ("disk_failed", ...).
std::string_view QosEventKindName(QosEventKind kind);

// One journal entry. `scheme` must view storage that outlives the journal
// (SchemeAbbrev literals in practice); -1 marks an inapplicable id field.
struct QosEvent {
  QosEventKind kind = QosEventKind::kDiskFailed;
  std::string_view scheme = "";
  int64_t sim_us = 0;  // simulated time (the cycle clock), microseconds
  int64_t cycle = -1;  // scheduling cycle the event belongs to
  int disk = -1;
  int cluster = -1;
  int stream = -1;
  int64_t value = 0;  // kind-specific payload, see QosEventKind

  friend bool operator==(const QosEvent&, const QosEvent&) = default;
};

// Append-only structured journal with the same zero-cost-off contract as
// MetricsRegistry / Tracer: components hold a nullable EventJournal* and
// Global() is only handed out when FTMS_QOS=1 (or SetGlobalEnabled(true)),
// so a detached site costs one untaken branch. All producers append at
// serial points only (cycle boundaries, failure injection, rebuild steps),
// which makes the journal byte-identical at any FTMS_THREADS setting; the
// internal mutex merely guards concurrent rigs sharing the global journal.
//
// Memory is bounded: the journal keeps at most `max_events` entries
// (FTMS_QOS_MAX_EVENTS, default 262144 ≈ 11 MB) as a ring — when full,
// each append evicts the oldest event and bumps the dropped count (and
// the global ftms_qos_journal_dropped_total counter when metrics are on).
// Exports append a `journal_dropped` footer line so a truncated JSONL
// dump is self-describing. A cap of 0 means unbounded.
class EventJournal {
 public:
  static constexpr size_t kDefaultMaxEvents = 262144;

  // Reads FTMS_QOS_MAX_EVENTS (absent -> kDefaultMaxEvents, 0 -> no cap).
  EventJournal();
  explicit EventJournal(size_t max_events) : max_events_(max_events) {}
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  static EventJournal& Global();
  static bool GlobalEnabled();  // FTMS_QOS=1 (cached) or SetGlobalEnabled
  static void SetGlobalEnabled(bool enabled);
  static EventJournal* GlobalIfEnabled() {
    return GlobalEnabled() ? &Global() : nullptr;
  }

  void Append(const QosEvent& event);

  std::vector<QosEvent> Snapshot() const;  // oldest retained event first
  size_t size() const;                     // events currently retained
  int64_t CountOf(QosEventKind kind) const;
  void Clear();  // drops events AND resets the dropped count

  size_t max_events() const { return max_events_; }
  int64_t dropped() const;         // events evicted by the ring cap
  int64_t total_appended() const;  // size() + dropped()

  // Last `n` retained events as JSONL lines (oldest first, no trailing
  // newline per line). `total` / `dropped` receive the retained and
  // evicted counts from the same locked view when non-null.
  std::vector<std::string> TailLines(size_t n, int64_t* total = nullptr,
                                     int64_t* dropped = nullptr) const;

  // One JSON object per line, fields in fixed order — byte-identical for
  // identical event sequences:
  //   {"kind":"disk_failed","scheme":"SR","sim_us":0,"cycle":3,
  //    "disk":2,"cluster":0,"stream":-1,"value":1}
  // When the ring cap has evicted events, a final footer line with
  // kind "journal_dropped", scheme "sim" and value = dropped() records
  // the truncation.
  std::string ToJsonl() const;
  Status WriteJsonl(const std::string& path) const;

  // Per-kind event counts as a JSON object (for bench_report's qos block).
  std::string StatsJson(const std::string& indent,
                        const std::string& close_indent) const;

 private:
  // Index of the i-th oldest retained event in the ring. Callers hold mu_.
  size_t RingIndex(size_t i) const {
    return events_.size() < max_events_ || max_events_ == 0
               ? i
               : (head_ + i) % max_events_;
  }

  mutable std::mutex mu_;
  size_t max_events_ = kDefaultMaxEvents;  // 0 = unbounded
  size_t head_ = 0;      // oldest retained event once the ring is full
  int64_t dropped_ = 0;  // events evicted by the cap
  class Counter* dropped_counter_ = nullptr;  // lazily bound global metric
  std::vector<QosEvent> events_;
};

}  // namespace ftms

#endif  // FTMS_QOS_EVENT_JOURNAL_H_
