#ifndef FTMS_QOS_EVENT_JOURNAL_H_
#define FTMS_QOS_EVENT_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ftms {

// Semantic event kinds recorded by the schedulers, the rebuild manager and
// the simulation engine. Unlike trace spans (timing) and registry counters
// (totals), journal events capture WHAT happened to WHOM: a specific disk
// failed mid-sweep, a specific cluster entered its degraded transition, a
// rebuild crossed a progress quarter, an SLO started burning.
enum class QosEventKind : uint8_t {
  kDiskFailed,               // value = 1 when the failure hit mid-sweep
  kDiskRepaired,             // value = 0
  kDegradedTransitionStart,  // value = transition length bound in cycles (C)
  kDegradedTransitionEnd,    // value = 1 when cut short by a repair
  kRebuildStart,             // value = tracks to regenerate
  kRebuildProgress,          // value = percent complete (quarter crossings)
  kRebuildDone,              // value = cycles the rebuild took
  kHiccups,                  // value = tracks missed in the cycle just run
  kAdmissionRejected,        // value = 0
  kSloBreach,                // value = index of the breached SloSpec
  kSimHorizon,               // value = events processed by the Simulator
};

// Stable wire name of a kind ("disk_failed", ...).
std::string_view QosEventKindName(QosEventKind kind);

// One journal entry. `scheme` must view storage that outlives the journal
// (SchemeAbbrev literals in practice); -1 marks an inapplicable id field.
struct QosEvent {
  QosEventKind kind = QosEventKind::kDiskFailed;
  std::string_view scheme = "";
  int64_t sim_us = 0;  // simulated time (the cycle clock), microseconds
  int64_t cycle = -1;  // scheduling cycle the event belongs to
  int disk = -1;
  int cluster = -1;
  int stream = -1;
  int64_t value = 0;  // kind-specific payload, see QosEventKind

  friend bool operator==(const QosEvent&, const QosEvent&) = default;
};

// Append-only structured journal with the same zero-cost-off contract as
// MetricsRegistry / Tracer: components hold a nullable EventJournal* and
// Global() is only handed out when FTMS_QOS=1 (or SetGlobalEnabled(true)),
// so a detached site costs one untaken branch. All producers append at
// serial points only (cycle boundaries, failure injection, rebuild steps),
// which makes the journal byte-identical at any FTMS_THREADS setting; the
// internal mutex merely guards concurrent rigs sharing the global journal.
class EventJournal {
 public:
  EventJournal() = default;
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  static EventJournal& Global();
  static bool GlobalEnabled();  // FTMS_QOS=1 (cached) or SetGlobalEnabled
  static void SetGlobalEnabled(bool enabled);
  static EventJournal* GlobalIfEnabled() {
    return GlobalEnabled() ? &Global() : nullptr;
  }

  void Append(const QosEvent& event);

  std::vector<QosEvent> Snapshot() const;
  size_t size() const;
  int64_t CountOf(QosEventKind kind) const;
  void Clear();

  // One JSON object per line, fields in fixed order — byte-identical for
  // identical event sequences:
  //   {"kind":"disk_failed","scheme":"SR","sim_us":0,"cycle":3,
  //    "disk":2,"cluster":0,"stream":-1,"value":1}
  std::string ToJsonl() const;
  Status WriteJsonl(const std::string& path) const;

  // Per-kind event counts as a JSON object (for bench_report's qos block).
  std::string StatsJson(const std::string& indent,
                        const std::string& close_indent) const;

 private:
  mutable std::mutex mu_;
  std::vector<QosEvent> events_;
};

}  // namespace ftms

#endif  // FTMS_QOS_EVENT_JOURNAL_H_
