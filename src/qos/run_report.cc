#include "qos/run_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/json.h"

namespace ftms {

namespace {

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

// Simulated microseconds as seconds with millisecond precision — the
// journal's native resolution at cycle granularity.
void AppendSeconds(std::string* out, int64_t us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(us) / 1e6);
  out->append(buf);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot read " + path);
  }
  std::string data;
  char buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  return data;
}

Status LoadJournal(const std::string& path, RunReport* report) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  std::map<std::string, int64_t> counts;
  size_t pos = 0;
  int64_t line_no = 0;
  while (pos < text->size()) {
    size_t end = text->find('\n', pos);
    if (end == std::string::npos) end = text->size();
    const std::string_view line(text->data() + pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    StatusOr<JsonValue> value = JsonValue::Parse(line);
    if (!value.ok()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": " +
          std::string(value.status().message()));
    }
    const JsonValue* kind = value->Find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) +
          ": journal event without a \"kind\" string");
    }
    ++report->event_count;
    ++counts[kind->AsString()];
    RunReport::TimelineEvent event;
    event.kind = kind->AsString();
    if (const JsonValue* v = value->Find("sim_us")) event.sim_us = v->AsInt();
    if (const JsonValue* v = value->Find("cycle")) event.cycle = v->AsInt();
    if (const JsonValue* v = value->Find("value")) event.value = v->AsInt();
    if (const JsonValue* v = value->Find("scheme")) {
      event.scheme = v->AsString();
    }
    report->horizon_us = std::max(report->horizon_us, event.sim_us);
    if (event.kind == "hiccups") {
      report->hiccups.push_back(std::move(event));
    } else if (event.kind == "slo_breach") {
      report->slo_breaches.push_back(std::move(event));
    } else if (event.kind == "rebuild_start" ||
               event.kind == "rebuild_progress" ||
               event.kind == "rebuild_done") {
      report->rebuild.push_back(std::move(event));
    }
  }
  report->kind_counts.assign(counts.begin(), counts.end());
  return Status::Ok();
}

void FlattenProfile(const JsonValue& node, const std::string& prefix,
                    int depth, std::vector<RunReport::ProfileNode>* out) {
  const JsonValue* name = node.Find("name");
  if (name == nullptr || !name->is_string()) return;
  RunReport::ProfileNode flat;
  flat.path = prefix.empty() ? name->AsString()
                             : prefix + " > " + name->AsString();
  flat.depth = depth;
  if (const JsonValue* v = node.Find("count")) flat.count = v->AsInt();
  if (const JsonValue* v = node.Find("wall_us")) {
    flat.wall_us = v->AsNumber();
  }
  const std::string path = flat.path;
  out->push_back(std::move(flat));
  if (const JsonValue* children = node.Find("children")) {
    for (const JsonValue& child : children->items()) {
      FlattenProfile(child, path, depth + 1, out);
    }
  }
}

Status LoadMetrics(const std::string& path, RunReport* report) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  StatusOr<JsonValue> value = JsonValue::Parse(*text);
  if (!value.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(value.status().message()));
  }
  if (!value->is_object()) {
    return Status::InvalidArgument(path + ": expected a JSON object");
  }
  const JsonValue* metrics = value->Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Status::InvalidArgument(
        path + ": no \"metrics\" object (not a bench report?)");
  }
  report->has_metrics = true;
  if (const JsonValue* bench = value->Find("bench")) {
    report->bench_name = bench->AsString();
  }
  if (const JsonValue* schema = value->Find("schema_version")) {
    report->schema_version = schema->AsInt();
  }
  for (const auto& [key, v] : metrics->members()) {
    report->metrics.emplace_back(key, v.AsNumber());
  }
  if (const JsonValue* profile = value->Find("profile")) {
    if (const JsonValue* nodes = profile->Find("nodes")) {
      for (const JsonValue& node : nodes->items()) {
        FlattenProfile(node, "", 0, &report->profile);
      }
    }
  }
  return Status::Ok();
}

Status LoadTimeSeries(const std::string& path, RunReport* report) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  StatusOr<JsonValue> value = JsonValue::Parse(*text);
  if (!value.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(value.status().message()));
  }
  const JsonValue* series = value->Find("series");
  if (series == nullptr || !series->is_object()) {
    return Status::InvalidArgument(
        path + ": no \"series\" object (not a time-series dump?)");
  }
  report->has_timeseries = true;
  for (const auto& [name, s] : series->members()) {
    const JsonValue* t = s.Find("t");
    const JsonValue* v = s.Find("v");
    if (t == nullptr || v == nullptr || !t->is_array() || !v->is_array() ||
        t->items().size() != v->items().size()) {
      return Status::InvalidArgument(path + ": series \"" + name +
                                     "\" has mismatched t/v columns");
    }
    RunReport::SeriesSummary sum;
    sum.name = name;
    sum.points = t->items().size();
    if (const JsonValue* stride = s.Find("stride")) {
      sum.stride = stride->AsInt();
    }
    sum.curve.reserve(sum.points);
    for (size_t i = 0; i < sum.points; ++i) {
      const int64_t ti = t->items()[i].AsInt();
      const double vi = v->items()[i].AsNumber();
      if (i == 0) {
        sum.t_first = ti;
        sum.v_first = vi;
        sum.v_min = vi;
        sum.v_max = vi;
      }
      sum.t_last = ti;
      sum.v_last = vi;
      sum.v_min = std::min(sum.v_min, vi);
      sum.v_max = std::max(sum.v_max, vi);
      sum.curve.emplace_back(ti, vi);
    }
    report->series.push_back(std::move(sum));
  }
  std::sort(report->series.begin(), report->series.end(),
            [](const RunReport::SeriesSummary& a,
               const RunReport::SeriesSummary& b) { return a.name < b.name; });
  return Status::Ok();
}

// Renders a curve as at most `max_points` "t -> v" steps (first and last
// always kept), so long runs stay readable.
void AppendCurve(std::string* out, const RunReport::SeriesSummary& s,
                 size_t max_points) {
  if (s.curve.empty()) return;
  const size_t n = s.curve.size();
  const size_t step = n <= max_points ? 1 : (n + max_points - 1) / max_points;
  for (size_t i = 0; i < n; i += step) {
    const auto& [t, v] = s.curve[i];
    *out += "  - t=";
    AppendSeconds(out, t);
    *out += "s: ";
    AppendDouble(out, v);
    *out += "\n";
  }
  if ((n - 1) % step != 0) {
    const auto& [t, v] = s.curve.back();
    *out += "  - t=";
    AppendSeconds(out, t);
    *out += "s: ";
    AppendDouble(out, v);
    *out += "\n";
  }
}

}  // namespace

StatusOr<RunReport> LoadRunReport(const std::string& journal_path,
                                  const std::string& metrics_path,
                                  const std::string& timeseries_path) {
  RunReport report;
  report.journal_path = journal_path;
  FTMS_RETURN_IF_ERROR(LoadJournal(journal_path, &report));
  if (!metrics_path.empty()) {
    FTMS_RETURN_IF_ERROR(LoadMetrics(metrics_path, &report));
  }
  if (!timeseries_path.empty()) {
    FTMS_RETURN_IF_ERROR(LoadTimeSeries(timeseries_path, &report));
  }
  return report;
}

std::string RenderRunReportMarkdown(const RunReport& report) {
  std::string out = "# FTMS run report\n\n";
  out += "Journal: `" + report.journal_path + "` — ";
  AppendInt(&out, report.event_count);
  out += " events, horizon ";
  AppendSeconds(&out, report.horizon_us);
  out += " s simulated.\n";

  out += "\n## Journal events\n\n";
  if (report.kind_counts.empty()) {
    out += "No events recorded.\n";
  } else {
    out += "| kind | count |\n|---|---|\n";
    for (const auto& [kind, count] : report.kind_counts) {
      out += "| " + kind + " | ";
      AppendInt(&out, count);
      out += " |\n";
    }
  }

  out += "\n## SLO burn\n\n";
  if (report.slo_breaches.empty()) {
    out += "No SLO breaches recorded.\n";
  } else {
    AppendInt(&out, static_cast<int64_t>(report.slo_breaches.size()));
    out += " breach transition(s):\n\n";
    for (const auto& e : report.slo_breaches) {
      out += "- t=";
      AppendSeconds(&out, e.sim_us);
      out += "s cycle=";
      AppendInt(&out, e.cycle);
      out += " slo_index=";
      AppendInt(&out, e.value);
      if (!e.scheme.empty()) out += " (" + e.scheme + ")";
      out += "\n";
    }
  }
  for (const auto& s : report.series) {
    if (s.name.find("slo_burn") == std::string::npos) continue;
    out += "\nBurn rate `" + s.name + "` (max ";
    AppendDouble(&out, s.v_max);
    out += ", last ";
    AppendDouble(&out, s.v_last);
    out += "):\n";
    AppendCurve(&out, s, 8);
  }

  out += "\n## Hiccup timeline\n\n";
  if (report.hiccups.empty()) {
    out += "No hiccups recorded.\n";
  } else {
    const size_t shown = std::min<size_t>(report.hiccups.size(), 20);
    for (size_t i = 0; i < shown; ++i) {
      const auto& e = report.hiccups[i];
      out += "- t=";
      AppendSeconds(&out, e.sim_us);
      out += "s cycle=";
      AppendInt(&out, e.cycle);
      out += " tracks_missed=";
      AppendInt(&out, e.value);
      if (!e.scheme.empty()) out += " (" + e.scheme + ")";
      out += "\n";
    }
    if (report.hiccups.size() > shown) {
      out += "- ... and ";
      AppendInt(&out, static_cast<int64_t>(report.hiccups.size() - shown));
      out += " more\n";
    }
  }

  out += "\n## Rebuild\n\n";
  if (report.rebuild.empty()) {
    out += "No rebuild recorded.\n";
  } else {
    for (const auto& e : report.rebuild) {
      out += "- t=";
      AppendSeconds(&out, e.sim_us);
      out += "s " + e.kind;
      if (e.kind == "rebuild_start") {
        out += " tracks_total=";
        AppendInt(&out, e.value);
      } else if (e.kind == "rebuild_progress") {
        out += " percent=";
        AppendInt(&out, e.value);
      } else if (e.kind == "rebuild_done") {
        out += " cycles=";
        AppendInt(&out, e.value);
      }
      out += "\n";
    }
  }
  for (const auto& s : report.series) {
    if (s.name.find("rebuild.") != 0 ||
        s.name.find(".progress") == std::string::npos) {
      continue;
    }
    out += "\nProgress curve `" + s.name + "` (";
    AppendInt(&out, static_cast<int64_t>(s.points));
    out += " points, stride ";
    AppendInt(&out, s.stride);
    out += "):\n";
    AppendCurve(&out, s, 16);
  }

  if (!report.profile.empty()) {
    out += "\n## Per-subsystem time split\n\n";
    double top_total = 0;
    for (const auto& node : report.profile) {
      if (node.depth == 0) top_total += node.wall_us;
    }
    out += "| scope | calls | wall ms | share |\n|---|---|---|---|\n";
    for (const auto& node : report.profile) {
      out += "| ";
      for (int i = 0; i < node.depth; ++i) out += "&nbsp;&nbsp;";
      const size_t leaf = node.path.rfind(" > ");
      out += leaf == std::string::npos ? node.path
                                       : node.path.substr(leaf + 3);
      out += " | ";
      AppendInt(&out, node.count);
      out += " | ";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", node.wall_us / 1000.0);
      out += buf;
      out += " | ";
      if (node.depth == 0 && top_total > 0) {
        std::snprintf(buf, sizeof(buf), "%.1f%%",
                      100.0 * node.wall_us / top_total);
        out += buf;
      } else {
        out += "-";
      }
      out += " |\n";
    }
  }

  if (report.has_timeseries) {
    out += "\n## Time series\n\n";
    if (report.series.empty()) {
      out += "No series recorded.\n";
    } else {
      out += "| series | points | stride | t range (s) | last |\n"
             "|---|---|---|---|---|\n";
      for (const auto& s : report.series) {
        out += "| " + s.name + " | ";
        AppendInt(&out, static_cast<int64_t>(s.points));
        out += " | ";
        AppendInt(&out, s.stride);
        out += " | ";
        AppendSeconds(&out, s.t_first);
        out += " – ";
        AppendSeconds(&out, s.t_last);
        out += " | ";
        AppendDouble(&out, s.v_last);
        out += " |\n";
      }
    }
  }

  if (report.has_metrics) {
    out += "\n## Bench metrics\n\n";
    if (!report.bench_name.empty()) {
      out += "`" + report.bench_name + "` (schema ";
      AppendInt(&out, report.schema_version);
      out += ")\n\n";
    }
    out += "| metric | value |\n|---|---|\n";
    for (const auto& [key, value] : report.metrics) {
      out += "| " + key + " | ";
      AppendDouble(&out, value);
      out += " |\n";
    }
  }

  return out;
}

std::string RenderRunReportJson(const RunReport& report) {
  std::string out = "{\n  \"journal\": ";
  AppendJsonString(&out, report.journal_path);
  out += ",\n  \"event_count\": ";
  AppendInt(&out, report.event_count);
  out += ",\n  \"horizon_us\": ";
  AppendInt(&out, report.horizon_us);
  out += ",\n  \"events\": {";
  for (size_t i = 0; i < report.kind_counts.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    AppendJsonString(&out, report.kind_counts[i].first);
    out += ": ";
    AppendInt(&out, report.kind_counts[i].second);
  }
  out += report.kind_counts.empty() ? "}" : "\n  }";

  const auto emit_events =
      [&](const char* key, const std::vector<RunReport::TimelineEvent>& evs) {
        out += ",\n  \"";
        out += key;
        out += "\": [";
        for (size_t i = 0; i < evs.size(); ++i) {
          out += i == 0 ? "\n" : ",\n";
          out += "    {\"sim_us\": ";
          AppendInt(&out, evs[i].sim_us);
          out += ", \"cycle\": ";
          AppendInt(&out, evs[i].cycle);
          out += ", \"kind\": ";
          AppendJsonString(&out, evs[i].kind);
          out += ", \"value\": ";
          AppendInt(&out, evs[i].value);
          out += "}";
        }
        out += evs.empty() ? "]" : "\n  ]";
      };
  emit_events("hiccups", report.hiccups);
  emit_events("slo_breaches", report.slo_breaches);
  emit_events("rebuild", report.rebuild);

  if (report.has_metrics) {
    out += ",\n  \"metrics\": {";
    for (size_t i = 0; i < report.metrics.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    ";
      AppendJsonString(&out, report.metrics[i].first);
      out += ": ";
      AppendDouble(&out, report.metrics[i].second);
    }
    out += report.metrics.empty() ? "}" : "\n  }";
    out += ",\n  \"profile\": [";
    for (size_t i = 0; i < report.profile.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"path\": ";
      AppendJsonString(&out, report.profile[i].path);
      out += ", \"count\": ";
      AppendInt(&out, report.profile[i].count);
      out += ", \"wall_us\": ";
      AppendDouble(&out, report.profile[i].wall_us);
      out += "}";
    }
    out += report.profile.empty() ? "]" : "\n  ]";
  }

  if (report.has_timeseries) {
    out += ",\n  \"timeseries\": {";
    for (size_t i = 0; i < report.series.size(); ++i) {
      const auto& s = report.series[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    ";
      AppendJsonString(&out, s.name);
      out += ": {\"points\": ";
      AppendInt(&out, static_cast<int64_t>(s.points));
      out += ", \"stride\": ";
      AppendInt(&out, s.stride);
      out += ", \"t_first\": ";
      AppendInt(&out, s.t_first);
      out += ", \"t_last\": ";
      AppendInt(&out, s.t_last);
      out += ", \"v_min\": ";
      AppendDouble(&out, s.v_min);
      out += ", \"v_max\": ";
      AppendDouble(&out, s.v_max);
      out += ", \"v_last\": ";
      AppendDouble(&out, s.v_last);
      out += "}";
    }
    out += report.series.empty() ? "}" : "\n  }";
  }

  out += "\n}\n";
  return out;
}

}  // namespace ftms
