#include "qos/event_journal.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/metrics.h"

namespace ftms {

namespace {

std::atomic<int> g_global_enabled{-1};  // -1 = not yet resolved from env

bool ResolveGlobalEnabledFromEnv() {
  const char* env = std::getenv("FTMS_QOS");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

void AppendEventJson(std::string* out, const QosEvent& e) {
  out->append("{\"kind\":\"");
  out->append(QosEventKindName(e.kind));
  out->append("\",\"scheme\":\"");
  out->append(e.scheme);
  out->append("\",\"sim_us\":");
  AppendInt(out, e.sim_us);
  out->append(",\"cycle\":");
  AppendInt(out, e.cycle);
  out->append(",\"disk\":");
  AppendInt(out, e.disk);
  out->append(",\"cluster\":");
  AppendInt(out, e.cluster);
  out->append(",\"stream\":");
  AppendInt(out, e.stream);
  out->append(",\"value\":");
  AppendInt(out, e.value);
  out->append("}");
}

// The dropped-count footer appended to JSONL exports when the ring cap
// evicted events; `sim_us` carries the newest retained event's clock.
void AppendDroppedFooter(std::string* out, int64_t sim_us,
                         int64_t dropped) {
  out->append("{\"kind\":\"journal_dropped\",\"scheme\":\"sim\",\"sim_us\":");
  AppendInt(out, sim_us);
  out->append(",\"cycle\":-1,\"disk\":-1,\"cluster\":-1,\"stream\":-1,"
              "\"value\":");
  AppendInt(out, dropped);
  out->append("}\n");
}

size_t ResolveMaxEventsFromEnv() {
  const char* env = std::getenv("FTMS_QOS_MAX_EVENTS");
  if (env == nullptr || env[0] == '\0') {
    return EventJournal::kDefaultMaxEvents;
  }
  const long long v = std::atoll(env);
  return v <= 0 ? 0 : static_cast<size_t>(v);
}

}  // namespace

std::string_view QosEventKindName(QosEventKind kind) {
  switch (kind) {
    case QosEventKind::kDiskFailed:
      return "disk_failed";
    case QosEventKind::kDiskRepaired:
      return "disk_repaired";
    case QosEventKind::kDegradedTransitionStart:
      return "degraded_transition_start";
    case QosEventKind::kDegradedTransitionEnd:
      return "degraded_transition_end";
    case QosEventKind::kRebuildStart:
      return "rebuild_start";
    case QosEventKind::kRebuildProgress:
      return "rebuild_progress";
    case QosEventKind::kRebuildDone:
      return "rebuild_done";
    case QosEventKind::kHiccups:
      return "hiccups";
    case QosEventKind::kAdmissionRejected:
      return "admission_rejected";
    case QosEventKind::kSloBreach:
      return "slo_breach";
    case QosEventKind::kSimHorizon:
      return "sim_horizon";
  }
  return "unknown";
}

EventJournal& EventJournal::Global() {
  static EventJournal* journal = new EventJournal();  // leaked
  return *journal;
}

bool EventJournal::GlobalEnabled() {
  int state = g_global_enabled.load(std::memory_order_acquire);
  if (state < 0) {
    state = ResolveGlobalEnabledFromEnv() ? 1 : 0;
    g_global_enabled.store(state, std::memory_order_release);
  }
  return state == 1;
}

void EventJournal::SetGlobalEnabled(bool enabled) {
  g_global_enabled.store(enabled ? 1 : 0, std::memory_order_release);
}

EventJournal::EventJournal() : max_events_(ResolveMaxEventsFromEnv()) {}

void EventJournal::Append(const QosEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_events_ == 0 || events_.size() < max_events_) {
    events_.push_back(event);
    return;
  }
  // Ring is full: overwrite the oldest slot and advance the head.
  events_[head_] = event;
  head_ = (head_ + 1) % max_events_;
  ++dropped_;
  if (dropped_counter_ == nullptr) {
    if (MetricsRegistry* registry = MetricsRegistry::GlobalIfEnabled()) {
      dropped_counter_ = registry->GetCounter(
          "ftms_qos_journal_dropped_total",
          "journal events evicted by the FTMS_QOS_MAX_EVENTS ring cap");
    }
  }
  if (dropped_counter_ != nullptr) dropped_counter_->Add(1);
}

std::vector<QosEvent> EventJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QosEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[RingIndex(i)]);
  }
  return out;
}

size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

int64_t EventJournal::CountOf(QosEventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const QosEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void EventJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

int64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

int64_t EventJournal::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(events_.size()) + dropped_;
}

std::vector<std::string> EventJournal::TailLines(size_t n, int64_t* total,
                                                 int64_t* dropped) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total != nullptr) *total = static_cast<int64_t>(events_.size());
  if (dropped != nullptr) *dropped = dropped_;
  const size_t count = n < events_.size() ? n : events_.size();
  std::vector<std::string> lines;
  lines.reserve(count);
  for (size_t i = events_.size() - count; i < events_.size(); ++i) {
    std::string line;
    AppendEventJson(&line, events_[RingIndex(i)]);
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string EventJournal::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 96);
  for (size_t i = 0; i < events_.size(); ++i) {
    AppendEventJson(&out, events_[RingIndex(i)]);
    out.push_back('\n');
  }
  if (dropped_ > 0) {
    const int64_t last_us =
        events_.empty() ? 0
                        : events_[RingIndex(events_.size() - 1)].sim_us;
    AppendDroppedFooter(&out, last_us, dropped_);
  }
  return out;
}

Status EventJournal::WriteJsonl(const std::string& path) const {
  const std::string text = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

std::string EventJournal::StatsJson(const std::string& indent,
                                    const std::string& close_indent) const {
  // One count slot per QosEventKind value, emitted in enum order so the
  // block is deterministic.
  constexpr QosEventKind kKinds[] = {
      QosEventKind::kDiskFailed,
      QosEventKind::kDiskRepaired,
      QosEventKind::kDegradedTransitionStart,
      QosEventKind::kDegradedTransitionEnd,
      QosEventKind::kRebuildStart,
      QosEventKind::kRebuildProgress,
      QosEventKind::kRebuildDone,
      QosEventKind::kHiccups,
      QosEventKind::kAdmissionRejected,
      QosEventKind::kSloBreach,
      QosEventKind::kSimHorizon,
  };
  int64_t counts[sizeof(kKinds) / sizeof(kKinds[0])] = {};
  size_t total = 0;
  int64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = events_.size();
    dropped = dropped_;
    for (const QosEvent& e : events_) {
      ++counts[static_cast<size_t>(e.kind)];
    }
  }
  std::string out = "{\n";
  out += indent;
  out += "\"journal_events\": ";
  AppendInt(&out, static_cast<int64_t>(total));
  for (size_t i = 0; i < sizeof(kKinds) / sizeof(kKinds[0]); ++i) {
    if (counts[i] == 0) continue;
    out += ",\n";
    out += indent;
    out += '"';
    out += QosEventKindName(kKinds[i]);
    out += "\": ";
    AppendInt(&out, counts[i]);
  }
  if (dropped > 0) {
    out += ",\n";
    out += indent;
    out += "\"journal_dropped\": ";
    AppendInt(&out, dropped);
  }
  out += "\n" + close_indent + "}";
  return out;
}

}  // namespace ftms
