#include "qos/event_journal.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ftms {

namespace {

std::atomic<int> g_global_enabled{-1};  // -1 = not yet resolved from env

bool ResolveGlobalEnabledFromEnv() {
  const char* env = std::getenv("FTMS_QOS");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

void AppendEventJson(std::string* out, const QosEvent& e) {
  out->append("{\"kind\":\"");
  out->append(QosEventKindName(e.kind));
  out->append("\",\"scheme\":\"");
  out->append(e.scheme);
  out->append("\",\"sim_us\":");
  AppendInt(out, e.sim_us);
  out->append(",\"cycle\":");
  AppendInt(out, e.cycle);
  out->append(",\"disk\":");
  AppendInt(out, e.disk);
  out->append(",\"cluster\":");
  AppendInt(out, e.cluster);
  out->append(",\"stream\":");
  AppendInt(out, e.stream);
  out->append(",\"value\":");
  AppendInt(out, e.value);
  out->append("}");
}

}  // namespace

std::string_view QosEventKindName(QosEventKind kind) {
  switch (kind) {
    case QosEventKind::kDiskFailed:
      return "disk_failed";
    case QosEventKind::kDiskRepaired:
      return "disk_repaired";
    case QosEventKind::kDegradedTransitionStart:
      return "degraded_transition_start";
    case QosEventKind::kDegradedTransitionEnd:
      return "degraded_transition_end";
    case QosEventKind::kRebuildStart:
      return "rebuild_start";
    case QosEventKind::kRebuildProgress:
      return "rebuild_progress";
    case QosEventKind::kRebuildDone:
      return "rebuild_done";
    case QosEventKind::kHiccups:
      return "hiccups";
    case QosEventKind::kAdmissionRejected:
      return "admission_rejected";
    case QosEventKind::kSloBreach:
      return "slo_breach";
    case QosEventKind::kSimHorizon:
      return "sim_horizon";
  }
  return "unknown";
}

EventJournal& EventJournal::Global() {
  static EventJournal* journal = new EventJournal();  // leaked
  return *journal;
}

bool EventJournal::GlobalEnabled() {
  int state = g_global_enabled.load(std::memory_order_acquire);
  if (state < 0) {
    state = ResolveGlobalEnabledFromEnv() ? 1 : 0;
    g_global_enabled.store(state, std::memory_order_release);
  }
  return state == 1;
}

void EventJournal::SetGlobalEnabled(bool enabled) {
  g_global_enabled.store(enabled ? 1 : 0, std::memory_order_release);
}

void EventJournal::Append(const QosEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<QosEvent> EventJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

int64_t EventJournal::CountOf(QosEventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const QosEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void EventJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string EventJournal::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 96);
  for (const QosEvent& e : events_) {
    AppendEventJson(&out, e);
    out.push_back('\n');
  }
  return out;
}

Status EventJournal::WriteJsonl(const std::string& path) const {
  const std::string text = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

std::string EventJournal::StatsJson(const std::string& indent,
                                    const std::string& close_indent) const {
  // One count slot per QosEventKind value, emitted in enum order so the
  // block is deterministic.
  constexpr QosEventKind kKinds[] = {
      QosEventKind::kDiskFailed,
      QosEventKind::kDiskRepaired,
      QosEventKind::kDegradedTransitionStart,
      QosEventKind::kDegradedTransitionEnd,
      QosEventKind::kRebuildStart,
      QosEventKind::kRebuildProgress,
      QosEventKind::kRebuildDone,
      QosEventKind::kHiccups,
      QosEventKind::kAdmissionRejected,
      QosEventKind::kSloBreach,
      QosEventKind::kSimHorizon,
  };
  int64_t counts[sizeof(kKinds) / sizeof(kKinds[0])] = {};
  size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = events_.size();
    for (const QosEvent& e : events_) {
      ++counts[static_cast<size_t>(e.kind)];
    }
  }
  std::string out = "{\n";
  out += indent;
  out += "\"journal_events\": ";
  AppendInt(&out, static_cast<int64_t>(total));
  for (size_t i = 0; i < sizeof(kKinds) / sizeof(kKinds[0]); ++i) {
    if (counts[i] == 0) continue;
    out += ",\n";
    out += indent;
    out += '"';
    out += QosEventKindName(kKinds[i]);
    out += "\": ";
    AppendInt(&out, counts[i]);
  }
  out += "\n" + close_indent + "}";
  return out;
}

}  // namespace ftms
