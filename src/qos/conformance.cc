#include "qos/conformance.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "layout/schemes.h"

namespace ftms {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out->append(buf);
}

ConformanceFinding NotApplicable(std::string check, std::string why) {
  ConformanceFinding f;
  f.check = std::move(check);
  f.applicable = false;
  f.ok = true;
  f.detail = std::move(why);
  return f;
}

ConformanceFinding Checked(std::string check, double observed, double bound,
                           std::string detail) {
  ConformanceFinding f;
  f.check = std::move(check);
  f.observed = observed;
  f.bound = bound;
  f.ok = observed <= bound;
  f.detail = std::move(detail);
  return f;
}

}  // namespace

ConformanceWatchdog::ConformanceWatchdog(const CycleScheduler* scheduler,
                                         const EventJournal* journal)
    : scheduler_(scheduler), journal_(journal) {}

std::vector<ConformanceWatchdog::FailureRecord>
ConformanceWatchdog::Failures() const {
  std::vector<FailureRecord> out;
  if (journal_ == nullptr) return out;
  const std::string_view scheme =
      SchemeAbbrev(scheduler_->config().scheme);
  for (const QosEvent& e : journal_->Snapshot()) {
    if (e.kind != QosEventKind::kDiskFailed || e.scheme != scheme) continue;
    out.push_back({e.cycle, e.disk, e.value != 0});
  }
  return out;
}

bool ConformanceWatchdog::HadOverlappingFailures() const {
  if (journal_ == nullptr) return false;
  const Scheme s = scheduler_->config().scheme;
  const std::string_view scheme = SchemeAbbrev(s);
  // Single-parity bounds assume one failure at a time; the dual-parity
  // schemes are IN SPEC with two concurrent failures (P+Q repairs any
  // two erasures per cluster), so only a third overlapping failure
  // pushes them into the catastrophic regime.
  const int tolerated = std::max(1, ParityDisksPerCluster(s));
  int down = 0;
  for (const QosEvent& e : journal_->Snapshot()) {
    if (e.scheme != scheme) continue;
    if (e.kind == QosEventKind::kDiskFailed) {
      if (++down > tolerated) return true;
    } else if (e.kind == QosEventKind::kDiskRepaired) {
      down = std::max(0, down - 1);
    }
  }
  return false;
}

std::vector<ConformanceFinding> ConformanceWatchdog::Run() const {
  std::vector<ConformanceFinding> findings;
  const SchedulerConfig& config = scheduler_->config();
  const SchedulerMetrics& m = scheduler_->metrics();
  const int c = config.parity_group_size;

  // The per-stream ledger view and the aggregate counter must describe
  // the same reality, whatever the scheme.
  findings.push_back(Checked(
      "hiccup_attribution_consistent",
      std::fabs(static_cast<double>(scheduler_->TotalHiccups() - m.hiccups)),
      0, "sum of per-stream hiccups vs metrics().hiccups"));

  const std::vector<FailureRecord> failures = Failures();
  const bool overlap = HadOverlappingFailures();
  std::string regime = std::to_string(failures.size()) + " failure(s)";
  if (journal_ == nullptr) regime = "no journal attached";
  if (overlap) regime += ", overlapping (catastrophic regime)";

  const auto gated = [&](const char* check,
                         bool extra_ok = true,
                         const char* extra_why = "") -> bool {
    if (journal_ == nullptr) {
      findings.push_back(NotApplicable(check, "no journal attached"));
      return false;
    }
    if (failures.empty()) {
      findings.push_back(NotApplicable(check, "no failures injected"));
      return false;
    }
    if (overlap) {
      findings.push_back(NotApplicable(
          check, "overlapping failures: catastrophic regime"));
      return false;
    }
    if (!extra_ok) {
      findings.push_back(NotApplicable(check, extra_why));
      return false;
    }
    return true;
  };

  switch (config.scheme) {
    case Scheme::kStreamingRaid:
    case Scheme::kStaggeredGroup: {
      const char* check = config.scheme == Scheme::kStreamingRaid
                              ? "sr_zero_hiccup_guarantee"
                              : "sg_zero_hiccup_guarantee";
      if (gated(check, m.dropped_reads == 0,
                "reads were dropped (overload): masking bound voided")) {
        findings.push_back(Checked(
            check, static_cast<double>(m.hiccups), 0,
            "single failures are masked by parity (Section 2); " + regime));
      }
      break;
    }
    case Scheme::kStreamingRaid2: {
      const char* check = "sr2_two_failure_masking";
      if (gated(check, m.dropped_reads == 0,
                "reads were dropped (overload): masking bound voided")) {
        findings.push_back(Checked(
            check, static_cast<double>(m.hiccups), 0,
            "up to two concurrent failures per cluster are masked by "
            "P+Q parity; " + regime));
      }
      break;
    }
    case Scheme::kNonClustered:
    case Scheme::kNonClustered2: {
      const bool no_degradation = m.degradation_events == 0;
      const char* why = "buffer servers exhausted: reconstruction bound "
                        "voided (Section 3 degradation)";
      // Which transition window [f, f+C] each hiccup falls into, and the
      // per-window / per-window-per-stream totals.
      int64_t outside = 0;
      std::map<size_t, int64_t> window_total;
      std::map<std::pair<size_t, StreamId>, int64_t> window_stream;
      for (const auto& stream : scheduler_->streams()) {
        for (const Hiccup& h : stream->hiccups()) {
          bool in_window = false;
          for (size_t i = 0; i < failures.size(); ++i) {
            if (h.cycle >= failures[i].cycle &&
                h.cycle <= failures[i].cycle + c) {
              in_window = true;
              ++window_total[i];
              ++window_stream[{i, stream->id()}];
              break;
            }
          }
          if (!in_window) ++outside;
        }
      }
      if (gated("nc_transition_window", no_degradation, why)) {
        findings.push_back(Checked(
            "nc_transition_window", static_cast<double>(outside), 0,
            "hiccups outside every C-cycle transition window; " + regime));
      }
      // Bounds scale with the group's data-block count: C-1 for NC,
      // C-2 for the dual-parity NC-2.
      const int dpg = c - ParityDisksPerCluster(config.scheme);
      if (gated("nc_loss_total_bound", no_degradation, why)) {
        int64_t worst_window = 0;
        for (const auto& [w, n] : window_total) {
          worst_window = std::max(worst_window, n);
        }
        findings.push_back(Checked(
            "nc_loss_total_bound", static_cast<double>(worst_window),
            static_cast<double>(dpg * (dpg - 1)) / 2.0,
            "tracks lost per failure <= 1+2+...+(D'-1) (Figure 6); " +
                regime));
      }
      if (gated("nc_loss_per_stream_bound", no_degradation, why)) {
        int64_t worst_stream = 0;
        for (const auto& [key, n] : window_stream) {
          worst_stream = std::max(worst_stream, n);
        }
        findings.push_back(Checked(
            "nc_loss_per_stream_bound", static_cast<double>(worst_stream),
            static_cast<double>(std::max(0, dpg - 1)),
            "stream at group position q loses D'-q tracks, max D'-1; " +
                regime));
      }
      break;
    }
    case Scheme::kImprovedBandwidth: {
      const bool no_degradation = m.degradation_events == 0;
      const char* why =
          "parity placement degraded (reserve exceeded): bound voided";
      int64_t mid_cycle_failures = 0;
      for (const FailureRecord& f : failures) {
        if (f.mid_cycle) ++mid_cycle_failures;
      }
      if (gated("ib_isolated_hiccup", no_degradation, why)) {
        int64_t worst = 0;
        for (const auto& stream : scheduler_->streams()) {
          worst = std::max(worst, stream->hiccup_count());
        }
        findings.push_back(Checked(
            "ib_isolated_hiccup", static_cast<double>(worst),
            static_cast<double>(mid_cycle_failures),
            "only a mid-sweep failure hiccups, one track per stream "
            "(Section 4); " + regime));
      }
      if (gated("ib_hiccup_window", no_degradation, why)) {
        int64_t outside = 0;
        for (const auto& stream : scheduler_->streams()) {
          for (const Hiccup& h : stream->hiccups()) {
            bool in_window = false;
            for (const FailureRecord& f : failures) {
              if (f.mid_cycle && h.cycle >= f.cycle &&
                  h.cycle <= f.cycle + 1) {
                in_window = true;
                break;
              }
            }
            if (!in_window) ++outside;
          }
        }
        findings.push_back(Checked(
            "ib_hiccup_window", static_cast<double>(outside), 0,
            "hiccups confined to the failure sweep and the cycle after; " +
                regime));
      }
      findings.push_back(Checked(
          "ib_cascade_depth_bound",
          static_cast<double>(m.max_shift_depth),
          static_cast<double>(scheduler_->num_clusters()),
          "shift-to-the-right travels at most once around the cluster "
          "ring"));
      if (m.dropped_reads == 0) {
        findings.push_back(Checked(
            "ib_reserve_degradation",
            static_cast<double>(m.degradation_events), 0,
            "within the K_IB reserve no parity read is abandoned"));
      } else {
        findings.push_back(NotApplicable(
            "ib_reserve_degradation",
            "reads were dropped: load exceeded the configured reserve"));
      }
      break;
    }
  }
  return findings;
}

bool ConformanceWatchdog::AllOk(
    const std::vector<ConformanceFinding>& findings) {
  for (const ConformanceFinding& f : findings) {
    if (!f.ok) return false;
  }
  return true;
}

std::string ConformanceWatchdog::FormatTable(
    const std::vector<ConformanceFinding>& findings) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-30s %-10s %10s %10s  %s\n", "check",
                "status", "observed", "bound", "detail");
  out += line;
  for (const ConformanceFinding& f : findings) {
    const char* status =
        !f.applicable ? "SKIPPED" : (f.ok ? "OK" : "VIOLATION");
    std::string observed = "-";
    std::string bound = "-";
    if (f.applicable) {
      observed.clear();
      AppendDouble(&observed, f.observed);
      bound.clear();
      AppendDouble(&bound, f.bound);
    }
    std::snprintf(line, sizeof(line), "%-30s %-10s %10s %10s  %s\n",
                  f.check.c_str(), status, observed.c_str(), bound.c_str(),
                  f.detail.c_str());
    out += line;
  }
  return out;
}

std::string ConformanceWatchdog::ToJson(
    const std::vector<ConformanceFinding>& findings,
    const std::string& indent) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const ConformanceFinding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += indent + "{\"check\": \"" + f.check + "\", \"ok\": ";
    out += f.ok ? "true" : "false";
    out += ", \"applicable\": ";
    out += f.applicable ? "true" : "false";
    out += ", \"observed\": ";
    AppendDouble(&out, f.observed);
    out += ", \"bound\": ";
    AppendDouble(&out, f.bound);
    out += ", \"detail\": \"" + f.detail + "\"}";
  }
  out += findings.empty() ? "]" : "\n]";
  return out;
}

}  // namespace ftms
