#ifndef FTMS_QOS_CONFORMANCE_H_
#define FTMS_QOS_CONFORMANCE_H_

#include <string>
#include <vector>

#include "qos/event_journal.h"
#include "qos/qos_ledger.h"
#include "sched/cycle_scheduler.h"

namespace ftms {

// One checked claim. `applicable` is false when the run never exercised
// the claim's preconditions (no failures injected, overlapping failures
// made the regime catastrophic, buffer servers ran out, ...); such
// findings always report ok with the reason in `detail`.
struct ConformanceFinding {
  std::string check;
  bool ok = true;
  bool applicable = true;
  double observed = 0;
  double bound = 0;
  std::string detail;
};

// Checks a finished run's journal + ledger + stream facts against the
// paper's analytical bounds (Sections 2-4):
//
//   SR/SG  a single disk failure is masked completely — zero hiccups —
//          because every parity group loses at most one member per cycle.
//   NC     all losses fall inside the C-cycle degraded transition window
//          after the failure; immediate shift loses C-1-q tracks from the
//          stream at group position q, so no stream loses more than C-2
//          and a failure costs at most (C-1)(C-2)/2 tracks in total
//          (deferred read only less).
//   IB     only a mid-sweep failure can hiccup, and it costs each
//          affected stream at most ONE track (the group read next cycle
//          substitutes parity); the shift-to-the-right parity cascade
//          never travels farther than once around the ring of clusters,
//          and within the K_IB reserve no stream is degraded (no parity
//          read is abandoned while slots remain).
//
// The watchdog reads failure timing (cycle, mid-sweep flag, overlaps)
// from kDiskFailed / kDiskRepaired journal events, and per-stream hiccup
// placement from Stream::hiccups(); it writes nothing.
class ConformanceWatchdog {
 public:
  // Both pointers must outlive the watchdog; `journal` may be null (the
  // failure-timing checks then report not-applicable).
  ConformanceWatchdog(const CycleScheduler* scheduler,
                      const EventJournal* journal);

  std::vector<ConformanceFinding> Run() const;

  static bool AllOk(const std::vector<ConformanceFinding>& findings);
  // Fixed-width human table (one finding per line).
  static std::string FormatTable(
      const std::vector<ConformanceFinding>& findings);
  // Deterministic JSON array.
  static std::string ToJson(const std::vector<ConformanceFinding>& findings,
                            const std::string& indent = "  ");

 private:
  struct FailureRecord {
    int64_t cycle = 0;  // scheduler cycle the failure was injected before
    int disk = -1;
    bool mid_cycle = false;
  };

  // kDiskFailed events for this scheduler's scheme, in journal order.
  std::vector<FailureRecord> Failures() const;
  // True when two disks were ever down at once (per the journal's
  // failed/repaired sequence): the paper's bounds assume single failures.
  bool HadOverlappingFailures() const;

  const CycleScheduler* scheduler_;
  const EventJournal* journal_;
};

}  // namespace ftms

#endif  // FTMS_QOS_CONFORMANCE_H_
