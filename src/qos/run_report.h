#ifndef FTMS_QOS_RUN_REPORT_H_
#define FTMS_QOS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ftms {

// Unified run report: one recorded run's QoS journal (JSONL), optionally
// joined with a bench/metrics snapshot (BENCH_*.json, schema >= 2) and a
// time-series dump (FTMS_TIMESERIES_OUT JSON). The loader is strict —
// malformed JSON, a journal line without a "kind", or a wrong top-level
// shape is an error, not a best-effort parse — because the report is the
// artifact operators act on.
struct RunReport {
  // One journal event on a timeline (hiccups, SLO breaches, rebuild).
  struct TimelineEvent {
    int64_t sim_us = 0;
    int64_t cycle = -1;
    int64_t value = 0;
    std::string kind;
    std::string scheme;
  };

  // One flattened profiler scope ("sched/cycle" under "sim/run" becomes
  // path "sim/run > sched/cycle").
  struct ProfileNode {
    std::string path;
    int depth = 0;
    int64_t count = 0;
    double wall_us = 0;
  };

  // One recorded time series, summarized.
  struct SeriesSummary {
    std::string name;
    size_t points = 0;
    int64_t stride = 1;
    int64_t t_first = 0;
    int64_t t_last = 0;
    double v_first = 0;
    double v_last = 0;
    double v_min = 0;
    double v_max = 0;
    // Full curve, kept for the rebuild/burn sections of the renderer.
    std::vector<std::pair<int64_t, double>> curve;
  };

  std::string journal_path;
  int64_t event_count = 0;
  int64_t horizon_us = 0;  // max sim_us across all events
  std::vector<std::pair<std::string, int64_t>> kind_counts;  // name-sorted

  std::vector<TimelineEvent> hiccups;       // kind == "hiccups"
  std::vector<TimelineEvent> slo_breaches;  // kind == "slo_breach"
  std::vector<TimelineEvent> rebuild;       // rebuild_{start,progress,done}

  // From the optional bench/metrics JSON.
  bool has_metrics = false;
  std::string bench_name;
  int64_t schema_version = 0;
  std::vector<std::pair<std::string, double>> metrics;  // "metrics" block
  std::vector<ProfileNode> profile;  // flattened "profile" tree, preorder

  // From the optional time-series JSON.
  bool has_timeseries = false;
  std::vector<SeriesSummary> series;  // name-sorted
};

// Loads a report. `journal_path` is required; pass "" for the optional
// inputs. Errors: unreadable files, malformed JSON, journal lines missing
// "kind", a metrics file without a "metrics" object, a time-series file
// without a "series" object.
StatusOr<RunReport> LoadRunReport(const std::string& journal_path,
                                  const std::string& metrics_path,
                                  const std::string& timeseries_path);

// Renderers. Markdown is the human artifact (SLO burn, hiccup timeline,
// rebuild curve, per-subsystem time split); JSON is the machine one. Both
// are deterministic for identical inputs.
std::string RenderRunReportMarkdown(const RunReport& report);
std::string RenderRunReportJson(const RunReport& report);

}  // namespace ftms

#endif  // FTMS_QOS_RUN_REPORT_H_
