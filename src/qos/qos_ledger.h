#ifndef FTMS_QOS_QOS_LEDGER_H_
#define FTMS_QOS_QOS_LEDGER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "layout/schemes.h"
#include "qos/event_journal.h"
#include "stream/stream.h"
#include "util/metrics.h"

namespace ftms {

class TimeSeriesRecorder;

// Per-stream QoS facts distilled from a scheduler's streams plus the
// ledger's own degraded-exposure accounting. The paper's guarantees are
// per-viewer — "which streams hiccup, and how often" — so this is the
// record everything downstream (SLOs, watchdog, CLI, drill) consumes.
struct StreamQosRecord {
  StreamId id = -1;
  StreamState state = StreamState::kActive;
  int64_t admitted_cycle = 0;
  int64_t first_delivered_cycle = -1;  // -1 = nothing delivered yet
  int64_t startup_cycles = -1;         // admission -> first delivery
  int64_t delivered = 0;
  int64_t hiccups = 0;
  int64_t degraded_cycles = 0;  // active cycles spent with a disk down
  // delivered / (delivered + hiccups); 1 when nothing was due yet.
  double continuity = 1.0;
};

// Declarative service-level objective over a run's StreamQosRecords.
enum class SloKind {
  kMaxHiccupsPerStream,  // worst single stream's hiccup count, scaled
                         // per failure ("<=1 hiccup per stream per failure")
  kMaxTotalHiccups,      // aggregate hiccups, scaled per failure
  kMaxStartupP99Cycles,  // p99 of admission-to-first-delivery latency
  kMinContinuity,        // worst single stream's continuity ratio
};

struct SloSpec {
  std::string name;
  SloKind kind = SloKind::kMaxHiccupsPerStream;
  double bound = 0;
  // When true the bound multiplies by max(1, failures observed): the
  // paper states its loss bounds per failure event.
  bool per_failure = false;
};

// One SLO's evaluation. `budget_burn` is the fraction of the error budget
// consumed (observed / effective bound; for kMinContinuity the budget is
// the allowed continuity shortfall 1 - bound). burn >= 1 means breached;
// a zero-bound SLO burns 0 or infinity-clamped-to-(observed+1).
struct SloStatus {
  SloSpec spec;
  double effective_bound = 0;  // bound after per-failure scaling
  double observed = 0;
  double budget_burn = 0;
  bool breached = false;
};

// Builds per-stream records from a scheduler's stream table. The optional
// `degraded_cycles` array (indexed by StreamId) supplies the ledger's
// exposure counts; pass empty when no ledger ran.
std::vector<StreamQosRecord> CaptureStreamQos(
    std::span<const std::unique_ptr<Stream>> streams,
    std::span<const int64_t> degraded_cycles = {});

// Evaluates `slos` against the records. `failures` scales per-failure
// bounds (clamped to >= 1).
std::vector<SloStatus> EvaluateSlos(
    const std::vector<StreamQosRecord>& records,
    const std::vector<SloSpec>& slos, int64_t failures);

// The paper's guarantees as default SLOs for `scheme` with parity group
// size C: SR/SG mask single failures entirely (0 hiccups), IB leaves at
// most one isolated hiccup per stream per failure, NC loses at most C-2
// tracks on the worst-placed stream per failure (Section 3's immediate
// shift); all schemes must start delivery within 2C cycles of admission.
std::vector<SloSpec> DefaultSlos(Scheme scheme, int parity_group_size);

// Attributes QoS facts to streams. One ledger observes ONE scheduler: the
// scheduler calls OnFailure / OnCycleEnd at serial points only (failure
// injection sites and the end-of-cycle fold), so every exported number and
// DumpJson() byte is identical at any FTMS_THREADS setting.
//
// SLOs are re-evaluated each cycle; a transition into breach appends one
// kSloBreach journal event (per SLO, edge-triggered) and the current
// breach count / per-SLO budget burn are exported through the bound
// MetricsRegistry.
class QosLedger {
 public:
  QosLedger() = default;
  QosLedger(const QosLedger&) = delete;
  QosLedger& operator=(const QosLedger&) = delete;

  void set_journal(EventJournal* journal) { journal_ = journal; }
  EventJournal* journal() const { return journal_; }

  void SetSlos(std::vector<SloSpec> slos);
  const std::vector<SloSpec>& slos() const { return slos_; }

  // Registers the ledger's gauges ("ftms_qos_*", labeled by scheme).
  // Null registry detaches metric export.
  void BindMetrics(MetricsRegistry* registry, std::string_view scheme);

  // Time-series hook: per-cycle max SLO budget burn and active breach
  // count, as `<prefix>.slo_burn_max` / `<prefix>.active_breaches`.
  // Pushed from OnCycleEnd, which runs at the scheduler's serial
  // cycle-end fold, so the curves are thread-count invariant. Null
  // recorder detaches.
  void BindTimeSeries(TimeSeriesRecorder* recorder,
                      const std::string& prefix);

  // Failure-injection hook (serial; called from OnDiskFailed).
  void OnFailure(int64_t cycle, bool mid_cycle);

  // End-of-cycle fold (serial). `cycle` is the index of the cycle that
  // just completed; `degraded` when any disk was failed during it.
  void OnCycleEnd(int64_t cycle, bool degraded, std::string_view scheme,
                  int64_t sim_us,
                  std::span<const std::unique_ptr<Stream>> streams);

  int64_t cycles_observed() const { return cycles_observed_; }
  int64_t failures_observed() const { return failures_observed_; }
  int64_t degraded_stream_cycles() const { return degraded_stream_cycles_; }
  int64_t active_breaches() const { return active_breaches_; }
  int64_t breach_events() const { return breach_events_; }
  int64_t degraded_cycles(StreamId id) const;
  std::span<const int64_t> degraded_cycles_by_stream() const {
    return degraded_cycles_;
  }

  std::vector<StreamQosRecord> Capture(
      std::span<const std::unique_ptr<Stream>> streams) const {
    return CaptureStreamQos(streams, degraded_cycles_);
  }
  std::vector<SloStatus> Evaluate(
      std::span<const std::unique_ptr<Stream>> streams) const {
    return EvaluateSlos(Capture(streams), slos_, failures_observed_);
  }

  // Deterministic JSON dump of the per-stream records, SLO statuses and
  // ledger totals (the thread-count-invariance contract is tested on
  // these bytes).
  std::string DumpJson(std::span<const std::unique_ptr<Stream>> streams,
                       const std::string& indent = "  ") const;

 private:
  EventJournal* journal_ = nullptr;
  std::vector<SloSpec> slos_;
  std::vector<bool> slo_breached_;  // edge detection, parallel to slos_

  int64_t cycles_observed_ = 0;
  int64_t failures_observed_ = 0;
  int64_t degraded_stream_cycles_ = 0;
  int64_t active_breaches_ = 0;
  int64_t breach_events_ = 0;
  std::vector<int64_t> degraded_cycles_;  // indexed by StreamId

  // Exported cells (null = metrics detached).
  Gauge* worst_hiccups_gauge_ = nullptr;
  Gauge* streams_with_hiccups_gauge_ = nullptr;
  Gauge* active_breaches_gauge_ = nullptr;
  Gauge* degraded_stream_cycles_gauge_ = nullptr;
  Counter* breach_events_counter_ = nullptr;
  std::vector<Gauge*> burn_gauges_;  // parallel to slos_
  MetricsRegistry* registry_ = nullptr;
  std::string metrics_scheme_;

  TimeSeriesRecorder* ts_ = nullptr;
  int ts_burn_max_ = -1;
  int ts_active_breaches_ = -1;
};

// Formatting helpers shared by ftms_cli, failure_drill and StatusLine.
int64_t WorstStreamHiccups(const std::vector<StreamQosRecord>& records);
int64_t CountBreaches(const std::vector<SloStatus>& statuses);

}  // namespace ftms

#endif  // FTMS_QOS_QOS_LEDGER_H_
