#include "qos/qos_ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/timeseries.h"

namespace ftms {

namespace {

const char* StateName(StreamState state) {
  switch (state) {
    case StreamState::kActive:
      return "active";
    case StreamState::kPaused:
      return "paused";
    case StreamState::kCompleted:
      return "completed";
    case StreamState::kTerminated:
      return "terminated";
  }
  return "unknown";
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out->append(buf);
}

// p99 of admission-to-first-delivery latencies (nearest-rank on a sorted
// copy); 0 when no stream has started delivering yet.
double StartupP99(const std::vector<StreamQosRecord>& records) {
  std::vector<int64_t> latencies;
  latencies.reserve(records.size());
  for (const StreamQosRecord& r : records) {
    if (r.startup_cycles >= 0) latencies.push_back(r.startup_cycles);
  }
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  const size_t rank = static_cast<size_t>(std::ceil(
      0.99 * static_cast<double>(latencies.size())));
  return static_cast<double>(latencies[std::min(latencies.size(), rank) - 1]);
}

}  // namespace

std::vector<StreamQosRecord> CaptureStreamQos(
    std::span<const std::unique_ptr<Stream>> streams,
    std::span<const int64_t> degraded_cycles) {
  std::vector<StreamQosRecord> records;
  records.reserve(streams.size());
  for (const auto& stream : streams) {
    StreamQosRecord r;
    r.id = stream->id();
    r.state = stream->state();
    r.admitted_cycle = stream->admitted_cycle();
    r.first_delivered_cycle = stream->first_delivered_cycle();
    r.startup_cycles = r.first_delivered_cycle >= 0
                           ? r.first_delivered_cycle - r.admitted_cycle
                           : -1;
    r.delivered = stream->delivered_tracks();
    r.hiccups = stream->hiccup_count();
    if (r.id >= 0 && static_cast<size_t>(r.id) < degraded_cycles.size()) {
      r.degraded_cycles = degraded_cycles[static_cast<size_t>(r.id)];
    }
    const int64_t due = r.delivered + r.hiccups;
    r.continuity = due > 0 ? static_cast<double>(r.delivered) /
                                 static_cast<double>(due)
                           : 1.0;
    records.push_back(r);
  }
  return records;
}

std::vector<SloStatus> EvaluateSlos(
    const std::vector<StreamQosRecord>& records,
    const std::vector<SloSpec>& slos, int64_t failures) {
  const double failure_scale = static_cast<double>(std::max<int64_t>(
      1, failures));
  std::vector<SloStatus> out;
  out.reserve(slos.size());
  for (const SloSpec& spec : slos) {
    SloStatus status;
    status.spec = spec;
    status.effective_bound =
        spec.per_failure ? spec.bound * failure_scale : spec.bound;
    switch (spec.kind) {
      case SloKind::kMaxHiccupsPerStream: {
        int64_t worst = 0;
        for (const StreamQosRecord& r : records) {
          worst = std::max(worst, r.hiccups);
        }
        status.observed = static_cast<double>(worst);
        break;
      }
      case SloKind::kMaxTotalHiccups: {
        int64_t total = 0;
        for (const StreamQosRecord& r : records) total += r.hiccups;
        status.observed = static_cast<double>(total);
        break;
      }
      case SloKind::kMaxStartupP99Cycles:
        status.observed = StartupP99(records);
        break;
      case SloKind::kMinContinuity: {
        double worst = 1.0;
        for (const StreamQosRecord& r : records) {
          worst = std::min(worst, r.continuity);
        }
        status.observed = worst;
        break;
      }
    }
    if (spec.kind == SloKind::kMinContinuity) {
      status.breached = status.observed < status.effective_bound;
      const double budget = 1.0 - status.effective_bound;
      status.budget_burn =
          budget > 0 ? (1.0 - status.observed) / budget
                     : (status.breached
                            ? 1.0 + (status.effective_bound - status.observed)
                            : 0.0);
    } else {
      status.breached = status.observed > status.effective_bound;
      status.budget_burn =
          status.effective_bound > 0
              ? status.observed / status.effective_bound
              : (status.observed > 0 ? 1.0 + status.observed : 0.0);
    }
    out.push_back(status);
  }
  return out;
}

std::vector<SloSpec> DefaultSlos(Scheme scheme, int parity_group_size) {
  double per_stream_bound = 0;
  switch (scheme) {
    case Scheme::kStreamingRaid:
    case Scheme::kStaggeredGroup:
      per_stream_bound = 0;  // single failures are fully masked
      break;
    case Scheme::kStreamingRaid2:
      // P+Q keeps the whole group in memory: even TWO concurrent
      // failures per cluster are fully masked.
      per_stream_bound = 0;
      break;
    case Scheme::kImprovedBandwidth:
      per_stream_bound = 1;  // at most one isolated hiccup
      break;
    case Scheme::kNonClustered:
      // Immediate shift loses C-1-q tracks from the stream at group
      // position q >= 1: worst placed stream loses C-2.
      per_stream_bound = static_cast<double>(
          std::max(0, parity_group_size - 2));
      break;
    case Scheme::kNonClustered2:
      // Same switchover losses as NC, with one fewer data track per
      // group (C-2 data blocks): worst placed stream loses C-3.
      per_stream_bound = static_cast<double>(
          std::max(0, parity_group_size - 3));
      break;
  }
  std::vector<SloSpec> slos;
  slos.push_back({"hiccups_per_stream_per_failure",
                  SloKind::kMaxHiccupsPerStream, per_stream_bound,
                  /*per_failure=*/true});
  slos.push_back({"startup_p99_cycles", SloKind::kMaxStartupP99Cycles,
                  2.0 * static_cast<double>(parity_group_size),
                  /*per_failure=*/false});
  return slos;
}

void QosLedger::SetSlos(std::vector<SloSpec> slos) {
  slos_ = std::move(slos);
  slo_breached_.assign(slos_.size(), false);
  active_breaches_ = 0;
  burn_gauges_.clear();
  if (registry_ != nullptr) BindMetrics(registry_, metrics_scheme_);
}

void QosLedger::BindMetrics(MetricsRegistry* registry,
                            std::string_view scheme) {
  registry_ = registry;
  metrics_scheme_.assign(scheme);
  burn_gauges_.clear();
  if (registry_ == nullptr) {
    worst_hiccups_gauge_ = nullptr;
    streams_with_hiccups_gauge_ = nullptr;
    active_breaches_gauge_ = nullptr;
    degraded_stream_cycles_gauge_ = nullptr;
    breach_events_counter_ = nullptr;
    return;
  }
  const auto labeled = [&](std::string_view family) {
    return LabeledName(family, {{"scheme", metrics_scheme_}});
  };
  worst_hiccups_gauge_ =
      registry_->GetGauge(labeled("ftms_qos_worst_stream_hiccups"),
                          "hiccups on the worst single stream");
  streams_with_hiccups_gauge_ =
      registry_->GetGauge(labeled("ftms_qos_streams_with_hiccups"),
                          "streams that suffered at least one hiccup");
  active_breaches_gauge_ = registry_->GetGauge(
      labeled("ftms_qos_active_slo_breaches"), "SLOs currently breached");
  degraded_stream_cycles_gauge_ =
      registry_->GetGauge(labeled("ftms_qos_degraded_stream_cycles"),
                          "active stream-cycles spent in degraded mode");
  breach_events_counter_ = registry_->GetCounter(
      labeled("ftms_qos_slo_breach_events_total"),
      "ok-to-breached SLO transitions");
  for (const SloSpec& spec : slos_) {
    burn_gauges_.push_back(registry_->GetGauge(
        LabeledName("ftms_qos_slo_budget_burn",
                    {{"scheme", metrics_scheme_}, {"slo", spec.name}}),
        "error-budget consumed (>= 1 means breached)"));
  }
}

void QosLedger::BindTimeSeries(TimeSeriesRecorder* recorder,
                               const std::string& prefix) {
  ts_ = recorder;
  if (ts_ == nullptr) {
    ts_burn_max_ = -1;
    ts_active_breaches_ = -1;
    return;
  }
  ts_burn_max_ = ts_->DefineSeries(prefix + ".slo_burn_max");
  ts_active_breaches_ = ts_->DefineSeries(prefix + ".active_breaches");
}

void QosLedger::OnFailure(int64_t cycle, bool mid_cycle) {
  (void)cycle;
  (void)mid_cycle;
  ++failures_observed_;
}

void QosLedger::OnCycleEnd(int64_t cycle, bool degraded,
                           std::string_view scheme, int64_t sim_us,
                           std::span<const std::unique_ptr<Stream>> streams) {
  ++cycles_observed_;
  if (degraded_cycles_.size() < streams.size()) {
    degraded_cycles_.resize(streams.size(), 0);
  }
  int64_t worst = 0;
  int64_t with_hiccups = 0;
  for (const auto& stream : streams) {
    if (degraded && stream->state() == StreamState::kActive) {
      ++degraded_cycles_[static_cast<size_t>(stream->id())];
      ++degraded_stream_cycles_;
    }
    const int64_t h = stream->hiccup_count();
    worst = std::max(worst, h);
    if (h > 0) ++with_hiccups;
  }

  const std::vector<SloStatus> statuses = Evaluate(streams);
  active_breaches_ = 0;
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].breached) ++active_breaches_;
    if (statuses[i].breached && !slo_breached_[i]) {
      ++breach_events_;
      if (breach_events_counter_ != nullptr) breach_events_counter_->Add(1);
      if (journal_ != nullptr) {
        QosEvent event;
        event.kind = QosEventKind::kSloBreach;
        event.scheme = scheme;
        event.sim_us = sim_us;
        event.cycle = cycle;
        event.value = static_cast<int64_t>(i);
        journal_->Append(event);
      }
    }
    slo_breached_[i] = statuses[i].breached;
    if (i < burn_gauges_.size() && burn_gauges_[i] != nullptr) {
      burn_gauges_[i]->Set(statuses[i].budget_burn);
    }
  }
  if (worst_hiccups_gauge_ != nullptr) {
    worst_hiccups_gauge_->Set(static_cast<double>(worst));
    streams_with_hiccups_gauge_->Set(static_cast<double>(with_hiccups));
    active_breaches_gauge_->Set(static_cast<double>(active_breaches_));
    degraded_stream_cycles_gauge_->Set(
        static_cast<double>(degraded_stream_cycles_));
  }
  if (ts_ != nullptr) {
    double burn_max = 0;
    for (const SloStatus& s : statuses) {
      burn_max = std::max(burn_max, s.budget_burn);
    }
    ts_->Append(ts_burn_max_, sim_us, burn_max);
    ts_->Append(ts_active_breaches_, sim_us,
                static_cast<double>(active_breaches_));
  }
}

int64_t QosLedger::degraded_cycles(StreamId id) const {
  if (id < 0 || static_cast<size_t>(id) >= degraded_cycles_.size()) return 0;
  return degraded_cycles_[static_cast<size_t>(id)];
}

std::string QosLedger::DumpJson(
    std::span<const std::unique_ptr<Stream>> streams,
    const std::string& indent) const {
  const std::vector<StreamQosRecord> records = Capture(streams);
  const std::vector<SloStatus> statuses =
      EvaluateSlos(records, slos_, failures_observed_);
  std::string out = "{\n";
  const std::string in1 = indent;
  const std::string in2 = indent + indent;
  out += in1 + "\"cycles_observed\": ";
  AppendInt(&out, cycles_observed_);
  out += ",\n" + in1 + "\"failures_observed\": ";
  AppendInt(&out, failures_observed_);
  out += ",\n" + in1 + "\"degraded_stream_cycles\": ";
  AppendInt(&out, degraded_stream_cycles_);
  out += ",\n" + in1 + "\"active_breaches\": ";
  AppendInt(&out, active_breaches_);
  out += ",\n" + in1 + "\"breach_events\": ";
  AppendInt(&out, breach_events_);
  out += ",\n" + in1 + "\"streams\": [";
  for (size_t i = 0; i < records.size(); ++i) {
    const StreamQosRecord& r = records[i];
    out += i == 0 ? "\n" : ",\n";
    out += in2 + "{\"id\": ";
    AppendInt(&out, r.id);
    out += ", \"state\": \"";
    out += StateName(r.state);
    out += "\", \"admitted_cycle\": ";
    AppendInt(&out, r.admitted_cycle);
    out += ", \"startup_cycles\": ";
    AppendInt(&out, r.startup_cycles);
    out += ", \"delivered\": ";
    AppendInt(&out, r.delivered);
    out += ", \"hiccups\": ";
    AppendInt(&out, r.hiccups);
    out += ", \"degraded_cycles\": ";
    AppendInt(&out, r.degraded_cycles);
    out += ", \"continuity\": ";
    AppendDouble(&out, r.continuity);
    out += "}";
  }
  out += records.empty() ? "]" : "\n" + in1 + "]";
  out += ",\n" + in1 + "\"slos\": [";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const SloStatus& s = statuses[i];
    out += i == 0 ? "\n" : ",\n";
    out += in2 + "{\"name\": \"" + s.spec.name + "\", \"observed\": ";
    AppendDouble(&out, s.observed);
    out += ", \"bound\": ";
    AppendDouble(&out, s.effective_bound);
    out += ", \"budget_burn\": ";
    AppendDouble(&out, s.budget_burn);
    out += ", \"breached\": ";
    out += s.breached ? "true" : "false";
    out += "}";
  }
  out += statuses.empty() ? "]" : "\n" + in1 + "]";
  out += "\n}";
  return out;
}

int64_t WorstStreamHiccups(const std::vector<StreamQosRecord>& records) {
  int64_t worst = 0;
  for (const StreamQosRecord& r : records) {
    worst = std::max(worst, r.hiccups);
  }
  return worst;
}

int64_t CountBreaches(const std::vector<SloStatus>& statuses) {
  int64_t n = 0;
  for (const SloStatus& s : statuses) {
    if (s.breached) ++n;
  }
  return n;
}

}  // namespace ftms
