#ifndef FTMS_BUFFER_BUFFER_POOL_H_
#define FTMS_BUFFER_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ftms {

// Track-granularity main-memory accounting. The cycle-based schedulers
// hold every track read from disk in memory until it has been transmitted
// (plus parity/partial-XOR state in degraded mode); this pool enforces the
// configured memory budget and records the high-water mark, which is the
// quantity Tables 2/3 report as "Buffers (in tracks)".
class BufferPool {
 public:
  // `capacity_tracks` <= 0 means unlimited (used when we only want to
  // *measure* occupancy rather than enforce a budget).
  explicit BufferPool(int64_t capacity_tracks = 0)
      : capacity_(capacity_tracks) {}

  // Reserves `tracks` buffers; fails with RESOURCE_EXHAUSTED when a finite
  // capacity would be exceeded (nothing is reserved in that case).
  Status Acquire(int64_t tracks);

  // Returns `tracks` buffers to the pool.
  void Release(int64_t tracks);

  int64_t in_use() const { return in_use_; }
  int64_t capacity() const { return capacity_; }
  bool unlimited() const { return capacity_ <= 0; }
  int64_t peak_in_use() const { return peak_; }
  int64_t failed_acquires() const { return failed_acquires_; }

  void ResetPeak() { peak_ = in_use_; }

 private:
  int64_t capacity_;
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
  int64_t failed_acquires_ = 0;
};

// The shared pool of "buffer servers" of Section 3: extra processors with
// memory that adopt clusters operating in degraded mode. A cluster in
// degraded mode needs staggered-group-level buffering; rather than give
// every cluster that memory, K servers are shared system-wide, and
// degradation of service occurs when the (K+1)-st cluster fails while all
// servers are busy.
class BufferServerPool {
 public:
  // `num_servers` = K_NC; `tracks_per_server` is each server's memory.
  BufferServerPool(int num_servers, int64_t tracks_per_server);

  // Attaches a buffer server to `cluster`. Fails with RESOURCE_EXHAUSTED
  // when all K servers are busy (degradation of service) and with
  // ALREADY_EXISTS if the cluster already holds one.
  Status AttachToCluster(int cluster);

  // Detaches the server from `cluster` (after its disk was repaired).
  Status DetachFromCluster(int cluster);

  bool IsAttached(int cluster) const;
  int num_servers() const { return num_servers_; }
  int servers_in_use() const { return static_cast<int>(attached_.size()); }
  int64_t tracks_per_server() const { return tracks_per_server_; }
  int64_t exhausted_count() const { return exhausted_; }

 private:
  int num_servers_;
  int64_t tracks_per_server_;
  std::vector<int> attached_;  // clusters currently holding a server
  int64_t exhausted_ = 0;
};

}  // namespace ftms

#endif  // FTMS_BUFFER_BUFFER_POOL_H_
