#ifndef FTMS_BUFFER_BUFFER_POOL_H_
#define FTMS_BUFFER_BUFFER_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace ftms {

class TimeSeriesRecorder;

// Track-granularity main-memory accounting. The cycle-based schedulers
// hold every track read from disk in memory until it has been transmitted
// (plus parity/partial-XOR state in degraded mode); this pool enforces the
// configured memory budget and records the high-water mark, which is the
// quantity Tables 2/3 report as "Buffers (in tracks)".
class BufferPool {
 public:
  // `capacity_tracks` <= 0 means unlimited (used when we only want to
  // *measure* occupancy rather than enforce a budget).
  explicit BufferPool(int64_t capacity_tracks = 0)
      : capacity_(capacity_tracks) {}

  // Reserves `tracks` buffers; fails with RESOURCE_EXHAUSTED when a finite
  // capacity would be exceeded (nothing is reserved in that case).
  Status Acquire(int64_t tracks);

  // Returns `tracks` buffers to the pool.
  void Release(int64_t tracks);

  // Deterministic sharded accumulation: a ShardDelta records one shard's
  // acquire/release traffic locally (no pool access, so shards can run on
  // worker threads), and AccumulateShard folds it into the pool. The fold
  // applies each shard's running peak on top of the occupancy at fold
  // time, so folding the shards of a cycle in a FIXED order (cluster
  // order) yields in_use and peak values that do not depend on how many
  // threads executed the shards. When every release inside the sharded
  // region is deferred past the folds (as the cycle schedulers do),
  // occupancy is monotone within the region and the folded peak equals
  // the exact serial peak.
  class ShardDelta {
   public:
    void Acquire(int64_t tracks) {
      net_ += tracks;
      peak_ = peak_ > net_ ? peak_ : net_;
    }
    void Release(int64_t tracks) { net_ -= tracks; }

    int64_t net() const { return net_; }
    // Maximum of the shard's running net over its lifetime (>= 0).
    int64_t peak() const { return peak_; }
    bool empty() const { return net_ == 0 && peak_ == 0; }
    void Reset() {
      net_ = 0;
      peak_ = 0;
    }

   private:
    int64_t net_ = 0;
    int64_t peak_ = 0;
  };

  // Folds one shard's traffic into the pool, as if its acquires/releases
  // had run inline at this point. Fails with RESOURCE_EXHAUSTED (applying
  // nothing) when a finite capacity would be exceeded at the shard's
  // peak; only the measuring (unlimited) configuration is used on the
  // scheduler hot path, where this cannot fail.
  Status AccumulateShard(const ShardDelta& shard);

  int64_t in_use() const { return in_use_; }
  int64_t capacity() const { return capacity_; }
  bool unlimited() const { return capacity_ <= 0; }
  int64_t peak_in_use() const { return peak_; }
  int64_t failed_acquires() const { return failed_acquires_; }

  void ResetPeak() { peak_ = in_use_; }

  // Observability: mirrors occupancy / peak into the given gauges and
  // failed acquires into the counter on every state change. Null
  // arguments are allowed; unbinding is passing all nulls. Acquire,
  // Release and AccumulateShard are only called from serial points (the
  // sharded cycle path batches through ShardDelta), so plain gauge writes
  // suffice.
  void BindInstruments(Gauge* in_use, Gauge* peak, Counter* failed);

  // Time-series hook: records occupancy as `series_name` into `recorder`.
  // The owning scheduler calls SampleTimeSeries from its serial cycle-end
  // point, so the curve is byte-identical at any thread count.
  void BindTimeSeries(TimeSeriesRecorder* recorder,
                      const std::string& series_name);
  void SampleTimeSeries(int64_t t_us) const;

 private:
  void PublishOccupancy() {
    if (in_use_gauge_ != nullptr) {
      in_use_gauge_->Set(static_cast<double>(in_use_));
    }
    if (peak_gauge_ != nullptr) peak_gauge_->Set(static_cast<double>(peak_));
  }

  int64_t capacity_;
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
  int64_t failed_acquires_ = 0;
  Gauge* in_use_gauge_ = nullptr;
  Gauge* peak_gauge_ = nullptr;
  Counter* failed_counter_ = nullptr;
  TimeSeriesRecorder* ts_ = nullptr;
  int ts_in_use_ = -1;
};

// The shared pool of "buffer servers" of Section 3: extra processors with
// memory that adopt clusters operating in degraded mode. A cluster in
// degraded mode needs staggered-group-level buffering; rather than give
// every cluster that memory, K servers are shared system-wide, and
// degradation of service occurs when the (K+1)-st cluster fails while all
// servers are busy.
class BufferServerPool {
 public:
  // `num_servers` = K_NC; `tracks_per_server` is each server's memory.
  BufferServerPool(int num_servers, int64_t tracks_per_server);

  // Attaches a buffer server to `cluster`. Fails with RESOURCE_EXHAUSTED
  // when all K servers are busy (degradation of service) and with
  // ALREADY_EXISTS if the cluster already holds one.
  Status AttachToCluster(int cluster);

  // Detaches the server from `cluster` (after its disk was repaired).
  Status DetachFromCluster(int cluster);

  bool IsAttached(int cluster) const;
  int num_servers() const { return num_servers_; }
  int servers_in_use() const { return static_cast<int>(attached_.size()); }
  int64_t tracks_per_server() const { return tracks_per_server_; }
  int64_t exhausted_count() const { return exhausted_; }

 private:
  int num_servers_;
  int64_t tracks_per_server_;
  std::vector<int> attached_;  // clusters currently holding a server
  int64_t exhausted_ = 0;
};

}  // namespace ftms

#endif  // FTMS_BUFFER_BUFFER_POOL_H_
