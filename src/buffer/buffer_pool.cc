#include "buffer/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "util/timeseries.h"

namespace ftms {

Status BufferPool::Acquire(int64_t tracks) {
  assert(tracks >= 0);
  if (!unlimited() && in_use_ + tracks > capacity_) {
    ++failed_acquires_;
    if (failed_counter_ != nullptr) failed_counter_->Add(1);
    return Status::ResourceExhausted(
        "buffer pool full: want " + std::to_string(tracks) + ", free " +
        std::to_string(capacity_ - in_use_));
  }
  in_use_ += tracks;
  peak_ = std::max(peak_, in_use_);
  PublishOccupancy();
  return Status::Ok();
}

void BufferPool::Release(int64_t tracks) {
  assert(tracks >= 0);
  assert(tracks <= in_use_);
  in_use_ -= tracks;
  PublishOccupancy();
}

Status BufferPool::AccumulateShard(const ShardDelta& shard) {
  if (!unlimited() && in_use_ + shard.peak() > capacity_) {
    ++failed_acquires_;
    if (failed_counter_ != nullptr) failed_counter_->Add(1);
    return Status::ResourceExhausted(
        "buffer pool full: shard peak " + std::to_string(shard.peak()) +
        ", free " + std::to_string(capacity_ - in_use_));
  }
  peak_ = std::max(peak_, in_use_ + shard.peak());
  in_use_ += shard.net();
  assert(in_use_ >= 0);
  PublishOccupancy();
  return Status::Ok();
}

void BufferPool::BindInstruments(Gauge* in_use, Gauge* peak,
                                 Counter* failed) {
  in_use_gauge_ = in_use;
  peak_gauge_ = peak;
  failed_counter_ = failed;
  PublishOccupancy();
}

void BufferPool::BindTimeSeries(TimeSeriesRecorder* recorder,
                                const std::string& series_name) {
  ts_ = recorder;
  ts_in_use_ = recorder != nullptr ? recorder->DefineSeries(series_name) : -1;
}

void BufferPool::SampleTimeSeries(int64_t t_us) const {
  if (ts_ != nullptr) {
    ts_->Append(ts_in_use_, t_us, static_cast<double>(in_use_));
  }
}

BufferServerPool::BufferServerPool(int num_servers,
                                   int64_t tracks_per_server)
    : num_servers_(num_servers), tracks_per_server_(tracks_per_server) {}

Status BufferServerPool::AttachToCluster(int cluster) {
  if (IsAttached(cluster)) {
    return Status::AlreadyExists("cluster already holds a buffer server");
  }
  if (servers_in_use() >= num_servers_) {
    ++exhausted_;
    return Status::ResourceExhausted(
        "all " + std::to_string(num_servers_) + " buffer servers busy");
  }
  attached_.push_back(cluster);
  return Status::Ok();
}

Status BufferServerPool::DetachFromCluster(int cluster) {
  auto it = std::find(attached_.begin(), attached_.end(), cluster);
  if (it == attached_.end()) {
    return Status::NotFound("cluster holds no buffer server");
  }
  attached_.erase(it);
  return Status::Ok();
}

bool BufferServerPool::IsAttached(int cluster) const {
  return std::find(attached_.begin(), attached_.end(), cluster) !=
         attached_.end();
}

}  // namespace ftms
