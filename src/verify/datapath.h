#ifndef FTMS_VERIFY_DATAPATH_H_
#define FTMS_VERIFY_DATAPATH_H_

#include <cstdint>
#include <vector>

#include "layout/layout.h"
#include "parity/parity.h"
#include "util/disk_set.h"
#include "util/status.h"

namespace ftms {

// Byte-level data path verification: while the cycle schedulers simulate
// timing at track granularity, this module exercises the ACTUAL bytes of
// the layout + parity pipeline — what a real server would do — so tests
// can prove that any single-disk failure reconstructs every affected
// track bit-exactly, for every layout.
//
// Disk contents are synthesized deterministically from (object, track):
// the "disk" never stores anything, it regenerates the same bytes on
// every read, and parity blocks are the XOR of their group's synthesized
// data blocks — exactly the bytes a real write path would have placed.
//
// The `...Into` forms write through caller-owned blocks/scratch so that
// loops over many tracks (scrubbing, integrity-mode delivery, rebuild,
// the degraded-read bench) allocate nothing in steady state; the
// value-returning forms are conveniences over them. All XOR folds go
// through the dispatched multi-source kernel (parity/xor_kernels.h):
// reconstructing a track is one seed copy plus one fused pass over the
// destination, not C-1 pairwise passes.

// Deterministic contents of data track `track` of `object_id`, written
// into *out (resized to `block_bytes`; capacity is reused across calls).
void SynthesizeDataBlockInto(int object_id, int64_t track,
                             size_t block_bytes, Block* out);

// Deterministic contents of data track `track` of `object_id`.
Block SynthesizeDataBlock(int object_id, int64_t track,
                          size_t block_bytes);

// Reusable state for the group-at-a-time paths: one synthesis slot per
// group member plus the pointer batch handed to the multi-source kernel.
// Slot capacity survives across calls, so steady-state loops allocate
// nothing.
struct DegradedReadScratch {
  std::vector<Block> group;          // synthesized group member blocks
  std::vector<const uint8_t*> srcs;  // kernel source-pointer batch
  // Dual-parity (P+Q) paths only:
  Block p;                   // P block scratch
  Block q;                   // Q block scratch
  std::vector<int> missing;  // erased unit indices handed to the codec
  int64_t repaired_group = -1;  // group whose repair `group` holds
};

// Parity block contents for group `group` of an object of
// `object_tracks` total tracks (short final groups XOR fewer blocks),
// written into *out via one fused multi-source fold over the group
// members synthesized into *scratch.
Status SynthesizeParityBlockInto(const Layout& layout, int object_id,
                                 int64_t group, int64_t object_tracks,
                                 size_t block_bytes, Block* out,
                                 DegradedReadScratch* scratch);

// Value-returning convenience form.
StatusOr<Block> SynthesizeParityBlock(const Layout& layout, int object_id,
                                      int64_t group, int64_t object_tracks,
                                      size_t block_bytes);

// Q (second parity) block contents for group `group` of a dual-parity
// layout: the GF(2^8) syndrome sum g^i * D_i over the group's members
// (short final groups sum fewer terms), computed through the dispatched
// P+Q kernel. Fails INVALID_ARGUMENT unless the layout has two parity
// blocks per group.
Status SynthesizeQParityBlockInto(const Layout& layout, int object_id,
                                  int64_t group, int64_t object_tracks,
                                  size_t block_bytes, Block* out,
                                  DegradedReadScratch* scratch);

// Outcome of reading one track through the (possibly degraded) array.
struct TrackRead {
  bool reconstructed = false;  // served via parity instead of directly
  Block data;
};

// Reads data track `track` into out->data, reconstructing from the
// surviving group members + parity when its disk is in `failed_disks`.
// Fails with UNAVAILABLE when reconstruction is impossible: a second
// failure in the group for single-parity layouts (the paper's
// catastrophic case), a THIRD for dual-parity layouts, whose P+Q codec
// repairs any two concurrent erasures per group.
Status ReadTrackDegradedInto(const Layout& layout, int object_id,
                             int64_t track, int64_t object_tracks,
                             const DiskSet& failed_disks,
                             size_t block_bytes,
                             DegradedReadScratch* scratch, TrackRead* out);

// Value-returning convenience form.
StatusOr<TrackRead> ReadTrackDegraded(const Layout& layout, int object_id,
                                      int64_t track, int64_t object_tracks,
                                      const DiskSet& failed_disks,
                                      size_t block_bytes);

// Batched reconstruction: serves every entry of `tracks` (in order) the
// way ReadTrackDegradedInto would, writing (*out)[i] for tracks[i], but
// amortizing the per-track overhead across the batch — consecutive
// tracks of the same parity group share one group synthesis, and all
// scratch/output capacity is reused across calls. This is the
// RebuildManager's byte-level regeneration path: one call per rebuild
// cycle instead of one fold per track. Fails (UNAVAILABLE / OUT_OF_RANGE)
// on the first unreconstructible track, like the single-track form.
Status ReconstructTracksInto(const Layout& layout, int object_id,
                             std::span<const int64_t> tracks,
                             int64_t object_tracks,
                             const DiskSet& failed_disks,
                             size_t block_bytes,
                             DegradedReadScratch* scratch,
                             std::vector<TrackRead>* out);

// Convenience for tests: reads every track of the object under the given
// failures and verifies each against the synthesized ground truth.
// Returns the number of reconstructed tracks, or an error on the first
// mismatch / unrecoverable track.
StatusOr<int64_t> VerifyObjectReadback(const Layout& layout, int object_id,
                                       int64_t object_tracks,
                                       const DiskSet& failed_disks,
                                       size_t block_bytes);

}  // namespace ftms

#endif  // FTMS_VERIFY_DATAPATH_H_
