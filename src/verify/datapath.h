#ifndef FTMS_VERIFY_DATAPATH_H_
#define FTMS_VERIFY_DATAPATH_H_

#include <cstdint>
#include <set>

#include "layout/layout.h"
#include "parity/parity.h"
#include "util/status.h"

namespace ftms {

// Byte-level data path verification: while the cycle schedulers simulate
// timing at track granularity, this module exercises the ACTUAL bytes of
// the layout + parity pipeline — what a real server would do — so tests
// can prove that any single-disk failure reconstructs every affected
// track bit-exactly, for every layout.
//
// Disk contents are synthesized deterministically from (object, track):
// the "disk" never stores anything, it regenerates the same bytes on
// every read, and parity blocks are the XOR of their group's synthesized
// data blocks — exactly the bytes a real write path would have placed.

// Deterministic contents of data track `track` of `object_id`.
Block SynthesizeDataBlock(int object_id, int64_t track,
                          size_t block_bytes);

// Parity block contents for group `group` of an object of
// `object_tracks` total tracks (short final groups XOR fewer blocks).
StatusOr<Block> SynthesizeParityBlock(const Layout& layout, int object_id,
                                      int64_t group, int64_t object_tracks,
                                      size_t block_bytes);

// Outcome of reading one track through the (possibly degraded) array.
struct TrackRead {
  bool reconstructed = false;  // served via parity instead of directly
  Block data;
};

// Reads data track `track`, reconstructing from the surviving group
// members + parity when its disk is in `failed_disks`. Fails with
// UNAVAILABLE when reconstruction is impossible (a second failure in the
// group — the paper's catastrophic case).
StatusOr<TrackRead> ReadTrackDegraded(const Layout& layout, int object_id,
                                      int64_t track, int64_t object_tracks,
                                      const std::set<int>& failed_disks,
                                      size_t block_bytes);

// Convenience for tests: reads every track of the object under the given
// failures and verifies each against the synthesized ground truth.
// Returns the number of reconstructed tracks, or an error on the first
// mismatch / unrecoverable track.
StatusOr<int64_t> VerifyObjectReadback(const Layout& layout, int object_id,
                                       int64_t object_tracks,
                                       const std::set<int>& failed_disks,
                                       size_t block_bytes);

}  // namespace ftms

#endif  // FTMS_VERIFY_DATAPATH_H_
