#include "verify/scrub.h"

#include <algorithm>
#include <vector>

#include "verify/datapath.h"

namespace ftms {

StatusOr<ScrubReport> ScrubObject(const Layout& layout, int object_id,
                                  int64_t object_tracks,
                                  size_t block_bytes,
                                  const CorruptionHook& corruption) {
  if (object_tracks <= 0) {
    return Status::InvalidArgument("object must have at least one track");
  }
  ScrubReport report;
  const int per_group = layout.DataBlocksPerGroup();
  const int64_t groups = (object_tracks + per_group - 1) / per_group;
  // One synthesis slot per group member plus the parity block and the
  // kernel pointer batch, all reused across groups: the scrub loop
  // allocates nothing in steady state.
  std::vector<Block> data(static_cast<size_t>(per_group));
  std::vector<const uint8_t*> srcs;
  Block parity;
  for (int64_t g = 0; g < groups; ++g) {
    const int64_t gfirst = g * per_group;
    const int64_t last = std::min<int64_t>(gfirst + per_group,
                                           object_tracks);
    const size_t members = static_cast<size_t>(last - gfirst);
    for (size_t m = 0; m < members; ++m) {
      SynthesizeDataBlockInto(object_id, gfirst + static_cast<int64_t>(m),
                              block_bytes, &data[m]);
      ++report.blocks_read;
    }
    // The stored parity is the XOR of the CLEAN member blocks (it was
    // written before any latent error appeared), so fold it here — one
    // fused multi-source pass — before the corruption hook runs.
    parity.assign(data[0].begin(), data[0].end());
    srcs.clear();
    for (size_t m = 1; m < members; ++m) srcs.push_back(data[m].data());
    XorIntoN(parity, srcs.data(), static_cast<int>(srcs.size()));
    ++report.blocks_read;

    if (corruption) {
      for (size_t m = 0; m < members; ++m) {
        const BlockLocation loc = layout.DataLocation(
            object_id, gfirst + static_cast<int64_t>(m));
        corruption(loc.disk, /*is_parity=*/false, data[m]);
      }
      const BlockLocation loc = layout.ParityLocation(object_id, g);
      corruption(loc.disk, /*is_parity=*/true, parity);
    }

    StatusOr<bool> clean = VerifyGroup(
        std::span<const Block>(data.data(), members), parity);
    if (!clean.ok()) return clean.status();
    if (!*clean) ++report.parity_mismatches;
    ++report.groups_checked;
  }
  return report;
}

}  // namespace ftms
