#include "verify/scrub.h"

#include <algorithm>
#include <vector>

#include "verify/datapath.h"

namespace ftms {

StatusOr<ScrubReport> ScrubObject(const Layout& layout, int object_id,
                                  int64_t object_tracks,
                                  size_t block_bytes,
                                  const CorruptionHook& corruption) {
  if (object_tracks <= 0) {
    return Status::InvalidArgument("object must have at least one track");
  }
  ScrubReport report;
  const int per_group = layout.DataBlocksPerGroup();
  const int64_t groups = (object_tracks + per_group - 1) / per_group;
  for (int64_t g = 0; g < groups; ++g) {
    const int64_t first = g * per_group;
    const int64_t last = std::min<int64_t>(first + per_group,
                                           object_tracks);
    std::vector<Block> data;
    for (int64_t t = first; t < last; ++t) {
      Block block = SynthesizeDataBlock(object_id, t, block_bytes);
      if (corruption) {
        const BlockLocation loc = layout.DataLocation(object_id, t);
        corruption(loc.disk, /*is_parity=*/false, block);
      }
      data.push_back(std::move(block));
      ++report.blocks_read;
    }
    StatusOr<Block> parity = SynthesizeParityBlock(
        layout, object_id, g, object_tracks, block_bytes);
    if (!parity.ok()) return parity.status();
    if (corruption) {
      const BlockLocation loc = layout.ParityLocation(object_id, g);
      corruption(loc.disk, /*is_parity=*/true, *parity);
    }
    ++report.blocks_read;

    StatusOr<bool> clean = VerifyGroup(data, *parity);
    if (!clean.ok()) return clean.status();
    if (!*clean) ++report.parity_mismatches;
    ++report.groups_checked;
  }
  return report;
}

}  // namespace ftms
