#include "verify/datapath.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace ftms {
namespace {

// SplitMix64-style mixer keyed by (object, track, word index).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Extent of parity group `group`: first member track and member count
// (short final groups have fewer).
void GroupExtent(const Layout& layout, int64_t group, int64_t object_tracks,
                 int64_t* first, int* members) {
  const int per_group = layout.DataBlocksPerGroup();
  *first = group * per_group;
  *members = static_cast<int>(
      std::min<int64_t>(*first + per_group, object_tracks) - *first);
}

// Synthesizes the `members` group member blocks starting at `first` into
// scratch->group (slot capacity reused across calls).
void SynthesizeGroupMembers(int object_id, int64_t first, int members,
                            size_t block_bytes,
                            DegradedReadScratch* scratch) {
  if (scratch->group.size() < static_cast<size_t>(members)) {
    scratch->group.resize(static_cast<size_t>(members));
  }
  for (int m = 0; m < members; ++m) {
    SynthesizeDataBlockInto(object_id, first + m, block_bytes,
                            &scratch->group[static_cast<size_t>(m)]);
  }
}

// Emulates the degraded read's byte movement from the members in
// scratch->group: the parity-block read is the XOR of every member, the
// missing block is parity XOR the survivors. Both folds are fused into
// one seed copy plus a single multi-source pass over *out.
void ReconstructFromGroup(int missing, int members,
                          DegradedReadScratch* scratch, Block* out) {
  const std::vector<Block>& group = scratch->group;
  out->assign(group[0].begin(), group[0].end());
  scratch->srcs.clear();
  for (int m = 1; m < members; ++m) {
    scratch->srcs.push_back(group[static_cast<size_t>(m)].data());
  }
  for (int m = 0; m < members; ++m) {
    if (m == missing) continue;
    scratch->srcs.push_back(group[static_cast<size_t>(m)].data());
  }
  XorIntoN(*out, scratch->srcs.data(),
           static_cast<int>(scratch->srcs.size()));
}

// Dual-parity degraded path: collects the group's erased unit indices
// (data positions, then `members` for P and `members`+1 for Q), checks
// the two-erasure bound, and repairs the whole group in place via the
// GF(2^8) P+Q codec. On success scratch->group[0..members) holds every
// member's true bytes and scratch->repaired_group records the group, so
// batched callers serve later tracks of the same group by copy.
Status RepairGroupPq(const Layout& layout, int object_id, int64_t group,
                     int64_t first, int members,
                     const DiskSet& failed_disks, size_t block_bytes,
                     DegradedReadScratch* scratch) {
  scratch->repaired_group = -1;
  scratch->missing.clear();
  for (int m = 0; m < members; ++m) {
    if (failed_disks.Contains(
            layout.DataLocation(object_id, first + m).disk)) {
      scratch->missing.push_back(m);
    }
  }
  const bool p_down =
      failed_disks.Contains(layout.ParityLocation(object_id, group).disk);
  const bool q_down =
      failed_disks.Contains(layout.QParityLocation(object_id, group).disk);
  if (static_cast<int>(scratch->missing.size()) + (p_down ? 1 : 0) +
          (q_down ? 1 : 0) >
      2) {
    return Status::Unavailable(
        "more than two units of the group are down: catastrophic");
  }
  if (p_down) scratch->missing.push_back(members);
  if (q_down) scratch->missing.push_back(members + 1);
  // P and Q as the write path would have stored them: syndromes of the
  // TRUE group contents. Then clobber every erased unit so the bytes the
  // caller receives provably come out of the codec, not the synthesizer.
  SynthesizeGroupMembers(object_id, first, members, block_bytes, scratch);
  FTMS_RETURN_IF_ERROR(ComputePq(
      std::span<const Block>(scratch->group.data(),
                             static_cast<size_t>(members)),
      &scratch->p, &scratch->q));
  for (const int u : scratch->missing) {
    Block& b = u < members ? scratch->group[static_cast<size_t>(u)]
                           : (u == members ? scratch->p : scratch->q);
    std::fill(b.begin(), b.end(), uint8_t{0xEE});
  }
  FTMS_RETURN_IF_ERROR(ReconstructPq(
      std::span<Block>(scratch->group.data(),
                       static_cast<size_t>(members)),
      &scratch->p, &scratch->q, scratch->missing));
  scratch->repaired_group = group;
  return Status::Ok();
}

// Shared precheck of the degraded path: parity disk up, every other
// group member's disk up. `track` is the member being reconstructed.
Status CheckGroupReconstructible(const Layout& layout, int object_id,
                                 int64_t track, int64_t group,
                                 int64_t first, int members,
                                 const DiskSet& failed_disks) {
  const BlockLocation parity_loc = layout.ParityLocation(object_id, group);
  if (failed_disks.Contains(parity_loc.disk)) {
    return Status::Unavailable(
        "parity disk for the group is also down: catastrophic");
  }
  for (int m = 0; m < members; ++m) {
    const int64_t t = first + m;
    if (t == track) continue;
    if (failed_disks.Contains(layout.DataLocation(object_id, t).disk)) {
      return Status::Unavailable(
          "two data blocks of the group are down: catastrophic");
    }
  }
  return Status::Ok();
}

}  // namespace

void SynthesizeDataBlockInto(int object_id, int64_t track,
                             size_t block_bytes, Block* out) {
  out->resize(block_bytes);
  const uint64_t seed =
      Mix((static_cast<uint64_t>(static_cast<uint32_t>(object_id)) << 32) ^
          static_cast<uint64_t>(track));
  uint64_t counter = seed;
  uint8_t* dst = out->data();
  size_t i = 0;
  for (; i + 8 <= block_bytes; i += 8) {
    const uint64_t word = Mix(counter++);
    std::memcpy(dst + i, &word, 8);
  }
  if (i < block_bytes) {
    const uint64_t word = Mix(counter++);
    std::memcpy(dst + i, &word, block_bytes - i);
  }
}

Block SynthesizeDataBlock(int object_id, int64_t track,
                          size_t block_bytes) {
  Block block;
  SynthesizeDataBlockInto(object_id, track, block_bytes, &block);
  return block;
}

Status SynthesizeParityBlockInto(const Layout& layout, int object_id,
                                 int64_t group, int64_t object_tracks,
                                 size_t block_bytes, Block* out,
                                 DegradedReadScratch* scratch) {
  int64_t first;
  int members;
  GroupExtent(layout, group, object_tracks, &first, &members);
  if (first >= object_tracks) {
    return Status::OutOfRange("group beyond object end");
  }
  SynthesizeGroupMembers(object_id, first, members, block_bytes, scratch);
  out->assign(scratch->group[0].begin(), scratch->group[0].end());
  scratch->srcs.clear();
  for (int m = 1; m < members; ++m) {
    scratch->srcs.push_back(scratch->group[static_cast<size_t>(m)].data());
  }
  XorIntoN(*out, scratch->srcs.data(),
           static_cast<int>(scratch->srcs.size()));
  return Status::Ok();
}

Status SynthesizeQParityBlockInto(const Layout& layout, int object_id,
                                  int64_t group, int64_t object_tracks,
                                  size_t block_bytes, Block* out,
                                  DegradedReadScratch* scratch) {
  if (layout.parity_blocks() != 2) {
    return Status::InvalidArgument(
        "layout has no Q parity column");
  }
  int64_t first;
  int members;
  GroupExtent(layout, group, object_tracks, &first, &members);
  if (first >= object_tracks) {
    return Status::OutOfRange("group beyond object end");
  }
  SynthesizeGroupMembers(object_id, first, members, block_bytes, scratch);
  FTMS_RETURN_IF_ERROR(ComputePq(
      std::span<const Block>(scratch->group.data(),
                             static_cast<size_t>(members)),
      &scratch->p, out));
  scratch->repaired_group = -1;  // scratch->p was overwritten
  return Status::Ok();
}

StatusOr<Block> SynthesizeParityBlock(const Layout& layout, int object_id,
                                      int64_t group, int64_t object_tracks,
                                      size_t block_bytes) {
  Block parity;
  DegradedReadScratch scratch;
  const Status status = SynthesizeParityBlockInto(
      layout, object_id, group, object_tracks, block_bytes, &parity,
      &scratch);
  if (!status.ok()) return status;
  return parity;
}

Status ReadTrackDegradedInto(const Layout& layout, int object_id,
                             int64_t track, int64_t object_tracks,
                             const DiskSet& failed_disks,
                             size_t block_bytes,
                             DegradedReadScratch* scratch, TrackRead* out) {
  if (track < 0 || track >= object_tracks) {
    return Status::OutOfRange("track beyond object end");
  }
  const BlockLocation loc = layout.DataLocation(object_id, track);
  out->reconstructed = false;
  if (!failed_disks.Contains(loc.disk)) {
    SynthesizeDataBlockInto(object_id, track, block_bytes, &out->data);
    return Status::Ok();
  }
  // Degraded path (Observation 2's on-the-fly reconstruction): the lost
  // block is parity XOR survivors. Parity is itself the XOR of every
  // group member, so the fused fold streams each member once for the
  // parity contribution and each SURVIVOR a second time — the survivors
  // cancel, leaving exactly the missing block, in a single pass over the
  // destination.
  const int64_t group = layout.GroupOf(track);
  int64_t first;
  int members;
  GroupExtent(layout, group, object_tracks, &first, &members);
  if (layout.parity_blocks() == 2) {
    FTMS_RETURN_IF_ERROR(RepairGroupPq(layout, object_id, group, first,
                                       members, failed_disks, block_bytes,
                                       scratch));
    const Block& repaired =
        scratch->group[static_cast<size_t>(track - first)];
    out->data.assign(repaired.begin(), repaired.end());
    out->reconstructed = true;
    return Status::Ok();
  }
  FTMS_RETURN_IF_ERROR(CheckGroupReconstructible(
      layout, object_id, track, group, first, members, failed_disks));
  SynthesizeGroupMembers(object_id, first, members, block_bytes, scratch);
  ReconstructFromGroup(static_cast<int>(track - first), members, scratch,
                       &out->data);
  out->reconstructed = true;
  return Status::Ok();
}

StatusOr<TrackRead> ReadTrackDegraded(const Layout& layout, int object_id,
                                      int64_t track, int64_t object_tracks,
                                      const DiskSet& failed_disks,
                                      size_t block_bytes) {
  DegradedReadScratch scratch;
  TrackRead result;
  const Status status =
      ReadTrackDegradedInto(layout, object_id, track, object_tracks,
                            failed_disks, block_bytes, &scratch, &result);
  if (!status.ok()) return status;
  return result;
}

Status ReconstructTracksInto(const Layout& layout, int object_id,
                             std::span<const int64_t> tracks,
                             int64_t object_tracks,
                             const DiskSet& failed_disks,
                             size_t block_bytes,
                             DegradedReadScratch* scratch,
                             std::vector<TrackRead>* out) {
  out->resize(tracks.size());
  // Group synthesis is the dominant cost; reuse it while consecutive
  // batch entries stay inside one parity group (the scrub / sequential
  // rebuild pattern).
  int64_t synthesized_group = -1;
  int64_t first = 0;
  int members = 0;
  for (size_t i = 0; i < tracks.size(); ++i) {
    const int64_t track = tracks[i];
    TrackRead& read = (*out)[i];
    read.reconstructed = false;
    if (track < 0 || track >= object_tracks) {
      return Status::OutOfRange("track beyond object end");
    }
    if (!failed_disks.Contains(layout.DataLocation(object_id, track).disk)) {
      SynthesizeDataBlockInto(object_id, track, block_bytes, &read.data);
      continue;
    }
    const int64_t group = layout.GroupOf(track);
    if (group != synthesized_group) {
      GroupExtent(layout, group, object_tracks, &first, &members);
    }
    if (layout.parity_blocks() == 2) {
      // One whole-group P+Q repair per group; later tracks of the same
      // group are served out of the repaired scratch by copy.
      if (scratch->repaired_group != group) {
        FTMS_RETURN_IF_ERROR(RepairGroupPq(layout, object_id, group, first,
                                           members, failed_disks,
                                           block_bytes, scratch));
        synthesized_group = -1;  // scratch->group no longer pristine
      }
      const Block& repaired =
          scratch->group[static_cast<size_t>(track - first)];
      read.data.assign(repaired.begin(), repaired.end());
      read.reconstructed = true;
      continue;
    }
    FTMS_RETURN_IF_ERROR(CheckGroupReconstructible(
        layout, object_id, track, group, first, members, failed_disks));
    if (group != synthesized_group) {
      SynthesizeGroupMembers(object_id, first, members, block_bytes,
                             scratch);
      synthesized_group = group;
    }
    ReconstructFromGroup(static_cast<int>(track - first), members, scratch,
                         &read.data);
    read.reconstructed = true;
  }
  return Status::Ok();
}

StatusOr<int64_t> VerifyObjectReadback(const Layout& layout, int object_id,
                                       int64_t object_tracks,
                                       const DiskSet& failed_disks,
                                       size_t block_bytes) {
  int64_t reconstructed = 0;
  DegradedReadScratch scratch;
  TrackRead read;
  Block expected;
  for (int64_t t = 0; t < object_tracks; ++t) {
    const Status status =
        ReadTrackDegradedInto(layout, object_id, t, object_tracks,
                              failed_disks, block_bytes, &scratch, &read);
    if (!status.ok()) return status;
    SynthesizeDataBlockInto(object_id, t, block_bytes, &expected);
    if (read.data != expected) {
      return Status::Internal("byte mismatch at track " +
                              std::to_string(t));
    }
    if (read.reconstructed) ++reconstructed;
  }
  return reconstructed;
}

}  // namespace ftms
