#include "verify/datapath.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace ftms {
namespace {

// SplitMix64-style mixer keyed by (object, track, word index).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void SynthesizeDataBlockInto(int object_id, int64_t track,
                             size_t block_bytes, Block* out) {
  out->resize(block_bytes);
  const uint64_t seed =
      Mix((static_cast<uint64_t>(static_cast<uint32_t>(object_id)) << 32) ^
          static_cast<uint64_t>(track));
  uint64_t counter = seed;
  uint8_t* dst = out->data();
  size_t i = 0;
  for (; i + 8 <= block_bytes; i += 8) {
    const uint64_t word = Mix(counter++);
    std::memcpy(dst + i, &word, 8);
  }
  if (i < block_bytes) {
    const uint64_t word = Mix(counter++);
    std::memcpy(dst + i, &word, block_bytes - i);
  }
}

Block SynthesizeDataBlock(int object_id, int64_t track,
                          size_t block_bytes) {
  Block block;
  SynthesizeDataBlockInto(object_id, track, block_bytes, &block);
  return block;
}

Status SynthesizeParityBlockInto(const Layout& layout, int object_id,
                                 int64_t group, int64_t object_tracks,
                                 size_t block_bytes, Block* out,
                                 Block* scratch) {
  const int per_group = layout.DataBlocksPerGroup();
  const int64_t first = group * per_group;
  const int64_t last =
      std::min<int64_t>(first + per_group, object_tracks);
  if (first >= object_tracks) {
    return Status::OutOfRange("group beyond object end");
  }
  SynthesizeDataBlockInto(object_id, first, block_bytes, out);
  for (int64_t t = first + 1; t < last; ++t) {
    SynthesizeDataBlockInto(object_id, t, block_bytes, scratch);
    XorInto(*out, *scratch);
  }
  return Status::Ok();
}

StatusOr<Block> SynthesizeParityBlock(const Layout& layout, int object_id,
                                      int64_t group, int64_t object_tracks,
                                      size_t block_bytes) {
  Block parity;
  Block scratch;
  const Status status = SynthesizeParityBlockInto(
      layout, object_id, group, object_tracks, block_bytes, &parity,
      &scratch);
  if (!status.ok()) return status;
  return parity;
}

Status ReadTrackDegradedInto(const Layout& layout, int object_id,
                             int64_t track, int64_t object_tracks,
                             const DiskSet& failed_disks,
                             size_t block_bytes,
                             DegradedReadScratch* scratch, TrackRead* out) {
  if (track < 0 || track >= object_tracks) {
    return Status::OutOfRange("track beyond object end");
  }
  const BlockLocation loc = layout.DataLocation(object_id, track);
  out->reconstructed = false;
  if (!failed_disks.Contains(loc.disk)) {
    SynthesizeDataBlockInto(object_id, track, block_bytes, &out->data);
    return Status::Ok();
  }
  // Degraded path (Observation 2's on-the-fly reconstruction): the lost
  // block is parity XOR survivors. Parity is itself the XOR of every
  // group member, so fold each member once for the parity contribution
  // and each SURVIVOR a second time — the survivors cancel, leaving
  // exactly the missing block, without ever materializing the group.
  const int64_t group = layout.GroupOf(track);
  const BlockLocation parity_loc = layout.ParityLocation(object_id, group);
  if (failed_disks.Contains(parity_loc.disk)) {
    return Status::Unavailable(
        "parity disk for the group is also down: catastrophic");
  }
  const int per_group = layout.DataBlocksPerGroup();
  const int64_t first = group * per_group;
  const int64_t last =
      std::min<int64_t>(first + per_group, object_tracks);
  scratch->acc.Reset();
  for (int64_t t = first; t < last; ++t) {
    SynthesizeDataBlockInto(object_id, t, block_bytes, &scratch->synth);
    FTMS_RETURN_IF_ERROR(scratch->acc.Add(scratch->synth));
    if (t == track) continue;
    const BlockLocation other = layout.DataLocation(object_id, t);
    if (failed_disks.Contains(other.disk)) {
      return Status::Unavailable(
          "two data blocks of the group are down: catastrophic");
    }
    FTMS_RETURN_IF_ERROR(scratch->acc.Add(scratch->synth));
  }
  out->reconstructed = true;
  // Copy-assign (not Take) so the accumulator keeps its capacity for the
  // caller's next track.
  out->data = scratch->acc.value();
  return Status::Ok();
}

StatusOr<TrackRead> ReadTrackDegraded(const Layout& layout, int object_id,
                                      int64_t track, int64_t object_tracks,
                                      const DiskSet& failed_disks,
                                      size_t block_bytes) {
  DegradedReadScratch scratch;
  TrackRead result;
  const Status status =
      ReadTrackDegradedInto(layout, object_id, track, object_tracks,
                            failed_disks, block_bytes, &scratch, &result);
  if (!status.ok()) return status;
  return result;
}

StatusOr<int64_t> VerifyObjectReadback(const Layout& layout, int object_id,
                                       int64_t object_tracks,
                                       const DiskSet& failed_disks,
                                       size_t block_bytes) {
  int64_t reconstructed = 0;
  DegradedReadScratch scratch;
  TrackRead read;
  Block expected;
  for (int64_t t = 0; t < object_tracks; ++t) {
    const Status status =
        ReadTrackDegradedInto(layout, object_id, t, object_tracks,
                              failed_disks, block_bytes, &scratch, &read);
    if (!status.ok()) return status;
    SynthesizeDataBlockInto(object_id, t, block_bytes, &expected);
    if (read.data != expected) {
      return Status::Internal("byte mismatch at track " +
                              std::to_string(t));
    }
    if (read.reconstructed) ++reconstructed;
  }
  return reconstructed;
}

}  // namespace ftms
