#include "verify/datapath.h"

#include <algorithm>
#include <string>
#include <vector>

namespace ftms {
namespace {

// SplitMix64-style mixer keyed by (object, track, word index).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Block SynthesizeDataBlock(int object_id, int64_t track,
                          size_t block_bytes) {
  Block block(block_bytes);
  const uint64_t seed =
      Mix((static_cast<uint64_t>(static_cast<uint32_t>(object_id)) << 32) ^
          static_cast<uint64_t>(track));
  size_t i = 0;
  uint64_t counter = seed;
  while (i < block_bytes) {
    const uint64_t word = Mix(counter++);
    for (int b = 0; b < 8 && i < block_bytes; ++b, ++i) {
      block[i] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  return block;
}

StatusOr<Block> SynthesizeParityBlock(const Layout& layout, int object_id,
                                      int64_t group, int64_t object_tracks,
                                      size_t block_bytes) {
  const int per_group = layout.DataBlocksPerGroup();
  const int64_t first = group * per_group;
  const int64_t last =
      std::min<int64_t>(first + per_group, object_tracks);
  if (first >= object_tracks) {
    return Status::OutOfRange("group beyond object end");
  }
  std::vector<Block> data;
  for (int64_t t = first; t < last; ++t) {
    data.push_back(SynthesizeDataBlock(object_id, t, block_bytes));
  }
  return ComputeParity(data);
}

StatusOr<TrackRead> ReadTrackDegraded(const Layout& layout, int object_id,
                                      int64_t track, int64_t object_tracks,
                                      const std::set<int>& failed_disks,
                                      size_t block_bytes) {
  if (track < 0 || track >= object_tracks) {
    return Status::OutOfRange("track beyond object end");
  }
  const BlockLocation loc = layout.DataLocation(object_id, track);
  TrackRead result;
  if (failed_disks.count(loc.disk) == 0) {
    result.data = SynthesizeDataBlock(object_id, track, block_bytes);
    return result;
  }
  // Degraded path: XOR the surviving group members with the parity block
  // (Observation 2's on-the-fly reconstruction).
  const int64_t group = layout.GroupOf(track);
  const BlockLocation parity_loc = layout.ParityLocation(object_id, group);
  if (failed_disks.count(parity_loc.disk) > 0) {
    return Status::Unavailable(
        "parity disk for the group is also down: catastrophic");
  }
  const int per_group = layout.DataBlocksPerGroup();
  const int64_t first = group * per_group;
  const int64_t last =
      std::min<int64_t>(first + per_group, object_tracks);
  std::vector<Block> survivors;
  for (int64_t t = first; t < last; ++t) {
    if (t == track) continue;
    const BlockLocation other = layout.DataLocation(object_id, t);
    if (failed_disks.count(other.disk) > 0) {
      return Status::Unavailable(
          "two data blocks of the group are down: catastrophic");
    }
    survivors.push_back(SynthesizeDataBlock(object_id, t, block_bytes));
  }
  StatusOr<Block> parity = SynthesizeParityBlock(
      layout, object_id, group, object_tracks, block_bytes);
  if (!parity.ok()) return parity.status();
  StatusOr<Block> rebuilt = ReconstructMissing(survivors, *parity);
  if (!rebuilt.ok()) return rebuilt.status();
  result.reconstructed = true;
  result.data = *std::move(rebuilt);
  return result;
}

StatusOr<int64_t> VerifyObjectReadback(const Layout& layout, int object_id,
                                       int64_t object_tracks,
                                       const std::set<int>& failed_disks,
                                       size_t block_bytes) {
  int64_t reconstructed = 0;
  for (int64_t t = 0; t < object_tracks; ++t) {
    StatusOr<TrackRead> read = ReadTrackDegraded(
        layout, object_id, t, object_tracks, failed_disks, block_bytes);
    if (!read.ok()) return read.status();
    const Block expected =
        SynthesizeDataBlock(object_id, t, block_bytes);
    if (read->data != expected) {
      return Status::Internal("byte mismatch at track " +
                              std::to_string(t));
    }
    if (read->reconstructed) ++reconstructed;
  }
  return reconstructed;
}

}  // namespace ftms
