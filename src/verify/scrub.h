#ifndef FTMS_VERIFY_SCRUB_H_
#define FTMS_VERIFY_SCRUB_H_

#include <cstdint>
#include <functional>

#include "layout/layout.h"
#include "parity/parity.h"
#include "util/status.h"

namespace ftms {

// Background parity scrubbing: re-read every parity group of an object
// and check that parity XOR data is zero. Production arrays scrub
// continuously so that latent sector errors are found while the group
// still has full redundancy — before a disk failure turns a latent error
// into unrecoverable data (the silent path to the paper's catastrophic
// failure).
struct ScrubReport {
  int64_t groups_checked = 0;
  int64_t blocks_read = 0;
  int64_t parity_mismatches = 0;
};

// Reads a block as stored: the deterministic synthesized contents, then
// `corruption` (if set) may alter it — modeling a latent media error.
// The hook receives (disk, is_parity, block) and mutates in place.
using CorruptionHook =
    std::function<void(int disk, bool is_parity, Block& block)>;

// Scrubs all groups of `object_id`. Every disk must be readable (scrub
// runs in normal mode).
StatusOr<ScrubReport> ScrubObject(const Layout& layout, int object_id,
                                  int64_t object_tracks,
                                  size_t block_bytes,
                                  const CorruptionHook& corruption = {});

}  // namespace ftms

#endif  // FTMS_VERIFY_SCRUB_H_
