#include "model/parameters.h"

namespace ftms {

Status SystemParameters::Validate() const {
  FTMS_RETURN_IF_ERROR(disk.Validate());
  if (object_rate_mb_s <= 0) {
    return Status::InvalidArgument("object rate must be positive");
  }
  if (num_disks <= 0) {
    return Status::InvalidArgument("num_disks must be positive");
  }
  if (k_reserve < 0 || k_reserve >= num_disks) {
    return Status::InvalidArgument("k_reserve must be in [0, num_disks)");
  }
  return Status::Ok();
}

}  // namespace ftms
