#include "model/sizing.h"

namespace ftms {

double MoviesStorable(int num_disks, double disk_capacity_mb,
                      double rate_mb_s, double minutes) {
  const double movie_mb = minutes * 60.0 * rate_mb_s;
  return static_cast<double>(num_disks) * disk_capacity_mb / movie_mb;
}

double ViewersSupportable(int num_disks, double disk_bandwidth_mb_s,
                          double rate_mb_s) {
  return static_cast<double>(num_disks) * disk_bandwidth_mb_s / rate_mb_s;
}

StatusOr<double> MixedRateMaxStreams(const SystemParameters& p,
                                     int k_prime, double data_disks,
                                     double rate_high_mb_s,
                                     double fraction_high) {
  FTMS_RETURN_IF_ERROR(p.Validate());
  if (k_prime < 1) {
    return Status::InvalidArgument("k_prime must be >= 1");
  }
  if (rate_high_mb_s <= 0) {
    return Status::InvalidArgument("high rate must be positive");
  }
  if (fraction_high < 0 || fraction_high > 1) {
    return Status::InvalidArgument("fraction_high must be in [0, 1]");
  }
  const double b_lo = p.object_rate_mb_s;
  const double b_mix =
      (1.0 - fraction_high) * b_lo + fraction_high * rate_high_mb_s;
  // See header: N/D' = B/(b_mix T_trk) - T_seek b_lo / (k' b_mix T_trk),
  // the mixed-rate generalization of equations (8)-(11); reduces to
  // StreamsPerDataDisk at fraction_high = 0.
  const double per_disk =
      p.track_mb() / (b_mix * p.track_time_s()) -
      p.seek_s() * b_lo /
          (static_cast<double>(k_prime) * b_mix * p.track_time_s());
  return (per_disk > 0 ? per_disk : 0.0) * data_disks;
}

}  // namespace ftms
