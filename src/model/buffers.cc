#include "model/buffers.h"

#include <cmath>

#include "model/capacity.h"

namespace ftms {

double BuffersPerStreamNormal(Scheme scheme, int parity_group_size) {
  const double c = static_cast<double>(parity_group_size);
  switch (scheme) {
    case Scheme::kStreamingRaid:
    case Scheme::kStreamingRaid2:
      // Whole-cluster read with double buffering; the second parity disk
      // does not change the per-stream buffer footprint, only how many of
      // the 2C slots hold data.
      return 2.0 * c;
    case Scheme::kStaggeredGroup:
      // C(C+1)/2 tracks shared by C-1 streams in staggered phases.
      return c * (c + 1.0) / 2.0 / (c - 1.0);
    case Scheme::kNonClustered:
    case Scheme::kNonClustered2:
      return 2.0;
    case Scheme::kImprovedBandwidth:
      return 2.0 * (c - 1.0);
  }
  return 0.0;
}

namespace {

// SG total (eq. 13), with the paper's rounding: streams are floored first,
// then the group-shared buffer count is taken, rounded up.
StatusOr<double> StaggeredGroupTracks(const SystemParameters& p, int c) {
  StatusOr<int> n = MaxStreams(p, Scheme::kStaggeredGroup, c);
  if (!n.ok()) return n.status();
  const double cd = static_cast<double>(c);
  return std::ceil(cd * (cd + 1.0) / 2.0 * static_cast<double>(*n) /
                   (cd - 1.0));
}

// The un-ceiled SG total, used inside the NC expression (the paper keeps
// the fractional value there).
StatusOr<double> StaggeredGroupTracksExact(const SystemParameters& p,
                                           int c) {
  StatusOr<int> n = MaxStreams(p, Scheme::kStaggeredGroup, c);
  if (!n.ok()) return n.status();
  const double cd = static_cast<double>(c);
  return cd * (cd + 1.0) / 2.0 * static_cast<double>(*n) / (cd - 1.0);
}

}  // namespace

StatusOr<double> TotalBufferTracks(const SystemParameters& p, Scheme scheme,
                                   int parity_group_size) {
  if (parity_group_size < 2) {
    return Status::InvalidArgument("parity group size must be >= 2");
  }
  const int c = parity_group_size;
  StatusOr<int> n = MaxStreams(p, scheme, c);
  if (!n.ok()) return n.status();
  const double streams = static_cast<double>(*n);

  switch (scheme) {
    case Scheme::kStreamingRaid:
    case Scheme::kStreamingRaid2:
      return 2.0 * static_cast<double>(c) * streams;  // eq. (12)
    case Scheme::kStaggeredGroup:
      return StaggeredGroupTracks(p, c);  // eq. (13)
    case Scheme::kNonClustered:
    case Scheme::kNonClustered2: {  // eq. (14)
      StatusOr<double> sg = StaggeredGroupTracksExact(p, c);
      if (!sg.ok()) return sg.status();
      const double data_disks = DataDisks(p, scheme, c);
      const double clusters_over_data = data_disks / static_cast<double>(c);
      const double degraded =
          *sg / clusters_over_data * static_cast<double>(p.k_reserve);
      return 2.0 * streams + std::ceil(degraded);
    }
    case Scheme::kImprovedBandwidth:
      return 2.0 * static_cast<double>(c - 1) * streams;  // eq. (15)
  }
  return Status::Internal("unknown scheme");
}

StatusOr<double> TotalBufferMb(const SystemParameters& p, Scheme scheme,
                               int parity_group_size) {
  StatusOr<double> tracks = TotalBufferTracks(p, scheme, parity_group_size);
  if (!tracks.ok()) return tracks.status();
  return *tracks * p.track_mb();
}

}  // namespace ftms
