#include "model/capacity.h"

#include <cmath>

namespace ftms {

double CycleSeconds(const SystemParameters& p, int k_prime) {
  return static_cast<double>(k_prime) * p.track_mb() / p.object_rate_mb_s;
}

double StreamsPerDataDisk(const SystemParameters& p, int k_prime) {
  const double bound =
      p.track_mb() / (p.object_rate_mb_s * p.track_time_s()) -
      p.seek_s() / (static_cast<double>(k_prime) * p.track_time_s());
  return bound > 0 ? bound : 0.0;
}

int KPrimeOf(Scheme scheme, int parity_group_size) {
  switch (scheme) {
    case Scheme::kStreamingRaid:
    case Scheme::kImprovedBandwidth:
      return parity_group_size - 1;
    case Scheme::kStreamingRaid2:
      // Whole-group delivery like SR, but a dual-parity cluster holds only
      // C-2 data blocks per group.
      return parity_group_size - 2;
    case Scheme::kStaggeredGroup:
    case Scheme::kNonClustered:
    case Scheme::kNonClustered2:
      return 1;
  }
  return 1;
}

double DataDisks(const SystemParameters& p, Scheme scheme,
                 int parity_group_size) {
  const double d = static_cast<double>(p.num_disks);
  if (scheme == Scheme::kImprovedBandwidth) {
    return d - static_cast<double>(p.k_reserve);
  }
  const double parity = static_cast<double>(ParityDisksPerCluster(scheme));
  return d * (static_cast<double>(parity_group_size) - parity) /
         static_cast<double>(parity_group_size);
}

StatusOr<double> MaxStreamsExact(const SystemParameters& p, Scheme scheme,
                                 int parity_group_size) {
  FTMS_RETURN_IF_ERROR(p.Validate());
  if (parity_group_size < 2) {
    return Status::InvalidArgument("parity group size must be >= 2");
  }
  if (IsDualParity(scheme) && parity_group_size < 3) {
    return Status::InvalidArgument(
        "dual-parity schemes need parity group size >= 3");
  }
  const int k_prime = KPrimeOf(scheme, parity_group_size);
  return StreamsPerDataDisk(p, k_prime) *
         DataDisks(p, scheme, parity_group_size);
}

StatusOr<int> MaxStreams(const SystemParameters& p, Scheme scheme,
                         int parity_group_size) {
  StatusOr<double> exact = MaxStreamsExact(p, scheme, parity_group_size);
  if (!exact.ok()) return exact.status();
  return static_cast<int>(std::floor(*exact));
}

}  // namespace ftms
