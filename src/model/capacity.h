#ifndef FTMS_MODEL_CAPACITY_H_
#define FTMS_MODEL_CAPACITY_H_

#include "layout/schemes.h"
#include "model/parameters.h"
#include "util/status.h"

namespace ftms {

// Cycle-based scheduling capacity model (Section 2).
//
// With k' tracks transmitted per stream per cycle the cycle length is
//   T_cyc = k' * B / b_o                                       (Section 2)
// and a disk serving its share of N streams must finish one seek sweep
// plus N*k'/D' track reads within a cycle:
//   T_seek + (N k'/D') T_trk <= T_cyc
// giving the per-data-disk stream bound
//   N/D' <= B/(b_o T_trk) - T_seek/(k' T_trk).
//
// Note: the paper's equation (7) as printed divides both terms by k, which
// contradicts its own instantiations (8)-(11); the bound above reproduces
// every entry of Tables 2/3 as well as the inline k-sweep of Section 2
// (where k = k'). See DESIGN.md §4.

// Cycle length in seconds for `k_prime` tracks delivered per cycle.
double CycleSeconds(const SystemParameters& p, int k_prime);

// Per-data-disk stream bound N/D' for the given k' (tracks per cycle per
// stream). Returns 0 when the seek alone exceeds the cycle.
double StreamsPerDataDisk(const SystemParameters& p, int k_prime);

// k' used by each scheme for parity group size C: SR and IB read/deliver a
// whole group per cycle (k' = C-1, and C-2 for the dual-parity SR-2); SG
// and NC (and NC-2) deliver one track per cycle.
int KPrimeOf(Scheme scheme, int parity_group_size);

// Number of data-role disks D' (equations (8)-(11)):
//   SR/SG/NC: D (C-1)/C;  SR-2/NC-2: D (C-2)/C;  IB: D - K_IB.
double DataDisks(const SystemParameters& p, Scheme scheme,
                 int parity_group_size);

// Maximum number of simultaneously supported streams N_p, equations
// (8)-(11), floored to an integer.
StatusOr<int> MaxStreams(const SystemParameters& p, Scheme scheme,
                         int parity_group_size);

// Unfloored version of MaxStreams, used by the buffer and cost model where
// the paper keeps fractional intermediate values.
StatusOr<double> MaxStreamsExact(const SystemParameters& p, Scheme scheme,
                                 int parity_group_size);

}  // namespace ftms

#endif  // FTMS_MODEL_CAPACITY_H_
