#ifndef FTMS_MODEL_RELIABILITY_MODEL_H_
#define FTMS_MODEL_RELIABILITY_MODEL_H_

#include "layout/schemes.h"
#include "model/parameters.h"
#include "util/status.h"

namespace ftms {

// Closed-form reliability estimates (Section 5, equations (4)-(6)),
// following the standard RAID analysis of Chen et al. [4].

// Mean time until SOME disk in a D-disk farm fails: MTTF(disk)/D. The
// introduction's example: 1000 disks at 300,000 h each -> ~300 h (~12.5
// days). Hours.
double MeanTimeToFirstFailureHours(double disk_mttf_hours, int num_disks);

// Mean time to catastrophic failure (data loss / unmaskable hiccups), in
// hours:
//   SR/SG/NC (eq. 4): MTTF(disk)^2 / (D (C-1) MTTR)
//   IB       (eq. 5): MTTF(disk)^2 / (D (2C-1) MTTR)
//   SR-2/NC-2:        MTTF(disk)^3 / (D (C-1)(C-2) MTTR^2)  — data loss
//                     needs a third concurrent failure in one cluster.
// The (2C-1) factor reflects the IB scheme's extra exposure: disks serve
// both their own cluster's groups and the left neighbor's parity.
StatusOr<double> MttfCatastrophicHours(const SystemParameters& p,
                                       Scheme scheme, int parity_group_size);

// Mean time to degradation of service, in hours.
//   SR/SG: equal to the catastrophic MTTF (a cluster always reserves
//          enough bandwidth for one failure).
//   NC/IB (eq. 6): MTTF^K / (D (D-1) ... (D-K+1) MTTR^(K-1)), the mean
//          time until K disks are simultaneously down (K = K_NC buffer
//          servers / K_IB reserved-bandwidth disks).
StatusOr<double> MttdsHours(const SystemParameters& p, Scheme scheme,
                            int parity_group_size);

// Equation (6) standalone, exposed for the Monte-Carlo cross-validation.
double KConcurrentFailuresMeanHours(double disk_mttf_hours,
                                    double disk_mttr_hours, int num_disks,
                                    int k);

}  // namespace ftms

#endif  // FTMS_MODEL_RELIABILITY_MODEL_H_
