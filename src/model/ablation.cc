#include "model/ablation.h"

#include "model/capacity.h"

namespace ftms {

double StreamsPerDataDiskFifo(const SystemParameters& p,
                              double seek_fraction) {
  const double per_request =
      seek_fraction * p.seek_s() + p.track_time_s();
  // Every track read pays its own (average) seek; the cycle length
  // cancels out of the constraint.
  return p.track_mb() / (p.object_rate_mb_s * per_request);
}

double SweepGainOverFifo(const SystemParameters& p, int k_prime,
                         double seek_fraction) {
  const double fifo = StreamsPerDataDiskFifo(p, seek_fraction);
  if (fifo <= 0) return 0;
  return StreamsPerDataDisk(p, k_prime) / fifo;
}

}  // namespace ftms
