#include "model/cost.h"

#include <algorithm>
#include <cmath>

#include "model/buffers.h"
#include "model/capacity.h"

namespace ftms {

int DisksForWorkingSet(const DesignParameters& d, const SystemParameters& p,
                       Scheme scheme, int parity_group_size) {
  // IB stores parity in its bandwidth reserve, not on dedicated disks, but
  // its capacity fraction still loses one block per group; dual-parity
  // clusters lose two.
  const int parity = std::max(1, ParityDisksPerCluster(scheme));
  const double data_fraction =
      static_cast<double>(parity_group_size - parity) /
      static_cast<double>(parity_group_size);
  return static_cast<int>(
      std::ceil(d.working_set_mb / (p.disk.capacity_mb * data_fraction)));
}

int DisksForWorkingSet(const DesignParameters& d, const SystemParameters& p,
                       int parity_group_size) {
  return DisksForWorkingSet(d, p, Scheme::kStreamingRaid,
                            parity_group_size);
}

StatusOr<double> SystemCost(const DesignParameters& d,
                            const SystemParameters& p, Scheme scheme,
                            int parity_group_size, int num_disks) {
  SystemParameters sized = p;
  sized.num_disks = num_disks;
  StatusOr<double> buffer_mb =
      TotalBufferMb(sized, scheme, parity_group_size);
  if (!buffer_mb.ok()) return buffer_mb.status();
  return d.memory_cost_per_mb * *buffer_mb +
         d.disk_cost_per_mb * static_cast<double>(num_disks) *
             p.disk.capacity_mb;
}

StatusOr<DesignPoint> EvaluateDesign(const DesignParameters& d,
                                     const SystemParameters& p,
                                     Scheme scheme, int parity_group_size) {
  const int disks = DisksForWorkingSet(d, p, scheme, parity_group_size);
  SystemParameters sized = p;
  sized.num_disks = disks;
  if (sized.k_reserve >= disks) {
    return Status::InvalidArgument("working set too small for k_reserve");
  }

  DesignPoint point;
  point.scheme = scheme;
  point.parity_group_size = parity_group_size;
  point.num_disks = disks;

  StatusOr<int> streams = MaxStreams(sized, scheme, parity_group_size);
  if (!streams.ok()) return streams.status();
  point.max_streams = *streams;

  StatusOr<double> buffer_mb =
      TotalBufferMb(sized, scheme, parity_group_size);
  if (!buffer_mb.ok()) return buffer_mb.status();
  point.buffer_mb = *buffer_mb;

  StatusOr<double> cost =
      SystemCost(d, p, scheme, parity_group_size, disks);
  if (!cost.ok()) return cost.status();
  point.cost_dollars = *cost;
  return point;
}

namespace {

// Disks needed so the scheme supports `required` streams: invert equations
// (8)-(11). Returns 0 if the per-disk bound is non-positive.
int DisksForStreams(const SystemParameters& p, Scheme scheme,
                    int parity_group_size, double required) {
  const double per_disk =
      StreamsPerDataDisk(p, KPrimeOf(scheme, parity_group_size));
  if (per_disk <= 0) return 0;
  const double data_disks = required / per_disk;
  if (scheme == Scheme::kImprovedBandwidth) {
    return static_cast<int>(
        std::ceil(data_disks + static_cast<double>(p.k_reserve)));
  }
  const double c = static_cast<double>(parity_group_size);
  const double parity =
      static_cast<double>(ParityDisksPerCluster(scheme));
  return static_cast<int>(std::ceil(data_disks * c / (c - parity)));
}

}  // namespace

StatusOr<DesignPoint> PlanCheapest(const DesignParameters& d,
                                   const SystemParameters& p, Scheme scheme,
                                   const PlanRequest& req) {
  bool found = false;
  DesignPoint best;
  for (int c = std::max(2, req.min_group_size); c <= req.max_group_size;
       ++c) {
    const int for_capacity = DisksForWorkingSet(d, p, scheme, c);
    const int for_streams =
        DisksForStreams(p, scheme, c, req.required_streams);
    if (for_streams == 0) continue;  // seek dominates the cycle: infeasible
    const int disks = std::max(for_capacity, for_streams);
    SystemParameters sized = p;
    sized.num_disks = disks;
    if (sized.k_reserve >= disks) continue;

    StatusOr<int> streams = MaxStreams(sized, scheme, c);
    if (!streams.ok() || *streams < req.required_streams) continue;
    StatusOr<double> cost = SystemCost(d, p, scheme, c, disks);
    if (!cost.ok()) continue;
    StatusOr<double> buffer_mb = TotalBufferMb(sized, scheme, c);
    if (!buffer_mb.ok()) continue;

    if (!found || *cost < best.cost_dollars) {
      found = true;
      best.scheme = scheme;
      best.parity_group_size = c;
      best.num_disks = disks;
      best.max_streams = *streams;
      best.buffer_mb = *buffer_mb;
      best.cost_dollars = *cost;
    }
  }
  if (!found) {
    return Status::NotFound("no feasible design for scheme in group range");
  }
  return best;
}

std::vector<DesignPoint> PlanAllSchemes(const DesignParameters& d,
                                        const SystemParameters& p,
                                        const PlanRequest& req) {
  std::vector<DesignPoint> out;
  for (Scheme scheme : kAllSchemes) {
    StatusOr<DesignPoint> point = PlanCheapest(d, p, scheme, req);
    if (point.ok()) out.push_back(*point);
  }
  std::sort(out.begin(), out.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              return a.cost_dollars < b.cost_dollars;
            });
  return out;
}

}  // namespace ftms
