#include "model/tables.h"

#include <cstdio>

#include "model/buffers.h"
#include "model/capacity.h"
#include "model/overhead.h"
#include "model/reliability_model.h"
#include "util/units.h"

namespace ftms {

StatusOr<std::vector<SchemeMetrics>> ComputeComparisonTable(
    const SystemParameters& p, int parity_group_size) {
  std::vector<SchemeMetrics> rows;
  rows.reserve(4);
  for (Scheme scheme : kAllSchemes) {
    SchemeMetrics m;
    m.scheme = scheme;
    m.parity_group_size = parity_group_size;
    m.storage_overhead_fraction =
        StorageOverheadFraction(scheme, parity_group_size);
    m.bandwidth_overhead_fraction =
        BandwidthOverheadFraction(p, scheme, parity_group_size);

    StatusOr<double> mttf = MttfCatastrophicHours(p, scheme,
                                                  parity_group_size);
    if (!mttf.ok()) return mttf.status();
    m.mttf_years = HoursToYears(*mttf);

    StatusOr<double> mttds = MttdsHours(p, scheme, parity_group_size);
    if (!mttds.ok()) return mttds.status();
    m.mttds_years = HoursToYears(*mttds);

    StatusOr<int> streams = MaxStreams(p, scheme, parity_group_size);
    if (!streams.ok()) return streams.status();
    m.streams = *streams;

    StatusOr<double> buffers =
        TotalBufferTracks(p, scheme, parity_group_size);
    if (!buffers.ok()) return buffers.status();
    m.buffer_tracks = *buffers;

    rows.push_back(m);
  }
  return rows;
}

namespace {

SchemeMetrics PaperRow(Scheme scheme, int c, double storage, double bw,
                       double mttf, double mttds, int streams,
                       double buffers) {
  SchemeMetrics m;
  m.scheme = scheme;
  m.parity_group_size = c;
  m.storage_overhead_fraction = storage;
  m.bandwidth_overhead_fraction = bw;
  m.mttf_years = mttf;
  m.mttds_years = mttds;
  m.streams = streams;
  m.buffer_tracks = buffers;
  return m;
}

}  // namespace

std::array<SchemeMetrics, 4> PaperTable2() {
  // Table 2 (C = 5, D = 100, Table 1 parameters, K = 3).
  return {
      PaperRow(Scheme::kStreamingRaid, 5, 0.200, 0.200, 25684.9, 25684.9,
               1041, 10410),
      PaperRow(Scheme::kStaggeredGroup, 5, 0.200, 0.200, 25684.9, 25684.9,
               966, 3623),
      PaperRow(Scheme::kNonClustered, 5, 0.200, 0.200, 25684.9, 3176862.3,
               966, 2612),
      // Paper prints 5.0% bandwidth overhead here (K=5); 3.0% is the
      // K=3-consistent value (see header comment).
      PaperRow(Scheme::kImprovedBandwidth, 5, 0.200, 0.030, 11415.5,
               3176862.3, 1263, 10104),
  };
}

std::array<SchemeMetrics, 4> PaperTable3() {
  // Table 3 (C = 7, D = 100, Table 1 parameters, K = 3).
  return {
      PaperRow(Scheme::kStreamingRaid, 7, 0.143, 0.143, 17123.3, 17123.3,
               1125, 15750),
      PaperRow(Scheme::kStaggeredGroup, 7, 0.143, 0.143, 17123.3, 17123.3,
               1035, 4830),
      PaperRow(Scheme::kNonClustered, 7, 0.143, 0.143, 17123.3, 3176862.3,
               1035, 3254),
      PaperRow(Scheme::kImprovedBandwidth, 7, 0.143, 0.030, 7903.1,
               3176862.3, 1273, 15276),
  };
}

namespace {

void AppendRow(std::string& out, const char* label, const SchemeMetrics& m) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-22s %8.1f%% %8.1f%% %14.1f %14.1f %8d %10.0f\n", label,
                m.storage_overhead_fraction * 100.0,
                m.bandwidth_overhead_fraction * 100.0, m.mttf_years,
                m.mttds_years, m.streams, m.buffer_tracks);
  out += buf;
}

const char* kHeader =
    "Scheme                   StorOvh    BwOvh     MTTF (yrs)    MTTDS (yrs)"
    "  Streams    Buffers\n";

}  // namespace

std::string FormatComparisonTable(const std::vector<SchemeMetrics>& rows) {
  std::string out(kHeader);
  for (const SchemeMetrics& m : rows) {
    AppendRow(out, std::string(SchemeName(m.scheme)).c_str(), m);
  }
  return out;
}

std::string FormatComparisonTableWithPaper(
    const std::vector<SchemeMetrics>& rows,
    const std::array<SchemeMetrics, 4>& paper) {
  std::string out(kHeader);
  for (size_t i = 0; i < rows.size() && i < paper.size(); ++i) {
    std::string measured(SchemeAbbrev(rows[i].scheme));
    measured += " (ours)";
    AppendRow(out, measured.c_str(), rows[i]);
    std::string reference(SchemeAbbrev(paper[i].scheme));
    reference += " (paper)";
    AppendRow(out, reference.c_str(), paper[i]);
  }
  return out;
}

}  // namespace ftms
