#ifndef FTMS_MODEL_PARAMETERS_H_
#define FTMS_MODEL_PARAMETERS_H_

#include "disk/disk_model.h"
#include "util/status.h"
#include "util/units.h"

namespace ftms {

// System parameters of the analytical model, defaults from the paper's
// Table 1 (characteristics similar to a Seagate ST31200N):
//
//   b_o = 1.5 Mb/s,  B = 50 KB,  T_seek = 25 ms,  T_trk = 20 ms,
//   D = 100,  MTTF(disk) = 300,000 h,  MTTR(disk) = 1 h,  S_d = 1 GB.
//
// `k_reserve` is K_NC = K_IB: the number of simultaneously masked failures
// the Non-clustered scheme provisions buffer servers for, and the disks'
// worth of bandwidth the Improved-bandwidth scheme holds in reserve.
// NOTE: the paper's prose says K = 5, but Tables 2/3 are numerically
// reproducible only with K = 3 (see DESIGN.md §4); we default to 3 so the
// tables regenerate exactly, and benches sweep K where relevant.
struct SystemParameters {
  double object_rate_mb_s = kMpeg1RateMbS;  // b_o in MB/s (0.1875)
  DiskParameters disk;                      // B, T_seek, T_trk, S_d, MTTF/R
  int num_disks = 100;                      // D
  int k_reserve = 3;                        // K_NC = K_IB

  double track_mb() const { return disk.track_mb; }
  double seek_s() const { return disk.seek_time_s; }
  double track_time_s() const { return disk.track_time_s; }

  Status Validate() const;
};

// Parameters of the worked design example of Section 5 / Figure 9.
struct DesignParameters {
  double working_set_mb = 100000.0;  // W: real data to keep disk-resident
  double memory_cost_per_mb = 75.0;  // c_b ($/MB); calibrated, see DESIGN.md
  double disk_cost_per_mb = 1.0;     // c_d ($/MB); calibrated, see DESIGN.md
};

}  // namespace ftms

#endif  // FTMS_MODEL_PARAMETERS_H_
