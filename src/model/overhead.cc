#include "model/overhead.h"

namespace ftms {

double StorageOverheadFraction(Scheme scheme, int parity_group_size) {
  (void)scheme;  // identical for all four schemes
  return 1.0 / static_cast<double>(parity_group_size);
}

double StorageOverheadMb(const SystemParameters& p, Scheme scheme,
                         int parity_group_size) {
  const double total =
      static_cast<double>(p.num_disks) * p.disk.capacity_mb;
  return total * StorageOverheadFraction(scheme, parity_group_size);
}

double BandwidthOverheadFraction(const SystemParameters& p, Scheme scheme,
                                 int parity_group_size) {
  if (scheme == Scheme::kImprovedBandwidth) {
    return static_cast<double>(p.k_reserve) /
           static_cast<double>(p.num_disks);
  }
  return 1.0 / static_cast<double>(parity_group_size);
}

double BandwidthOverheadMbS(const SystemParameters& p, Scheme scheme,
                            int parity_group_size) {
  const double aggregate =
      static_cast<double>(p.num_disks) * p.disk.BandwidthMbS();
  return aggregate * BandwidthOverheadFraction(p, scheme, parity_group_size);
}

}  // namespace ftms
