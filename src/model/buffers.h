#ifndef FTMS_MODEL_BUFFERS_H_
#define FTMS_MODEL_BUFFERS_H_

#include "layout/schemes.h"
#include "model/parameters.h"
#include "util/status.h"

namespace ftms {

// Buffer space requirements at the maximum stream load, equations
// (12)-(15). All results are in TRACKS (multiply by B for MB), matching
// the "Buffers (in tracks)" rows of Tables 2/3.
//
//   SR (12): 2C per stream      — one group being read + one being sent.
//   SG (13): C(C+1)/2 per C-1 streams — the staggered sawtooth of Figure 4
//            sums (C+1) + C + ... + 2 over the C-1 phase positions.
//   NC (14): 2 per stream, plus SG-level buffers for K_NC degraded
//            clusters supplied by the shared buffer servers. The paper's
//            printed denominator is garbled; D'/C (clusters counted over
//            data disks) reproduces the tables exactly (DESIGN.md §4).
//   IB (15): 2(C-1) per stream  — like SR but no parity block is buffered.

// Buffers per single stream during normal operation (tracks).
double BuffersPerStreamNormal(Scheme scheme, int parity_group_size);

// Total buffer requirement at max streams (tracks), equations (12)-(15).
StatusOr<double> TotalBufferTracks(const SystemParameters& p, Scheme scheme,
                                   int parity_group_size);

// Same, in MB.
StatusOr<double> TotalBufferMb(const SystemParameters& p, Scheme scheme,
                               int parity_group_size);

}  // namespace ftms

#endif  // FTMS_MODEL_BUFFERS_H_
