#ifndef FTMS_MODEL_OVERHEAD_H_
#define FTMS_MODEL_OVERHEAD_H_

#include "layout/schemes.h"
#include "model/parameters.h"

namespace ftms {

// Redundancy penalties (Section 5, equations (1)-(3)).

// Fraction of total disk storage devoted to parity. One block in every
// parity group of C is parity, for every scheme: 1/C.
double StorageOverheadFraction(Scheme scheme, int parity_group_size);

// Additional disk storage in MB consumed by parity across the system
// (equation (1)): S_p = (total storage) / C.
double StorageOverheadMb(const SystemParameters& p, Scheme scheme,
                         int parity_group_size);

// Fraction of aggregate disk bandwidth withheld from normal-mode delivery:
//   SR/SG/NC: the parity disks' 1/C (equation (2));
//   IB:       K_IB reserved disks' worth, K_IB/D (equation (3)).
double BandwidthOverheadFraction(const SystemParameters& p, Scheme scheme,
                                 int parity_group_size);

// The same, in MB/s (d = per-disk bandwidth from the disk model).
double BandwidthOverheadMbS(const SystemParameters& p, Scheme scheme,
                            int parity_group_size);

}  // namespace ftms

#endif  // FTMS_MODEL_OVERHEAD_H_
