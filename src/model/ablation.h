#ifndef FTMS_MODEL_ABLATION_H_
#define FTMS_MODEL_ABLATION_H_

#include "model/parameters.h"

namespace ftms {

// Ablations of the design choices the paper calls out.

// Section 2 motivates cycle-based scheduling by the seek optimization:
// within a cycle the reads can be served in one arm sweep, charging
// T_seek once per cycle instead of once per request. The ablated
// scheduler serves requests FIFO, paying an average seek per track read:
//
//   T_seek_avg + T_trk per request, so
//   N/D' <= k' B / (b_o k' (T_seek_avg + T_trk))
//         = B / (b_o (T_seek_avg + T_trk)).
//
// `seek_fraction` scales the average per-request seek relative to the
// full-stroke T_seek (random requests average ~1/3 of full stroke).
double StreamsPerDataDiskFifo(const SystemParameters& p,
                              double seek_fraction = 1.0 / 3.0);

// The multiplicative capacity gain of the sweep optimization over FIFO
// at the given k'.
double SweepGainOverFifo(const SystemParameters& p, int k_prime,
                         double seek_fraction = 1.0 / 3.0);

}  // namespace ftms

#endif  // FTMS_MODEL_ABLATION_H_
