#ifndef FTMS_MODEL_COST_H_
#define FTMS_MODEL_COST_H_

#include <vector>

#include "layout/schemes.h"
#include "model/parameters.h"
#include "util/status.h"

namespace ftms {

// System sizing and cost model (Section 5, equations (16)-(19) and the
// Figure 9 study): disks to hold a working set W, plus the main-memory
// buffers the chosen scheme needs at its maximum stream load.

// Minimum number of disks whose data fraction (C-1)/C holds W MB
// (D(W,C) in the paper). Rounded up to a whole disk. The scheme-aware
// overload accounts for dual-parity clusters, whose data fraction is
// (C-2)/C; the two-argument form assumes one parity disk per cluster.
int DisksForWorkingSet(const DesignParameters& d, const SystemParameters& p,
                       int parity_group_size);
int DisksForWorkingSet(const DesignParameters& d, const SystemParameters& p,
                       Scheme scheme, int parity_group_size);

// Total dollar cost (equations (16)-(19)) of a system of `num_disks` disks
// running `scheme` with parity groups of C: disk cost + buffer cost at the
// maximum supported stream count.
StatusOr<double> SystemCost(const DesignParameters& d,
                            const SystemParameters& p, Scheme scheme,
                            int parity_group_size, int num_disks);

// One point of the Figure 9 study: size the system at the minimum disks
// holding W, then report cost and max streams.
struct DesignPoint {
  Scheme scheme;
  int parity_group_size = 0;
  int num_disks = 0;
  int max_streams = 0;
  double buffer_mb = 0;
  double cost_dollars = 0;
};

StatusOr<DesignPoint> EvaluateDesign(const DesignParameters& d,
                                     const SystemParameters& p,
                                     Scheme scheme, int parity_group_size);

// Capacity planning (the worked examples at the end of Section 5): the
// cheapest (scheme, C) meeting both the working set and a required stream
// count, buying extra disks beyond D(W,C) when bandwidth, not capacity, is
// the binding constraint.
struct PlanRequest {
  double required_streams = 0;
  int min_group_size = 2;
  int max_group_size = 10;
};

StatusOr<DesignPoint> PlanCheapest(const DesignParameters& d,
                                   const SystemParameters& p, Scheme scheme,
                                   const PlanRequest& req);

// Evaluates all four schemes and returns them sorted by cost (cheapest
// first). Schemes that cannot meet the requirement are omitted.
std::vector<DesignPoint> PlanAllSchemes(const DesignParameters& d,
                                        const SystemParameters& p,
                                        const PlanRequest& req);

}  // namespace ftms

#endif  // FTMS_MODEL_COST_H_
