#include "model/reliability_model.h"

namespace ftms {

double MeanTimeToFirstFailureHours(double disk_mttf_hours, int num_disks) {
  return disk_mttf_hours / static_cast<double>(num_disks);
}

StatusOr<double> MttfCatastrophicHours(const SystemParameters& p,
                                       Scheme scheme,
                                       int parity_group_size) {
  FTMS_RETURN_IF_ERROR(p.Validate());
  if (parity_group_size < 2) {
    return Status::InvalidArgument("parity group size must be >= 2");
  }
  const double mttf = p.disk.mttf_hours;
  const double mttr = p.disk.mttr_hours;
  const double d = static_cast<double>(p.num_disks);
  const double c = static_cast<double>(parity_group_size);
  if (IsDualParity(scheme)) {
    // Three concurrent failures inside one cluster are needed for data
    // loss: first anywhere (MTTF/D), second among the C-1 cluster peers
    // within the first repair window, third among the remaining C-2
    // while BOTH are still under repair. Repairs run in parallel, so the
    // two-down state drains at rate 2/MTTR — hence the factor 2 (the
    // Monte-Carlo in reliability/markov_sim.cc confirms it).
    if (parity_group_size < 3) {
      return Status::InvalidArgument(
          "dual-parity schemes need parity group size >= 3");
    }
    return mttf / d * (mttf / ((c - 1.0) * mttr)) *
           (2.0 * mttf / ((c - 2.0) * mttr));
  }
  const double exposure =
      scheme == Scheme::kImprovedBandwidth ? (2.0 * c - 1.0) : (c - 1.0);
  return mttf * mttf / (d * exposure * mttr);
}

double KConcurrentFailuresMeanHours(double disk_mttf_hours,
                                    double disk_mttr_hours, int num_disks,
                                    int k) {
  // MTTF^K / (D (D-1) ... (D-K+1) MTTR^(K-1)): the expected time until K
  // disks are down at once, by the usual rare-event product argument.
  // Rearranged so intermediate values stay finite:
  //   MTTF/D * prod_{i=1}^{K-1} MTTF / ((D-i) MTTR).
  double result = disk_mttf_hours / static_cast<double>(num_disks);
  for (int i = 1; i < k; ++i) {
    result *= disk_mttf_hours /
              (static_cast<double>(num_disks - i) * disk_mttr_hours);
  }
  return result;
}

StatusOr<double> MttdsHours(const SystemParameters& p, Scheme scheme,
                            int parity_group_size) {
  FTMS_RETURN_IF_ERROR(p.Validate());
  switch (scheme) {
    case Scheme::kStreamingRaid:
    case Scheme::kStaggeredGroup:
    case Scheme::kStreamingRaid2:
      // A cluster always reserves enough bandwidth to mask every failure
      // pattern it can survive, so degradation coincides with data loss.
      return MttfCatastrophicHours(p, scheme, parity_group_size);
    case Scheme::kNonClustered:
    case Scheme::kImprovedBandwidth:
      if (p.k_reserve < 1) {
        return Status::InvalidArgument(
            "NC/IB degradation model needs k_reserve >= 1");
      }
      return KConcurrentFailuresMeanHours(p.disk.mttf_hours,
                                          p.disk.mttr_hours, p.num_disks,
                                          p.k_reserve);
    case Scheme::kNonClustered2:
      // The second parity column lets every cluster absorb one extra
      // concurrent failure before the buffer reserve is consumed.
      if (p.k_reserve < 1) {
        return Status::InvalidArgument(
            "NC/IB degradation model needs k_reserve >= 1");
      }
      return KConcurrentFailuresMeanHours(p.disk.mttf_hours,
                                          p.disk.mttr_hours, p.num_disks,
                                          p.k_reserve + 1);
  }
  return Status::Internal("unknown scheme");
}

}  // namespace ftms
