#ifndef FTMS_MODEL_TABLES_H_
#define FTMS_MODEL_TABLES_H_

#include <array>
#include <string>
#include <vector>

#include "layout/schemes.h"
#include "model/parameters.h"
#include "util/status.h"

namespace ftms {

// One row of the paper's comparison tables (Tables 2 and 3): the six
// metrics of Section 5 for one scheme at a given parity group size.
struct SchemeMetrics {
  Scheme scheme = Scheme::kStreamingRaid;
  int parity_group_size = 0;
  double storage_overhead_fraction = 0;    // of total disk storage
  double bandwidth_overhead_fraction = 0;  // of aggregate disk bandwidth
  double mttf_years = 0;                   // mean time to catastrophe
  double mttds_years = 0;                  // mean time to degradation
  int streams = 0;                         // max simultaneous streams
  double buffer_tracks = 0;                // total buffer space, in tracks
};

// Computes the four rows (SR, SG, NC, IB) of the comparison table for the
// given parameters and parity group size.
StatusOr<std::vector<SchemeMetrics>> ComputeComparisonTable(
    const SystemParameters& p, int parity_group_size);

// The values printed in the paper for Table 2 (C = 5) and Table 3 (C = 7),
// used by tests and by the benches' paper-vs-measured output. Rows are in
// scheme order SR, SG, NC, IB.
//
// Note (DESIGN.md §4): the paper's IB bandwidth-overhead entry in Table 2
// is 5.0% (K=5) while every other NC/IB entry of both tables follows K=3;
// we store the K=3-consistent value (3.0%) here and the bench prints the
// paper's figure alongside.
std::array<SchemeMetrics, 4> PaperTable2();
std::array<SchemeMetrics, 4> PaperTable3();

// Renders rows as an aligned text table, with optional paper reference
// values interleaved for comparison.
std::string FormatComparisonTable(const std::vector<SchemeMetrics>& rows);
std::string FormatComparisonTableWithPaper(
    const std::vector<SchemeMetrics>& rows,
    const std::array<SchemeMetrics, 4>& paper);

}  // namespace ftms

#endif  // FTMS_MODEL_TABLES_H_
