#ifndef FTMS_MODEL_SIZING_H_
#define FTMS_MODEL_SIZING_H_

#include "model/parameters.h"
#include "util/status.h"

namespace ftms {

// Back-of-envelope farm sizing from the paper's introduction: how many
// movies a farm stores and how many viewers its raw bandwidth feeds
// ("1000 (1 gigabyte) disks provide enough storage for approximately 300
// (90 minute) MPEG-2 movies ... or 900 MPEG-1 movies", "enough bandwidth
// to support approximately 6500 concurrent MPEG-2 users or 20,000 MPEG-1
// users" at 4 MB/s per disk).

// Movies of `minutes` at `rate_mb_s` storable on `num_disks` disks of
// `disk_capacity_mb` (no parity discount — the introduction's estimate).
double MoviesStorable(int num_disks, double disk_capacity_mb,
                      double rate_mb_s, double minutes);

// Concurrent viewers of `rate_mb_s` streams fed by the farm's aggregate
// bandwidth of `num_disks` x `disk_bandwidth_mb_s`.
double ViewersSupportable(int num_disks, double disk_bandwidth_mb_s,
                          double rate_mb_s);

// Mixed-rate stream capacity (extension): with cycle-based scheduling a
// stream of rate b consumes b*T_cyc/B tracks per cycle regardless of the
// cycle length, so the per-data-disk constraint
//   T_seek + (sum_i N_i b_i) * T_cyc / (B D') * T_trk <= T_cyc
// bounds the aggregate DELIVERED BANDWIDTH rather than a stream count.
// Returns the total streams supportable when a fraction `fraction_high`
// of them run at `rate_high_mb_s` and the rest at the configured base
// rate, with k' tracks per cycle per base-rate stream.
StatusOr<double> MixedRateMaxStreams(const SystemParameters& p,
                                     int k_prime, double data_disks,
                                     double rate_high_mb_s,
                                     double fraction_high);

}  // namespace ftms

#endif  // FTMS_MODEL_SIZING_H_
