#ifndef FTMS_TELEMETRY_TELEMETRY_SERVER_H_
#define FTMS_TELEMETRY_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/http.h"
#include "util/status.h"

namespace ftms {

class EventJournal;
class MetricsRegistry;
class TimeSeriesRecorder;

// Content type of the /metrics endpoint (Prometheus text exposition 0.0.4).
inline constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

// One immutable, sequence-numbered view of the whole observability
// surface, rendered at a simulator sync point. Scrape handlers only ever
// read a snapshot they hold a shared_ptr to, so a scrape can never
// observe a half-written cycle and never blocks the simulation.
struct TelemetrySnapshot {
  uint64_t seq = 0;      // monotonically increasing publication number
  int64_t sim_us = 0;    // simulated clock at publication

  // Readiness inputs, polled from the attached probes at publication.
  bool rebuild_active = false;
  double rebuild_progress = 0.0;  // [0, 1], meaningful while active
  int rebuild_disk = -1;
  int64_t active_breaches = 0;
  int64_t cycle = -1;
  std::string status_line;  // MultimediaServer::StatusLine() when attached

  // Per-cluster state computed by the server probe (utilization = mean
  // fraction of read slots consumed in the last cycle across the
  // cluster's disks).
  struct ClusterStat {
    int cluster = 0;
    double utilization = 0.0;
    int failed_disks = 0;
    bool rebuilding = false;
  };
  std::vector<ClusterStat> clusters;

  // Live per-SLO error-budget burn (>= 1 means breached).
  std::vector<std::pair<std::string, double>> slo_burn;
  int64_t hiccups_total = 0;
  int64_t worst_stream_hiccups = 0;

  // Rendered endpoint bodies. Rendering happens once, on the publishing
  // (serial) thread; the accept thread serves these strings verbatim.
  std::string metrics_prom;     // /metrics
  std::string vars_json;        // /vars
  std::string timeseries_json;  // /timeseries
  std::string profile_json;     // /profile

  // Last kJournalTailMax journal lines (JSONL, no trailing newline each).
  std::vector<std::string> journal_tail;
  int64_t journal_total = 0;    // events currently retained
  int64_t journal_dropped = 0;  // events evicted by the ring cap

  bool ready() const { return !rebuild_active && active_breaches == 0; }
};

// Collects the observability sources and publishes immutable snapshots.
//
// Threading contract (DESIGN.md §14): Publish() is called only from
// serial sync points — MultimediaServer cycle boundaries and
// Simulator::FlushInstruments — so reading the registry / journal /
// recorder during rendering races with nothing. The finished snapshot is
// swapped in under a mutex that guards ONLY the pointer: readers copy
// the shared_ptr inside the lock and serve every byte outside it, so
// the critical section is a refcount bump on both sides (a plain mutex
// rather than std::atomic<shared_ptr> because libstdc++'s lock-bit
// protocol for the latter is opaque to TSan). Rendering — the expensive
// part — happens before the lock, and the scrape path never touches
// live simulation state.
class TelemetryHub {
 public:
  static constexpr size_t kJournalTailMax = 256;

  // Fills snapshot fields from live component state; runs on the
  // publishing thread, inside the serial section.
  using StateProbe = std::function<void(TelemetrySnapshot*)>;

  TelemetryHub() = default;
  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  // All attachments must happen before the first Publish() that should
  // see them and before a TelemetryServer starts serving. Null detaches.
  void AttachMetrics(const MetricsRegistry* metrics) { metrics_ = metrics; }
  void AttachTimeSeries(const TimeSeriesRecorder* ts) { timeseries_ = ts; }
  void AttachJournal(const EventJournal* journal) { journal_ = journal; }
  void AddProbe(StateProbe probe) { probes_.push_back(std::move(probe)); }

  // Renders and installs a new snapshot. Serial sync points only.
  void Publish(int64_t sim_us);

  // Latest published snapshot (never null: an empty seq-0 snapshot is
  // served before the first Publish). Any thread; the lock is held only
  // for the shared_ptr copy.
  std::shared_ptr<const TelemetrySnapshot> Latest() const;

  uint64_t publish_count() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  const MetricsRegistry* metrics_ = nullptr;
  const TimeSeriesRecorder* timeseries_ = nullptr;
  const EventJournal* journal_ = nullptr;
  std::vector<StateProbe> probes_;

  std::atomic<uint64_t> seq_{0};
  // latest_mu_ guards only the pointer; snapshot contents are immutable.
  mutable std::mutex latest_mu_;
  std::shared_ptr<const TelemetrySnapshot> latest_ =
      std::make_shared<const TelemetrySnapshot>();
};

struct TelemetryServerOptions {
  int port = 0;  // 0 = kernel-assigned ephemeral port
  std::string bind_address = "127.0.0.1";
};

// The scrape endpoint: a blocking accept loop on its own thread serving
// GET /metrics, /healthz, /readyz, /vars, /timeseries, /profile and
// /journal/tail?n=K out of the hub's latest snapshot. Constructed only
// when telemetry is enabled — a server that is never created costs
// nothing (no thread, no socket, no atomics on the hot path).
class TelemetryServer {
 public:
  // Binds, starts listening and spawns the accept thread. The hub must
  // outlive the server.
  static StatusOr<std::unique_ptr<TelemetryServer>> Start(
      const TelemetryHub* hub, const TelemetryServerOptions& options = {});

  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Stops accepting, closes the socket and joins the thread. Idempotent.
  void Stop();

  int port() const { return port_; }
  std::string url() const;
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Routing logic, exposed so tests can drive it without sockets.
  HttpResponse Handle(const HttpRequest& request) const;

 private:
  TelemetryServer() = default;
  void AcceptLoop();
  void ServeOne(int client_fd);

  const TelemetryHub* hub_ = nullptr;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string bind_address_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_served_{0};
  std::thread thread_;
};

}  // namespace ftms

#endif  // FTMS_TELEMETRY_TELEMETRY_SERVER_H_
