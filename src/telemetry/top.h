#ifndef FTMS_TELEMETRY_TOP_H_
#define FTMS_TELEMETRY_TOP_H_

#include <string>

#include "util/json.h"
#include "util/status.h"

namespace ftms {

// `ftms top <url>` — a curses-free ANSI terminal dashboard over the
// telemetry plane. Polls /vars (and /timeseries for sparklines) and
// renders per-cluster disk utilization, rebuild progress, SLO burn and
// hiccup counters live during a drill. `--once` prints a single frame
// and exits; `--json` with `--once` emits the raw /vars document for
// scripting.
struct TopOptions {
  std::string url;       // e.g. http://127.0.0.1:9464
  bool once = false;     // one frame, no screen clearing
  bool json = false;     // with once: dump /vars JSON verbatim
  int interval_ms = 1000;
  int max_frames = 0;    // 0 = run until interrupted or the server goes away
  bool color = true;     // ANSI colors (live mode)
};

// One dashboard frame from a parsed /vars document (and optionally the
// /timeseries document for history sparklines). Pure; exposed for tests.
std::string RenderTopFrame(const JsonValue& vars,
                           const JsonValue* timeseries, bool color);

// Runs the dashboard; returns a process exit code (1 when the endpoint
// is unreachable or serves malformed documents).
int RunTop(const TopOptions& options);

}  // namespace ftms

#endif  // FTMS_TELEMETRY_TOP_H_
