#include "telemetry/top.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/http.h"

namespace ftms {

namespace {

constexpr int kBarWidth = 20;

const char* kReset = "\x1b[0m";
const char* kGreen = "\x1b[32m";
const char* kRed = "\x1b[31m";
const char* kYellow = "\x1b[33m";
const char* kBold = "\x1b[1m";

// "[########------------]" for fraction in [0, 1].
std::string Bar(double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(fraction * kBarWidth + 0.5);
  std::string out = "[";
  out.append(static_cast<size_t>(filled), '#');
  out.append(static_cast<size_t>(kBarWidth - filled), '-');
  out += ']';
  return out;
}

// Eight-level unicode sparkline over the last `width` samples.
std::string Sparkline(const std::vector<double>& values, size_t width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const size_t start = values.size() > width ? values.size() - width : 0;
  double lo = values[start], hi = values[start];
  for (size_t i = start; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (size_t i = start; i < values.size(); ++i) {
    const double norm =
        hi > lo ? (values[i] - lo) / (hi - lo) : (hi > 0 ? 1.0 : 0.0);
    out += kLevels[std::clamp(static_cast<int>(norm * 7 + 0.5), 0, 7)];
  }
  return out;
}

double NumberAt(const JsonValue& obj, std::string_view key,
                double fallback = 0) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr ? v->AsNumber(fallback) : fallback;
}

// Last up-to-32 samples of the first /timeseries series whose name
// contains `needle`.
std::vector<double> SeriesTail(const JsonValue* timeseries,
                               std::string_view needle) {
  std::vector<double> out;
  if (timeseries == nullptr) return out;
  const JsonValue* series = timeseries->Find("series");
  if (series == nullptr || !series->is_object()) return out;
  for (const auto& [name, body] : series->members()) {
    if (name.find(needle) == std::string::npos) continue;
    const JsonValue* v = body.Find("v");
    if (v == nullptr || !v->is_array()) continue;
    const auto& items = v->items();
    const size_t start = items.size() > 32 ? items.size() - 32 : 0;
    for (size_t i = start; i < items.size(); ++i) {
      out.push_back(items[i].AsNumber());
    }
    break;
  }
  return out;
}

}  // namespace

std::string RenderTopFrame(const JsonValue& vars,
                           const JsonValue* timeseries, bool color) {
  const auto paint = [&](const char* code, const std::string& text) {
    return color ? std::string(code) + text + kReset : text;
  };

  const bool ready =
      vars.Find("ready") != nullptr && vars.Find("ready")->AsBool();
  const double sim_s = NumberAt(vars, "sim_us") / 1e6;
  char head[160];
  std::snprintf(head, sizeof(head),
                "FTMS live  seq %lld  cycle %lld  t=%.3fs  ",
                static_cast<long long>(NumberAt(vars, "seq")),
                static_cast<long long>(NumberAt(vars, "cycle", -1)),
                sim_s);
  std::string out = paint(kBold, head);
  out += ready ? paint(kGreen, "READY") : paint(kRed, "NOT READY");
  out += '\n';
  if (const JsonValue* line = vars.Find("status_line");
      line != nullptr && !line->AsString().empty()) {
    out += line->AsString();
    out += '\n';
  }

  if (const JsonValue* clusters = vars.Find("clusters");
      clusters != nullptr && !clusters->items().empty()) {
    out += "\nclusters:\n";
    for (const JsonValue& c : clusters->items()) {
      const double util = NumberAt(c, "util");
      const int failed = static_cast<int>(NumberAt(c, "failed"));
      char row[96];
      std::snprintf(row, sizeof(row), "  %3d %s util %4.2f",
                    static_cast<int>(NumberAt(c, "cluster")),
                    Bar(util).c_str(), util);
      out += row;
      if (failed > 0) {
        out += "  " + paint(kRed, "failed " + std::to_string(failed));
      }
      if (const JsonValue* r = c.Find("rebuilding");
          r != nullptr && r->AsBool()) {
        out += "  " + paint(kYellow, "REBUILDING");
      }
      out += '\n';
    }
  }

  if (const JsonValue* rebuild = vars.Find("rebuild");
      rebuild != nullptr && rebuild->Find("active") != nullptr &&
      rebuild->Find("active")->AsBool()) {
    const double progress = NumberAt(*rebuild, "progress");
    char row[96];
    std::snprintf(row, sizeof(row), "\nrebuild: disk %d %s %3.0f%%",
                  static_cast<int>(NumberAt(*rebuild, "disk", -1)),
                  Bar(progress).c_str(), progress * 100);
    out += paint(kYellow, row);
    out += '\n';
  }

  if (const JsonValue* burn = vars.Find("slo_burn");
      burn != nullptr && !burn->members().empty()) {
    out += "\nslo burn:\n";
    for (const auto& [name, value] : burn->members()) {
      const double b = value.AsNumber();
      char row[128];
      std::snprintf(row, sizeof(row), "  %-32s %s %.3f", name.c_str(),
                    Bar(b).c_str(), b);
      out += b >= 1.0 ? paint(kRed, row) : row;
      out += '\n';
    }
  }
  const std::vector<double> burn_hist =
      SeriesTail(timeseries, "slo_burn_max");
  if (!burn_hist.empty()) {
    out += "  burn history " + Sparkline(burn_hist, 32) + '\n';
  }

  if (const JsonValue* qos = vars.Find("qos"); qos != nullptr) {
    char row[160];
    std::snprintf(
        row, sizeof(row),
        "\nhiccups %lld (worst stream %lld)  breaches %lld  journal %lld "
        "events (%lld dropped)\n",
        static_cast<long long>(NumberAt(*qos, "hiccups_total")),
        static_cast<long long>(NumberAt(*qos, "worst_stream_hiccups")),
        static_cast<long long>(NumberAt(*qos, "active_breaches")),
        static_cast<long long>(NumberAt(*qos, "journal_events")),
        static_cast<long long>(NumberAt(*qos, "journal_dropped")));
    out += row;
  }
  return out;
}

int RunTop(const TopOptions& options) {
  int failures = 0;
  for (int frame = 0;
       options.max_frames == 0 || frame < options.max_frames; ++frame) {
    StatusOr<HttpResponse> vars_response =
        HttpGet(options.url + "/vars", 5000);
    if (!vars_response.ok() || vars_response->status != 200) {
      if (options.once || ++failures >= 3) {
        std::fprintf(stderr, "ftms top: cannot fetch %s/vars: %s\n",
                     options.url.c_str(),
                     vars_response.ok()
                         ? ("HTTP " + std::to_string(vars_response->status))
                               .c_str()
                         : vars_response.status().ToString().c_str());
        return 1;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.interval_ms));
      continue;
    }
    failures = 0;

    if (options.once && options.json) {
      std::fputs(vars_response->body.c_str(), stdout);
      return 0;
    }

    StatusOr<JsonValue> vars = JsonValue::Parse(vars_response->body);
    if (!vars.ok()) {
      std::fprintf(stderr, "ftms top: malformed /vars document: %s\n",
                   vars.status().ToString().c_str());
      return 1;
    }

    JsonValue timeseries;
    const JsonValue* timeseries_ptr = nullptr;
    if (StatusOr<HttpResponse> ts_response =
            HttpGet(options.url + "/timeseries", 5000);
        ts_response.ok() && ts_response->status == 200) {
      if (StatusOr<JsonValue> parsed =
              JsonValue::Parse(ts_response->body);
          parsed.ok()) {
        timeseries = std::move(*parsed);
        timeseries_ptr = &timeseries;
      }
    }

    if (!options.once) {
      std::fputs("\x1b[2J\x1b[H", stdout);  // clear screen, home cursor
    }
    std::fputs(
        RenderTopFrame(*vars, timeseries_ptr, options.color && !options.once)
            .c_str(),
        stdout);
    std::fflush(stdout);
    if (options.once) return 0;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
  return 0;
}

}  // namespace ftms
