#ifndef FTMS_TELEMETRY_HTTP_H_
#define FTMS_TELEMETRY_HTTP_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ftms {

// Minimal dependency-free HTTP/1.1 plumbing for the telemetry plane: a
// request-head parser, a response serializer and a tiny blocking GET
// client (used by `ftms top` and the exporter tests). Deliberately small:
// GET only, no keep-alive, no chunked transfer, bodies ignored on the
// request side — the exporter is a scrape target, not a web server.

// A parsed request head. `target` is the raw request-target
// ("/journal/tail?n=8"); `path` and `query` are its split form.
struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string target;  // raw, as received
  std::string path;    // target before '?'
  std::vector<std::pair<std::string, std::string>> query;  // decoded pairs
};

// Parses everything up to (not including) the blank line: request line
// plus headers (headers are tolerated and discarded). Returns
// InvalidArgument on a malformed request line.
StatusOr<HttpRequest> ParseHttpRequestHead(std::string_view head);

// First value for `key` in the query string, if present.
std::optional<std::string> QueryParam(const HttpRequest& request,
                                      std::string_view key);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Standard reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
std::string_view HttpStatusReason(int status);

// Full wire form: status line, Content-Type, Content-Length,
// Connection: close, blank line, body.
std::string SerializeHttpResponse(const HttpResponse& response);

// "http://host:port/path" -> parts. Only the http scheme is accepted;
// the target defaults to "/".
struct ParsedUrl {
  std::string host;
  int port = 80;
  std::string target;  // "/..." (includes query)
};
StatusOr<ParsedUrl> ParseHttpUrl(const std::string& url);

// Blocking GET against `url`. Connects, sends the request, reads until
// EOF and splits off the head. Returns the parsed status and body;
// Unavailable on connect/IO failure or timeout.
StatusOr<HttpResponse> HttpGet(const std::string& url,
                               int timeout_ms = 5000);

}  // namespace ftms

#endif  // FTMS_TELEMETRY_HTTP_H_
