#include "telemetry/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "qos/event_journal.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/timeseries.h"

namespace ftms {

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

// The /vars document: run state first, then the flat registry block —
// one self-contained JSON object per scrape for dashboards and `ftms top`.
std::string RenderVarsJson(const TelemetrySnapshot& snap,
                           const MetricsRegistry* metrics) {
  std::string out = "{\n  \"schema\": \"ftms.telemetry.vars.v1\",\n";
  out += "  \"seq\": " + std::to_string(snap.seq) + ",\n";
  out += "  \"sim_us\": " + std::to_string(snap.sim_us) + ",\n";
  out += "  \"cycle\": " + std::to_string(snap.cycle) + ",\n";
  out += std::string("  \"ready\": ") + (snap.ready() ? "true" : "false") +
         ",\n";
  out += "  \"status_line\": ";
  AppendJsonString(&out, snap.status_line);
  out += ",\n  \"rebuild\": {\"active\": ";
  out += snap.rebuild_active ? "true" : "false";
  out += ", \"disk\": " + std::to_string(snap.rebuild_disk);
  out += ", \"progress\": ";
  AppendDouble(&out, snap.rebuild_progress);
  out += "},\n  \"clusters\": [";
  for (size_t i = 0; i < snap.clusters.size(); ++i) {
    const auto& c = snap.clusters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"cluster\": " + std::to_string(c.cluster);
    out += ", \"util\": ";
    AppendDouble(&out, c.utilization);
    out += ", \"failed\": " + std::to_string(c.failed_disks);
    out += std::string(", \"rebuilding\": ") +
           (c.rebuilding ? "true" : "false") + "}";
  }
  out += snap.clusters.empty() ? "]" : "\n  ]";
  out += ",\n  \"slo_burn\": {";
  for (size_t i = 0; i < snap.slo_burn.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    AppendJsonString(&out, snap.slo_burn[i].first);
    out += ": ";
    AppendDouble(&out, snap.slo_burn[i].second);
  }
  out += snap.slo_burn.empty() ? "}" : "\n  }";
  out += ",\n  \"qos\": {\"active_breaches\": " +
         std::to_string(snap.active_breaches);
  out += ", \"hiccups_total\": " + std::to_string(snap.hiccups_total);
  out += ", \"worst_stream_hiccups\": " +
         std::to_string(snap.worst_stream_hiccups);
  out += ", \"journal_events\": " + std::to_string(snap.journal_total);
  out += ", \"journal_dropped\": " + std::to_string(snap.journal_dropped);
  out += "}";
  if (metrics != nullptr) {
    out += ",\n  \"metrics\": ";
    out += metrics->JsonObject("    ", "  ");
  }
  out += "\n}\n";
  return out;
}

}  // namespace

void TelemetryHub::Publish(int64_t sim_us) {
  auto snap = std::make_shared<TelemetrySnapshot>();
  snap->seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap->sim_us = sim_us;
  for (const StateProbe& probe : probes_) probe(snap.get());
  if (metrics_ != nullptr) {
    snap->metrics_prom = metrics_->PrometheusText();
  }
  if (timeseries_ != nullptr) {
    snap->timeseries_json = timeseries_->ToJson();
  }
  if (Profiler::GlobalEnabled()) {
    snap->profile_json = Profiler::SnapshotJson();
  }
  if (journal_ != nullptr) {
    snap->journal_tail = journal_->TailLines(
        kJournalTailMax, &snap->journal_total, &snap->journal_dropped);
  }
  snap->vars_json = RenderVarsJson(*snap, metrics_);
  const std::lock_guard<std::mutex> lock(latest_mu_);
  latest_ = std::move(snap);
}

std::shared_ptr<const TelemetrySnapshot> TelemetryHub::Latest() const {
  const std::lock_guard<std::mutex> lock(latest_mu_);
  return latest_;
}

StatusOr<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    const TelemetryHub* hub, const TelemetryServerOptions& options) {
  if (hub == nullptr) {
    return Status::InvalidArgument("telemetry server needs a hub");
  }
  auto server = std::unique_ptr<TelemetryServer>(new TelemetryServer());
  server->hub_ = hub;
  server->bind_address_ = options.bind_address;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable("telemetry: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("telemetry: bad bind address " +
                                   options.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("telemetry: bind to " +
                               options.bind_address + ":" +
                               std::to_string(options.port) +
                               " failed: " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("telemetry: listen failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->running_.store(true, std::memory_order_release);
  server->thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Wake the blocked accept(); the fd is closed only after the join so it
  // cannot be reused by another thread in between.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

std::string TelemetryServer::url() const {
  return "http://" + bind_address_ + ":" + std::to_string(port_);
}

void TelemetryServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // shutdown() from Stop() lands here; any other error also ends
      // the serving thread rather than spinning.
      break;
    }
    ServeOne(client);
    ::close(client);
  }
}

void TelemetryServer::ServeOne(int client_fd) {
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.size() < 16384) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
  }
  if (head.empty()) return;

  HttpResponse response;
  StatusOr<HttpRequest> request = ParseHttpRequestHead(head);
  if (!request.ok()) {
    response.status = 400;
    response.body = request.status().ToString() + "\n";
  } else {
    response = Handle(*request);
  }
  const std::string wire = SerializeHttpResponse(response);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(client_fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

HttpResponse TelemetryServer::Handle(const HttpRequest& request) const {
  HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "method not allowed\n";
    return response;
  }
  const std::shared_ptr<const TelemetrySnapshot> snap = hub_->Latest();

  if (request.path == "/metrics") {
    response.content_type = kPrometheusContentType;
    response.body = snap->metrics_prom;
  } else if (request.path == "/healthz") {
    // Liveness: the accept loop answered, so the process is healthy.
    response.body = "ok\n";
  } else if (request.path == "/readyz") {
    // Readiness degrades while a rebuild is in flight (the paper's
    // critical exposure window) or an SLO breach is active.
    if (snap->ready()) {
      response.body = "ready\n";
    } else {
      response.status = 503;
      response.body = "not ready: ";
      if (snap->rebuild_active) response.body += "rebuild in flight; ";
      if (snap->active_breaches > 0) {
        response.body +=
            std::to_string(snap->active_breaches) + " active breach(es); ";
      }
      response.body += "\n";
    }
  } else if (request.path == "/vars") {
    response.content_type = "application/json";
    response.body = snap->vars_json;
  } else if (request.path == "/timeseries") {
    response.content_type = "application/json";
    response.body = snap->timeseries_json.empty() ? "{}\n"
                                                  : snap->timeseries_json;
  } else if (request.path == "/profile") {
    response.content_type = "application/json";
    response.body =
        snap->profile_json.empty() ? "{}\n" : snap->profile_json;
  } else if (request.path == "/journal/tail") {
    size_t n = 32;
    if (const auto param = QueryParam(request, "n")) {
      char* end = nullptr;
      const long long v = std::strtoll(param->c_str(), &end, 10);
      if (param->empty() || end == nullptr || *end != '\0' || v < 0) {
        response.status = 400;
        response.body = "bad n: expected a non-negative integer\n";
        return response;
      }
      n = static_cast<size_t>(v);
    }
    const size_t have = snap->journal_tail.size();
    const size_t count = n < have ? n : have;
    response.content_type = "application/x-ndjson";
    for (size_t i = have - count; i < have; ++i) {
      response.body += snap->journal_tail[i];
      response.body += '\n';
    }
  } else {
    response.status = 404;
    response.body = "not found: " + request.path + "\n";
  }
  if (request.method == "HEAD") response.body.clear();
  return response;
}

}  // namespace ftms
