#include "telemetry/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace ftms {

namespace {

// %xx and '+' decoding for query values; invalid escapes pass through.
std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size() &&
               std::isxdigit(static_cast<unsigned char>(in[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      const char hex[3] = {in[i + 1], in[i + 2], '\0'};
      out.push_back(
          static_cast<char>(std::strtol(hex, nullptr, 16)));
      i += 2;
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

void ParseQuery(std::string_view query,
                std::vector<std::pair<std::string, std::string>>* out) {
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view()
                                          : query.substr(amp + 1);
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      out->emplace_back(UrlDecode(pair), "");
    } else {
      out->emplace_back(UrlDecode(pair.substr(0, eq)),
                        UrlDecode(pair.substr(eq + 1)));
    }
  }
}

}  // namespace

StatusOr<HttpRequest> ParseHttpRequestHead(std::string_view head) {
  const size_t eol = head.find("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? head : head.substr(0, eol);
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  const std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") {
    return Status::InvalidArgument("not an HTTP request");
  }

  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const size_t qmark = request.target.find('?');
  if (qmark == std::string::npos) {
    request.path = request.target;
  } else {
    request.path = request.target.substr(0, qmark);
    ParseQuery(std::string_view(request.target).substr(qmark + 1),
               &request.query);
  }
  return request;
}

std::optional<std::string> QueryParam(const HttpRequest& request,
                                      std::string_view key) {
  for (const auto& [k, v] : request.query) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string_view HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpStatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  if (response.status == 405) out += "\r\nAllow: GET, HEAD";
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

StatusOr<ParsedUrl> ParseHttpUrl(const std::string& url) {
  constexpr std::string_view kScheme = "http://";
  if (url.substr(0, kScheme.size()) != kScheme) {
    return Status::InvalidArgument("only http:// URLs are supported: " +
                                   url);
  }
  const std::string rest = url.substr(kScheme.size());
  const size_t slash = rest.find('/');
  const std::string authority =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  ParsedUrl parsed;
  parsed.target = slash == std::string::npos ? "/" : rest.substr(slash);
  const size_t colon = authority.rfind(':');
  if (colon == std::string::npos) {
    parsed.host = authority;
  } else {
    parsed.host = authority.substr(0, colon);
    parsed.port = std::atoi(authority.c_str() + colon + 1);
  }
  if (parsed.host.empty() || parsed.port <= 0 || parsed.port > 65535) {
    return Status::InvalidArgument("malformed http URL authority: " + url);
  }
  return parsed;
}

StatusOr<HttpResponse> HttpGet(const std::string& url, int timeout_ms) {
  StatusOr<ParsedUrl> parsed = ParseHttpUrl(url);
  if (!parsed.ok()) return parsed.status();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket(): out of descriptors");

  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(parsed->port));
  const std::string host =
      parsed->host == "localhost" ? "127.0.0.1" : parsed->host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        "telemetry client resolves numeric IPv4 hosts only: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::Unavailable("connect to " + url + " failed: " +
                               std::strerror(errno));
  }

  std::string request = "GET " + parsed->target + " HTTP/1.1\r\nHost: " +
                        parsed->host + "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::Unavailable("send to " + url + " failed");
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return Status::Unavailable("recv from " + url + " failed: " +
                                 std::strerror(errno));
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.substr(0, 5) != "HTTP/") {
    return Status::Unavailable("malformed HTTP response from " + url);
  }
  HttpResponse response;
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > head_end) {
    return Status::Unavailable("malformed HTTP status line from " + url);
  }
  response.status = std::atoi(raw.c_str() + sp + 1);
  // Pull Content-Type out of the head; other headers are irrelevant here.
  const std::string head = raw.substr(0, head_end);
  size_t pos = 0;
  while ((pos = head.find("\r\n", pos)) != std::string::npos) {
    pos += 2;
    constexpr std::string_view kKey = "Content-Type:";
    if (head.compare(pos, kKey.size(), kKey) == 0) {
      size_t start = pos + kKey.size();
      while (start < head.size() && head[start] == ' ') ++start;
      const size_t end = head.find("\r\n", start);
      response.content_type = head.substr(
          start,
          (end == std::string::npos ? head.size() : end) - start);
    }
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace ftms
