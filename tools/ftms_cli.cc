// ftms — command-line front end to the library.
//
//   ftms tables [C]                      regenerate the paper's comparison
//                                        table for parity group size C
//   ftms plan <W_gb> <streams>           size the cheapest system (Section
//        [disk_$/MB] [mem_$/MB]          5's design study)
//   ftms simulate <scheme> <C> <D>       run the cycle simulation with a
//        <streams> <cycles>              failure drill at mid-run
//        [fail_disk]
//   ftms reliability <D> <C> [K]         closed-form + exact reliability,
//                                        plus the dual-parity (P+Q) MTTF
//                                        with a Monte-Carlo cross-check
//                                        and the cost-per-stream crossover
//                                        of the second parity disk
//   ftms qos <scheme> [C] [D]            failure + rebuild drill with the
//        [--json] [--journal-out FILE]   per-stream QoS ledger, SLO table
//                                        and model-conformance watchdog;
//                                        exits 1 on a bound violation.
//                                        Dual-parity schemes drill a
//                                        DOUBLE failure (two disks of one
//                                        cluster) and rebuild both.
//   ftms report <journal.jsonl>          unified run report from a
//        [--metrics BENCH.json]          recorded journal plus optional
//        [--timeseries ts.json]          bench/profile and time-series
//        [--md|--json]                   artifacts; exits 1 on malformed
//                                        inputs.
//   ftms top <url> [--once] [--json]     live ANSI dashboard over a
//        [--interval-ms N] [--frames N]  running drill's telemetry
//                                        endpoint (FTMS_TELEMETRY_PORT);
//                                        --once --json dumps /vars for
//                                        scripting.
//
// Schemes: sr | sg | nc | ib | sr2 | nc2.
//
// Telemetry environment knobs (see README "Live telemetry"):
//   FTMS_TELEMETRY_PORT        enable the exporter (0 = ephemeral port)
//   FTMS_TELEMETRY_PORT_FILE   write the bound port here (for scripts)
//   FTMS_TELEMETRY_CYCLE_DELAY_MS  slow the drill for live observation
//   FTMS_TELEMETRY_LINGER_MS   keep serving after the drill completes

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "model/cost.h"
#include "model/reliability_model.h"
#include "model/tables.h"
#include "qos/conformance.h"
#include "qos/event_journal.h"
#include "qos/qos_ledger.h"
#include "qos/run_report.h"
#include "reliability/birth_death.h"
#include "reliability/markov_sim.h"
#include "server/server.h"
#include "telemetry/top.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/timeseries.h"
#include "util/units.h"

namespace ftms {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ftms tables [C]\n"
      "  ftms plan <W_gb> <streams> [disk_$/MB] [mem_$/MB]\n"
      "  ftms simulate <sr|sg|nc|ib|sr2|nc2> <C> <D> <streams> <cycles> "
      "[fail_disk]\n"
      "  ftms reliability <D> <C> [K]\n"
      "  ftms qos <sr|sg|nc|ib|sr2|nc2> [C] [D] [--json] "
      "[--journal-out FILE]\n"
      "  ftms report <journal.jsonl> [--metrics BENCH.json] "
      "[--timeseries ts.json] [--md|--json]\n"
      "  ftms top <url> [--once] [--json] [--interval-ms N] "
      "[--frames N]\n");
  return 2;
}

Scheme ParseScheme(const char* arg) {
  if (std::strcmp(arg, "sg") == 0) return Scheme::kStaggeredGroup;
  if (std::strcmp(arg, "nc") == 0) return Scheme::kNonClustered;
  if (std::strcmp(arg, "ib") == 0) return Scheme::kImprovedBandwidth;
  if (std::strcmp(arg, "sr2") == 0) return Scheme::kStreamingRaid2;
  if (std::strcmp(arg, "nc2") == 0) return Scheme::kNonClustered2;
  return Scheme::kStreamingRaid;
}

int CmdTables(int argc, char** argv) {
  const int c = argc > 2 ? std::atoi(argv[2]) : 5;
  SystemParameters params;
  auto rows = ComputeComparisonTable(params, c);
  if (!rows.ok()) {
    std::fprintf(stderr, "error: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("Scheme comparison at C = %d (Table 1 parameters):\n%s", c,
              FormatComparisonTable(*rows).c_str());
  return 0;
}

int CmdPlan(int argc, char** argv) {
  if (argc < 4) return Usage();
  DesignParameters design;
  design.working_set_mb = std::atof(argv[2]) * 1000.0;
  PlanRequest request;
  request.required_streams = std::atof(argv[3]);
  if (argc > 4) design.disk_cost_per_mb = std::atof(argv[4]);
  if (argc > 5) design.memory_cost_per_mb = std::atof(argv[5]);
  SystemParameters params;
  params.k_reserve = 5;
  const auto plans = PlanAllSchemes(design, params, request);
  if (plans.empty()) {
    std::printf("no feasible design for %.0f streams over %.0f GB\n",
                request.required_streams, design.working_set_mb / 1000);
    return 1;
  }
  std::printf("%-22s %4s %6s %9s %10s %12s\n", "Scheme", "C", "disks",
              "streams", "RAM (MB)", "cost ($)");
  for (const DesignPoint& p : plans) {
    std::printf("%-22s %4d %6d %9d %10.0f %12.0f\n",
                std::string(SchemeName(p.scheme)).c_str(),
                p.parity_group_size, p.num_disks, p.max_streams,
                p.buffer_mb, p.cost_dollars);
  }
  std::printf("-> %s\n",
              std::string(SchemeName(plans.front().scheme)).c_str());
  return 0;
}

int CmdSimulate(int argc, char** argv) {
  if (argc < 7) return Usage();
  ServerConfig config;
  config.scheme = ParseScheme(argv[2]);
  config.parity_group_size = std::atoi(argv[3]);
  config.params.num_disks = std::atoi(argv[4]);
  const int streams = std::atoi(argv[5]);
  const int cycles = std::atoi(argv[6]);
  const int fail_disk = argc > 7 ? std::atoi(argv[7]) : -1;
  config.params.k_reserve =
      std::min(3, config.params.num_disks - 1);

  auto server_or = MultimediaServer::Create(config);
  if (!server_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(*server_or);
  // One object per cluster so the load spreads across the farm, and
  // staggered admission so SG/NC positions spread across read phases.
  const int num_objects = server->layout().num_clusters();
  for (int i = 0; i < num_objects; ++i) {
    MediaObject obj;
    obj.id = i;
    obj.rate_mb_s = config.params.object_rate_mb_s;
    obj.num_tracks = static_cast<int64_t>(cycles) *
                     (config.parity_group_size - 1) * 4;
    if (Status s = server->AddObject(obj); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const int stagger = server->scheduler().slots_per_disk();
  for (int i = 0; i < streams; ++i) {
    if (!server->StartStream(i % num_objects).ok()) {
      std::fprintf(stderr,
                   "admission stopped at %d streams (capacity %d)\n", i,
                   server->admission().capacity());
      break;
    }
    if (stagger > 0 && i % stagger == stagger - 1) server->RunCycles(1);
  }
  server->RunCycles(cycles / 2);
  if (fail_disk >= 0) {
    if (Status s = server->FailDisk(fail_disk); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("disk %d failed at cycle %lld\n", fail_disk,
                static_cast<long long>(server->cycle()));
  }
  server->RunCycles(cycles - cycles / 2);
  std::printf("%s\n", server->Summary().c_str());
  const SchedulerMetrics& m = server->scheduler().metrics();
  std::printf(
      "reads: %lld data + %lld parity, %lld failed, %lld dropped\n"
      "delivery: %lld on time, %lld hiccups, %lld reconstructed\n"
      "buffers: peak %lld tracks (%.1f MB)\n",
      static_cast<long long>(m.data_reads),
      static_cast<long long>(m.parity_reads),
      static_cast<long long>(m.failed_reads),
      static_cast<long long>(m.dropped_reads),
      static_cast<long long>(m.tracks_delivered),
      static_cast<long long>(m.hiccups),
      static_cast<long long>(m.reconstructed),
      static_cast<long long>(
          server->scheduler().buffer_pool().peak_in_use()),
      static_cast<double>(server->scheduler().buffer_pool().peak_in_use()) *
          config.params.disk.track_mb);
  return 0;
}

const char* StreamStateName(StreamState state) {
  switch (state) {
    case StreamState::kActive:
      return "active";
    case StreamState::kPaused:
      return "paused";
    case StreamState::kCompleted:
      return "completed";
    case StreamState::kTerminated:
      return "terminated";
  }
  return "unknown";
}

// Failure + rebuild drill observed end-to-end through the QoS subsystem:
// per-stream hiccup attribution, SLO budget burn, and the conformance
// watchdog's verdict on the paper's loss bounds.
int CmdQos(int argc, char** argv) {
  if (argc < 3) return Usage();
  bool json = false;
  std::string journal_out;
  int positional[2] = {5, 0};  // C, D
  int npos = 0;
  Scheme scheme = ParseScheme(argv[2]);
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--journal-out") == 0 &&
               i + 1 < argc) {
      journal_out = argv[++i];
    } else if (npos < 2) {
      positional[npos++] = std::atoi(argv[i]);
    }
  }
  const int c = positional[0];
  EventJournal journal;
  QosLedger ledger;
  ledger.set_journal(&journal);

  ServerConfig config;
  config.scheme = scheme;
  config.parity_group_size = c;
  config.params.num_disks =
      positional[1] > 0
          ? positional[1]
          : (scheme == Scheme::kImprovedBandwidth ? 2 * (c - 1) : 2 * c);
  config.params.k_reserve = std::min(3, config.params.num_disks - 1);
  // Tiny disks keep the rebuild phase to a handful of cycles.
  config.params.disk.capacity_mb = 2.5;
  config.journal = &journal;
  config.ledger = &ledger;

  auto server_or = MultimediaServer::Create(config);
  if (!server_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(*server_or);

  // With FTMS_TELEMETRY_PORT set the drill is live-observable; announce
  // the bound port (and write it to FTMS_TELEMETRY_PORT_FILE for
  // scripts racing against an ephemeral port 0).
  if (const TelemetryServer* telemetry = server->telemetry_server()) {
    std::fprintf(stderr, "telemetry: serving %s\n",
                 telemetry->url().c_str());
    if (const char* port_file = std::getenv("FTMS_TELEMETRY_PORT_FILE");
        port_file != nullptr && port_file[0] != '\0') {
      if (std::FILE* f = std::fopen(port_file, "w")) {
        std::fprintf(f, "%d\n", telemetry->port());
        std::fclose(f);
      }
    }
  }
  // FTMS_TELEMETRY_CYCLE_DELAY_MS slows the drill to human/scraper speed.
  const char* delay_env = std::getenv("FTMS_TELEMETRY_CYCLE_DELAY_MS");
  const int cycle_delay_ms = delay_env != nullptr ? std::atoi(delay_env) : 0;
  const auto run_cycles = [&](int n) {
    for (int i = 0; i < n; ++i) {
      server->RunCycles(1);
      if (cycle_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cycle_delay_ms));
      }
    }
  };

  const int num_objects = server->layout().num_clusters();
  for (int i = 0; i < num_objects; ++i) {
    MediaObject obj;
    obj.id = i;
    obj.rate_mb_s = config.params.object_rate_mb_s;
    obj.num_tracks = 24;
    if (Status s = server->AddObject(obj); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  // Two staggered streams per cluster, so the failure lands on streams at
  // different group positions.
  for (int i = 0; i < 2 * num_objects; ++i) {
    if (!server->StartStream(i % num_objects).ok()) break;
    run_cycles(1);
  }
  run_cycles(4);
  // Dual-parity schemes drill their full tolerance: TWO disks of cluster 0
  // go down concurrently and both are rebuilt (the second rebuild starts
  // while the cluster still runs on P+Q-repaired reads).
  const int fail_count = IsDualParity(scheme) ? 2 : 1;
  for (int fail_disk = 0; fail_disk < fail_count; ++fail_disk) {
    if (Status s = server->FailDisk(fail_disk, /*mid_cycle=*/true);
        !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    run_cycles(1);
  }
  run_cycles(c);  // degraded operation across the transition window
  for (int fail_disk = 0; fail_disk < fail_count; ++fail_disk) {
    if (Status s = server->StartRebuild(fail_disk); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    for (int i = 0; i < 200 && server->rebuild().Active(); ++i) {
      run_cycles(1);
    }
  }
  run_cycles(4);  // settle after the repair

  ConformanceWatchdog watchdog(&server->scheduler(), &journal);
  const auto findings = watchdog.Run();
  const auto& streams = server->scheduler().streams();

  if (json) {
    std::string out = "{\n  \"status_line\": \"";
    out += server->StatusLine();
    out += "\",\n  \"ledger\": ";
    out += ledger.DumpJson(streams, "  ");
    out += ",\n  \"conformance\": ";
    out += ConformanceWatchdog::ToJson(findings, "    ");
    out += ",\n  \"qos\": ";
    out += journal.StatsJson("    ", "  ");
    // Active per-SLO budget burn, so dashboards get the live burn rate
    // without re-deriving it from the ledger block.
    out += ",\n  \"slo_burn\": {";
    const auto statuses = ledger.Evaluate(streams);
    for (size_t i = 0; i < statuses.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    \"" + statuses[i].spec.name + "\": ";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", statuses[i].budget_burn);
      out += buf;
    }
    out += statuses.empty() ? "}" : "\n  }";
    out += ",\n  \"active_breaches\": " +
           std::to_string(ledger.active_breaches());
    out += "\n}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("%s\n\n", server->StatusLine().c_str());
    std::printf("%-6s %-10s %8s %8s %9s %8s %9s %11s\n", "stream", "state",
                "admit", "startup", "delivered", "hiccups", "degraded",
                "continuity");
    for (const StreamQosRecord& r : ledger.Capture(streams)) {
      std::printf("%-6d %-10s %8lld %8lld %9lld %8lld %9lld %11.4f\n",
                  r.id, StreamStateName(r.state),
                  static_cast<long long>(r.admitted_cycle),
                  static_cast<long long>(r.startup_cycles),
                  static_cast<long long>(r.delivered),
                  static_cast<long long>(r.hiccups),
                  static_cast<long long>(r.degraded_cycles), r.continuity);
    }
    std::printf("\n%-32s %10s %10s %12s %9s\n", "slo", "observed", "bound",
                "budget_burn", "breached");
    for (const SloStatus& s : ledger.Evaluate(streams)) {
      std::printf("%-32s %10.4g %10.4g %12.4g %9s\n", s.spec.name.c_str(),
                  s.observed, s.effective_bound, s.budget_burn,
                  s.breached ? "YES" : "no");
    }
    std::printf("\n%s", ConformanceWatchdog::FormatTable(findings).c_str());
    std::printf("\njournal: %zu events (rebuild done in %lld cycles)\n",
                journal.size(),
                static_cast<long long>(server->rebuild().cycles_elapsed()));
  }

  if (!journal_out.empty()) {
    if (Status s = journal.WriteJsonl(journal_out); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", journal_out.c_str());
  }
  if (const char* out = std::getenv("FTMS_QOS_OUT")) {
    if (out[0] != '\0' && journal.WriteJsonl(out).ok()) {
      std::fprintf(stderr, "wrote %s\n", out);
    }
  }
  // Final snapshot at the last serial point, BEFORE the registry dump:
  // a post-run scrape of /metrics is byte-identical to FTMS_METRICS_OUT.
  server->PublishTelemetry();
  if (MetricsRegistry* registry = MetricsRegistry::GlobalIfEnabled()) {
    if (const char* out = std::getenv("FTMS_METRICS_OUT")) {
      if (out[0] != '\0' && registry->WritePrometheusFile(out).ok()) {
        std::fprintf(stderr, "wrote %s\n", out);
      }
    }
  }
  if (TimeSeriesRecorder* ts = TimeSeriesRecorder::GlobalIfEnabled()) {
    if (const char* out = std::getenv("FTMS_TIMESERIES_OUT")) {
      if (out[0] != '\0' && ts->WriteJson(out).ok()) {
        std::fprintf(stderr, "wrote %s\n", out);
      }
    }
    if (const char* out = std::getenv("FTMS_TIMESERIES_CSV")) {
      if (out[0] != '\0' && ts->WriteCsv(out).ok()) {
        std::fprintf(stderr, "wrote %s\n", out);
      }
    }
  }
  if (Profiler::GlobalEnabled()) {
    Profiler::FoldAtSyncPoint();
    if (const char* out = std::getenv("FTMS_PROF_OUT")) {
      if (out[0] != '\0' && Profiler::WriteJson(out).ok()) {
        std::fprintf(stderr, "wrote %s\n", out);
      }
    }
  }
  // FTMS_TELEMETRY_LINGER_MS keeps the exporter serving the final
  // snapshot after the drill, so scripts can scrape the settled state.
  if (server->telemetry_server() != nullptr) {
    if (const char* linger = std::getenv("FTMS_TELEMETRY_LINGER_MS");
        linger != nullptr && std::atoi(linger) > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::atoi(linger)));
    }
  }
  if (!ConformanceWatchdog::AllOk(findings)) {
    std::fprintf(stderr, "conformance: VIOLATION of a paper bound\n");
    return 1;
  }
  return 0;
}

// `ftms top <url>`: live dashboard over a drill's telemetry endpoint.
int CmdTop(int argc, char** argv) {
  if (argc < 3) return Usage();
  TopOptions options;
  options.url = argv[2];
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      options.once = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(argv[i], "--no-color") == 0) {
      options.color = false;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 &&
               i + 1 < argc) {
      options.interval_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      options.max_frames = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }
  // Trim a trailing slash so endpoint concatenation stays clean.
  if (!options.url.empty() && options.url.back() == '/') {
    options.url.pop_back();
  }
  return RunTop(options);
}

// Renders a recorded run (journal JSONL + optional bench/profile and
// time-series artifacts) as one report. Strict on inputs: any unreadable
// or malformed file exits 1.
int CmdReport(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string journal_path = argv[2];
  std::string metrics_path;
  std::string timeseries_path;
  bool as_json = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeseries") == 0 && i + 1 < argc) {
      timeseries_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--md") == 0) {
      as_json = false;
    } else {
      return Usage();
    }
  }
  const auto report =
      LoadRunReport(journal_path, metrics_path, timeseries_path);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const std::string out = as_json ? RenderRunReportJson(*report)
                                  : RenderRunReportMarkdown(*report);
  std::fputs(out.c_str(), stdout);
  return 0;
}

int CmdReliability(int argc, char** argv) {
  if (argc < 4) return Usage();
  SystemParameters params;
  params.num_disks = std::atoi(argv[2]);
  const int c = std::atoi(argv[3]);
  params.k_reserve = argc > 4 ? std::atoi(argv[4]) : 3;
  std::printf("D = %d, C = %d, K = %d, MTTF = %.0f h, MTTR = %.0f h\n",
              params.num_disks, c, params.k_reserve,
              params.disk.mttf_hours, params.disk.mttr_hours);
  for (Scheme scheme : kAllSchemes) {
    auto mttf = MttfCatastrophicHours(params, scheme, c);
    auto mttds = MttdsHours(params, scheme, c);
    if (!mttf.ok() || !mttds.ok()) continue;
    std::printf("%-22s MTTF %12.1f years   MTTDS %14.1f years\n",
                std::string(SchemeName(scheme)).c_str(),
                HoursToYears(*mttf), HoursToYears(*mttds));
  }
  const auto exact = ExactKConcurrentMeanHours(
      params.disk.mttf_hours, params.disk.mttr_hours, params.num_disks,
      params.k_reserve);
  if (exact.ok()) {
    std::printf(
        "exact birth-death K-concurrent hitting time: %.1f years\n"
        "(the paper's equation (6) omits a (K-1)! factor)\n",
        HoursToYears(*exact));
  }

  if (c < 3) return 0;
  std::printf("\ndual parity (P+Q, two parity disks per cluster):\n");
  for (Scheme scheme : kDualParitySchemes) {
    auto mttf = MttfCatastrophicHours(params, scheme, c);
    auto mttds = MttdsHours(params, scheme, c);
    if (!mttf.ok() || !mttds.ok()) continue;
    std::printf("%-22s MTTF %12.4g years   MTTDS %14.1f years\n",
                std::string(SchemeName(scheme)).c_str(),
                HoursToYears(*mttf), HoursToYears(*mttds));
  }

  // Monte-Carlo cross-check of the double-failure MTTDL at a scaled-down
  // MTTF/MTTR ratio (real parameters make three-in-a-cluster events take
  // geological time; the formula is scale-free in the ratio).
  if (params.num_disks % c == 0) {
    ReliabilitySimConfig sim;
    sim.num_disks = params.num_disks;
    sim.parity_group_size = c;
    sim.scheme = Scheme::kStreamingRaid2;
    sim.mttf_hours = 1000.0;
    sim.mttr_hours = 10.0;
    sim.trials = 200;
    SystemParameters scaled = params;
    scaled.disk.mttf_hours = sim.mttf_hours;
    scaled.disk.mttr_hours = sim.mttr_hours;
    const auto mc = EstimateMttfCatastrophic(sim);
    const auto cf =
        MttfCatastrophicHours(scaled, Scheme::kStreamingRaid2, c);
    if (mc.ok() && cf.ok()) {
      std::printf(
          "double-failure MTTDL Monte-Carlo (scaled MTTF/MTTR %.0f/%.0f "
          "h): %.0f h +/- %.0f vs closed form %.0f h\n",
          sim.mttf_hours, sim.mttr_hours, mc->mean_hours, mc->ci95_hours,
          *cf);
    }
  }

  // When does the second parity disk pay for itself? Compare cost per
  // stream (Section 5 sizing at the working set below) for the base
  // scheme at C against its dual-parity variant at growing group sizes:
  // the crossover C' is where widening the group has absorbed the extra
  // parity disk's capacity and buffer cost.
  DesignParameters design;
  for (Scheme dual : kDualParitySchemes) {
    const Scheme base = BaseScheme(dual);
    const auto base_pt = EvaluateDesign(design, params, base, c);
    if (!base_pt.ok() || base_pt->max_streams <= 0) continue;
    const double base_cps =
        base_pt->cost_dollars / base_pt->max_streams;
    std::printf("%-22s $/stream %8.0f at C=%d\n",
                std::string(SchemeName(base)).c_str(), base_cps, c);
    int crossover = -1;
    double dual_cps_at_c = 0;
    for (int cd = c; cd <= c + 12; ++cd) {
      const auto dual_pt = EvaluateDesign(design, params, dual, cd);
      if (!dual_pt.ok() || dual_pt->max_streams <= 0) continue;
      const double cps = dual_pt->cost_dollars / dual_pt->max_streams;
      if (cd == c) dual_cps_at_c = cps;
      if (cps <= base_cps) {
        crossover = cd;
        break;
      }
    }
    if (crossover >= 0) {
      std::printf(
          "%-22s $/stream %8.0f at C=%d; crosses below %s at C'=%d\n",
          std::string(SchemeName(dual)).c_str(), dual_cps_at_c, c,
          std::string(SchemeAbbrev(base)).c_str(), crossover);
    } else {
      std::printf(
          "%-22s $/stream %8.0f at C=%d; no crossover up to C'=%d\n",
          std::string(SchemeName(dual)).c_str(), dual_cps_at_c, c,
          c + 12);
    }
  }
  return 0;
}

}  // namespace
}  // namespace ftms

int main(int argc, char** argv) {
  using namespace ftms;
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "tables") == 0) return CmdTables(argc, argv);
  if (std::strcmp(argv[1], "plan") == 0) return CmdPlan(argc, argv);
  if (std::strcmp(argv[1], "simulate") == 0) {
    return CmdSimulate(argc, argv);
  }
  if (std::strcmp(argv[1], "reliability") == 0) {
    return CmdReliability(argc, argv);
  }
  if (std::strcmp(argv[1], "qos") == 0) return CmdQos(argc, argv);
  if (std::strcmp(argv[1], "report") == 0) return CmdReport(argc, argv);
  if (std::strcmp(argv[1], "top") == 0) return CmdTop(argc, argv);
  return Usage();
}
