#!/usr/bin/env python3
"""Summarize and validate FTMS observability artifacts: Chrome trace
JSON, Prometheus text, and the QoS event journal (JSONL).

Usage:
    tools/trace_summary.py TRACE.json             # per-category totals
    tools/trace_summary.py TRACE.json --check     # validate, exit nonzero
    tools/trace_summary.py TRACE.json --check --prom METRICS.prom
    tools/trace_summary.py --journal JOURNAL.jsonl   # validate + per-kind
                                                     # counts (trace optional)
    tools/trace_summary.py --timeseries TS.json      # validate a
                                                     # FTMS_TIMESERIES_OUT dump
    tools/trace_summary.py --scrape FILE             # validate a telemetry
                                                     # scrape (/metrics or /vars)

Summary mode prints, per event category ("phase" of the run: sched,
failure, rebuild, ...), the span count, total simulated microseconds, and
instant-event count, plus per-track totals.

--check validates:
  * the file is well-formed JSON with a traceEvents list;
  * every event has the required fields (name, ph, ts, tid; dur on 'X');
  * timestamps and durations are non-negative numbers;
  * per tid, complete spans nest monotonically: sorted by start time,
    each span either starts at-or-after the previous one ends, or lies
    entirely within it (no partial overlap).

--prom FILE additionally validates Prometheus exposition text: every
non-comment line is `name{labels} value` (or `name value`) with a finite
numeric value, and every sample's family has a preceding # TYPE line.

--journal FILE validates a QoS event journal (one JSON object per line,
as written by EventJournal::WriteJsonl / FTMS_QOS_OUT):
  * every line parses as a JSON object with exactly the fields
    kind/scheme/sim_us/cycle/disk/cluster/stream/value;
  * kind is one of the known semantic event kinds and scheme is one of
    SR/SG/NC/IB (dual-parity SR2/NC2, and "sim" for the ring-cap
    journal_dropped footer);
  * sim_us never runs backwards within a scheme's run — a decrease is
    only allowed together with a cycle reset (a fresh rig reusing the
    journal), never mid-run.
It then prints per-kind event counts.

--timeseries FILE validates a time-series dump (as written by
TimeSeriesRecorder::WriteJson / FTMS_TIMESERIES_OUT):
  * the top level is an object with a "series" object;
  * every series has an integer stride >= 1 and t/v arrays of equal
    length;
  * timestamps are strictly increasing integers and values are finite.
It then prints per-series point counts.

--scrape FILE validates a saved scrape from the live telemetry exporter,
auto-detecting the document type: a body starting with '{' is checked as
a /vars JSON document (schema tag, required blocks, finite numbers in the
metrics object); anything else is checked as Prometheus exposition text
exactly like --prom.

Exit status: 0 = ok, 1 = validation failure, 2 = usage / file error.
"""

import argparse
import json
import math
import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|NaN|[+-]?Inf)$"
)


def fail(msg):
    print(f"trace_summary: {msg}", file=sys.stderr)
    return False


def check_events(events):
    ok = True
    spans_by_tid = defaultdict(list)
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            ok = fail(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            ok = fail(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata (thread_name) records
        for field in ("name", "ts", "tid"):
            if field not in ev:
                ok = fail(f"event {i} ({ev.get('name')!r}): missing {field!r}")
        ts = ev.get("ts", 0)
        if not isinstance(ts, (int, float)) or ts < 0:
            ok = fail(f"event {i} ({ev.get('name')!r}): bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                ok = fail(f"event {i} ({ev.get('name')!r}): bad dur {dur!r}")
            else:
                spans_by_tid[ev.get("tid")].append((ts, ts + dur, i))
    # Monotone nesting per track: with spans sorted by start, each one
    # either follows the previous span or nests fully inside an open one.
    for tid, spans in spans_by_tid.items():
        spans.sort()
        stack = []  # end times of open enclosing spans
        for start, end, idx in spans:
            while stack and start >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1]:
                ok = fail(
                    f"tid {tid}: span at event {idx} "
                    f"[{start}, {end}) partially overlaps an enclosing "
                    f"span ending at {stack[-1]}"
                )
                continue
            stack.append(end)
    return ok


# Wire names from QosEventKindName (src/qos/event_journal.cc); the JSONL
# format pins these, so an unknown kind means writer/validator skew.
JOURNAL_KINDS = {
    "disk_failed",
    "disk_repaired",
    "degraded_transition_start",
    "degraded_transition_end",
    "rebuild_start",
    "rebuild_progress",
    "rebuild_done",
    "hiccups",
    "admission_rejected",
    "slo_breach",
    "sim_horizon",
    # Ring-cap truncation footer appended by EventJournal::WriteJsonl.
    "journal_dropped",
}
JOURNAL_FIELDS = (
    "kind", "scheme", "sim_us", "cycle", "disk", "cluster", "stream", "value"
)
JOURNAL_SCHEMES = {"SR", "SG", "NC", "IB", "SR2", "NC2", "sim"}


def check_journal(path):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as err:
        print(f"trace_summary: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    ok = True
    counts = defaultdict(int)
    # Per scheme: (sim_us, cycle) of the last event, for monotonicity.
    last = {}
    events = 0
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as err:
            ok = fail(f"{path}:{lineno}: not JSON: {err}")
            continue
        if not isinstance(ev, dict):
            ok = fail(f"{path}:{lineno}: not a JSON object")
            continue
        events += 1
        missing = [f for f in JOURNAL_FIELDS if f not in ev]
        extra = sorted(set(ev) - set(JOURNAL_FIELDS))
        if missing:
            ok = fail(f"{path}:{lineno}: missing field(s) {missing}")
        if extra:
            ok = fail(f"{path}:{lineno}: unexpected field(s) {extra}")
        kind = ev.get("kind")
        if kind not in JOURNAL_KINDS:
            ok = fail(f"{path}:{lineno}: unknown kind {kind!r}")
        else:
            counts[kind] += 1
        scheme = ev.get("scheme")
        if scheme not in JOURNAL_SCHEMES:
            ok = fail(f"{path}:{lineno}: unknown scheme {scheme!r}")
            continue
        for field in ("sim_us", "cycle", "disk", "cluster", "stream",
                      "value"):
            v = ev.get(field)
            if not isinstance(v, int):
                ok = fail(
                    f"{path}:{lineno}: field {field!r} is {v!r}, "
                    f"expected an integer"
                )
        sim_us, cycle = ev.get("sim_us"), ev.get("cycle")
        if isinstance(sim_us, int) and isinstance(cycle, int):
            prev = last.get(scheme)
            # sim_us may only run backwards at a block boundary, where the
            # cycle counter resets too (a fresh rig appending to the same
            # journal); mid-run it must be monotone.
            if prev is not None and sim_us < prev[0] and cycle >= prev[1]:
                ok = fail(
                    f"{path}:{lineno}: sim_us runs backwards "
                    f"({prev[0]} -> {sim_us}) within a {scheme} run "
                    f"(cycle {prev[1]} -> {cycle})"
                )
            last[scheme] = (sim_us, cycle)
    if events == 0:
        ok = fail(f"{path}: no events")
    if ok:
        print(f"{path}: {events} events ok")
        for kind in sorted(counts):
            print(f"  {kind:<26} {counts[kind]:>8}")
    return ok


def check_timeseries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_summary: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    ok = True
    series = doc.get("series") if isinstance(doc, dict) else None
    if not isinstance(series, dict):
        return fail(f"{path}: no 'series' object")
    for name, s in series.items():
        if not isinstance(s, dict):
            ok = fail(f"{path}: series {name!r} is not an object")
            continue
        stride = s.get("stride")
        if not isinstance(stride, int) or stride < 1:
            ok = fail(f"{path}: series {name!r}: bad stride {stride!r}")
        t, v = s.get("t"), s.get("v")
        if not isinstance(t, list) or not isinstance(v, list):
            ok = fail(f"{path}: series {name!r}: t/v are not arrays")
            continue
        if len(t) != len(v):
            ok = fail(
                f"{path}: series {name!r}: {len(t)} timestamps vs "
                f"{len(v)} values"
            )
        for i, ts in enumerate(t):
            if not isinstance(ts, int):
                ok = fail(f"{path}: series {name!r}: t[{i}] = {ts!r} is "
                          f"not an integer")
            elif i > 0 and isinstance(t[i - 1], int) and ts <= t[i - 1]:
                ok = fail(
                    f"{path}: series {name!r}: t[{i}] = {ts} does not "
                    f"increase (prev {t[i - 1]})"
                )
        for i, val in enumerate(v):
            if not isinstance(val, (int, float)) or isinstance(val, bool) \
                    or math.isnan(val) or math.isinf(val):
                ok = fail(f"{path}: series {name!r}: v[{i}] = {val!r} is "
                          f"not a finite number")
    if not series:
        ok = fail(f"{path}: empty series object")
    if ok:
        print(f"{path}: {len(series)} series ok")
        for name in sorted(series):
            print(f"  {name:<36} {len(series[name].get('t', [])):>8} points"
                  f"  (stride {series[name].get('stride')})")
    return ok


def check_prometheus(path):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as err:
        print(f"trace_summary: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    ok = True
    typed = set()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) >= 4:
                typed.add(parts[2])
            else:
                ok = fail(f"{path}:{lineno}: malformed # TYPE line")
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            ok = fail(f"{path}:{lineno}: unparseable sample: {line!r}")
            continue
        samples += 1
        try:
            value = float(m.group(3))
        except ValueError:
            ok = fail(f"{path}:{lineno}: bad value {m.group(3)!r}")
            continue
        if math.isnan(value) or math.isinf(value):
            ok = fail(f"{path}:{lineno}: non-finite value {value}")
        name = m.group(1)
        # A histogram sample's family drops the _bucket/_sum/_count suffix.
        family_candidates = {name}
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                family_candidates.add(name[: -len(suffix)])
        if not family_candidates & typed:
            ok = fail(f"{path}:{lineno}: sample {name!r} has no # TYPE")
    if samples == 0:
        ok = fail(f"{path}: no samples")
    if ok:
        print(f"{path}: {samples} samples ok")
    return ok


VARS_SCHEMA = "ftms.telemetry.vars.v1"
# Top-level blocks every /vars document carries ("metrics" is optional:
# it only appears when a registry is attached).
VARS_REQUIRED = ("schema", "seq", "sim_us", "cycle", "ready", "status_line",
                 "rebuild", "clusters", "slo_burn", "qos")


def check_vars(path, doc):
    ok = True
    missing = [k for k in VARS_REQUIRED if k not in doc]
    if missing:
        ok = fail(f"{path}: missing key(s) {missing}")
    if doc.get("schema") != VARS_SCHEMA:
        ok = fail(f"{path}: schema is {doc.get('schema')!r}, "
                  f"expected {VARS_SCHEMA!r}")
    for key in ("seq", "sim_us", "cycle"):
        if key in doc and not isinstance(doc[key], int):
            ok = fail(f"{path}: {key!r} is {doc[key]!r}, expected an integer")
    if "ready" in doc and not isinstance(doc["ready"], bool):
        ok = fail(f"{path}: 'ready' is {doc['ready']!r}, expected a bool")
    rebuild = doc.get("rebuild")
    if rebuild is not None and (
            not isinstance(rebuild, dict)
            or not {"active", "disk", "progress"} <= set(rebuild)):
        ok = fail(f"{path}: 'rebuild' lacks active/disk/progress")
    clusters = doc.get("clusters")
    if clusters is not None:
        if not isinstance(clusters, list):
            ok = fail(f"{path}: 'clusters' is not an array")
        else:
            for i, c in enumerate(clusters):
                if not isinstance(c, dict) or \
                        not {"cluster", "util", "failed"} <= set(c):
                    ok = fail(f"{path}: clusters[{i}] lacks "
                              f"cluster/util/failed")
    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            ok = fail(f"{path}: 'metrics' is not an object")
        else:
            for name, value in metrics.items():
                if isinstance(value, bool) or not \
                        isinstance(value, (int, float)) or \
                        math.isnan(value) or math.isinf(value):
                    ok = fail(f"{path}: metrics[{name!r}] = {value!r} is "
                              f"not a finite number")
    if ok:
        print(f"{path}: /vars document ok (seq {doc.get('seq')}, "
              f"{len(doc.get('metrics', {}))} metrics, "
              f"{len(doc.get('clusters', []))} clusters)")
    return ok


def check_scrape(path):
    """Validate a saved exporter scrape, auto-detecting its format."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as err:
        print(f"trace_summary: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if text.lstrip().startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as err:
            return fail(f"{path}: not JSON: {err}")
        return check_vars(path, doc)
    return check_prometheus(path)


def summarize(doc, events):
    tracks = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[ev.get("tid")] = ev.get("args", {}).get("name", "?")
    per_cat = defaultdict(lambda: [0, 0.0, 0])  # spans, sim_us, instants
    per_track = defaultdict(lambda: [0, 0.0])
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        cat = ev.get("cat", "?")
        if ph == "X":
            per_cat[cat][0] += 1
            per_cat[cat][1] += ev.get("dur", 0)
            per_track[ev.get("tid")][0] += 1
            per_track[ev.get("tid")][1] += ev.get("dur", 0)
        else:
            per_cat[cat][2] += 1
    overwritten = doc.get("otherData", {}).get("overwritten", 0)
    print(f"{'category':<12} {'spans':>8} {'sim_ms':>12} {'instants':>9}")
    for cat in sorted(per_cat):
        spans, sim_us, instants = per_cat[cat]
        print(f"{cat:<12} {spans:>8} {sim_us / 1000.0:>12.3f} {instants:>9}")
    print()
    print(f"{'track':<24} {'spans':>8} {'sim_ms':>12}")
    for tid in sorted(per_track):
        spans, sim_us = per_track[tid]
        name = tracks.get(tid, f"tid {tid}")
        print(f"{name:<24} {spans:>8} {sim_us / 1000.0:>12.3f}")
    if overwritten:
        print(f"\nnote: ring buffer overwrote {overwritten} event(s)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace", nargs="?", help="Chrome trace JSON file (optional when "
        "only --journal is given)"
    )
    parser.add_argument(
        "--check", action="store_true", help="validate instead of summarize"
    )
    parser.add_argument(
        "--prom", metavar="FILE", help="also validate Prometheus text FILE"
    )
    parser.add_argument(
        "--journal", metavar="FILE",
        help="also validate a QoS event journal (JSONL) FILE"
    )
    parser.add_argument(
        "--timeseries", metavar="FILE",
        help="also validate a time-series dump (FTMS_TIMESERIES_OUT) FILE"
    )
    parser.add_argument(
        "--scrape", metavar="FILE", action="append", default=[],
        help="also validate a saved telemetry scrape (/metrics Prometheus "
        "text or /vars JSON, auto-detected); repeatable"
    )
    args = parser.parse_args()

    if args.trace is None:
        if not args.journal and not args.timeseries and not args.scrape:
            parser.error(
                "need a trace file, --journal FILE, --timeseries FILE, "
                "and/or --scrape FILE"
            )
        ok = True
        if args.journal:
            ok = check_journal(args.journal) and ok
        if args.timeseries:
            ok = check_timeseries(args.timeseries) and ok
        if args.prom:
            ok = check_prometheus(args.prom) and ok
        for scrape in args.scrape:
            ok = check_scrape(scrape) and ok
        return 0 if ok else 1

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_summary: cannot read {args.trace}: {err}",
              file=sys.stderr)
        return 2
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"trace_summary: {args.trace} has no traceEvents list",
              file=sys.stderr)
        return 1

    if args.check:
        ok = check_events(events)
        if args.prom:
            ok = check_prometheus(args.prom) and ok
        if args.journal:
            ok = check_journal(args.journal) and ok
        if args.timeseries:
            ok = check_timeseries(args.timeseries) and ok
        for scrape in args.scrape:
            ok = check_scrape(scrape) and ok
        if not ok:
            return 1
        real = sum(1 for e in events if e.get("ph") != "M")
        print(f"{args.trace}: {real} events ok")
        return 0

    summarize(doc, events)
    ok = True
    if args.prom:
        ok = check_prometheus(args.prom) and ok
    if args.journal:
        ok = check_journal(args.journal) and ok
    if args.timeseries:
        ok = check_timeseries(args.timeseries) and ok
    for scrape in args.scrape:
        ok = check_scrape(scrape) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
