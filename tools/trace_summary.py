#!/usr/bin/env python3
"""Summarize and validate FTMS Chrome trace JSON (and Prometheus text).

Usage:
    tools/trace_summary.py TRACE.json             # per-category totals
    tools/trace_summary.py TRACE.json --check     # validate, exit nonzero
    tools/trace_summary.py TRACE.json --check --prom METRICS.prom

Summary mode prints, per event category ("phase" of the run: sched,
failure, rebuild, ...), the span count, total simulated microseconds, and
instant-event count, plus per-track totals.

--check validates:
  * the file is well-formed JSON with a traceEvents list;
  * every event has the required fields (name, ph, ts, tid; dur on 'X');
  * timestamps and durations are non-negative numbers;
  * per tid, complete spans nest monotonically: sorted by start time,
    each span either starts at-or-after the previous one ends, or lies
    entirely within it (no partial overlap).

--prom FILE additionally validates Prometheus exposition text: every
non-comment line is `name{labels} value` (or `name value`) with a finite
numeric value, and every sample's family has a preceding # TYPE line.

Exit status: 0 = ok, 1 = validation failure, 2 = usage / file error.
"""

import argparse
import json
import math
import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|NaN|[+-]?Inf)$"
)


def fail(msg):
    print(f"trace_summary: {msg}", file=sys.stderr)
    return False


def check_events(events):
    ok = True
    spans_by_tid = defaultdict(list)
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            ok = fail(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            ok = fail(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata (thread_name) records
        for field in ("name", "ts", "tid"):
            if field not in ev:
                ok = fail(f"event {i} ({ev.get('name')!r}): missing {field!r}")
        ts = ev.get("ts", 0)
        if not isinstance(ts, (int, float)) or ts < 0:
            ok = fail(f"event {i} ({ev.get('name')!r}): bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                ok = fail(f"event {i} ({ev.get('name')!r}): bad dur {dur!r}")
            else:
                spans_by_tid[ev.get("tid")].append((ts, ts + dur, i))
    # Monotone nesting per track: with spans sorted by start, each one
    # either follows the previous span or nests fully inside an open one.
    for tid, spans in spans_by_tid.items():
        spans.sort()
        stack = []  # end times of open enclosing spans
        for start, end, idx in spans:
            while stack and start >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1]:
                ok = fail(
                    f"tid {tid}: span at event {idx} "
                    f"[{start}, {end}) partially overlaps an enclosing "
                    f"span ending at {stack[-1]}"
                )
                continue
            stack.append(end)
    return ok


def check_prometheus(path):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as err:
        print(f"trace_summary: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    ok = True
    typed = set()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) >= 4:
                typed.add(parts[2])
            else:
                ok = fail(f"{path}:{lineno}: malformed # TYPE line")
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            ok = fail(f"{path}:{lineno}: unparseable sample: {line!r}")
            continue
        samples += 1
        try:
            value = float(m.group(3))
        except ValueError:
            ok = fail(f"{path}:{lineno}: bad value {m.group(3)!r}")
            continue
        if math.isnan(value) or math.isinf(value):
            ok = fail(f"{path}:{lineno}: non-finite value {value}")
        name = m.group(1)
        # A histogram sample's family drops the _bucket/_sum/_count suffix.
        family_candidates = {name}
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                family_candidates.add(name[: -len(suffix)])
        if not family_candidates & typed:
            ok = fail(f"{path}:{lineno}: sample {name!r} has no # TYPE")
    if samples == 0:
        ok = fail(f"{path}: no samples")
    if ok:
        print(f"{path}: {samples} samples ok")
    return ok


def summarize(doc, events):
    tracks = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[ev.get("tid")] = ev.get("args", {}).get("name", "?")
    per_cat = defaultdict(lambda: [0, 0.0, 0])  # spans, sim_us, instants
    per_track = defaultdict(lambda: [0, 0.0])
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        cat = ev.get("cat", "?")
        if ph == "X":
            per_cat[cat][0] += 1
            per_cat[cat][1] += ev.get("dur", 0)
            per_track[ev.get("tid")][0] += 1
            per_track[ev.get("tid")][1] += ev.get("dur", 0)
        else:
            per_cat[cat][2] += 1
    overwritten = doc.get("otherData", {}).get("overwritten", 0)
    print(f"{'category':<12} {'spans':>8} {'sim_ms':>12} {'instants':>9}")
    for cat in sorted(per_cat):
        spans, sim_us, instants = per_cat[cat]
        print(f"{cat:<12} {spans:>8} {sim_us / 1000.0:>12.3f} {instants:>9}")
    print()
    print(f"{'track':<24} {'spans':>8} {'sim_ms':>12}")
    for tid in sorted(per_track):
        spans, sim_us = per_track[tid]
        name = tracks.get(tid, f"tid {tid}")
        print(f"{name:<24} {spans:>8} {sim_us / 1000.0:>12.3f}")
    if overwritten:
        print(f"\nnote: ring buffer overwrote {overwritten} event(s)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace JSON file")
    parser.add_argument(
        "--check", action="store_true", help="validate instead of summarize"
    )
    parser.add_argument(
        "--prom", metavar="FILE", help="also validate Prometheus text FILE"
    )
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_summary: cannot read {args.trace}: {err}",
              file=sys.stderr)
        return 2
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"trace_summary: {args.trace} has no traceEvents list",
              file=sys.stderr)
        return 1

    if args.check:
        ok = check_events(events)
        if args.prom:
            ok = check_prometheus(args.prom) and ok
        if not ok:
            return 1
        real = sum(1 for e in events if e.get("ph") != "M")
        print(f"{args.trace}: {real} events ok")
        return 0

    summarize(doc, events)
    if args.prom:
        return 0 if check_prometheus(args.prom) else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
