#!/usr/bin/env python3
"""Diff two BENCH_*.json perf snapshots and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Metric direction is inferred from the key name: throughput-style keys
(*_per_sec, *_per_s) are better when higher; time-style keys (wall_s, *_s,
*_seconds) are better when lower; anything else (counts, thread counts) is
informational and compared for drift only, never flagged.

Exit status: 0 = no regression beyond the threshold, 1 = at least one
regression, 2 = usage / file error.
"""

import argparse
import json
import sys


def metric_direction(key):
    """Returns 'higher', 'lower', or None (informational)."""
    if key.endswith("_per_sec") or key.endswith("_per_s"):
        return "higher"
    if key == "wall_s" or key.endswith("_s") or key.endswith("_seconds"):
        return "lower"
    return None


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        print(f"bench_diff: {path} has no 'metrics' object", file=sys.stderr)
        sys.exit(2)
    return doc.get("bench", "?"), doc.get("schema_version"), metrics, doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default: 10)",
    )
    args = parser.parse_args()

    base_name, base_schema, base, base_doc = load(args.baseline)
    cur_name, cur_schema, cur, cur_doc = load(args.current)
    if base_schema != cur_schema:
        print(
            f"bench_diff: schema_version mismatch "
            f"({base_schema} vs {cur_schema}); metrics are not comparable "
            f"across schemas -- regenerate the baseline",
            file=sys.stderr,
        )
        return 2
    if base_name != cur_name:
        print(
            f"note: comparing different benches ({base_name} vs {cur_name})"
        )

    regressions = []
    print(f"{'metric':<24} {'baseline':>14} {'current':>14} {'delta':>9}")
    for key in base:
        if key not in cur:
            print(f"{key:<24} {base[key]:>14g} {'(gone)':>14}")
            continue
        b, c = float(base[key]), float(cur[key])
        delta_pct = (c - b) / b * 100.0 if b != 0 else float("inf")
        direction = metric_direction(key)
        flag = ""
        if direction == "higher" and delta_pct < -args.threshold:
            flag = "  << REGRESSION"
            regressions.append(key)
        elif direction == "lower" and delta_pct > args.threshold:
            flag = "  << REGRESSION"
            regressions.append(key)
        print(f"{key:<24} {b:>14g} {c:>14g} {delta_pct:>+8.1f}%{flag}")
    for key in cur:
        if key not in base:
            print(f"{key:<24} {'(new)':>14} {cur[key]:>14g}")

    # The registry block (schema >= 2, runs with FTMS_METRICS=1) is purely
    # informational: counters drift with workload changes, so drift is
    # reported but never flagged.
    base_reg = base_doc.get("registry")
    cur_reg = cur_doc.get("registry")
    if isinstance(base_reg, dict) and isinstance(cur_reg, dict):
        changed = [
            k
            for k in sorted(set(base_reg) | set(cur_reg))
            if base_reg.get(k) != cur_reg.get(k)
        ]
        print(f"\nregistry: {len(changed)} of "
              f"{len(set(base_reg) | set(cur_reg))} series changed")
        for k in changed[:20]:
            print(f"  {k}: {base_reg.get(k)} -> {cur_reg.get(k)}")
        if len(changed) > 20:
            print(f"  ... and {len(changed) - 20} more")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0f}%: {', '.join(regressions)}"
        )
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
