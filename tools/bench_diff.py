#!/usr/bin/env python3
"""Diff two BENCH_*.json perf snapshots and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Metric direction is inferred from the key name: throughput-style keys
(*_per_sec, *_per_s) are better when higher; time-style keys (wall_s, *_s,
*_seconds) are better when lower; anything else (counts, thread counts) is
informational and compared for drift only, never flagged.

Exit status: 0 = no regression beyond the threshold, 1 = at least one
regression, 2 = usage / file error.
"""

import argparse
import json
import sys


def metric_direction(key):
    """Returns 'higher', 'lower', or None (informational)."""
    if key.endswith("_per_sec") or key.endswith("_per_s"):
        return "higher"
    if key == "wall_s" or key.endswith("_s") or key.endswith("_seconds"):
        return "lower"
    return None


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        print(f"bench_diff: {path} has no 'metrics' object", file=sys.stderr)
        sys.exit(2)
    return doc.get("bench", "?"), metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default: 10)",
    )
    args = parser.parse_args()

    base_name, base = load(args.baseline)
    cur_name, cur = load(args.current)
    if base_name != cur_name:
        print(
            f"note: comparing different benches ({base_name} vs {cur_name})"
        )

    regressions = []
    print(f"{'metric':<24} {'baseline':>14} {'current':>14} {'delta':>9}")
    for key in base:
        if key not in cur:
            print(f"{key:<24} {base[key]:>14g} {'(gone)':>14}")
            continue
        b, c = float(base[key]), float(cur[key])
        delta_pct = (c - b) / b * 100.0 if b != 0 else float("inf")
        direction = metric_direction(key)
        flag = ""
        if direction == "higher" and delta_pct < -args.threshold:
            flag = "  << REGRESSION"
            regressions.append(key)
        elif direction == "lower" and delta_pct > args.threshold:
            flag = "  << REGRESSION"
            regressions.append(key)
        print(f"{key:<24} {b:>14g} {c:>14g} {delta_pct:>+8.1f}%{flag}")
    for key in cur:
        if key not in base:
            print(f"{key:<24} {'(new)':>14} {cur[key]:>14g}")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0f}%: {', '.join(regressions)}"
        )
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
