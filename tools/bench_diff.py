#!/usr/bin/env python3
"""Diff two BENCH_*.json perf snapshots and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Metric direction is inferred from the key name: throughput-style keys
(*_per_sec, *_per_s, *_mb_per_s, *_gbps — the parity-kernel bench
reports GB/s, the farm bench MB/s) are better when higher; time-style
keys (wall_s, *_s, *_seconds) are better when lower; anything else
(counts, thread counts) is informational and compared for drift only,
never flagged.

Schema v4 snapshots recorded with FTMS_PROF=1 embed a "profile" tree;
scope call counts are diffed informationally (a count change means the
workload changed shape), and when a guarded metric regresses the top-3
top-level subtrees by wall-time delta are printed to localize it.

Exit status: 0 = no regression beyond the threshold, 1 = at least one
regression, 2 = usage / file error.
"""

import argparse
import json
import sys


def metric_direction(key):
    """Returns 'higher', 'lower', or None (informational)."""
    # _mb_per_s before the _s time suffix: "..._mb_per_s" is throughput,
    # not a duration, despite also ending in "_s".
    if key.endswith(("_per_sec", "_per_s", "_mb_per_s", "_gbps")):
        return "higher"
    if key == "wall_s" or key.endswith("_s") or key.endswith("_seconds"):
        return "lower"
    return None


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        print(f"bench_diff: {path} has no 'metrics' object", file=sys.stderr)
        sys.exit(2)
    return doc.get("bench", "?"), doc.get("schema_version"), metrics, doc


def flatten_profile(doc):
    """Flattens a schema-v4 'profile' tree into {path: (count, wall_us)}.

    Paths join nested scope names with ' > '; preorder, so a path's
    prefix is always its enclosing scope. Returns {} when the run had no
    profiler (FTMS_PROF unset) or the block is malformed.
    """
    profile = doc.get("profile")
    if not isinstance(profile, dict):
        return {}
    flat = {}

    def walk(nodes, prefix):
        for node in nodes:
            if not isinstance(node, dict) or "name" not in node:
                continue
            path = f"{prefix} > {node['name']}" if prefix else node["name"]
            flat[path] = (
                int(node.get("count", 0)),
                float(node.get("wall_us", 0.0)),
            )
            walk(node.get("children", []), path)

    walk(profile.get("nodes", []), "")
    return flat


def attribute_regressions(base_doc, cur_doc):
    """Prints the top-3 profile subtrees by wall-time delta.

    Called only when a guarded metric regressed: the per-subsystem wall
    deltas point at which subtree ate the lost time. Attribution needs
    both runs profiled (FTMS_PROF=1); says so and returns otherwise.
    """
    base_prof = flatten_profile(base_doc)
    cur_prof = flatten_profile(cur_doc)
    if not base_prof or not cur_prof:
        print("profile: no attribution possible (rerun both sides with "
              "FTMS_PROF=1 to localize the regression)")
        return
    # Top-level subtrees only: child deltas are already inside their
    # parent's wall time, so mixing depths would double-count.
    deltas = []
    for path in sorted(set(base_prof) | set(cur_prof)):
        if " > " in path:
            continue
        b = base_prof.get(path, (0, 0.0))[1]
        c = cur_prof.get(path, (0, 0.0))[1]
        deltas.append((c - b, path, b, c))
    deltas.sort(reverse=True)
    print("top subsystems by wall-time delta (current - baseline):")
    for delta, path, b, c in deltas[:3]:
        print(f"  {path:<24} {b / 1000.0:>10.3f} ms -> {c / 1000.0:>10.3f} "
              f"ms  ({delta / 1000.0:+.3f} ms)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default: 10)",
    )
    args = parser.parse_args()

    base_name, base_schema, base, base_doc = load(args.baseline)
    cur_name, cur_schema, cur, cur_doc = load(args.current)
    if base_schema != cur_schema:
        print(
            f"bench_diff: schema v{base_schema} vs v{cur_schema}; metrics "
            f"are not comparable across schemas -- regenerate the baseline "
            f"with the current binaries (v2 added the env/registry blocks, "
            f"v3 the qos block, v4 the profile/timeseries blocks)",
            file=sys.stderr,
        )
        return 2
    if base_name != cur_name:
        print(
            f"note: comparing different benches ({base_name} vs {cur_name})"
        )

    # The event-queue implementation (env.event_queue, from
    # FTMS_EVENT_QUEUE) changes what simulator-bound timings mean; a
    # heap-pinned snapshot is not a baseline for a calendar run. Older v3
    # snapshots without the key are treated as the engine default.
    base_queue = (base_doc.get("env") or {}).get("event_queue", "calendar")
    cur_queue = (cur_doc.get("env") or {}).get("event_queue", "calendar")
    if base_queue != cur_queue:
        print(
            f"bench_diff: event queue mismatch ({base_queue} vs "
            f"{cur_queue}); rerun with the same FTMS_EVENT_QUEUE on both "
            f"sides",
            file=sys.stderr,
        )
        return 2

    # Likewise a kernel pin (env.xor_kernel / env.pq_kernel, from
    # FTMS_XOR_KERNEL / FTMS_PQ_KERNEL) changes what the parity-bound
    # numbers mean: a scalar-pinned snapshot is not a baseline for a
    # dispatched run. Snapshots without the key ran the auto-dispatcher.
    for env_key, env_var in (("xor_kernel", "FTMS_XOR_KERNEL"),
                             ("pq_kernel", "FTMS_PQ_KERNEL")):
        base_kernel = (base_doc.get("env") or {}).get(env_key, "auto")
        cur_kernel = (cur_doc.get("env") or {}).get(env_key, "auto")
        if base_kernel != cur_kernel:
            print(
                f"bench_diff: {env_key} mismatch ({base_kernel} vs "
                f"{cur_kernel}); rerun with the same {env_var} on both "
                f"sides",
                file=sys.stderr,
            )
            return 2

    regressions = []
    print(f"{'metric':<24} {'baseline':>14} {'current':>14} {'delta':>9}")
    for key in base:
        if key not in cur:
            print(f"{key:<24} {base[key]:>14g} {'(gone)':>14}")
            continue
        b, c = float(base[key]), float(cur[key])
        delta_pct = (c - b) / b * 100.0 if b != 0 else float("inf")
        direction = metric_direction(key)
        flag = ""
        if direction == "higher" and delta_pct < -args.threshold:
            flag = "  << REGRESSION"
            regressions.append(key)
        elif direction == "lower" and delta_pct > args.threshold:
            flag = "  << REGRESSION"
            regressions.append(key)
        print(f"{key:<24} {b:>14g} {c:>14g} {delta_pct:>+8.1f}%{flag}")
    for key in cur:
        if key not in base:
            print(f"{key:<24} {'(new)':>14} {cur[key]:>14g}")

    # The registry block (schema >= 2, runs with FTMS_METRICS=1) is purely
    # informational: counters drift with workload changes, so drift is
    # reported but never flagged. Missing or empty blocks are normal —
    # zero-cost-off runs (FTMS_METRICS unset) simply don't embed one.
    base_reg = base_doc.get("registry")
    cur_reg = cur_doc.get("registry")
    if not base_reg and not cur_reg:
        pass  # neither run had the registry live; nothing to compare
    elif not isinstance(base_reg, dict) or not isinstance(cur_reg, dict):
        have = "current" if isinstance(cur_reg, dict) else "baseline"
        print(f"\nregistry: only the {have} run embedded a registry block "
              f"(FTMS_METRICS off on the other side); skipping")
    else:
        changed = [
            k
            for k in sorted(set(base_reg) | set(cur_reg))
            if base_reg.get(k) != cur_reg.get(k)
        ]
        print(f"\nregistry: {len(changed)} of "
              f"{len(set(base_reg) | set(cur_reg))} series changed")
        for k in changed[:20]:
            print(f"  {k}: {base_reg.get(k)} -> {cur_reg.get(k)}")
        if len(changed) > 20:
            print(f"  ... and {len(changed) - 20} more")

    # The qos block (schema >= 3, runs with FTMS_QOS=1) holds per-kind
    # journal event counts; like the registry it is informational only.
    base_qos = base_doc.get("qos")
    cur_qos = cur_doc.get("qos")
    if isinstance(base_qos, dict) and isinstance(cur_qos, dict):
        changed = [
            k
            for k in sorted(set(base_qos) | set(cur_qos))
            if base_qos.get(k) != cur_qos.get(k)
        ]
        print(f"\nqos: {len(changed)} of "
              f"{len(set(base_qos) | set(cur_qos))} event kinds changed")
        for k in changed[:20]:
            print(f"  {k}: {base_qos.get(k)} -> {cur_qos.get(k)}")

    # The profile block (schema >= 4, runs with FTMS_PROF=1) is diffed
    # informationally — wall times are machine-noisy — but scope *counts*
    # are deterministic per workload, so a count change means the work
    # itself changed shape, not just its speed.
    base_prof = flatten_profile(base_doc)
    cur_prof = flatten_profile(cur_doc)
    if base_prof and cur_prof:
        count_changed = [
            p
            for p in sorted(set(base_prof) | set(cur_prof))
            if base_prof.get(p, (0, 0))[0] != cur_prof.get(p, (0, 0))[0]
        ]
        print(f"\nprofile: {len(count_changed)} of "
              f"{len(set(base_prof) | set(cur_prof))} scopes changed call "
              f"count")
        for p in count_changed[:20]:
            print(f"  {p}: {base_prof.get(p, (0, 0))[0]} -> "
                  f"{cur_prof.get(p, (0, 0))[0]} calls")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0f}%: {', '.join(regressions)}"
        )
        attribute_regressions(base_doc, cur_doc)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
