#include <gtest/gtest.h>

#include "reliability/markov_sim.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

// Reproducibility guarantees: the entire simulation stack is
// deterministic given identical inputs — the property that makes every
// number in EXPERIMENTS.md re-checkable.

SchedulerMetrics RunScriptedDrill(Scheme scheme) {
  const int disks = scheme == Scheme::kImprovedBandwidth ? 8 : 10;
  SchedRig rig = MakeRig(scheme, 5, disks);
  rig.sched->AddStream(TestObject(0, 48)).value();
  rig.sched->RunCycles(2);
  rig.sched->AddStream(TestObject(2, 48)).value();
  rig.sched->RunCycles(3);
  rig.sched->OnDiskFailed(1, /*mid_cycle=*/true);
  rig.sched->RunCycles(10);
  rig.sched->OnDiskRepaired(1);
  rig.sched->RunCycles(200);
  return rig.sched->metrics();
}

class DeterminismPerScheme : public ::testing::TestWithParam<Scheme> {};

TEST_P(DeterminismPerScheme, IdenticalRunsIdenticalMetrics) {
  const SchedulerMetrics a = RunScriptedDrill(GetParam());
  const SchedulerMetrics b = RunScriptedDrill(GetParam());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.data_reads, b.data_reads);
  EXPECT_EQ(a.parity_reads, b.parity_reads);
  EXPECT_EQ(a.failed_reads, b.failed_reads);
  EXPECT_EQ(a.dropped_reads, b.dropped_reads);
  EXPECT_EQ(a.tracks_delivered, b.tracks_delivered);
  EXPECT_EQ(a.hiccups, b.hiccups);
  EXPECT_EQ(a.reconstructed, b.reconstructed);
  EXPECT_EQ(a.shift_cascades, b.shift_cascades);
}

INSTANTIATE_TEST_SUITE_P(Schemes, DeterminismPerScheme,
                         ::testing::Values(Scheme::kStreamingRaid,
                                           Scheme::kStaggeredGroup,
                                           Scheme::kNonClustered,
                                           Scheme::kImprovedBandwidth));

TEST(DeterminismTest, MonteCarloIsSeedDeterministic) {
  ReliabilitySimConfig config;
  config.num_disks = 20;
  config.mttf_hours = 300.0;
  config.mttr_hours = 3.0;
  config.trials = 40;
  config.seed = 77;
  const double a = EstimateMttfCatastrophic(config)->mean_hours;
  const double b = EstimateMttfCatastrophic(config)->mean_hours;
  EXPECT_EQ(a, b);
  const double c = EstimateKDegradedClusters(config, 2)->mean_hours;
  const double d = EstimateKDegradedClusters(config, 2)->mean_hours;
  EXPECT_EQ(c, d);
}

TEST(DeterminismTest, DegradedClustersTracksKConcurrentWhenSparse) {
  // With fast repairs, concurrent failures almost never share a cluster,
  // so the cluster-level and disk-level K-events coincide — the paper's
  // justification for using equation (6) for the NC buffer pool.
  ReliabilitySimConfig config;
  config.num_disks = 40;
  config.parity_group_size = 5;
  config.mttf_hours = 2000.0;
  config.mttr_hours = 2.0;
  config.trials = 200;
  const double clusters =
      EstimateKDegradedClusters(config, 2)->mean_hours;
  const double disks = EstimateKConcurrent(config, 2)->mean_hours;
  EXPECT_NEAR(clusters / disks, 1.0, 0.25);
  EXPECT_GE(clusters, disks * 0.95);  // needing distinct clusters is harder
}

}  // namespace
}  // namespace ftms
